//! Table 3: scalability from 1 to 5 concurrent applications (§7.3).
//!
//! "We compare the performance of `SharedTLB` ... and MASK, normalized to
//! Ideal performance, as the number of concurrently-running applications
//! increases from one to five."

use super::ExpOptions;
use crate::metrics::mean;
use crate::table::Table;
use mask_common::config::DesignKind;
use mask_workloads::{app_by_name, AppProfile};

/// Representative application mixes per concurrency level. The paper does
/// not publish its exact n-app mixes; we grow an all-High/High mix one app
/// at a time so that shared-TLB/walker contention rises monotonically with
/// the application count, which is the effect Table 3 demonstrates.
pub fn mixes() -> Vec<Vec<&'static AppProfile>> {
    let get = |n: &str| app_by_name(n).expect("known app");
    vec![
        vec![get("CONS")],
        vec![get("CONS"), get("MM")],
        vec![get("CONS"), get("MM"), get("RED")],
        vec![get("CONS"), get("MM"), get("RED"), get("TRD")],
        vec![get("CONS"), get("MM"), get("RED"), get("TRD"), get("SC")],
    ]
}

/// Runs Table 3; all mix × design runs go out as one job batch.
pub fn run(opts: &ExpOptions) -> Table {
    let runner = opts.runner();
    let mut t = Table::new(
        "Table 3: performance normalized to Ideal as application count grows",
        &["n_apps", "SharedTLB/Ideal", "MASK/Ideal"],
    );
    let designs = [DesignKind::Ideal, DesignKind::SharedTlb, DesignKind::Mask];
    let mixes: Vec<Vec<&'static AppProfile>> = mixes()
        .into_iter()
        .filter(|mix| mix.len() <= opts.n_cores)
        .collect();
    let outcomes = runner.run_multi_batch(&mixes, &designs);
    for (mix, chunk) in mixes.iter().zip(outcomes.chunks(designs.len())) {
        let (ideal, shared, mask) = (
            chunk[0].weighted_speedup,
            chunk[1].weighted_speedup,
            chunk[2].weighted_speedup,
        );
        let norm = |v: f64| if ideal > 0.0 { v / ideal } else { 0.0 };
        t.row_f64(mix.len().to_string(), &[norm(shared), norm(mask)]);
    }
    t
}

/// The paper's summary claim: MASK maintains an advantage at every level.
pub fn mask_advantage(t: &Table) -> f64 {
    mean(t.rows.iter().filter_map(|(n, _)| {
        let s = t.value(n, "SharedTLB/Ideal")?;
        let m = t.value(n, "MASK/Ideal")?;
        (s > 0.0).then_some(m / s)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_available_concurrency_levels() {
        let opts = ExpOptions {
            cycles: 6_000,
            ..ExpOptions::quick()
        };
        let t = run(&opts);
        // With 4 cores, mixes of size 1..=4 fit.
        assert_eq!(t.len(), 4);
        for (_, cells) in &t.rows {
            for c in cells {
                let v: f64 = c.parse().expect("numeric");
                assert!((0.0..=1.6).contains(&v), "normalized perf {v} out of range");
            }
        }
    }

    #[test]
    fn mixes_grow_one_app_at_a_time() {
        let m = mixes();
        assert_eq!(m.len(), 5);
        for (i, mix) in m.iter().enumerate() {
            assert_eq!(mix.len(), i + 1);
        }
    }
}
