//! The deterministic **plan → execute → assemble** simulation engine.
//!
//! Every paper artefact is a set of *independent* simulations: a
//! [`GpuSim`](mask_gpu::GpuSim) owns its whole machine state, is `Send`,
//! and never observes anything outside itself — the experiment suite is
//! embarrassingly parallel. This module centralizes that parallelism:
//!
//! 1. **plan** — callers (the [`PairRunner`](crate::runner::PairRunner)
//!    batch entry points and the experiment harnesses) describe whole
//!    workload sets as [`SimJob`] lists and submit them in one call;
//! 2. **execute** — a [`JobPool`] deduplicates jobs by their canonical
//!    [`JobKey`], resolves alone-baseline jobs from a process-wide
//!    [`BaselineCache`], and fans the remaining unique jobs out over
//!    `std::thread::scope` workers;
//! 3. **assemble** — results come back indexed by submission order, so
//!    the output of any batch is **byte-identical at every worker count**
//!    (each job is a closed deterministic state machine; scheduling can
//!    only reorder wall-clock execution, never results).
//!
//! Worker count: an explicit [`JobOptions`] request, else the `MASK_JOBS`
//! environment variable, else the machine's available parallelism. `1`
//! runs jobs serially on the calling thread (no threads are spawned).
//!
//! The sanitizer (`mask-sanitizer`) keeps its accounting in thread-local
//! sessions; each job builds and runs its simulator entirely on one worker
//! thread, so sanitized parallel batches keep per-simulation accounting
//! exactly as isolated as serial ones.
//!
//! This is the only module in the simulator crates allowed to use thread
//! primitives (`std::thread`, `Mutex`, atomics) — `cargo xtask lint`
//! enforces the boundary with the `parallelism` rule.

use mask_common::config::{
    DesignKind, DesignSpec, GpuConfig, JobOptions, ShardOptions, SimConfig, SpecOptions,
};
use mask_common::snapshot::{validate_envelope, PrefixHasher, PrefixKey, SnapshotReader};
use mask_common::stats::SimStats;
use mask_gpu::{run_speculative, AppSpec, GpuSim, SpecPlan};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One self-contained simulation: a design, an application placement, and
/// a cycle budget. Jobs with equal [`JobKey`]s produce bit-identical
/// statistics and are simulated at most once per batch (alone-baseline
/// jobs: at most once per *process*, via the [`BaselineCache`]).
#[derive(Clone, Debug)]
pub struct SimJob {
    /// The design to simulate.
    pub design: DesignKind,
    /// Application placement; core counts determine the GPU size.
    pub specs: Vec<AppSpec>,
    /// Total cycles to simulate.
    pub max_cycles: u64,
    /// Warm-up cycles excluded from measurement (clamped to at most half
    /// of `max_cycles`, exactly as the serial runner always did).
    pub warmup_cycles: u64,
    /// Base PRNG seed.
    pub seed: u64,
    /// Machine template (its `n_cores` is overridden by the placement).
    pub gpu: GpuConfig,
}

/// Canonical deduplication key of a [`SimJob`].
///
/// Two jobs compare equal exactly when they would simulate the same
/// machine on the same placement for the same cycles — the machine
/// configuration is folded in via its complete `Debug` rendering, so a
/// sensitivity sweep that tweaks any `GpuConfig` knob gets distinct keys.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct JobKey {
    /// The *spec*, not the preset name: two named presets with identical
    /// policy axes would dedup to one simulation, and distinct specs
    /// (e.g. `NoIsolation` vs `SharedTlb`, which differ only in compute
    /// partitioning) never collapse.
    design: DesignSpec,
    apps: Vec<(&'static str, usize)>,
    max_cycles: u64,
    warmup_cycles: u64,
    seed: u64,
    gpu: String,
}

impl SimJob {
    /// The job's canonical deduplication key.
    #[must_use]
    pub fn key(&self) -> JobKey {
        JobKey {
            design: self.design.spec(),
            apps: self
                .specs
                .iter()
                .map(|s| (s.profile.name, s.n_cores))
                .collect(),
            max_cycles: self.max_cycles,
            warmup_cycles: self.warmup_cycles,
            seed: self.seed,
            gpu: format!("{:?}", self.gpu),
        }
    }

    /// Whether this is an alone-baseline run (a single application), the
    /// class of jobs memoized process-wide.
    #[must_use]
    pub fn is_alone(&self) -> bool {
        self.specs.len() == 1
    }

    /// Runs the simulation to completion and snapshots its statistics,
    /// measured after the warm-up window. The SM-frontend shard count
    /// follows `MASK_SM_SHARDS` (unclamped — batch execution through a
    /// [`JobPool`] budgets it against the pool's worker count instead).
    #[must_use]
    pub fn run(&self) -> SimStats {
        self.run_with_shards(None)
    }

    /// Like [`SimJob::run`], with an explicit SM-frontend shard count
    /// (`None` defers to `MASK_SM_SHARDS`). Results are bit-identical at
    /// every shard count.
    #[must_use]
    pub fn run_with_shards(&self, sm_shards: Option<usize>) -> SimStats {
        self.run_with_spec(sm_shards, 1).0
    }

    /// Like [`SimJob::run_with_shards`], plus speculative epoch
    /// parallelism of the measured phase when `segments > 1` (see
    /// `mask_gpu::spec`). Returns the statistics together with the
    /// speculation commit/replay tally — results are bit-identical at any
    /// segment count, so the tally is pure telemetry.
    #[must_use]
    pub fn run_with_spec(&self, sm_shards: Option<usize>, segments: usize) -> (SimStats, u64, u64) {
        let mut sim = self.build_sim(sm_shards);
        sim.run(self.warmup_eff());
        self.finish_measured(sim, sm_shards, segments)
    }

    /// Like [`SimJob::run_with_shards`], but with the warm-up phase served
    /// from `prefix` when possible: the first job per [`PrefixKey`]
    /// simulates its warm-up exactly once and publishes a sealed snapshot;
    /// every later job restores from those bytes and runs only the
    /// measured phase. Restore-then-run is bit-identical to the
    /// straight-through simulation, so results cannot depend on whether a
    /// snapshot was reused. Falls back to the plain path when the job has
    /// no warm-up or its warm-up endpoint is not epoch-safe, and re-runs
    /// from cycle zero if a (disk-loaded) snapshot fails to restore.
    #[must_use]
    pub fn run_with_prefix(&self, sm_shards: Option<usize>, prefix: &PrefixCache) -> SimStats {
        self.run_with_prefix_spec(sm_shards, 1, prefix).0
    }

    /// Like [`SimJob::run_with_prefix`], plus speculative epoch
    /// parallelism of the measured phase when `segments > 1`; the
    /// prefix-restored simulator is exactly the speculation's segment-0
    /// seed. Returns the statistics together with the speculation
    /// commit/replay tally.
    #[must_use]
    pub fn run_with_prefix_spec(
        &self,
        sm_shards: Option<usize>,
        segments: usize,
        prefix: &PrefixCache,
    ) -> (SimStats, u64, u64) {
        let warmup = self.warmup_eff();
        if warmup == 0 || !self.warmup_is_epoch_safe() {
            return self.run_with_spec(sm_shards, segments);
        }
        let key = self.prefix_key();
        let cell = prefix.cell(key);
        let mut warmed: Option<GpuSim> = None;
        let mut simulated = false;
        let bytes = cell.get_or_init(|| {
            if let Some(bytes) = prefix.load_disk(key) {
                return Arc::new(bytes);
            }
            simulated = true;
            let mut sim = self.build_sim(sm_shards);
            sim.run(warmup);
            let bytes = sim.encode_snapshot(key);
            prefix.store_disk(key, &bytes);
            warmed = Some(sim);
            Arc::new(bytes)
        });
        if simulated {
            prefix.note_miss();
        } else {
            prefix.note_hit();
        }
        let sim = match warmed {
            // The winner keeps its live warmed simulator — restoring its
            // own snapshot would only re-derive the state it already has.
            Some(sim) => sim,
            None => {
                let mut fresh = self.build_sim(sm_shards);
                match fresh.restore_snapshot(bytes, key) {
                    Ok(()) => fresh,
                    Err(_) => {
                        // A failed restore leaves `fresh` unusable; a
                        // damaged snapshot must only cost wall clock,
                        // never change results.
                        let mut cold = self.build_sim(sm_shards);
                        cold.run(warmup);
                        cold
                    }
                }
            }
        };
        self.finish_measured(sim, sm_shards, segments)
    }

    /// The canonical warm-up prefix key: an FNV-1a digest over everything
    /// that can influence the first `warmup` cycles — design axes, machine
    /// configuration, placement, seed, and the effective warm-up length —
    /// and nothing that provably cannot (`max_cycles`, shard and worker
    /// counts, and, when the warm-up ends before the first epoch boundary,
    /// the epoch-end-only MASK knobs). Jobs with equal keys reach
    /// bit-identical machine state at the end of warm-up.
    #[must_use]
    pub fn prefix_key(&self) -> PrefixKey {
        let warmup = self.warmup_eff();
        let epoch = self.gpu.mask.epoch_cycles;
        let crosses_epoch = epoch != 0 && warmup >= epoch;
        let mut h = PrefixHasher::new();
        h.tag("mask-prefix");
        self.design.spec().prefix_hash(&mut h);
        let mut gpu = self.gpu.clone();
        gpu.n_cores = self.specs.iter().map(|s| s.n_cores).sum();
        gpu.prefix_hash(&mut h, crosses_epoch);
        h.tag("apps");
        h.usize(self.specs.len());
        for spec in &self.specs {
            h.str(spec.profile.name);
            h.usize(spec.n_cores);
        }
        h.tag("run");
        h.u64(self.seed);
        h.u64(warmup);
        h.finish()
    }

    /// Whether the end of the warm-up phase lands on an epoch-safe
    /// snapshot point (an epoch boundary, or anywhere before the first
    /// one). Only such warm-ups may be shared through the [`PrefixCache`].
    #[must_use]
    pub fn warmup_is_epoch_safe(&self) -> bool {
        let warmup = self.warmup_eff();
        let epoch = self.gpu.mask.epoch_cycles;
        epoch == 0 || warmup < epoch || warmup.is_multiple_of(epoch)
    }

    /// The effective warm-up length: clamped to at most half of
    /// `max_cycles`, exactly as the serial runner always did.
    fn warmup_eff(&self) -> u64 {
        self.warmup_cycles.min(self.max_cycles / 2)
    }

    /// Builds the simulator this job describes (machine sized by the
    /// placement), at cycle zero.
    fn build_sim(&self, sm_shards: Option<usize>) -> GpuSim {
        let total: usize = self.specs.iter().map(|s| s.n_cores).sum();
        let mut gpu = self.gpu.clone();
        gpu.n_cores = total;
        let cfg = SimConfig {
            gpu,
            design: self.design.spec(),
            max_cycles: self.max_cycles,
            seed: self.seed,
            sm_shards: sm_shards.map_or_else(ShardOptions::default, ShardOptions::with_shards),
        };
        GpuSim::new(&cfg, &self.specs)
    }

    /// Runs the measured phase on a simulator positioned at the end of
    /// warm-up and snapshots its statistics, speculatively across the time
    /// axis when `segments > 1` (the segment runner falls back to the
    /// plain serial loop whenever the span has no epoch-safe cut).
    fn finish_measured(
        &self,
        mut sim: GpuSim,
        sm_shards: Option<usize>,
        segments: usize,
    ) -> (SimStats, u64, u64) {
        sim.reset_stats();
        let measured = self.max_cycles - self.warmup_eff();
        if segments > 1 {
            let plan = SpecPlan::new(segments);
            let (mut done, report) =
                run_speculative(sim, measured, &plan, || self.build_sim(sm_shards));
            done.sync_stats();
            return (done.stats().clone(), report.commits, report.replays);
        }
        sim.run(measured);
        sim.sync_stats();
        (sim.stats().clone(), 0, 0)
    }
}

/// Budgets a per-simulation shard request against the machine: with
/// `workers` simulations running concurrently, `workers × shards` threads
/// must not oversubscribe `avail` hardware threads. Returns the largest
/// per-simulation shard count within budget (at least 1 — the serial
/// frontend).
fn clamp_shards(requested: usize, workers: usize, avail: usize) -> usize {
    let requested = requested.max(1);
    let workers = workers.max(1);
    if requested * workers <= avail {
        requested
    } else {
        (avail / workers).max(1)
    }
}

/// Budgets the full three-way split: with `workers` simulations running
/// concurrently, each sharding its frontend `shards` ways and speculating
/// over `segments` time segments, `workers × shards × segments` threads
/// must not oversubscribe `avail`. Shards win ties (they accelerate every
/// cycle of every run; segments only pipeline the time axis), then
/// segments take whatever budget remains. Both grants floor at 1.
fn clamp_split(
    shards_req: usize,
    segments_req: usize,
    workers: usize,
    avail: usize,
) -> (usize, usize) {
    let workers = workers.max(1);
    let shards = clamp_shards(shards_req, workers, avail);
    let segments_req = segments_req.max(1);
    let segments = if workers * shards * segments_req <= avail {
        segments_req
    } else {
        (avail / (workers * shards)).max(1)
    };
    (shards, segments)
}

/// The oversubscription warning text, stating the resolved
/// jobs×shards×segments split so readers can tell exactly what
/// configuration actually ran.
fn split_clamped_message(
    shards_req: usize,
    shards: usize,
    segments_req: usize,
    segments: usize,
    workers: usize,
    avail: usize,
) -> String {
    format!(
        "[mask-core] MASK_JOBS ({workers}) x MASK_SM_SHARDS ({shards_req}) x \
         MASK_SPEC_SEGMENTS ({segments_req}) exceeds available parallelism ({avail}); \
         resolved split: {workers} job worker(s) x {shards} SM shard(s) x \
         {segments} speculative segment(s) per simulation ({} thread(s) total; results \
         are identical at any split)",
        workers * shards * segments
    )
}

/// Emits the oversubscription warning once per process.
fn warn_split_clamped(
    shards_req: usize,
    shards: usize,
    segments_req: usize,
    segments: usize,
    workers: usize,
    avail: usize,
) {
    static WARNED: AtomicBool = AtomicBool::new(false);
    // Relaxed ordering: warn-once latch; the swap alone decides a unique
    // winner and no other memory hangs off it.
    if !WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "{}",
            split_clamped_message(shards_req, shards, segments_req, segments, workers, avail)
        );
    }
}

/// Runs one job with an engine-timeline span around it (`mask-obs` job
/// profiling; the span label and timing cost nothing unless tracing is
/// live).
fn run_one_timed(
    job: &SimJob,
    shards: usize,
    segments: usize,
    lane: u32,
    prefix: Option<&PrefixCache>,
) -> (SimStats, u64, u64) {
    let timer = mask_obs::profile::begin_job();
    let out = match prefix {
        Some(cache) => job.run_with_prefix_spec(Some(shards), segments, cache),
        None => job.run_with_spec(Some(shards), segments),
    };
    if mask_obs::tracing_active() {
        timer.finish(&job_label(job), lane);
    }
    out
}

/// Short human-readable label for a job's engine-timeline span.
fn job_label(job: &SimJob) -> String {
    use fmt::Write;
    let mut s = format!("{:?}", job.design);
    for spec in &job.specs {
        let _ = write!(s, " {}x{}", spec.profile.name, spec.n_cores);
    }
    s
}

/// Counters describing one [`BaselineCache`]'s effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Distinct alone-baseline simulations held.
    pub entries: usize,
    /// Lookups answered from the cache (simulations avoided).
    pub hits: u64,
    /// Lookups that had to simulate (one per distinct entry).
    pub misses: u64,
}

#[derive(Default)]
struct CacheInner {
    map: BTreeMap<JobKey, SimStats>,
    hits: u64,
    misses: u64,
}

/// Process-wide memo of alone-baseline simulations.
///
/// `IPC_alone` baselines are design-dependent but pair-independent, and the
/// oracle scheduler's probe runs re-derive the same baselines again at probe
/// length — so one cache shared by every experiment (and every probe)
/// guarantees each unique `(design, placement, cycles, seed, machine)`
/// alone run is simulated exactly once per process. Tests that need exact
/// accounting can attach a private cache via [`JobPool::with_cache`].
#[derive(Default)]
pub struct BaselineCache {
    inner: Mutex<CacheInner>,
}

impl BaselineCache {
    /// Creates an empty cache behind the shared handle [`JobPool`] expects.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(BaselineCache::default())
    }

    /// Hit/miss/occupancy counters.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked while holding the cache lock.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("baseline cache lock poisoned");
        CacheStats {
            entries: inner.map.len(),
            hits: inner.hits,
            misses: inner.misses,
        }
    }

    fn lookup(&self, key: &JobKey) -> Option<SimStats> {
        let mut inner = self.inner.lock().expect("baseline cache lock poisoned");
        match inner.map.get(key).cloned() {
            Some(stats) => {
                inner.hits += 1;
                Some(stats)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    fn insert(&self, key: JobKey, stats: SimStats) {
        let mut inner = self.inner.lock().expect("baseline cache lock poisoned");
        inner.map.insert(key, stats);
    }
}

/// The process-wide [`BaselineCache`] every default [`JobPool`] shares.
#[must_use]
pub fn process_cache() -> Arc<BaselineCache> {
    static CACHE: OnceLock<Arc<BaselineCache>> = OnceLock::new();
    Arc::clone(CACHE.get_or_init(BaselineCache::new))
}

/// Counters describing one [`PrefixCache`]'s effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefixCacheStats {
    /// Distinct warm-up prefixes tracked (each simulated at most once per
    /// process, or zero times when served from the on-disk store).
    pub entries: usize,
    /// Jobs whose warm-up was answered by an existing snapshot (warm-up
    /// simulations avoided, whether from memory or disk).
    pub hits: u64,
    /// Jobs that had to simulate their warm-up (one per prefix not found
    /// on disk).
    pub misses: u64,
}

struct PrefixInner {
    map: BTreeMap<PrefixKey, Arc<OnceLock<Arc<Vec<u8>>>>>,
    hits: u64,
    misses: u64,
}

/// Process-wide store of sealed warm-up snapshots, keyed by
/// [`SimJob::prefix_key`].
///
/// A sweep varies measurement-phase knobs around a common warm-up; this
/// cache makes each unique warm-up prefix run exactly once — concurrent
/// jobs with the same key block on one `OnceLock` cell, the winner
/// simulates and seals the snapshot, everyone else restores from the
/// bytes. With `MASK_SNAPSHOT_DIR` set, snapshots are also persisted as
/// `<key>.msnp` files and reloaded by later processes, amortizing warm-up
/// across whole sweep invocations.
pub struct PrefixCache {
    inner: Mutex<PrefixInner>,
    dir: Option<PathBuf>,
    /// Maximum number of snapshots kept on disk (`MASK_SNAPSHOT_CAP`);
    /// `None` = unbounded. Enforced LRU-wise after every store.
    cap: Option<usize>,
}

impl PrefixCache {
    /// An in-memory cache with the on-disk store at `dir` (see
    /// `MASK_SNAPSHOT_DIR`), behind the shared handle [`JobPool`] expects.
    /// Equivalent to [`PrefixCache::with_store`] without a size cap.
    #[must_use]
    pub fn with_dir(dir: Option<PathBuf>) -> Arc<Self> {
        Self::with_store(dir, None)
    }

    /// An in-memory cache with the on-disk store at `dir`, keeping at most
    /// `cap` snapshots on disk (least-recently-used evicted first; `None`
    /// = unbounded). Construction sweeps the store once: snapshots whose
    /// envelope fails validation (truncated, stale format, checksum
    /// mismatch) and orphaned recency sidecars are deleted.
    #[must_use]
    pub fn with_store(dir: Option<PathBuf>, cap: Option<usize>) -> Arc<Self> {
        if let Some(dir) = dir.as_deref() {
            cleanup_store(dir);
        }
        Arc::new(PrefixCache {
            inner: Mutex::new(PrefixInner {
                map: BTreeMap::new(),
                hits: 0,
                misses: 0,
            }),
            dir,
            cap,
        })
    }

    /// A purely in-memory cache (no on-disk store); what tests that assert
    /// exact warm-up counts attach via [`JobPool::with_prefix_cache`].
    #[must_use]
    pub fn in_memory() -> Arc<Self> {
        Self::with_dir(None)
    }

    /// A cache whose on-disk store follows the `MASK_SNAPSHOT_DIR`
    /// environment variable (unset: in-memory only), capped at
    /// `MASK_SNAPSHOT_CAP` snapshots (unset or unparsable: unbounded).
    #[must_use]
    pub fn from_env() -> Arc<Self> {
        Self::with_store(
            std::env::var_os("MASK_SNAPSHOT_DIR").map(PathBuf::from),
            std::env::var("MASK_SNAPSHOT_CAP")
                .ok()
                .and_then(|v| v.parse().ok()),
        )
    }

    /// Hit/miss/occupancy counters.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked while holding the cache lock.
    #[must_use]
    pub fn stats(&self) -> PrefixCacheStats {
        let inner = self.inner.lock().expect("prefix cache lock poisoned");
        PrefixCacheStats {
            entries: inner.map.len(),
            hits: inner.hits,
            misses: inner.misses,
        }
    }

    /// The shared once-cell for `key`; its winner simulates the warm-up.
    fn cell(&self, key: PrefixKey) -> Arc<OnceLock<Arc<Vec<u8>>>> {
        let mut inner = self.inner.lock().expect("prefix cache lock poisoned");
        Arc::clone(inner.map.entry(key).or_default())
    }

    fn note_hit(&self) {
        self.inner.lock().expect("prefix cache lock poisoned").hits += 1;
    }

    fn note_miss(&self) {
        self.inner
            .lock()
            .expect("prefix cache lock poisoned")
            .misses += 1;
    }

    /// Loads `key`'s snapshot from the on-disk store, if it exists and
    /// passes full envelope validation (magic, version, key, checksum) —
    /// a truncated or stale file degrades to re-simulation instead of
    /// poisoning the in-memory cell. A successful load refreshes the
    /// snapshot's recency, protecting hot prefixes from eviction.
    fn load_disk(&self, key: PrefixKey) -> Option<Vec<u8>> {
        let dir = self.dir.as_ref()?;
        let bytes = std::fs::read(dir.join(format!("{key}.msnp"))).ok()?;
        SnapshotReader::open_keyed(&bytes, key).ok()?;
        touch_store(dir, key);
        Some(bytes)
    }

    /// Persists `key`'s sealed snapshot, best-effort: the store is a pure
    /// accelerator, so every I/O failure is swallowed. Written via a
    /// process-unique temp file and rename so concurrent sweeps never
    /// observe a torn file. Enforces the snapshot cap afterwards, evicting
    /// least-recently-used entries.
    fn store_disk(&self, key: PrefixKey, bytes: &[u8]) {
        let Some(dir) = self.dir.as_ref() else {
            return;
        };
        let _ = std::fs::create_dir_all(dir);
        let tmp = dir.join(format!("{key}.msnp.{}.tmp", std::process::id()));
        if std::fs::write(&tmp, bytes).is_ok()
            && std::fs::rename(&tmp, dir.join(format!("{key}.msnp"))).is_err()
        {
            let _ = std::fs::remove_file(&tmp);
        }
        touch_store(dir, key);
        if let Some(cap) = self.cap {
            evict_store(dir, cap);
        }
    }
}

/// Lists the store's snapshots as `(recency, file stem, path)` triples.
/// Recency comes from the `<key>.lru` sidecar (0 when absent), stems break
/// ties, so eviction order is fully deterministic.
fn list_store(dir: &Path) -> Vec<(u64, String, PathBuf)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "msnp") {
            let stem = path
                .file_stem()
                .map_or_else(String::new, |s| s.to_string_lossy().into_owned());
            let seq = std::fs::read_to_string(path.with_extension("lru"))
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(0);
            out.push((seq, stem, path));
        }
    }
    out.sort();
    out
}

/// Stamps `key` as the store's most recently used snapshot: its `.lru`
/// sidecar receives a sequence number above every existing one. The
/// counter is derived from the store itself (not process state), so
/// recency survives across sweep invocations.
fn touch_store(dir: &Path, key: PrefixKey) {
    let next = list_store(dir)
        .iter()
        .map(|(seq, _, _)| *seq)
        .max()
        .unwrap_or(0)
        .saturating_add(1);
    let _ = std::fs::write(dir.join(format!("{key}.lru")), format!("{next}\n"));
}

/// Deletes least-recently-used snapshots (and their sidecars) until at
/// most `cap` remain. Best-effort, like every other store operation.
fn evict_store(dir: &Path, cap: usize) {
    let listed = list_store(dir);
    for (_, _, path) in listed.iter().take(listed.len().saturating_sub(cap.max(1))) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(path.with_extension("lru"));
    }
}

/// Startup hygiene sweep: deletes snapshots whose envelope fails full
/// validation (truncated writes, stale codec versions, checksum damage),
/// their sidecars, leftover temp files, and orphaned sidecars whose
/// snapshot is gone.
fn cleanup_store(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let ext = path.extension().map(|e| e.to_string_lossy().into_owned());
        match ext.as_deref() {
            Some("msnp") => {
                let valid =
                    std::fs::read(&path).is_ok_and(|bytes| validate_envelope(&bytes).is_ok());
                if !valid {
                    let _ = std::fs::remove_file(&path);
                    let _ = std::fs::remove_file(path.with_extension("lru"));
                }
            }
            Some("lru") if !path.with_extension("msnp").exists() => {
                let _ = std::fs::remove_file(&path);
            }
            Some("tmp") => {
                let _ = std::fs::remove_file(&path);
            }
            _ => {}
        }
    }
}

/// The process-wide [`PrefixCache`] every default [`JobPool`] shares,
/// configured from `MASK_SNAPSHOT_DIR` at first use.
#[must_use]
pub fn process_prefix_cache() -> Arc<PrefixCache> {
    static CACHE: OnceLock<Arc<PrefixCache>> = OnceLock::new();
    Arc::clone(CACHE.get_or_init(PrefixCache::from_env))
}

/// One worker's locally collected results: submission index plus the
/// job's statistics and speculation commit/replay tally.
type WorkerResults = Vec<(usize, (SimStats, u64, u64))>;

/// Cumulative speculation telemetry aggregated across a pool's batches.
#[derive(Default)]
struct SpecCounters {
    commits: AtomicU64,
    replays: AtomicU64,
}

/// Executes [`SimJob`] batches over a fixed number of worker threads.
///
/// Cheap to clone: clones share the same baseline cache.
#[derive(Clone)]
pub struct JobPool {
    workers: usize,
    cache: Arc<BaselineCache>,
    prefix: Arc<PrefixCache>,
    reuse_prefix: bool,
    spec: SpecOptions,
    spec_counters: Arc<SpecCounters>,
}

impl fmt::Debug for JobPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobPool")
            .field("workers", &self.workers)
            .field("cache", &self.cache.stats())
            .field("prefix", &self.prefix.stats())
            .field("reuse_prefix", &self.reuse_prefix)
            .field("spec", &self.spec)
            .finish()
    }
}

impl JobPool {
    /// A pool honoring `MASK_JOBS` / available parallelism, sharing the
    /// process-wide baseline cache.
    #[must_use]
    pub fn from_env() -> Self {
        Self::with_options(JobOptions::default())
    }

    /// A pool with `opts`' worker policy (explicit request, else
    /// `MASK_JOBS`, else available parallelism).
    #[must_use]
    pub fn with_options(opts: JobOptions) -> Self {
        let workers = opts.requested().unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
        JobPool {
            workers: workers.max(1),
            cache: process_cache(),
            prefix: process_prefix_cache(),
            reuse_prefix: true,
            spec: SpecOptions::default(),
            spec_counters: Arc::default(),
        }
    }

    /// A pool with exactly `n` workers (`1` = serial).
    #[must_use]
    pub fn with_workers(n: usize) -> Self {
        Self::with_options(JobOptions::with_workers(n))
    }

    /// Replaces the baseline cache (e.g. with a private one in tests that
    /// assert exact simulation counts).
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<BaselineCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Replaces the prefix cache (e.g. with a private one in tests that
    /// assert exact warm-up counts, or one bound to a specific snapshot
    /// directory).
    #[must_use]
    pub fn with_prefix_cache(mut self, prefix: Arc<PrefixCache>) -> Self {
        self.prefix = prefix;
        self
    }

    /// Enables or disables warm-up prefix reuse (default: enabled).
    /// Results are bit-identical either way — disabling only forces every
    /// job to re-simulate its warm-up, which is what the reuse benchmark
    /// measures against.
    #[must_use]
    pub fn with_prefix_reuse(mut self, reuse: bool) -> Self {
        self.reuse_prefix = reuse;
        self
    }

    /// Overrides the speculative segment request (default: follow
    /// `MASK_SPEC_SEGMENTS`). Like the shard request, it is budgeted
    /// against the machine at batch time — and like everything else about
    /// the engine, results are bit-identical at any segment count.
    #[must_use]
    pub fn with_spec_segments(mut self, segments: usize) -> Self {
        self.spec = SpecOptions::with_segments(segments);
        self
    }

    /// Cumulative speculation tally across this pool's batches:
    /// `(commits, replays)` — segments whose predicted start state
    /// verified against truth, and segments replayed from the true state.
    #[must_use]
    pub fn spec_stats(&self) -> (u64, u64) {
        // Relaxed ordering: independent telemetry counters, read after the
        // batches of interest have returned on this thread.
        (
            self.spec_counters.commits.load(Ordering::Relaxed),
            self.spec_counters.replays.load(Ordering::Relaxed),
        )
    }

    /// The worker count this pool fans out over.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The alone-baseline cache this pool consults.
    #[must_use]
    pub fn cache(&self) -> &Arc<BaselineCache> {
        &self.cache
    }

    /// The warm-up prefix cache this pool consults.
    #[must_use]
    pub fn prefix_cache(&self) -> &Arc<PrefixCache> {
        &self.prefix
    }

    /// One-line human-readable completion summary: worker count plus the
    /// baseline- and prefix-cache counters, stating how many simulations
    /// (whole alone runs, warm-up phases) the caches avoided.
    #[must_use]
    pub fn completion_summary(&self) -> String {
        let b = self.cache.stats();
        let p = self.prefix.stats();
        let (commits, replays) = self.spec_stats();
        format!(
            "[mask-core] job pool: {} worker(s); baseline cache: {} entries, \
             {} hit(s) / {} miss(es); prefix cache: {} snapshot(s), \
             {} warm-up(s) reused / {} simulated; speculation: \
             {commits} commit(s) / {replays} replay(s)",
            self.workers, b.entries, b.hits, b.misses, p.entries, p.hits, p.misses
        )
    }

    /// Runs a batch and returns one [`SimStats`] per job, in submission
    /// order. Equal-keyed jobs are simulated once; alone-baseline jobs are
    /// additionally served from (and recorded in) the baseline cache.
    ///
    /// # Panics
    ///
    /// Re-raises any panic from a job (e.g. a sanitizer violation) on the
    /// calling thread, payload intact.
    #[must_use]
    pub fn run_batch(&self, jobs: &[SimJob]) -> Vec<SimStats> {
        // Trace bookkeeping for the `job_pool` metrics frame (see
        // `mask-obs`); both values stay `None` unless tracing is live.
        let trace = mask_obs::tracing_active();
        let batch_start = trace.then(std::time::Instant::now); // lint: allow(nondeterminism) -- profiling only, never read by the simulation
        let cache_before = trace.then(|| self.cache.stats());
        let prefix_before = trace.then(|| self.prefix.stats());
        // Plan: collapse equal-keyed jobs, answer alone runs from cache.
        let mut results: Vec<Option<SimStats>> = vec![None; jobs.len()];
        let mut unique: BTreeMap<JobKey, Vec<usize>> = BTreeMap::new();
        for (i, job) in jobs.iter().enumerate() {
            unique.entry(job.key()).or_default().push(i);
        }
        let n_unique = unique.len();
        let mut work: Vec<(&SimJob, Vec<usize>)> = Vec::new();
        for (key, idxs) in unique {
            let job = &jobs[idxs[0]];
            if job.is_alone() {
                if let Some(stats) = self.cache.lookup(&key) {
                    for &i in &idxs {
                        results[i] = Some(stats.clone());
                    }
                    continue;
                }
            }
            work.push((job, idxs));
        }
        // Execute: fan the unique jobs out; output is keyed by work index,
        // so worker scheduling cannot affect what callers observe.
        let outputs = self.execute(&work);
        // Assemble: scatter each unique result to every submitting slot,
        // and fold the per-job speculation tallies into the pool counters.
        let mut spec_commits = 0u64;
        let mut spec_replays = 0u64;
        for ((job, idxs), (stats, commits, replays)) in work.iter().zip(outputs) {
            spec_commits += commits;
            spec_replays += replays;
            if job.is_alone() {
                self.cache.insert(job.key(), stats.clone());
            }
            for &i in idxs {
                results[i] = Some(stats.clone());
            }
        }
        // Relaxed ordering: independent telemetry counters; nothing else
        // is published through them.
        self.spec_counters
            .commits
            .fetch_add(spec_commits, Ordering::Relaxed);
        // Relaxed ordering for the same reason: the replay tally is read
        // only after the batch joins.
        self.spec_counters
            .replays
            .fetch_add(spec_replays, Ordering::Relaxed);
        if let (Some(start), Some(before), Some(p_before)) =
            (batch_start, cache_before, prefix_before)
        {
            let after = self.cache.stats();
            let p_after = self.prefix.stats();
            mask_obs::metrics::job_pool_frame(
                self.workers,
                jobs.len(),
                n_unique,
                after.hits.saturating_sub(before.hits),
                after.misses.saturating_sub(before.misses),
                p_after.hits.saturating_sub(p_before.hits),
                p_after.misses.saturating_sub(p_before.misses),
                spec_commits,
                spec_replays,
                start.elapsed().as_micros() as u64,
            );
        }
        results
            .into_iter()
            .map(|r| r.expect("every planned job resolves to a result"))
            .collect()
    }

    fn execute(&self, work: &[(&SimJob, Vec<usize>)]) -> Vec<(SimStats, u64, u64)> {
        let n_workers = self.workers.min(work.len());
        // Budget the per-simulation shard (MASK_SM_SHARDS) and speculative
        // segment (MASK_SPEC_SEGMENTS) requests against the machine so
        // `workers x shards x segments` never oversubscribes it.
        let avail = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let shards_req = ShardOptions::default().requested();
        let segments_req = self.spec.requested();
        let (shards, segments) = clamp_split(shards_req, segments_req, n_workers.max(1), avail);
        if shards < shards_req || segments < segments_req {
            warn_split_clamped(
                shards_req,
                shards,
                segments_req,
                segments,
                n_workers.max(1),
                avail,
            );
        }
        let prefix = self.reuse_prefix.then(|| &*self.prefix);
        if n_workers <= 1 {
            return work
                .iter()
                .map(|(job, _)| run_one_timed(job, shards, segments, 0, prefix))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let collected: Vec<WorkerResults> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n_workers)
                .map(|w| {
                    let next = &next;
                    s.spawn(move || {
                        let lane = w as u32;
                        let mut local = Vec::new();
                        loop {
                            // Relaxed ordering: the ticket counter only
                            // hands out unique indices; `work` is read-only
                            // and was published by the scope spawn.
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= work.len() {
                                break;
                            }
                            local.push((
                                i,
                                run_one_timed(work[i].0, shards, segments, lane, prefix),
                            ));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(local) => local,
                    // Surface job panics (sanitizer violations, simulator
                    // asserts) on the caller with their original payload.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut out: Vec<Option<(SimStats, u64, u64)>> = vec![None; work.len()];
        for (i, stats) in collected.into_iter().flatten() {
            out[i] = Some(stats);
        }
        out.into_iter()
            .map(|o| o.expect("workers drain the whole work list"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mask_workloads::app_by_name;

    fn job(design: DesignKind, apps: &[(&str, usize)], seed: u64) -> SimJob {
        let mut gpu = GpuConfig::maxwell();
        gpu.warps_per_core = 16;
        SimJob {
            design,
            specs: apps
                .iter()
                .map(|&(name, n_cores)| AppSpec {
                    profile: app_by_name(name).expect("known app"),
                    n_cores,
                })
                .collect(),
            max_cycles: 4_000,
            warmup_cycles: 1_000,
            seed,
            gpu,
        }
    }

    #[test]
    fn clamp_shards_budgets_against_available_parallelism() {
        // Fits: granted as requested.
        assert_eq!(clamp_shards(4, 2, 8), 4);
        assert_eq!(clamp_shards(1, 8, 8), 1);
        // Oversubscribed: split the machine across the workers.
        assert_eq!(clamp_shards(8, 2, 8), 4);
        assert_eq!(clamp_shards(4, 3, 8), 2);
        // Never below the serial frontend, even on tiny machines.
        assert_eq!(clamp_shards(8, 4, 1), 1);
        assert_eq!(clamp_shards(0, 0, 1), 1);
    }

    #[test]
    fn clamp_split_budgets_all_three_axes() {
        // Everything fits: granted as requested.
        assert_eq!(clamp_split(2, 4, 2, 16), (2, 4));
        assert_eq!(clamp_split(1, 1, 4, 4), (1, 1));
        // Shards win ties; segments take the remaining budget.
        assert_eq!(clamp_split(4, 4, 2, 8), (4, 1));
        assert_eq!(clamp_split(2, 8, 2, 16), (2, 4));
        // Degenerate budget: a 1-CPU machine grants the serial frontend
        // and serial time axis no matter what was requested.
        assert_eq!(clamp_split(8, 8, 1, 1), (1, 1));
        assert_eq!(clamp_split(1, 64, 1, 1), (1, 1));
        // Zero-valued requests floor at 1 everywhere.
        assert_eq!(clamp_split(0, 0, 0, 1), (1, 1));
    }

    #[test]
    fn clamp_warning_states_the_resolved_split() {
        let msg = split_clamped_message(8, 4, 4, 1, 2, 8);
        assert!(
            msg.contains("2 job worker(s) x 4 SM shard(s) x 1 speculative segment(s)"),
            "message must state the resolved split, got: {msg}"
        );
        assert!(msg.contains("8 thread(s) total"), "got: {msg}");
        assert!(
            msg.contains("MASK_JOBS (2)")
                && msg.contains("MASK_SM_SHARDS (8)")
                && msg.contains("MASK_SPEC_SEGMENTS (4)"),
            "message must echo the requested configuration, got: {msg}"
        );
    }

    #[test]
    fn run_with_shards_matches_serial_run() {
        let j = job(DesignKind::Mask, &[("GUP", 2), ("HISTO", 2)], 11);
        let serial = j.run_with_shards(Some(1));
        for shards in [2, 3] {
            assert_eq!(
                serial,
                j.run_with_shards(Some(shards)),
                "shards={shards} must be bit-identical to serial"
            );
        }
    }

    #[test]
    fn keys_separate_every_ingredient() {
        let base = job(DesignKind::SharedTlb, &[("GUP", 2)], 1);
        assert_eq!(base.key(), base.clone().key());
        let design = job(DesignKind::Mask, &[("GUP", 2)], 1);
        let apps = job(DesignKind::SharedTlb, &[("GUP", 2), ("HS", 2)], 1);
        let seed = job(DesignKind::SharedTlb, &[("GUP", 2)], 2);
        let mut gpu = base.clone();
        gpu.gpu.tlb.l2_entries /= 2;
        for other in [&design, &apps, &seed, &gpu] {
            assert_ne!(base.key(), other.key());
        }
    }

    #[test]
    fn batch_order_and_dedup_are_stable_at_any_worker_count() {
        let jobs = vec![
            job(DesignKind::SharedTlb, &[("GUP", 2)], 7),
            job(DesignKind::Mask, &[("HISTO", 2), ("GUP", 2)], 7),
            job(DesignKind::SharedTlb, &[("GUP", 2)], 7), // duplicate of #0
        ];
        let serial = JobPool::with_workers(1).with_cache(BaselineCache::new());
        let wide_cache = BaselineCache::new();
        let wide = JobPool::with_workers(8).with_cache(Arc::clone(&wide_cache));
        let a = serial.run_batch(&jobs);
        let b = wide.run_batch(&jobs);
        assert_eq!(a, b, "results must not depend on worker count");
        assert_eq!(a[0], a[2], "equal keys yield equal results");
        // The duplicated alone job was simulated once and cached once.
        let stats = wide_cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn alone_baselines_are_served_from_the_cache_across_batches() {
        let cache = BaselineCache::new();
        let pool = JobPool::with_workers(2).with_cache(Arc::clone(&cache));
        let j = job(DesignKind::SharedTlb, &[("HS", 2)], 3);
        let first = pool.run_batch(std::slice::from_ref(&j));
        let again = pool.run_batch(std::slice::from_ref(&j));
        assert_eq!(first, again);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.misses, 1, "simulated exactly once");
        assert_eq!(stats.hits, 1, "second batch answered from cache");
    }

    #[test]
    fn shared_runs_are_not_cached_process_wide() {
        let cache = BaselineCache::new();
        let pool = JobPool::with_workers(1).with_cache(Arc::clone(&cache));
        let j = job(DesignKind::SharedTlb, &[("HISTO", 2), ("GUP", 2)], 3);
        let _ = pool.run_batch(std::slice::from_ref(&j));
        assert_eq!(cache.stats().entries, 0);
    }

    /// An 8-job single-axis sweep sharing one warm-up prefix (the varied
    /// knob is epoch-end-only and the warm-up ends before the first
    /// epoch boundary).
    fn token_sweep(n: usize) -> Vec<SimJob> {
        (0..n)
            .map(|i| {
                let mut j = job(DesignKind::Mask, &[("HISTO", 2), ("GUP", 2)], 9);
                j.gpu.mask.initial_tokens_frac = 0.3 + 0.05 * i as f64;
                j
            })
            .collect()
    }

    #[test]
    fn prefix_keys_share_across_epoch_end_only_knobs() {
        let jobs = token_sweep(3);
        assert!(jobs[0].warmup_is_epoch_safe());
        assert_eq!(jobs[0].prefix_key(), jobs[1].prefix_key());
        assert_eq!(jobs[0].prefix_key(), jobs[2].prefix_key());
        // ... but every JobKey stays distinct: no result deduplication.
        assert_ne!(jobs[0].key(), jobs[1].key());
        // Prefix-shaping ingredients split the key.
        let mut seed = jobs[0].clone();
        seed.seed += 1;
        let mut warm = jobs[0].clone();
        warm.warmup_cycles += 500;
        let mut machine = jobs[0].clone();
        machine.gpu.tlb.l2_entries /= 2;
        let mut epoch = jobs[0].clone();
        epoch.gpu.mask.epoch_cycles = 1; // warm-up now crosses boundaries
        for other in [&seed, &warm, &machine, &epoch] {
            assert_ne!(jobs[0].prefix_key(), other.prefix_key());
        }
        // Once the warm-up crosses an epoch boundary, epoch-end-only
        // knobs shape the prefix and must split the key.
        let mut a = jobs[0].clone();
        a.warmup_cycles = 2_000;
        a.max_cycles = 4_000;
        a.gpu.mask.epoch_cycles = 1_000;
        let mut b = a.clone();
        b.gpu.mask.initial_tokens_frac = 0.9;
        assert_ne!(a.prefix_key(), b.prefix_key());
    }

    #[test]
    fn prefix_reuse_is_invisible_in_results_and_warms_up_once() {
        let jobs = token_sweep(4);
        let oracle: Vec<SimStats> = jobs.iter().map(SimJob::run).collect();
        for workers in [1, 4] {
            let prefix = PrefixCache::in_memory();
            let pool = JobPool::with_workers(workers)
                .with_cache(BaselineCache::new())
                .with_prefix_cache(Arc::clone(&prefix));
            let reused = pool.run_batch(&jobs);
            assert_eq!(oracle, reused, "prefix reuse must not change results");
            let stats = prefix.stats();
            assert_eq!(stats.entries, 1, "one shared prefix");
            assert_eq!(stats.misses, 1, "warm-up simulated exactly once");
            assert_eq!(stats.hits, jobs.len() as u64 - 1);
        }
    }

    #[test]
    fn prefix_reuse_can_be_disabled() {
        let jobs = token_sweep(2);
        let prefix = PrefixCache::in_memory();
        let pool = JobPool::with_workers(2)
            .with_cache(BaselineCache::new())
            .with_prefix_cache(Arc::clone(&prefix))
            .with_prefix_reuse(false);
        let off = pool.run_batch(&jobs);
        assert_eq!(off, jobs.iter().map(SimJob::run).collect::<Vec<_>>());
        assert_eq!(prefix.stats(), PrefixCacheStats::default());
    }

    #[test]
    fn epoch_unsafe_warmups_fall_back_to_the_plain_path() {
        let mut j = job(DesignKind::Mask, &[("GUP", 2)], 5);
        // Warm-up strictly between the first and second epoch boundaries:
        // its endpoint is not epoch-safe, so no snapshot may be taken.
        j.gpu.mask.epoch_cycles = 1_000;
        j.warmup_cycles = 1_500;
        j.max_cycles = 4_000;
        assert!(!j.warmup_is_epoch_safe());
        let prefix = PrefixCache::in_memory();
        assert_eq!(
            j.run_with_prefix(Some(1), &prefix),
            j.run_with_shards(Some(1))
        );
        assert_eq!(prefix.stats(), PrefixCacheStats::default());
    }

    #[test]
    fn snapshot_dir_round_trips_across_cache_instances() {
        let dir = std::env::temp_dir().join(format!("mask-snap-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let jobs = token_sweep(2);
        let first = PrefixCache::with_dir(Some(dir.clone()));
        let a = jobs[0].run_with_prefix(Some(1), &first);
        assert_eq!(first.stats().misses, 1);
        let file = dir.join(format!("{}.msnp", jobs[0].prefix_key()));
        assert!(file.exists(), "winner persists its sealed snapshot");
        // A fresh cache (a later sweep process) loads the snapshot instead
        // of re-simulating the warm-up.
        let second = PrefixCache::with_dir(Some(dir.clone()));
        let b = jobs[1].run_with_prefix(Some(1), &second);
        let stats = second.stats();
        assert_eq!((stats.hits, stats.misses), (1, 0), "served from disk");
        assert_eq!(a, jobs[0].run());
        assert_eq!(b, jobs[1].run());
        // A corrupted file degrades to re-simulation with correct results.
        let mut bytes = std::fs::read(&file).expect("snapshot readable");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&file, &bytes).expect("snapshot writable");
        let third = PrefixCache::with_dir(Some(dir.clone()));
        let c = jobs[0].run_with_prefix(Some(1), &third);
        assert_eq!(c, a, "corruption costs wall clock, never correctness");
        assert_eq!(third.stats().misses, 1, "re-simulated the warm-up");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A job whose measured phase spans several MASK epochs, so the
    /// speculative segment runner has cut points to work with.
    fn spec_job() -> SimJob {
        let mut j = job(DesignKind::Mask, &[("HISTO", 2), ("GUP", 2)], 13);
        j.gpu.mask.epoch_cycles = 500;
        j
    }

    #[test]
    fn speculative_measured_phase_is_bit_identical() {
        let j = spec_job();
        let serial = j.run_with_shards(Some(1));
        for segments in [2, 4] {
            let (stats, commits, replays) = j.run_with_spec(Some(1), segments);
            assert_eq!(serial, stats, "segments={segments} must be bit-identical");
            assert_eq!(
                commits + replays,
                segments as u64 - 1,
                "every internal cut is verified exactly once"
            );
        }
    }

    #[test]
    fn speculation_composes_with_prefix_reuse() {
        let j = spec_job();
        let oracle = j.run();
        let prefix = PrefixCache::in_memory();
        let warm = j.run_with_prefix(Some(1), &prefix); // seeds the cache
        assert_eq!(oracle, warm);
        // The prefix-restored simulator is the speculation's segment-0
        // seed; composing the two must not change results.
        let (stats, _, _) = j.run_with_prefix_spec(Some(1), 3, &prefix);
        assert_eq!(oracle, stats);
        assert_eq!(prefix.stats().hits, 1, "warm-up served from the cache");
    }

    #[test]
    fn epoch_unsafe_measure_start_degrades_to_serial_speculation() {
        let mut j = job(DesignKind::Mask, &[("GUP", 2)], 5);
        // Measured phase starts strictly between epoch boundaries: no
        // start snapshot may be taken, so the segment runner must fall
        // back to the plain serial loop.
        j.gpu.mask.epoch_cycles = 1_000;
        j.warmup_cycles = 1_500;
        j.max_cycles = 4_000;
        assert!(!j.warmup_is_epoch_safe());
        let (stats, commits, replays) = j.run_with_spec(Some(1), 4);
        assert_eq!(stats, j.run_with_shards(Some(1)));
        assert_eq!((commits, replays), (0, 0), "fell back to serial");
    }

    #[test]
    fn job_pool_speculation_preserves_batch_results() {
        let jobs: Vec<SimJob> = (0..3)
            .map(|i| {
                let mut j = spec_job();
                j.seed = 20 + i;
                j
            })
            .collect();
        let plain = JobPool::with_workers(2)
            .with_cache(BaselineCache::new())
            .with_prefix_cache(PrefixCache::in_memory())
            .run_batch(&jobs);
        let pool = JobPool::with_workers(2)
            .with_cache(BaselineCache::new())
            .with_prefix_cache(PrefixCache::in_memory())
            .with_spec_segments(3);
        let spec = pool.run_batch(&jobs);
        assert_eq!(plain, spec, "speculation must not change batch results");
        let (commits, replays) = pool.spec_stats();
        // The effective segment count is budget-clamped, so the exact
        // tally is machine-dependent: at most segments-1 verifications
        // per unique job, each counted as a commit or a replay.
        assert!(commits + replays <= jobs.len() as u64 * 2);
    }

    /// A minimal but fully sealed (magic/version/key/checksum) snapshot
    /// for exercising the on-disk store without running a simulation.
    fn sealed(key: PrefixKey) -> Vec<u8> {
        use mask_common::snapshot::SnapshotWriter;
        let mut w = SnapshotWriter::new();
        w.section("test");
        w.u64(key.0);
        w.seal(key)
    }

    #[test]
    fn snapshot_store_evicts_least_recently_used() {
        let dir = std::env::temp_dir().join(format!("mask-lru-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = PrefixCache::with_store(Some(dir.clone()), Some(2));
        for k in [1u64, 2, 3] {
            cache.store_disk(PrefixKey(k), &sealed(PrefixKey(k)));
        }
        // Cap 2: storing key 3 evicted the least recently used (key 1).
        assert!(!dir.join(format!("{}.msnp", PrefixKey(1))).exists());
        assert!(dir.join(format!("{}.msnp", PrefixKey(2))).exists());
        assert!(dir.join(format!("{}.msnp", PrefixKey(3))).exists());
        // A load refreshes recency: key 2 survives the next store and the
        // now-least-recently-used key 3 is evicted instead.
        assert!(cache.load_disk(PrefixKey(2)).is_some());
        cache.store_disk(PrefixKey(4), &sealed(PrefixKey(4)));
        assert!(dir.join(format!("{}.msnp", PrefixKey(2))).exists());
        assert!(!dir.join(format!("{}.msnp", PrefixKey(3))).exists());
        assert!(dir.join(format!("{}.msnp", PrefixKey(4))).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_startup_cleanup_removes_invalid_entries() {
        let dir = std::env::temp_dir().join(format!("mask-clean-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("store dir");
        let key = PrefixKey(7);
        std::fs::write(dir.join(format!("{key}.msnp")), sealed(key)).expect("valid snapshot");
        std::fs::write(dir.join(format!("{key}.lru")), "1\n").expect("sidecar");
        std::fs::write(dir.join("stale.msnp"), b"not a snapshot").expect("stale file");
        std::fs::write(dir.join("orphan.lru"), "5\n").expect("orphan sidecar");
        std::fs::write(dir.join("leftover.msnp.123.tmp"), b"partial").expect("temp file");
        let _ = PrefixCache::with_store(Some(dir.clone()), None);
        assert!(
            dir.join(format!("{key}.msnp")).exists(),
            "valid snapshot kept"
        );
        assert!(dir.join(format!("{key}.lru")).exists(), "its sidecar kept");
        assert!(!dir.join("stale.msnp").exists(), "invalid envelope removed");
        assert!(!dir.join("orphan.lru").exists(), "orphan sidecar removed");
        assert!(
            !dir.join("leftover.msnp.123.tmp").exists(),
            "leftover temp file removed"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
