//! Determinism under parallelism: the job engine must produce
//! byte-identical results at any worker count, and the process-wide
//! baseline cache must collapse duplicate alone-baseline simulations to
//! exactly one run each.
//!
//! These tests also run in CI with the `sanitize` feature armed, proving
//! that the sanitizer's thread-local sessions stay isolated per worker.

use mask_core::experiments::{self, ExpOptions};
use mask_core::prelude::*;
use std::sync::Arc;

fn quick_opts(workers: usize) -> ExpOptions {
    ExpOptions {
        jobs: JobOptions::with_workers(workers),
        ..ExpOptions::quick()
    }
}

fn runner(workers: usize) -> PairRunner {
    let opts = quick_opts(workers).run_options();
    PairRunner::with_pool(
        opts.clone(),
        JobPool::with_options(opts.jobs).with_cache(BaselineCache::new()),
    )
}

#[test]
fn pair_batches_are_identical_at_any_worker_count() {
    let opts = quick_opts(1);
    let pairs = opts.pairs();
    let designs = [DesignKind::SharedTlb, DesignKind::Mask, DesignKind::Ideal];
    let serial = runner(1).run_pairs(&pairs, &designs);
    let wide = runner(8).run_pairs(&pairs, &designs);
    assert_eq!(pairs.len() * designs.len(), serial.len());
    assert_eq!(
        serial, wide,
        "PairOutcome sets must be byte-identical at MASK_JOBS=1 and MASK_JOBS=8"
    );
}

#[test]
fn multi_app_batches_are_identical_at_any_worker_count() {
    let mixes = experiments::scalability::mixes();
    let mixes: Vec<_> = mixes.into_iter().filter(|m| m.len() <= 4).collect();
    let designs = [DesignKind::SharedTlb, DesignKind::Mask];
    let serial = runner(1).run_multi_batch(&mixes, &designs);
    let wide = runner(8).run_multi_batch(&mixes, &designs);
    assert_eq!(serial, wide);
}

#[test]
fn experiment_tables_are_identical_at_any_worker_count() {
    // Whole-harness equivalence: the same experiment at 1 and 8 workers
    // renders the exact same table text.
    let t1 = experiments::scalability::run(&quick_opts(1));
    let t8 = experiments::scalability::run(&quick_opts(8));
    assert_eq!(t1.to_csv(), t8.to_csv());
    let f1 = experiments::interference::run(&quick_opts(1));
    let f8 = experiments::interference::run(&quick_opts(8));
    assert_eq!(f1.to_csv(), f8.to_csv());
}

#[test]
fn duplicate_alone_baselines_are_simulated_exactly_once() {
    let cache = BaselineCache::new();
    let opts = quick_opts(2).run_options();
    let r = PairRunner::with_pool(
        opts.clone(),
        JobPool::with_options(opts.jobs).with_cache(Arc::clone(&cache)),
    );
    let pairs = ExpOptions::quick().pairs();
    // Every design over every pair: alone baselines repeat heavily across
    // designs sharing the same pair set.
    let _ = r.run_pairs(&pairs, &DesignKind::ALL);
    let first = cache.stats();
    assert_eq!(
        first.entries as u64, first.misses,
        "each unique alone baseline simulated exactly once"
    );
    // Re-running the whole sweep simulates zero new baselines.
    let _ = r.run_pairs(&pairs, &DesignKind::ALL);
    let second = cache.stats();
    assert_eq!(second.misses, first.misses);
    assert_eq!(second.entries, first.entries);
    assert!(second.hits > first.hits);
}

#[test]
fn shared_runs_dedup_within_a_batch() {
    let cache = BaselineCache::new();
    let pool = JobPool::with_workers(4).with_cache(Arc::clone(&cache));
    let r = PairRunner::with_pool(quick_opts(4).run_options(), pool);
    let a = app_by_name("HISTO").expect("known");
    let b = app_by_name("GUP").expect("known");
    let one = r.run_pair(a, b, DesignKind::Mask);
    let two = r.run_pair(a, b, DesignKind::Mask);
    assert_eq!(one, two, "equal jobs must yield equal outcomes");
}
