//! The 30 named application profiles and Table 2's classification.
//!
//! Parameter choices are derived from each benchmark's published access
//! behaviour *class* (Table 2), not its arithmetic: e.g. `GUP` (GUPS) is
//! random scatter over a set that fits the shared L2 TLB but thrashes the
//! 64-entry L1 TLBs (High L1 / Low L2), `SCAN` streams an enormous array
//! with almost no page reuse (High/High), and `LUD`/`NN` work on hot tiles
//! (Low/Low). The [`crate::classify`] module *measures* the resulting miss
//! rates; tests assert every profile lands in its Table 2 quadrant.

use crate::classify::TlbClass;
use crate::profile::{AppProfile, Pattern};

/// Expected Table 2 quadrant for each benchmark.
///
/// `JPEG`, `LIB`, and `SPMV` appear in the paper's Figs. 5–6 but not in
/// Table 2; their classes here follow their published suite behaviour.
pub fn expected_class(name: &str) -> Option<TlbClass> {
    let (l1_high, l2_high) = match name {
        // Table 2, row 1: Low L1 / Low L2.
        "LUD" | "NN" => (false, false),
        // Row 2: Low L1 / High L2.
        "BFS2" | "FFT" | "HISTO" | "NW" | "QTC" | "RAY" | "SAD" | "SCP" | "JPEG" | "LIB" => {
            (false, true)
        }
        // Row 3: High L1 / Low L2.
        "BP" | "GUP" | "HS" | "LPS" => (true, false),
        // Row 4: High L1 / High L2.
        "3DS" | "BLK" | "CFD" | "CONS" | "FWT" | "LUH" | "MM" | "MUM" | "RED" | "SC" | "SCAN"
        | "SRAD" | "TRD" | "SPMV" => (true, true),
        _ => return None,
    };
    Some(TlbClass { l1_high, l2_high })
}

const fn stream(pages: u64, burst: u64, group: u32) -> Pattern {
    Pattern::Stream {
        pages,
        burst,
        group,
    }
}

const fn random(pages: u64, ppi: u32) -> Pattern {
    Pattern::Random {
        pages,
        pages_per_instr: ppi,
    }
}

const fn tiled(hot: u64, p_hot: f64, stream_pages: u64, burst: u64, group: u32) -> Pattern {
    Pattern::TiledHot {
        hot,
        p_hot,
        stream_pages,
        burst,
        group,
    }
}

const fn hot_cold(hot: u64, p_hot: f64, cold: u64) -> Pattern {
    Pattern::HotCold { hot, p_hot, cold }
}

const fn app(
    name: &'static str,
    pattern: Pattern,
    lines_per_instr: u32,
    compute_per_mem: u32,
    line_locality: f64,
) -> AppProfile {
    AppProfile {
        name,
        pattern,
        lines_per_instr,
        compute_per_mem,
        line_locality,
    }
}

/// All 30 application profiles (Fig. 5's benchmark list).
pub static APPS: [AppProfile; 30] = [
    // ---- Low L1 / Low L2: hot tiles that fit the L1 TLB ----
    app("LUD", hot_cold(32, 0.97, 64), 4, 10, 0.5),
    app("NN", hot_cold(48, 0.95, 96), 8, 14, 0.5),
    // ---- Low L1 / High L2: burst-streaming over huge footprints ----
    app("BFS2", stream(1572864, 12, 8), 2, 14, 0.7),
    app("FFT", stream(1048576, 16, 8), 4, 14, 0.7),
    app("HISTO", stream(786432, 24, 16), 2, 18, 0.7),
    app("JPEG", stream(524288, 28, 16), 4, 18, 0.7),
    app("LIB", stream(655360, 20, 8), 4, 24, 0.7),
    app("NW", stream(524288, 20, 8), 4, 22, 0.7),
    app("QTC", stream(1048576, 16, 8), 4, 24, 0.7),
    app("RAY", stream(1310720, 24, 4), 2, 22, 0.7),
    app("SAD", stream(786432, 32, 8), 4, 14, 0.7),
    app("SCP", stream(1048576, 24, 8), 4, 12, 0.7),
    // ---- High L1 / Low L2: random over a set that fits the L2 TLB ----
    app("BP", random(320, 1), 2, 12, 0.6),
    app("GUP", random(400, 2), 2, 6, 0.5),
    app("HS", random(288, 1), 2, 12, 0.6),
    app("LPS", random(352, 1), 2, 12, 0.6),
    // ---- High L1 / High L2: hot sets near the shared-L2-TLB capacity
    // plus huge reuse-free regions. Alone, the hot set partially fits the
    // 512-entry shared TLB (miss rates 40-70%); co-running two such apps
    // thrashes it (Fig. 7), which is what TLB-Fill Tokens recover. ----
    app("3DS", tiled(384, 0.5, 2097152, 1, 1), 2, 12, 0.6),
    app("BLK", hot_cold(448, 0.55, 1048576), 2, 14, 0.7),
    app("CFD", tiled(320, 0.45, 1572864, 1, 1), 2, 13, 0.6),
    app("CONS", hot_cold(512, 0.5, 786432), 2, 10, 0.6),
    app("FWT", tiled(256, 0.5, 1048576, 1, 1), 2, 14, 0.6),
    app("LUH", tiled(448, 0.4, 2097152, 1, 1), 2, 21, 0.7),
    app("MM", tiled(384, 0.55, 1572864, 1, 1), 2, 17, 0.7),
    app("MUM", random(1310720, 4), 4, 10, 0.5),
    app("RED", tiled(320, 0.5, 1572864, 1, 1), 2, 12, 0.6),
    app("SC", hot_cold(384, 0.5, 655360), 2, 12, 0.6),
    app("SCAN", tiled(256, 0.45, 2097152, 1, 1), 2, 10, 0.6),
    app("SPMV", hot_cold(512, 0.5, 917504), 2, 14, 0.6),
    app("SRAD", tiled(384, 0.55, 1179648, 1, 1), 2, 19, 0.7),
    app("TRD", hot_cold(448, 0.45, 1572864), 2, 17, 0.6),
];

/// All application profiles in a stable order.
pub fn all_apps() -> &'static [AppProfile] {
    &APPS
}

/// Looks up a profile by the paper's benchmark abbreviation.
pub fn app_by_name(name: &str) -> Option<&'static AppProfile> {
    APPS.iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn thirty_unique_apps() {
        let names: HashSet<_> = APPS.iter().map(|a| a.name).collect();
        assert_eq!(names.len(), 30);
    }

    #[test]
    fn every_app_has_an_expected_class() {
        for a in all_apps() {
            assert!(expected_class(a.name).is_some(), "{} unclassified", a.name);
        }
        assert!(expected_class("NOPE").is_none());
    }

    #[test]
    fn table_2_membership_counts() {
        let counts = |l1: bool, l2: bool| {
            APPS.iter()
                .filter(|a| {
                    let c = expected_class(a.name).expect("classified");
                    c.l1_high == l1 && c.l2_high == l2
                })
                .count()
        };
        assert_eq!(counts(false, false), 2); // LUD, NN
        assert_eq!(counts(false, true), 10); // Table 2's 8 + JPEG + LIB
        assert_eq!(counts(true, false), 4); // BP, GUP, HS, LPS
        assert_eq!(counts(true, true), 14); // Table 2's 13 + SPMV
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(app_by_name("GUP").map(|a| a.name), Some("GUP"));
        assert!(app_by_name("XXX").is_none());
    }

    #[test]
    fn footprints_exceed_tlb_reach_where_expected() {
        for a in all_apps() {
            let c = expected_class(a.name).expect("classified");
            if c.l2_high {
                assert!(
                    a.footprint_pages() > 2048,
                    "{}: high-L2 apps need footprints above TLB reach",
                    a.name
                );
            } else {
                assert!(
                    a.footprint_pages() <= 512,
                    "{}: low-L2 apps must fit the shared L2 TLB",
                    a.name
                );
            }
        }
    }
}
