//! MASK's TLB bypass cache (§5.2).
//!
//! "While TLB-Fill Tokens can reduce thrashing in the shared L2 TLB, a
//! handful of highly-reused PTEs may be requested by warps with no tokens,
//! which cannot insert the PTEs into the shared L2 TLB. To address this, we
//! add a TLB bypass cache, which is a small 32-entry fully-associative
//! cache. Only warps without tokens can fill the TLB bypass cache ... Like
//! the L1 and L2 TLBs, the TLB bypass cache uses the LRU replacement
//! policy."

use crate::assoc::AssocArray;
use crate::TlbKey;
use mask_common::addr::{Ppn, Vpn};
use mask_common::ids::Asid;
use mask_common::stats::HitStats;

/// A small fully-associative cache holding PTEs from tokenless warps.
#[derive(Clone, Debug)]
pub struct TlbBypassCache {
    entries: AssocArray<TlbKey, Ppn>,
    stats: HitStats,
}

impl TlbBypassCache {
    /// Creates a bypass cache with `entries` fully-associative entries
    /// (32 in the paper).
    pub fn new(entries: usize) -> Self {
        TlbBypassCache {
            entries: AssocArray::new(entries, entries),
            stats: HitStats::default(),
        }
    }

    /// Probes for a translation.
    pub fn probe(&mut self, asid: Asid, vpn: Vpn) -> Option<Ppn> {
        let r = self.entries.probe(&TlbKey::new(asid, vpn));
        self.stats.record(r.is_some());
        r
    }

    /// Inserts a translation from a tokenless warp.
    pub fn fill(&mut self, asid: Asid, vpn: Vpn, ppn: Ppn) {
        self.entries.fill(TlbKey::new(asid, vpn), ppn);
    }

    /// Flushes entries of one address space.
    pub fn flush_asid(&mut self, asid: Asid) {
        self.entries.retain(|k, _| k.asid != asid);
    }

    /// Flushes everything (PTE modification).
    pub fn flush(&mut self) {
        self.entries.flush();
    }

    /// Lifetime probe statistics ("average TLB bypass cache hit rate
    /// (66.5%)", §7.2).
    pub fn stats(&self) -> HitStats {
        self.stats
    }

    /// Zeroes the probe statistics (measurement-window reset).
    pub fn reset_stats(&mut self) {
        self.stats = HitStats::default();
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl mask_common::snapshot::Snapshot for TlbBypassCache {
    fn snapshot(&self, w: &mut mask_common::snapshot::SnapshotWriter) {
        self.entries.snapshot(w);
        self.stats.snapshot(w);
    }

    fn restore(
        &mut self,
        r: &mut mask_common::snapshot::SnapshotReader<'_>,
    ) -> Result<(), mask_common::snapshot::SnapshotError> {
        self.entries.restore(r)?;
        self.stats.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_miss_then_fill_hit() {
        let mut c = TlbBypassCache::new(4);
        assert_eq!(c.probe(Asid::new(0), Vpn(1)), None);
        c.fill(Asid::new(0), Vpn(1), Ppn(7));
        assert_eq!(c.probe(Asid::new(0), Vpn(1)), Some(Ppn(7)));
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn capacity_is_fully_associative() {
        let mut c = TlbBypassCache::new(32);
        for i in 0..32u64 {
            c.fill(Asid::new(0), Vpn(i), Ppn(i));
        }
        assert_eq!(
            (0..32u64)
                .filter(|&i| c.probe(Asid::new(0), Vpn(i)).is_some())
                .count(),
            32
        );
        // One more evicts exactly one entry.
        c.fill(Asid::new(0), Vpn(99), Ppn(99));
        assert_eq!(c.len(), 32);
    }

    #[test]
    fn flush_asid_only_hits_that_asid() {
        let mut c = TlbBypassCache::new(8);
        c.fill(Asid::new(0), Vpn(1), Ppn(1));
        c.fill(Asid::new(1), Vpn(1), Ppn(2));
        c.flush_asid(Asid::new(0));
        assert_eq!(c.probe(Asid::new(0), Vpn(1)), None);
        assert_eq!(c.probe(Asid::new(1), Vpn(1)), Some(Ppn(2)));
    }
}
