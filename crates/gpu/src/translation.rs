//! The shared address-translation subsystem.
//!
//! Models the post-L1-TLB translation path of both baseline variants
//! (Fig. 2) and MASK (Fig. 10):
//!
//! * `SharedTlb`-family designs: L1 miss → shared L2 TLB (2 ports, 10-cycle
//!   latency) → page-table walker;
//! * `PwCache` design: L1 miss → walker, whose per-level accesses probe the
//!   shared page-walk cache before the L2 cache;
//! * MASK designs: L2 TLB fills gated by TLB-Fill Tokens, with the bypass
//!   cache probed in parallel.
//!
//! Duplicate in-flight translations of the same `(ASID, VPN)` merge in the
//! translation MSHRs; each entry counts its stalled warps — the Fig. 6
//! metric and the `WarpsStalled` input of Eq. 1.

use mask_common::addr::{LineAddr, Ppn, Vpn};
use mask_common::config::{DesignSpec, GpuConfig, TokenPolicy, TranslationPath};
use mask_common::ids::{Asid, GlobalWarpId};
use mask_common::req::{MemRequest, ReqId, RequestClass};
use mask_common::Cycle;
use mask_pagetable::{PageTables, PageWalker, WalkAccess, WalkId, WalkOutcome};
use mask_tlb::{
    L2TlbProbe, PageWalkCache, SharedL2Tlb, TokenAllocator, TokenPolicy as TlbTokenPolicy,
};
// FastMap below is keyed-access only (never iterated) with a fixed-seed
// hasher, so iteration-order nondeterminism cannot reach simulation results.
// lint: allow(collections) -- fixed hasher, never iterated.
use std::collections::{HashMap, VecDeque};
use std::hash::BuildHasherDefault;

/// FNV-1a: a fixed-seed hasher for the translation MSHR. The map is only
/// ever probed by key (never iterated), so determinism needs nothing from
/// the hasher — this one just avoids `SipHash`'s per-lookup setup cost on a
/// path hit by every L1 TLB miss.
#[derive(Default)]
struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

// lint: allow(collections) -- fixed hasher, never iterated; see above.
type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// A translation that just resolved; the simulator wakes all waiters.
#[derive(Clone, Debug)]
pub struct ResolvedTranslation {
    /// Address space translated.
    pub asid: Asid,
    /// Virtual page translated.
    pub vpn: Vpn,
    /// Resulting frame.
    pub ppn: Ppn,
    /// All warps stalled on this translation.
    pub waiters: Vec<GlobalWarpId>,
    /// Whether a full page walk was required (false = shared L2 TLB hit).
    pub walked: bool,
    /// Walk latency in cycles (0 for L2 TLB hits).
    pub walk_latency: Cycle,
}

#[derive(Clone, Debug)]
struct TransEntry {
    waiters: Vec<GlobalWarpId>,
    /// Warp that initiated the request (holds or lacks the fill token).
    initiator_core_rank: usize,
    initiator_warp: usize,
}

#[derive(Clone, Copy, Debug)]
struct L2TlbReq {
    asid: Asid,
    vpn: Vpn,
    ready_at: Cycle,
}

/// Per-app epoch accumulators for Eq. 1 pressure products.
#[derive(Clone, Debug, Default)]
struct EpochAcc {
    /// Integral of concurrent walks over the epoch.
    walk_integral: u64,
    /// Resolved misses and their total stalled-warp count.
    stalled_sum: u64,
    events: u64,
}

/// The translation subsystem shared by all cores.
#[derive(Clone, Debug)]
pub struct TranslationUnit {
    l2tlb: Option<SharedL2Tlb>,
    pwc: Option<PageWalkCache>,
    walker: PageWalker,
    tables: PageTables,
    tokens: Option<TokenAllocator>,
    mshr: FastMap<(Asid, Vpn), TransEntry>,
    l2tlb_pipe: VecDeque<L2TlbReq>,
    /// Walks blocked on a demand-paging fault (first touch).
    fault_pipe: Vec<(Cycle, Asid, Vpn)>,
    fault_latency: u64,
    /// Demand-paging faults taken, per app.
    fault_counts: Vec<u64>,
    /// Page-walk-cache hits completing after the PWC latency.
    pwc_pipe: Vec<(Cycle, WalkAccess)>,
    /// Outstanding walker accesses in the L2/DRAM, by request id. At most
    /// one per walker slot, so a linear scan beats any tree or hash map.
    walk_of_req: Vec<(ReqId, WalkId)>,
    l2_ports: usize,
    l2_latency: u64,
    pwc_latency: u64,
    epoch: Vec<EpochAcc>,
    n_apps: usize,
    /// Recycled waiter vectors: MSHR entries pop from here and resolved
    /// translations hand their vectors back via `recycle_waiters`, keeping
    /// the request/resolve cycle allocation-free in steady state.
    waiter_pool: Vec<Vec<GlobalWarpId>>,
    /// Scratch for newly activated walk accesses, reused every cycle.
    scratch_walks: Vec<WalkAccess>,
}

impl TranslationUnit {
    /// Builds the translation path for `design` with `cores_per_app[i]`
    /// cores assigned to application `i`. This layer consumes the
    /// `translation`, `tokens`, and `alloc` axes of the spec: the
    /// translation path picks the shared structures, fill tokens gate L2
    /// TLB fills, and the allocation policy shapes physical frame
    /// placement.
    pub fn new(cfg: &GpuConfig, design: DesignSpec, cores_per_app: &[usize]) -> Self {
        let n_apps = cores_per_app.len();
        let tokens_on = design.tokens == TokenPolicy::FillTokens;
        let l2tlb = (design.translation == TranslationPath::SharedL2Tlb).then(|| {
            let bypass = if tokens_on {
                cfg.tlb.bypass_cache_entries
            } else {
                0
            };
            SharedL2Tlb::new(cfg.tlb.l2_entries, cfg.tlb.l2_assoc, n_apps, bypass)
        });
        let pwc = (design.translation == TranslationPath::PageWalkCache)
            .then(|| PageWalkCache::new(cfg.pwc.bytes, cfg.pwc.assoc));
        let tokens = tokens_on.then(|| {
            let policy = match cfg.mask.token_policy {
                mask_common::config::TokenPolicyKind::Literal => TlbTokenPolicy::Literal,
                mask_common::config::TokenPolicyKind::HillClimb => TlbTokenPolicy::HillClimb,
            };
            TokenAllocator::with_policy(&cfg.mask, cores_per_app, cfg.warps_per_core, policy)
        });
        TranslationUnit {
            l2tlb,
            pwc,
            walker: PageWalker::new(cfg.walker_slots, n_apps),
            tables: PageTables::with_alloc(n_apps, cfg.page_size_log2, design.alloc),
            tokens,
            mshr: FastMap::default(),
            l2tlb_pipe: VecDeque::new(),
            fault_pipe: Vec::new(),
            fault_latency: cfg.page_fault_latency,
            fault_counts: vec![0; n_apps],
            pwc_pipe: Vec::new(),
            walk_of_req: Vec::new(),
            l2_ports: cfg.tlb.l2_ports,
            l2_latency: cfg.tlb.l2_latency,
            pwc_latency: cfg.pwc.latency,
            epoch: vec![EpochAcc::default(); n_apps],
            n_apps,
            waiter_pool: Vec::new(),
            scratch_walks: Vec::new(),
        }
    }

    /// Functional translation for the `Ideal` design (and L1 refill paths):
    /// maps the page on demand, no latency.
    pub fn functional_translate(&mut self, asid: Asid, vpn: Vpn) -> Ppn {
        self.tables.ensure_mapped(asid, vpn)
    }

    /// Registers a warp's translation request after an L1 TLB miss.
    ///
    /// Duplicate requests merge; the merged warp count feeds the Fig. 6
    /// statistic. Returns `true` if this was a new (primary) request.
    pub fn request(
        &mut self,
        asid: Asid,
        vpn: Vpn,
        requester: GlobalWarpId,
        core_rank: usize,
        now: Cycle,
    ) -> bool {
        if let Some(entry) = self.mshr.get_mut(&(asid, vpn)) {
            entry.waiters.push(requester);
            mask_obs::hooks::tlb_mshr_merge(asid.raw());
            return false;
        }
        let mut waiters = self.waiter_pool.pop().unwrap_or_default();
        waiters.push(requester);
        self.mshr.insert(
            (asid, vpn),
            TransEntry {
                waiters,
                initiator_core_rank: core_rank,
                initiator_warp: requester.warp.index(),
            },
        );
        // Demand paging: a first touch pays the fault service time before
        // the walk can proceed.
        if self.fault_latency > 0 {
            let (_, faulted) = self.tables.ensure_mapped_report(asid, vpn);
            if faulted {
                self.fault_counts[asid.index().min(self.n_apps - 1)] += 1;
                self.fault_pipe.push((now + self.fault_latency, asid, vpn));
                return true;
            }
        }
        self.route_to_walk_path(asid, vpn, now);
        true
    }

    fn route_to_walk_path(&mut self, asid: Asid, vpn: Vpn, now: Cycle) {
        if self.l2tlb.is_some() {
            self.l2tlb_pipe.push_back(L2TlbReq {
                asid,
                vpn,
                ready_at: now + self.l2_latency,
            });
        } else {
            // PWCache design: straight to the walker.
            self.walker.enqueue(asid, vpn, now);
        }
    }

    fn route_walk_access(
        &mut self,
        access: WalkAccess,
        now: Cycle,
        next_req_id: &mut u64,
        out_l2: &mut Vec<MemRequest>,
        pwc_hits: &mut Vec<(Asid, bool)>,
    ) {
        if let Some(pwc) = &mut self.pwc {
            let hit = pwc.access(access.line);
            pwc_hits.push((access.asid, hit));
            if hit {
                self.pwc_pipe.push((now + self.pwc_latency, access));
                return;
            }
        }
        let id = ReqId(*next_req_id);
        *next_req_id += 1;
        self.walk_of_req.push((id, access.walk));
        // Conservation: every walker access sent to memory must come back
        // through `memory_response` exactly once.
        mask_sanitizer::issue("xlat-mem", id.0);
        out_l2.push(MemRequest::new(
            id,
            access.line,
            access.asid,
            mask_common::ids::CoreId::new(0), // walker is a shared agent
            RequestClass::Translation(access.level),
            now,
        ));
    }

    fn resolve(
        &mut self,
        asid: Asid,
        vpn: Vpn,
        ppn: Ppn,
        walked: bool,
        walk_latency: Cycle,
    ) -> Option<ResolvedTranslation> {
        let entry = self.mshr.remove(&(asid, vpn))?;
        if walked {
            if let Some(l2) = &mut self.l2tlb {
                let has_token = match &self.tokens {
                    Some(t) => {
                        t.warp_has_token(asid, entry.initiator_core_rank, entry.initiator_warp)
                    }
                    None => true,
                };
                l2.fill(asid, vpn, ppn, has_token);
            }
        }
        let acc = &mut self.epoch[asid.index().min(self.n_apps - 1)];
        acc.stalled_sum += entry.waiters.len() as u64;
        acc.events += 1;
        Some(ResolvedTranslation {
            asid,
            vpn,
            ppn,
            waiters: entry.waiters,
            walked,
            walk_latency,
        })
    }

    /// Advances one cycle.
    ///
    /// Emits walker memory requests into `out_l2` and appends resolved
    /// translations (shared-L2-TLB hits and PWC-completed walks) to
    /// `resolved` (not cleared).
    pub fn tick(
        &mut self,
        now: Cycle,
        next_req_id: &mut u64,
        out_l2: &mut Vec<MemRequest>,
        pwc_hits: &mut Vec<(Asid, bool)>,
        resolved: &mut Vec<ResolvedTranslation>,
    ) {
        // 0. Release walks whose demand-paging fault completed.
        let mut i = 0;
        while i < self.fault_pipe.len() {
            if self.fault_pipe[i].0 <= now {
                let (_, asid, vpn) = self.fault_pipe.swap_remove(i);
                self.route_to_walk_path(asid, vpn, now);
            } else {
                i += 1;
            }
        }
        // 1. Shared L2 TLB pipeline: up to `l2_ports` probes per cycle.
        for _ in 0..self.l2_ports {
            let Some(front) = self.l2tlb_pipe.front() else {
                break;
            };
            if front.ready_at > now {
                break;
            }
            let req = self.l2tlb_pipe.pop_front().expect("non-empty");
            let l2 = self.l2tlb.as_mut().expect("pipe implies shared L2 TLB");
            match l2.probe(req.asid, req.vpn) {
                L2TlbProbe::Miss => {
                    mask_obs::hooks::tlb_probe(mask_obs::TlbLevel::L2, req.asid.raw(), false);
                    self.walker.enqueue(req.asid, req.vpn, now);
                }
                hit => {
                    let whence = if matches!(hit, L2TlbProbe::HitBypassCache(_)) {
                        mask_obs::TlbLevel::BypassCache
                    } else {
                        mask_obs::TlbLevel::L2
                    };
                    mask_obs::hooks::tlb_probe(whence, req.asid.raw(), true);
                    let ppn = hit.ppn().expect("hit carries translation");
                    if let Some(r) = self.resolve(req.asid, req.vpn, ppn, false, 0) {
                        resolved.push(r);
                    }
                }
            }
        }
        // 2. Activate queued walks and route their first accesses. The
        // scratch is taken out of `self` so the routing loop can borrow
        // `&mut self`, then put back to keep its capacity.
        let mut walks = std::mem::take(&mut self.scratch_walks);
        walks.clear();
        self.walker.activate_into(&mut self.tables, &mut walks);
        for &access in &walks {
            self.route_walk_access(access, now, next_req_id, out_l2, pwc_hits);
        }
        self.scratch_walks = walks;
        // 3. Complete PWC-hit walk steps whose latency elapsed.
        let mut i = 0;
        while i < self.pwc_pipe.len() {
            if self.pwc_pipe[i].0 <= now {
                let (_, access) = self.pwc_pipe.swap_remove(i);
                match self.walker.access_complete(access.walk, &self.tables, now) {
                    WalkOutcome::Next(next) => {
                        self.route_walk_access(next, now, next_req_id, out_l2, pwc_hits);
                    }
                    WalkOutcome::Done {
                        asid,
                        vpn,
                        ppn,
                        latency,
                    } => {
                        if let Some(r) = self.resolve(asid, vpn, ppn, true, latency) {
                            resolved.push(r);
                        }
                    }
                }
            } else {
                i += 1;
            }
        }
        // 4. Epoch integrals (Fig. 5 / Eq. 1 inputs).
        for app in 0..self.n_apps {
            self.epoch[app].walk_integral +=
                self.walker.total_walks_for(Asid::new(app as u16)) as u64;
        }
    }

    /// Returns a resolved translation's waiter vector to the recycling
    /// pool once the simulator has woken every warp in it.
    pub fn recycle_waiters(&mut self, mut waiters: Vec<GlobalWarpId>) {
        waiters.clear();
        self.waiter_pool.push(waiters);
    }

    /// Earliest cycle at which `tick` can make progress: `Some(0)` when a
    /// queued walk could enter a free slot this cycle, otherwise the
    /// earliest deadline among the L2-TLB pipe, fault pipe, and PWC pipe.
    ///
    /// Walk accesses outstanding in the L2/DRAM are *their* events — they
    /// re-enter through `memory_response`, so they are deliberately not
    /// counted here. The per-cycle epoch integral (`walk_integral`) must be
    /// replayed by [`TranslationUnit::fast_forward`] when cycles are
    /// skipped.
    pub fn next_event(&self) -> Option<Cycle> {
        if self.walker.can_activate() {
            return Some(0);
        }
        let mut ev: Option<Cycle> = None;
        let mut fold = |c: Cycle| {
            ev = Some(ev.map_or(c, |e| e.min(c)));
        };
        // The L2 TLB pipe is FIFO with a constant latency offset, so the
        // front entry carries the earliest deadline.
        if let Some(front) = self.l2tlb_pipe.front() {
            fold(front.ready_at);
        }
        for &(c, ..) in &self.fault_pipe {
            fold(c);
        }
        for &(c, _) in &self.pwc_pipe {
            fold(c);
        }
        ev
    }

    /// Replays the per-cycle epoch-integral accrual for `delta` skipped
    /// cycles, so fast-forwarding is observationally identical to ticking.
    pub fn fast_forward(&mut self, delta: u64) {
        for app in 0..self.n_apps {
            self.epoch[app].walk_integral +=
                self.walker.total_walks_for(Asid::new(app as u16)) as u64 * delta;
        }
    }

    /// Delivers an L2/DRAM completion for a walker access.
    ///
    /// Returns a resolved translation if this was the final level, and may
    /// emit the next level's memory request into `out_l2`.
    pub fn memory_response(
        &mut self,
        req: &MemRequest,
        now: Cycle,
        next_req_id: &mut u64,
        out_l2: &mut Vec<MemRequest>,
        pwc_hits: &mut Vec<(Asid, bool)>,
    ) -> Option<ResolvedTranslation> {
        let pos = self.walk_of_req.iter().position(|&(id, _)| id == req.id)?;
        let (_, walk) = self.walk_of_req.swap_remove(pos);
        mask_sanitizer::retire("xlat-mem", req.id.0);
        match self.walker.access_complete(walk, &self.tables, now) {
            WalkOutcome::Next(next) => {
                self.route_walk_access(next, now, next_req_id, out_l2, pwc_hits);
                None
            }
            WalkOutcome::Done {
                asid,
                vpn,
                ppn,
                latency,
            } => self.resolve(asid, vpn, ppn, true, latency),
        }
    }

    /// Ends a MASK epoch: adapts token counts from per-app L2 TLB miss
    /// rates, resets epoch counters, and returns per-app Eq. 1 pressure
    /// products (`ConPTW_i * WarpsStalled_i`, scaled) for the DRAM
    /// scheduler.
    pub fn end_epoch(&mut self, epoch_cycles: u64) -> Vec<u64> {
        if let (Some(tokens), Some(l2)) = (&mut self.tokens, &self.l2tlb) {
            for app in 0..self.n_apps {
                let asid = Asid::new(app as u16);
                tokens.end_epoch(asid, l2.epoch_miss_rate(asid), l2.epoch_accesses(asid));
            }
        }
        if let Some(l2) = &mut self.l2tlb {
            l2.reset_epoch();
        }
        let mut pressure = Vec::with_capacity(self.n_apps);
        for acc in &mut self.epoch {
            // ConPTW_i * WarpsStalled_i, fixed-point scaled by 256 to keep
            // small averages from truncating to zero.
            let p = if epoch_cycles == 0 || acc.events == 0 || acc.walk_integral == 0 {
                0
            } else {
                let num = u128::from(acc.walk_integral) * u128::from(acc.stalled_sum) * 256;
                let den = u128::from(epoch_cycles) * u128::from(acc.events);
                num.div_ceil(den) as u64
            };
            pressure.push(p);
            *acc = EpochAcc::default();
        }
        pressure
    }

    /// Concurrent page-walk demand for an app (Fig. 5 sampling).
    pub fn concurrent_walks(&self, asid: Asid) -> usize {
        self.walker.total_walks_for(asid)
    }

    /// Total page-walk demand across all apps: active walks plus walks
    /// queued for a slot (trace queue-depth sampling).
    pub fn walker_demand(&self) -> usize {
        self.walker.total_walks()
    }

    /// Current fill-token count for an app (0 when tokens are disabled).
    pub fn tokens_for(&self, asid: Asid) -> u64 {
        self.tokens.as_ref().map_or(0, |t| t.tokens(asid))
    }

    /// Lifetime shared-L2-TLB statistics for an app.
    pub fn l2_tlb_stats(&self, asid: Asid) -> mask_common::stats::HitStats {
        self.l2tlb
            .as_ref()
            .map_or_else(Default::default, |l| l.lifetime_stats(asid))
    }

    /// Lifetime TLB-bypass-cache statistics (MASK designs).
    pub fn bypass_cache_stats(&self) -> Option<mask_common::stats::HitStats> {
        self.l2tlb
            .as_ref()
            .and_then(SharedL2Tlb::bypass_cache_stats)
    }

    /// Lifetime page-walk-cache statistics (`PWCache` design).
    pub fn pwc_stats(&self) -> Option<mask_common::stats::HitStats> {
        self.pwc.as_ref().map(PageWalkCache::stats)
    }

    /// Walks currently outstanding anywhere in the unit.
    pub fn outstanding(&self) -> usize {
        self.mshr.len()
    }

    /// Demand-paging faults taken by one app so far.
    pub fn fault_count(&self, asid: Asid) -> u64 {
        self.fault_counts.get(asid.index()).copied().unwrap_or(0)
    }

    /// Zeroes lifetime statistics (measurement-window reset); cached
    /// translations, tokens, and epoch state are untouched.
    pub fn reset_stats(&mut self) {
        if let Some(l2) = &mut self.l2tlb {
            l2.reset_lifetime();
        }
        if let Some(pwc) = &mut self.pwc {
            pwc.reset_stats();
        }
    }

    /// TLB shootdown for one address space (§5.5): drops the ASID's
    /// entries from the shared L2 TLB and the bypass cache. Per-core L1
    /// flushes are handled by the simulator, which knows core ownership.
    pub fn shootdown(&mut self, asid: Asid) {
        if let Some(l2) = &mut self.l2tlb {
            l2.flush_asid(asid);
        }
    }

    /// Full translation-structure flush after a PTE modification (§5.2:
    /// "MASK flushes all contents of the TLB and the TLB bypass cache when
    /// a PTE is modified").
    pub fn pte_update_flush(&mut self) {
        if let Some(l2) = &mut self.l2tlb {
            l2.flush();
        }
        if let Some(pwc) = &mut self.pwc {
            pwc.flush();
        }
    }

    /// Flushes all cached translation state (context-switch experiments).
    pub fn flush_volatile(&mut self) {
        if let Some(l2) = &mut self.l2tlb {
            l2.flush();
        }
        if let Some(pwc) = &mut self.pwc {
            pwc.flush();
        }
    }

    /// The page tables (for functional address checks in tests).
    pub fn tables(&self) -> &PageTables {
        &self.tables
    }

    /// Outstanding walker accesses in the L2/DRAM, in issue order. The
    /// simulator's restore path uses this to re-balance conservation
    /// accounting; the count doubles as a cross-check in tests.
    pub fn outstanding_walk_requests(&self) -> usize {
        self.walk_of_req.len()
    }

    /// The physical line a data access to `(asid, va_line)` maps to,
    /// mapping the page on demand.
    pub fn data_line(
        &mut self,
        asid: Asid,
        va: mask_common::addr::VirtAddr,
        page_size_log2: u32,
    ) -> LineAddr {
        let vpn = va.vpn(page_size_log2);
        let ppn = self.tables.ensure_mapped(asid, vpn);
        ppn.translate(va, page_size_log2).line()
    }
}

impl mask_common::snapshot::Snapshot for TranslationUnit {
    fn snapshot(&self, w: &mut mask_common::snapshot::SnapshotWriter) {
        use mask_common::snapshot::SnapField;
        w.section("xlat");
        if let Some(l2) = &self.l2tlb {
            l2.snapshot(w);
        }
        if let Some(pwc) = &self.pwc {
            pwc.snapshot(w);
        }
        self.walker.snapshot(w);
        self.tables.snapshot(w);
        if let Some(tokens) = &self.tokens {
            tokens.snapshot(w);
        }
        // The MSHR map is keyed-access only (iteration order is
        // unspecified), so entries are serialized in canonical (ASID, VPN)
        // order to keep the encoding a pure function of the state.
        // lint: allow(hotpath) -- snapshot encoding runs at epoch boundaries.
        let mut keys: Vec<(Asid, Vpn)> = self.mshr.keys().copied().collect();
        keys.sort_unstable_by_key(|&(asid, vpn)| (asid.raw(), vpn.0));
        w.seq(keys.len());
        for &(asid, vpn) in &keys {
            let entry = &self.mshr[&(asid, vpn)];
            asid.write(w);
            vpn.write(w);
            w.seq(entry.waiters.len());
            for gw in &entry.waiters {
                gw.write(w);
            }
            w.usize(entry.initiator_core_rank);
            w.usize(entry.initiator_warp);
        }
        w.seq(self.l2tlb_pipe.len());
        for req in &self.l2tlb_pipe {
            req.asid.write(w);
            req.vpn.write(w);
            w.u64(req.ready_at);
        }
        w.seq(self.fault_pipe.len());
        for &(ready, asid, vpn) in &self.fault_pipe {
            w.u64(ready);
            asid.write(w);
            vpn.write(w);
        }
        w.seq(self.fault_counts.len());
        for &n in &self.fault_counts {
            w.u64(n);
        }
        w.seq(self.pwc_pipe.len());
        for &(ready, access) in &self.pwc_pipe {
            w.u64(ready);
            w.u32(access.walk.0);
            access.asid.write(w);
            access.line.write(w);
            w.u8(access.level.raw());
        }
        w.seq(self.walk_of_req.len());
        for &(id, walk) in &self.walk_of_req {
            id.write(w);
            w.u32(walk.0);
        }
        w.seq(self.epoch.len());
        for acc in &self.epoch {
            w.u64(acc.walk_integral);
            w.u64(acc.stalled_sum);
            w.u64(acc.events);
        }
    }

    fn restore(
        &mut self,
        r: &mut mask_common::snapshot::SnapshotReader<'_>,
    ) -> Result<(), mask_common::snapshot::SnapshotError> {
        use mask_common::snapshot::{SnapField, SnapshotError};
        r.section("xlat")?;
        if let Some(l2) = &mut self.l2tlb {
            l2.restore(r)?;
        }
        if let Some(pwc) = &mut self.pwc {
            pwc.restore(r)?;
        }
        self.walker.restore(r)?;
        self.tables.restore(r)?;
        if let Some(tokens) = &mut self.tokens {
            tokens.restore(r)?;
        }
        let n_mshr = r.seq()?;
        self.mshr.clear();
        for _ in 0..n_mshr {
            let asid = Asid::read(r)?;
            let vpn = Vpn::read(r)?;
            let n_waiters = r.seq()?;
            if n_waiters == 0 {
                return Err(SnapshotError::Malformed(
                    "translation MSHR entry without waiters",
                ));
            }
            let mut waiters = self.waiter_pool.pop().unwrap_or_default();
            for _ in 0..n_waiters {
                waiters.push(GlobalWarpId::read(r)?);
            }
            let initiator_core_rank = r.usize()?;
            let initiator_warp = r.usize()?;
            if self
                .mshr
                .insert(
                    (asid, vpn),
                    TransEntry {
                        waiters,
                        initiator_core_rank,
                        initiator_warp,
                    },
                )
                .is_some()
            {
                return Err(SnapshotError::Malformed("duplicate translation MSHR entry"));
            }
        }
        let n_pipe = r.seq()?;
        self.l2tlb_pipe.clear();
        for _ in 0..n_pipe {
            let asid = Asid::read(r)?;
            let vpn = Vpn::read(r)?;
            let ready_at = r.u64()?;
            self.l2tlb_pipe.push_back(L2TlbReq {
                asid,
                vpn,
                ready_at,
            });
        }
        let n_faults = r.seq()?;
        self.fault_pipe.clear();
        for _ in 0..n_faults {
            let ready = r.u64()?;
            let asid = Asid::read(r)?;
            let vpn = Vpn::read(r)?;
            self.fault_pipe.push((ready, asid, vpn));
        }
        r.seq_exact(self.fault_counts.len())?;
        for n in &mut self.fault_counts {
            *n = r.u64()?;
        }
        let n_pwc = r.seq()?;
        self.pwc_pipe.clear();
        for _ in 0..n_pwc {
            let ready = r.u64()?;
            let walk = WalkId(r.u32()?);
            let asid = Asid::read(r)?;
            let line = LineAddr::read(r)?;
            let level = r.u8()?;
            if !(1..=4).contains(&level) {
                return Err(SnapshotError::Malformed("walk level out of range"));
            }
            self.pwc_pipe.push((
                ready,
                WalkAccess {
                    walk,
                    asid,
                    line,
                    level: mask_common::req::WalkLevel::new(level),
                },
            ));
        }
        let n_walks = r.seq()?;
        self.walk_of_req.clear();
        for _ in 0..n_walks {
            let id = ReqId::read(r)?;
            let walk = WalkId(r.u32()?);
            self.walk_of_req.push((id, walk));
        }
        r.seq_exact(self.epoch.len())?;
        for acc in &mut self.epoch {
            acc.walk_integral = r.u64()?;
            acc.stalled_sum = r.u64()?;
            acc.events = r.u64()?;
        }
        // Conservation: every outstanding walker access was `issue`d into
        // the snapshotted session; re-balance the fresh session's books.
        if mask_sanitizer::is_enabled() {
            for &(id, _) in &self.walk_of_req {
                mask_sanitizer::issue("xlat-mem", id.0);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mask_common::config::{DesignKind, GpuConfig};
    use mask_common::ids::{CoreId, WarpId};

    fn warp(core: u16, warp: u16) -> GlobalWarpId {
        GlobalWarpId::new(CoreId::new(core), WarpId::new(warp))
    }

    fn drive(
        unit: &mut TranslationUnit,
        now_start: Cycle,
        cycles: u64,
    ) -> (Vec<ResolvedTranslation>, Vec<MemRequest>) {
        let mut resolved = Vec::new();
        let mut reqs = Vec::new();
        let mut next_id = 0u64;
        let mut pwc_hits = Vec::new();
        for now in now_start..now_start + cycles {
            let mut out = Vec::new();
            unit.tick(now, &mut next_id, &mut out, &mut pwc_hits, &mut resolved);
            // Instantly satisfy every memory request (zero-latency L2),
            // including requests generated by responses (worklist loop).
            while let Some(r) = out.pop() {
                reqs.push(r);
                let mut more = Vec::new();
                if let Some(done) =
                    unit.memory_response(&r, now, &mut next_id, &mut more, &mut pwc_hits)
                {
                    resolved.push(done);
                }
                out.extend(more);
            }
        }
        (resolved, reqs)
    }

    #[test]
    fn shared_tlb_miss_walks_four_levels() {
        let cfg = GpuConfig::maxwell();
        let mut unit = TranslationUnit::new(&cfg, DesignKind::SharedTlb.spec(), &[2]);
        assert!(unit.request(Asid::new(0), Vpn(42), warp(0, 0), 0, 0));
        let (resolved, reqs) = drive(&mut unit, 0, 40);
        assert_eq!(resolved.len(), 1);
        assert!(resolved[0].walked);
        assert_eq!(reqs.len(), 4, "one memory request per page-table level");
        let levels: Vec<u8> = reqs.iter().map(|r| r.class.depth_tag()).collect();
        assert_eq!(levels, vec![1, 2, 3, 4]);
    }

    #[test]
    fn second_request_hits_shared_l2_tlb() {
        let cfg = GpuConfig::maxwell();
        let mut unit = TranslationUnit::new(&cfg, DesignKind::SharedTlb.spec(), &[2]);
        unit.request(Asid::new(0), Vpn(42), warp(0, 0), 0, 0);
        let (r1, _) = drive(&mut unit, 0, 40);
        assert!(r1[0].walked);
        unit.request(Asid::new(0), Vpn(42), warp(0, 1), 0, 100);
        let (r2, reqs2) = drive(&mut unit, 100, 40);
        assert_eq!(r2.len(), 1);
        assert!(!r2[0].walked, "L2 TLB hit, no walk");
        assert!(reqs2.is_empty());
    }

    #[test]
    fn duplicate_requests_merge_and_wake_together() {
        let cfg = GpuConfig::maxwell();
        let mut unit = TranslationUnit::new(&cfg, DesignKind::SharedTlb.spec(), &[2]);
        assert!(unit.request(Asid::new(0), Vpn(7), warp(0, 0), 0, 0));
        assert!(!unit.request(Asid::new(0), Vpn(7), warp(0, 1), 0, 1));
        assert!(!unit.request(Asid::new(0), Vpn(7), warp(1, 5), 1, 2));
        let (resolved, reqs) = drive(&mut unit, 0, 40);
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].waiters.len(), 3);
        assert_eq!(reqs.len(), 4, "merged: only one walk");
    }

    #[test]
    fn pwcache_design_skips_l2_tlb_and_uses_pwc() {
        let cfg = GpuConfig::maxwell();
        let mut unit = TranslationUnit::new(&cfg, DesignKind::PwCache.spec(), &[2]);
        unit.request(Asid::new(0), Vpn(1), warp(0, 0), 0, 0);
        let (r1, reqs1) = drive(&mut unit, 0, 60);
        assert_eq!(r1.len(), 1);
        assert_eq!(reqs1.len(), 4, "cold walk: all levels miss the PWC");
        // A nearby page shares upper-level PTE lines: the PWC now hits.
        unit.request(Asid::new(0), Vpn(2), warp(0, 1), 0, 100);
        let (r2, reqs2) = drive(&mut unit, 100, 120);
        assert_eq!(r2.len(), 1);
        assert!(
            reqs2.len() < 4,
            "PWC hits cut memory requests, got {}",
            reqs2.len()
        );
        let stats = unit.pwc_stats().expect("PWC attached");
        assert!(stats.hits > 0);
    }

    #[test]
    fn different_asids_do_not_share_translations() {
        let cfg = GpuConfig::maxwell();
        let mut unit = TranslationUnit::new(&cfg, DesignKind::SharedTlb.spec(), &[1, 1]);
        unit.request(Asid::new(0), Vpn(42), warp(0, 0), 0, 0);
        let (r1, _) = drive(&mut unit, 0, 40);
        unit.request(Asid::new(1), Vpn(42), warp(1, 0), 0, 100);
        let (r2, _) = drive(&mut unit, 100, 40);
        assert!(r2[0].walked, "same VPN in another ASID must walk");
        assert_ne!(r1[0].ppn, r2[0].ppn);
    }

    #[test]
    fn epoch_pressure_reflects_stalled_warps() {
        let cfg = GpuConfig::maxwell();
        let mut unit = TranslationUnit::new(&cfg, DesignKind::Mask.spec(), &[2]);
        for w in 0..8 {
            unit.request(Asid::new(0), Vpn(9), warp(0, w), 0, 0);
        }
        let (resolved, _) = drive(&mut unit, 0, 40);
        assert_eq!(resolved[0].waiters.len(), 8);
        let pressure = unit.end_epoch(40);
        assert_eq!(pressure.len(), 1);
        assert!(pressure[0] > 0, "stalled warps must register pressure");
    }

    #[test]
    fn tokens_warmup_then_activate() {
        let cfg = GpuConfig::maxwell();
        let mut unit = TranslationUnit::new(&cfg, DesignKind::Mask.spec(), &[2]);
        assert_eq!(unit.tokens_for(Asid::new(0)), 2 * cfg.warps_per_core as u64);
        unit.end_epoch(100_000);
        let t = unit.tokens_for(Asid::new(0));
        assert_eq!(t, (2.0 * cfg.warps_per_core as f64 * 0.8).round() as u64);
    }

    #[test]
    fn demand_paging_fault_delays_first_touch_only() {
        let mut cfg = GpuConfig::maxwell();
        cfg.page_fault_latency = 500;
        let mut unit = TranslationUnit::new(&cfg, DesignKind::SharedTlb.spec(), &[1]);
        unit.request(Asid::new(0), Vpn(1), warp(0, 0), 0, 0);
        // Nothing resolves before the fault service time.
        let (early, _) = drive(&mut unit, 0, 400);
        assert!(early.is_empty(), "walk must wait for the fault");
        assert_eq!(unit.fault_count(Asid::new(0)), 1);
        let (late, _) = drive(&mut unit, 400, 400);
        assert_eq!(late.len(), 1, "walk completes after the fault");
        // A second touch of the same page faults no more.
        unit.request(Asid::new(0), Vpn(1), warp(0, 1), 0, 1000);
        assert_eq!(unit.fault_count(Asid::new(0)), 1);
    }

    #[test]
    fn ideal_functional_translation_is_stable() {
        let cfg = GpuConfig::maxwell();
        let mut unit = TranslationUnit::new(&cfg, DesignKind::Ideal.spec(), &[1]);
        let p1 = unit.functional_translate(Asid::new(0), Vpn(5));
        let p2 = unit.functional_translate(Asid::new(0), Vpn(5));
        assert_eq!(p1, p2);
    }
}
