//! Deterministic pseudo-random number generation.
//!
//! The synthetic workload generators need a fast, seedable, reproducible
//! stream. We implement PCG32 (O'Neill, 2014) directly so that the simulator
//! core has no external dependencies and produces identical traces on every
//! platform and toolchain.

/// A PCG32 (XSH-RR 64/32) pseudo-random number generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Creates a generator from a seed and a stream selector.
    ///
    /// Distinct `(seed, stream)` pairs produce statistically independent
    /// sequences; the workload layer derives streams from
    /// `(app, core, warp)` so each warp sees its own trace.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// The raw `(state, increment)` pair, for checkpointing.
    #[must_use]
    pub fn raw_parts(&self) -> (u64, u64) {
        (self.state, self.inc)
    }

    /// Rebuilds a generator from [`Pcg32::raw_parts`] output. Returns
    /// `None` if `inc` is even (never produced by a real generator; a
    /// corrupt checkpoint must not silently degrade the stream).
    #[must_use]
    pub fn from_raw_parts(state: u64, inc: u64) -> Option<Self> {
        (inc & 1 == 1).then_some(Pcg32 { state, inc })
    }

    /// The next 32 uniformly-distributed bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// The next 64 uniformly-distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// A uniform value in `[0, bound)` (Lemire-style rejection-free modulo
    /// with negligible bias for the bounds used here).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // 128-bit multiply-shift maps the 64-bit stream onto [0, bound).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// A geometrically-distributed value with success probability `p`,
    /// clamped to `max`. Used to draw reuse distances and burst lengths.
    pub fn geometric(&mut self, p: f64, max: u64) -> u64 {
        let p = p.clamp(1e-9, 1.0);
        let u = self.unit().max(1e-300);
        let v = (u.ln() / (1.0 - p).max(1e-12).ln()).floor() as u64;
        v.min(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Pcg32::new(42, 7);
        let mut b = Pcg32::new(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn distinct_streams_diverge() {
        let mut a = Pcg32::new(42, 1);
        let mut b = Pcg32::new(42, 2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(
            same < 4,
            "streams should be nearly disjoint, {same} collisions"
        );
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Pcg32::new(1, 1);
        for bound in [1u64, 2, 3, 17, 1000, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn unit_in_range_and_roughly_uniform() {
        let mut rng = Pcg32::new(9, 3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.unit()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Pcg32::new(5, 5);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn geometric_clamped() {
        let mut rng = Pcg32::new(11, 2);
        for _ in 0..1000 {
            assert!(rng.geometric(0.5, 8) <= 8);
        }
        // With p close to 1, values should almost always be 0.
        let zeros = (0..1000).filter(|_| rng.geometric(0.999, 8) == 0).count();
        assert!(zeros > 950);
    }
}
