//! Criterion micro-benchmarks for the per-cycle hot path.
//!
//! Complements `throughput.rs` (whole-engine cycles/sec) with component
//! timings: `AssocArray` probe/fill and the shared-L2 enqueue/tick/drain
//! path. Run with:
//!
//! ```text
//! cargo bench -p mask-bench --features bench-harness --bench micro_hotpath
//! ```

#![allow(missing_docs)] // criterion_group! expands to undocumented items

use criterion::{criterion_group, criterion_main, Criterion};
use mask_cache::SharedL2Cache;
use mask_common::addr::LineAddr;
use mask_common::config::CacheConfig;
use mask_common::ids::{Asid, CoreId};
use mask_common::req::{MemRequest, ReqId, RequestClass};
use mask_tlb::AssocArray;

fn bench_assoc_probe(c: &mut Criterion) {
    // Shared-L2-TLB shape: 512 entries, 16-way.
    let mut arr: AssocArray<u64, u64> = AssocArray::new(512, 16);
    for k in 0..512u64 {
        arr.fill(k, k);
    }
    let mut k = 0u64;
    c.bench_function("assoc_probe_hit_512x16", |b| {
        b.iter(|| {
            k = (k + 7) % 512;
            arr.probe(&k)
        });
    });
    let mut miss = 1_000_000u64;
    c.bench_function("assoc_probe_miss_512x16", |b| {
        b.iter(|| {
            miss += 1;
            arr.probe(&miss)
        });
    });
    let mut fk = 0u64;
    c.bench_function("assoc_fill_evict_512x16", |b| {
        b.iter(|| {
            fk += 1;
            arr.fill(fk, fk)
        });
    });
}

fn l2() -> SharedL2Cache {
    let cfg = CacheConfig {
        bytes: 2 * 1024 * 1024,
        assoc: 16,
        latency: 10,
        banks: 16,
        ports_per_bank: 2,
        mshrs: 64,
    };
    SharedL2Cache::new(&cfg, false, 2)
}

fn bench_l2_path(c: &mut Criterion) {
    // Steady-state enqueue + tick + drain: the exact per-cycle sequence
    // `GpuSim::step` drives, with a rotating working set so both hits and
    // misses occur.
    let mut cache = l2();
    let mut now = 0u64;
    let mut id = 0u64;
    let mut dram = Vec::new();
    let mut resps = Vec::new();
    c.bench_function("l2_enqueue_tick_drain", |b| {
        b.iter(|| {
            for i in 0..4u64 {
                let line = LineAddr((id + i * 64) % 4096);
                cache.enqueue(
                    MemRequest::new(
                        ReqId(id),
                        line,
                        Asid::new((id % 2) as u16),
                        CoreId::new(0),
                        RequestClass::Data,
                        now,
                    ),
                    now,
                );
                id += 1;
            }
            cache.tick(now);
            dram.clear();
            cache.drain_dram_requests_into(&mut dram);
            for r in &dram {
                cache.dram_fill(r.line, now);
            }
            resps.clear();
            cache.drain_responses_into(&mut resps);
            now += 1;
        });
    });

    let mut idle = l2();
    let mut inow = 1_000_000u64;
    c.bench_function("l2_idle_tick", |b| {
        b.iter(|| {
            idle.tick(inow);
            inow += 1;
        });
    });
}

criterion_group!(hotpath, bench_assoc_probe, bench_l2_path);
criterion_main!(hotpath);
