//! Configuration of the simulated GPU system.
//!
//! [`GpuConfig::maxwell`] reproduces Table 1 of the paper (the NVIDIA
//! Maxwell-like baseline); [`GpuConfig::fermi`] and
//! [`GpuConfig::integrated`] reproduce the two extra architectures of the
//! generality study (§7.3, Table 4). [`DesignKind`] enumerates the eight
//! designs compared in the evaluation (§7).

use crate::addr::PAGE_SIZE_4K_LOG2;

/// Which of the paper's evaluated designs to simulate (§7).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DesignKind {
    /// Static spatial partitioning: cores *and* L2 cache ways *and* DRAM
    /// channels are split equally between applications (models NVIDIA GRID /
    /// AMD `FirePro`; the `Static` baseline of §7).
    Static,
    /// Baseline variant with a shared page-walk cache after the L1 TLBs
    /// (Power et al. \[106\]; Fig. 2a).
    PwCache,
    /// Baseline variant with a shared L2 TLB after the L1 TLBs (Fig. 2b).
    SharedTlb,
    /// `SharedTlb` plus TLB-Fill Tokens and the TLB bypass cache only
    /// (the `MASK-TLB` component study of §7.2).
    MaskTlb,
    /// `SharedTlb` plus Address-Translation-Aware L2 Bypass only
    /// (`MASK-Cache`).
    MaskCache,
    /// `SharedTlb` plus the Address-Space-Aware DRAM Scheduler only
    /// (`MASK-DRAM`).
    MaskDram,
    /// The full MASK design: all three mechanisms together (§5).
    Mask,
    /// A hypothetical GPU where every L1 TLB access hits (`Ideal` in §7).
    Ideal,
}

impl DesignKind {
    /// All designs compared in Figures 11–15, in the paper's plotting order.
    pub const ALL: [DesignKind; 8] = [
        DesignKind::Static,
        DesignKind::PwCache,
        DesignKind::SharedTlb,
        DesignKind::MaskTlb,
        DesignKind::MaskCache,
        DesignKind::MaskDram,
        DesignKind::Mask,
        DesignKind::Ideal,
    ];

    /// Whether the design places a shared L2 TLB after the L1 TLBs.
    pub const fn has_shared_l2_tlb(self) -> bool {
        !matches!(self, DesignKind::PwCache | DesignKind::Ideal)
    }

    /// Whether the design places a shared page-walk cache in the walker path.
    pub const fn has_page_walk_cache(self) -> bool {
        matches!(self, DesignKind::PwCache)
    }

    /// Whether TLB-Fill Tokens + the TLB bypass cache are active (§5.2).
    pub const fn tokens_enabled(self) -> bool {
        matches!(self, DesignKind::MaskTlb | DesignKind::Mask)
    }

    /// Whether Address-Translation-Aware L2 Bypass is active (§5.3).
    pub const fn l2_bypass_enabled(self) -> bool {
        matches!(self, DesignKind::MaskCache | DesignKind::Mask)
    }

    /// Whether the Address-Space-Aware DRAM Scheduler is active (§5.4).
    pub const fn mask_dram_enabled(self) -> bool {
        matches!(self, DesignKind::MaskDram | DesignKind::Mask)
    }

    /// Whether every L1 TLB access hits (no translation traffic at all).
    pub const fn ideal_tlb(self) -> bool {
        matches!(self, DesignKind::Ideal)
    }

    /// Whether shared resources (L2 ways, DRAM channels) are statically
    /// partitioned between applications.
    pub const fn static_partition(self) -> bool {
        matches!(self, DesignKind::Static)
    }

    /// Short label used in experiment tables.
    pub const fn label(self) -> &'static str {
        match self {
            DesignKind::Static => "Static",
            DesignKind::PwCache => "PWCache",
            DesignKind::SharedTlb => "SharedTLB",
            DesignKind::MaskTlb => "MASK-TLB",
            DesignKind::MaskCache => "MASK-Cache",
            DesignKind::MaskDram => "MASK-DRAM",
            DesignKind::Mask => "MASK",
            DesignKind::Ideal => "Ideal",
        }
    }
}

impl core::fmt::Display for DesignKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// TLB hierarchy parameters (Table 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Entries in each per-core, fully-associative L1 TLB.
    pub l1_entries: usize,
    /// L1 TLB lookup latency in cycles.
    pub l1_latency: u64,
    /// Total entries in the shared L2 TLB.
    pub l2_entries: usize,
    /// Associativity of the shared L2 TLB.
    pub l2_assoc: usize,
    /// Shared L2 TLB access latency in cycles.
    pub l2_latency: u64,
    /// Probe ports on the shared L2 TLB (requests accepted per cycle).
    pub l2_ports: usize,
    /// Entries in MASK's fully-associative TLB bypass cache (§5.2).
    pub bypass_cache_entries: usize,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            l1_entries: 64,
            l1_latency: 1,
            l2_entries: 512,
            l2_assoc: 16,
            l2_latency: 10,
            l2_ports: 2,
            bypass_cache_entries: 32,
        }
    }
}

/// Page-walk-cache parameters (the `PWCache` baseline variant, Fig. 2a).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PwcConfig {
    /// Capacity in bytes (the paper uses an 8 KB page walk cache).
    pub bytes: usize,
    /// Associativity (16-way per Table 1).
    pub assoc: usize,
    /// Access latency in cycles.
    pub latency: u64,
}

impl Default for PwcConfig {
    fn default() -> Self {
        PwcConfig {
            bytes: 8 * 1024,
            assoc: 16,
            latency: 10,
        }
    }
}

/// Data-cache parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: usize,
    /// Associativity.
    pub assoc: usize,
    /// Access latency in cycles (pipeline depth, excluding queueing).
    pub latency: u64,
    /// Number of banks (1 for private L1s).
    pub banks: usize,
    /// Ports per bank (requests each bank accepts per cycle).
    pub ports_per_bank: usize,
    /// MSHR entries per bank.
    pub mshrs: usize,
}

impl CacheConfig {
    /// Table 1 private L1 data cache: 16 KB, 4-way, 1-cycle.
    pub fn maxwell_l1() -> Self {
        CacheConfig {
            bytes: 16 * 1024,
            assoc: 4,
            latency: 1,
            banks: 1,
            ports_per_bank: 2,
            mshrs: 32,
        }
    }

    /// Table 1 shared L2: 2 MB, 16-way, 16 banks, 2 ports/bank, 10-cycle.
    /// MSHR depth follows GPGPU-Sim's default of 32 per bank.
    pub fn maxwell_l2() -> Self {
        CacheConfig {
            bytes: 2 * 1024 * 1024,
            assoc: 16,
            latency: 10,
            banks: 16,
            ports_per_bank: 2,
            mshrs: 32,
        }
    }
}

/// DRAM row-buffer management policy (§7.3 sensitivity study).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RowPolicy {
    /// Keep rows open after access (baseline; best for row-locality).
    #[default]
    Open,
    /// Precharge after every access (used by various CPUs; §7.3).
    Closed,
}

/// Which memory scheduling algorithm the controller runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MemSchedKind {
    /// First-ready, first-come-first-served [110, 152] (baseline, Table 1).
    #[default]
    FrFcfs,
    /// A batch-oriented GPU scheduler in the spirit of Jog et al. \[60\]:
    /// forms application-aware batches and drains them oldest-first,
    /// preserving intra-batch row locality (§7.3 "another state-of-the-art
    /// GPU memory scheduler").
    GpuBatch,
}

/// DRAM timing and organization (GDDR5-like, Table 1), in core cycles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of memory channels.
    pub channels: usize,
    /// Banks per channel (one rank).
    pub banks_per_channel: usize,
    /// log2 of the row-buffer size in bytes (2 KB rows -> 11).
    pub row_size_log2: u32,
    /// Column access latency for a row-buffer hit.
    pub t_cas: u64,
    /// Activate-to-read latency (added on a closed row).
    pub t_rcd: u64,
    /// Precharge latency (added on a row conflict).
    pub t_rp: u64,
    /// Cycles the channel data bus is occupied per line transfer (burst 8).
    pub burst_cycles: u64,
    /// Capacity of the per-channel request buffer (baseline FR-FCFS).
    pub queue_capacity: usize,
    /// Row-buffer management policy.
    pub row_policy: RowPolicy,
    /// Scheduling algorithm for the non-MASK queues.
    pub sched: MemSchedKind,
    /// MASK Golden queue capacity (address-translation FIFO, §5.4).
    pub golden_capacity: usize,
    /// MASK Silver queue capacity (§5.4).
    pub silver_capacity: usize,
    /// MASK Normal queue capacity (§5.4).
    pub normal_capacity: usize,
    /// `thresh_max` of Eq. 1 (set to 500 empirically, §6).
    pub thresh_max: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 8,
            banks_per_channel: 8,
            row_size_log2: 11,
            t_cas: 12,
            t_rcd: 12,
            t_rp: 12,
            burst_cycles: 4,
            queue_capacity: 64,
            row_policy: RowPolicy::Open,
            sched: MemSchedKind::FrFcfs,
            golden_capacity: 16,
            silver_capacity: 64,
            normal_capacity: 192,
            thresh_max: 500,
        }
    }
}

/// Token-count adjustment policy (see `mask-tlb::tokens` for semantics).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TokenPolicyKind {
    /// §5.2's literal ±2% delta rule (static in steady state).
    Literal,
    /// Direction-register hill climbing implied by §7.4 (default).
    #[default]
    HillClimb,
}

/// MASK mechanism tuning knobs (§5, §6 "Design Parameters").
#[derive(Clone, Debug, PartialEq)]
pub struct MaskParams {
    /// Epoch length in cycles (100K cycles, §5.2).
    pub epoch_cycles: u64,
    /// `InitialTokens`: fraction of each app's total warps receiving tokens
    /// after the first epoch (80%, §6).
    pub initial_tokens_frac: f64,
    /// Miss-rate change that triggers a token-count adjustment (±2%, §5.2).
    pub miss_rate_delta: f64,
    /// Step (fraction of total warps) by which the token count is adjusted
    /// each epoch when contention changes. The paper does not specify its
    /// step size; 25% converges to the steady-state token count within a
    /// few epochs, matching the paper's observation that the mechanism is
    /// "effective at reconfiguring the total number of tokens to a
    /// steady-state value" (§6).
    pub token_step_frac: f64,
    /// Token-count adjustment policy.
    pub token_policy: TokenPolicyKind,
    /// Hysteresis margin for the L2-bypass decision (see
    /// `mask-cache::bypass`): a walk level bypasses only when its hit rate
    /// is at least this far below the data hit rate. 0.0 gives the paper's
    /// literal comparison.
    pub bypass_margin: f64,
}

impl Default for MaskParams {
    fn default() -> Self {
        MaskParams {
            epoch_cycles: 100_000,
            initial_tokens_frac: 0.8,
            miss_rate_delta: 0.02,
            token_step_frac: 0.25,
            token_policy: TokenPolicyKind::default(),
            bypass_margin: 0.05,
        }
    }
}

/// Full configuration of the simulated GPU (Table 1 by default).
#[derive(Clone, Debug, PartialEq)]
pub struct GpuConfig {
    /// Number of shader cores (SMs).
    pub n_cores: usize,
    /// Warp contexts per core.
    pub warps_per_core: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// log2 of the page size (12 for 4 KB, 21 for the §7.3 2 MB study).
    pub page_size_log2: u32,
    /// TLB hierarchy parameters.
    pub tlb: TlbConfig,
    /// Page-walk-cache parameters (used only by [`DesignKind::PwCache`]).
    pub pwc: PwcConfig,
    /// Private L1 data cache parameters.
    pub l1_cache: CacheConfig,
    /// Shared L2 cache parameters.
    pub l2_cache: CacheConfig,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// Concurrent page-table walks supported by the shared walker (§6).
    pub walker_slots: usize,
    /// Latency charged when a walk targets a page that has never been
    /// touched (demand paging / far fault service time). The paper's
    /// evaluation runs fault-free (§5.5 leaves fault handling to future
    /// work), so the default is 0; the demand-paging sensitivity study
    /// raises it.
    pub page_fault_latency: u64,
    /// MASK mechanism parameters.
    pub mask: MaskParams,
}

impl GpuConfig {
    /// The Maxwell-like baseline of Table 1: 30 cores, 64 warp contexts per
    /// core, 64-entry L1 TLBs, 512-entry shared L2 TLB, 2 MB shared L2,
    /// 8-channel GDDR5.
    pub fn maxwell() -> Self {
        GpuConfig {
            n_cores: 30,
            warps_per_core: 64,
            warp_size: 64,
            page_size_log2: PAGE_SIZE_4K_LOG2,
            tlb: TlbConfig::default(),
            pwc: PwcConfig::default(),
            l1_cache: CacheConfig::maxwell_l1(),
            l2_cache: CacheConfig::maxwell_l2(),
            dram: DramConfig::default(),
            walker_slots: 64,
            page_fault_latency: 0,
            mask: MaskParams::default(),
        }
    }

    /// A Fermi-like GTX480 configuration (§7.3 generality study): 15 cores,
    /// smaller L2, 6 memory channels. The shared walker scales with the
    /// core count (the paper sizes its 64-thread walker for the 30-core
    /// Maxwell baseline; a half-size chip carries a half-size walker).
    pub fn fermi() -> Self {
        let mut cfg = GpuConfig::maxwell();
        cfg.n_cores = 15;
        cfg.warps_per_core = 48;
        cfg.l2_cache.bytes = 768 * 1024;
        cfg.l2_cache.banks = 6;
        cfg.dram.channels = 6;
        cfg.walker_slots = 32;
        cfg
    }

    /// An integrated-GPU configuration in the spirit of Power et al. \[106\]
    /// (§7.3): fewer cores sharing a narrow CPU-style memory system.
    pub fn integrated() -> Self {
        let mut cfg = GpuConfig::maxwell();
        cfg.n_cores = 8;
        cfg.warps_per_core = 48;
        cfg.l2_cache.bytes = 1024 * 1024;
        cfg.l2_cache.banks = 4;
        cfg.dram.channels = 2;
        cfg.dram.banks_per_channel = 8;
        cfg.dram.burst_cycles = 8; // narrower DDR-style bus
        cfg.walker_slots = 16; // walker scales with the core count
        cfg
    }

    /// Maximum number of radix levels a page walk traverses for this config.
    pub fn walk_levels(&self) -> u8 {
        crate::addr::levels_for_page_size(self.page_size_log2)
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::maxwell()
    }
}

/// A complete simulation configuration: machine + design + run length.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// The simulated machine.
    pub gpu: GpuConfig,
    /// Which evaluated design to model.
    pub design: DesignKind,
    /// Number of cycles to simulate.
    pub max_cycles: u64,
    /// Base PRNG seed (combined with app/core/warp ids).
    pub seed: u64,
    /// How many shards the per-cycle SM frontend is split across.
    pub sm_shards: ShardOptions,
}

impl SimConfig {
    /// A configuration for `design` on the Table 1 machine.
    pub fn new(design: DesignKind) -> Self {
        SimConfig {
            gpu: GpuConfig::maxwell(),
            design,
            max_cycles: default_max_cycles(),
            seed: 0xA55A_2018,
            sm_shards: ShardOptions::default(),
        }
    }

    /// Replaces the machine configuration.
    pub fn with_gpu(mut self, gpu: GpuConfig) -> Self {
        self.gpu = gpu;
        self
    }

    /// Replaces the simulated cycle budget.
    pub fn with_max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = cycles;
        self
    }

    /// Replaces the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Requests exactly `n` SM-frontend shards.
    pub fn with_sm_shards(mut self, n: usize) -> Self {
        self.sm_shards = ShardOptions::with_shards(n);
        self
    }
}

/// Worker-count request for `mask-core`'s job engine.
///
/// Pure configuration data: every simulation batch is fanned out over this
/// many worker threads by the engine (`mask_core::engine::JobPool`). This
/// type only *carries the request* — resolution of `None` to an actual
/// thread count (the machine's available parallelism) happens inside the
/// engine, the one module allowed to touch `std::thread`.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct JobOptions {
    /// Explicit worker count (`Some(1)` = strictly serial, on the calling
    /// thread). `None` defers to the `MASK_JOBS` environment variable and,
    /// when that is unset too, to the machine's available parallelism.
    pub workers: Option<usize>,
}

impl JobOptions {
    /// Run every job serially on the calling thread.
    #[must_use]
    pub const fn serial() -> Self {
        JobOptions { workers: Some(1) }
    }

    /// Request exactly `n` worker threads.
    #[must_use]
    pub const fn with_workers(n: usize) -> Self {
        JobOptions { workers: Some(n) }
    }

    /// The requested worker count: the explicit setting when present, else
    /// `MASK_JOBS`. `None` means "let the engine pick" (available
    /// parallelism); any request is clamped to at least 1.
    #[must_use]
    pub fn requested(self) -> Option<usize> {
        self.workers
            .or_else(|| std::env::var("MASK_JOBS").ok().and_then(|v| v.parse().ok()))
            .map(|n: usize| n.max(1))
    }
}

/// SM-frontend shard request for `mask-gpu`'s sharded issue stage.
///
/// Pure configuration data, mirroring [`JobOptions`]: this type only
/// *carries the request*. `GpuSim` resolves it at construction time
/// (clamping to the core count; the `Ideal` design always runs serial),
/// and stat results are bit-identical at every shard count by design.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ShardOptions {
    /// Explicit shard count (`Some(1)` = the serial issue loop). `None`
    /// defers to the `MASK_SM_SHARDS` environment variable and, when that
    /// is unset too, to 1 (serial).
    pub shards: Option<usize>,
}

impl ShardOptions {
    /// Run the issue stage serially (the PR 3 hot path).
    #[must_use]
    pub const fn serial() -> Self {
        ShardOptions { shards: Some(1) }
    }

    /// Request exactly `n` shards.
    #[must_use]
    pub const fn with_shards(n: usize) -> Self {
        ShardOptions { shards: Some(n) }
    }

    /// The requested shard count: the explicit setting when present, else
    /// `MASK_SM_SHARDS`, else 1. Any request is clamped to at least 1.
    #[must_use]
    pub fn requested(self) -> usize {
        self.shards
            .or_else(|| {
                std::env::var("MASK_SM_SHARDS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or(1)
            .max(1)
    }
}

/// Default per-run cycle budget.
///
/// Honors the `MASK_SIM_CYCLES` environment variable so the full experiment
/// suite can be scaled up for higher-fidelity runs (the paper simulates
/// full benchmarks; we default to 300K cycles = 3 MASK epochs, which is
/// enough for the epoch-based mechanisms to reach steady state).
pub fn default_max_cycles() -> u64 {
    std::env::var("MASK_SIM_CYCLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300_000)
}

/// Default number of paper workload pairs an experiment simulates.
///
/// Honors the `MASK_PAIR_LIMIT` environment variable (the paper evaluates
/// all 35 two-app pairs; capping the count keeps smoke runs fast). This is
/// the designated entry point for that variable — experiment code takes
/// the resolved value, never the environment.
pub fn default_pair_limit() -> usize {
    std::env::var("MASK_PAIR_LIMIT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(35)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_job_options_win_over_environment() {
        assert_eq!(JobOptions::serial().requested(), Some(1));
        assert_eq!(JobOptions::with_workers(6).requested(), Some(6));
        // A nonsensical explicit request clamps to the serial minimum.
        assert_eq!(JobOptions::with_workers(0).requested(), Some(1));
    }

    #[test]
    fn design_feature_matrix_matches_paper() {
        use DesignKind::*;
        // Fig. 2: PWCache has a page-walk cache, no shared L2 TLB.
        assert!(PwCache.has_page_walk_cache() && !PwCache.has_shared_l2_tlb());
        // Fig. 2b / Fig. 10: SharedTLB and every MASK variant share an L2 TLB.
        for d in [SharedTlb, MaskTlb, MaskCache, MaskDram, Mask] {
            assert!(d.has_shared_l2_tlb(), "{d} should have a shared L2 TLB");
        }
        // Fig. 10: full MASK enables all three mechanisms.
        assert!(Mask.tokens_enabled() && Mask.l2_bypass_enabled() && Mask.mask_dram_enabled());
        // Component studies enable exactly one mechanism each.
        assert!(
            MaskTlb.tokens_enabled()
                && !MaskTlb.l2_bypass_enabled()
                && !MaskTlb.mask_dram_enabled()
        );
        assert!(!MaskCache.tokens_enabled() && MaskCache.l2_bypass_enabled());
        assert!(!MaskDram.l2_bypass_enabled() && MaskDram.mask_dram_enabled());
        // Ideal has no translation overhead at all.
        assert!(Ideal.ideal_tlb() && !Ideal.has_shared_l2_tlb());
        // Only Static partitions shared resources.
        assert!(Static.static_partition());
        assert!(
            DesignKind::ALL
                .iter()
                .filter(|d| d.static_partition())
                .count()
                == 1
        );
    }

    #[test]
    fn maxwell_matches_table_1() {
        let cfg = GpuConfig::maxwell();
        assert_eq!(cfg.n_cores, 30);
        assert_eq!(cfg.warps_per_core, 64);
        assert_eq!(cfg.tlb.l1_entries, 64);
        assert_eq!(cfg.tlb.l2_entries, 512);
        assert_eq!(cfg.tlb.l2_assoc, 16);
        assert_eq!(cfg.l2_cache.bytes, 2 * 1024 * 1024);
        assert_eq!(cfg.l2_cache.banks, 16);
        assert_eq!(cfg.dram.channels, 8);
        assert_eq!(cfg.dram.banks_per_channel, 8);
        assert_eq!(cfg.walker_slots, 64);
        assert_eq!(cfg.walk_levels(), 4);
    }

    #[test]
    fn large_pages_reduce_walk_depth() {
        let mut cfg = GpuConfig::maxwell();
        cfg.page_size_log2 = crate::addr::PAGE_SIZE_2M_LOG2;
        assert_eq!(cfg.walk_levels(), 3);
    }

    #[test]
    fn sim_config_builders() {
        let cfg = SimConfig::new(DesignKind::Mask)
            .with_max_cycles(1234)
            .with_seed(7);
        assert_eq!(cfg.max_cycles, 1234);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.design, DesignKind::Mask);
        // Default is "defer to MASK_SM_SHARDS / serial".
        assert_eq!(cfg.sm_shards, ShardOptions::default());
        let cfg = cfg.with_sm_shards(4);
        assert_eq!(cfg.sm_shards.shards, Some(4));
    }

    #[test]
    fn explicit_shard_options_win_over_environment() {
        assert_eq!(ShardOptions::serial().requested(), 1);
        assert_eq!(ShardOptions::with_shards(8).requested(), 8);
        // A nonsensical explicit request clamps to the serial minimum.
        assert_eq!(ShardOptions::with_shards(0).requested(), 1);
    }
}
