//! Address-Translation-Aware L2 Bypass (mechanism ❷, §5.3).
//!
//! "We impose L2 cache bypassing for address translation requests from a
//! particular page table level when the hit rate of address translation
//! requests to that page table level falls below the hit rate of data
//! demand requests."
//!
//! The monitor keeps per-walk-level and data hit-rate counters. Decisions
//! are refreshed at every MASK epoch so the scheme "can adapt to dynamic
//! hit rate behavior changes" (§5.3). Two implementation details the paper
//! leaves unspecified are documented here:
//!
//! * a bypassed level stops producing hit-rate samples, so a small
//!   deterministic sampling duty cycle (1 in 32 requests still probes the
//!   cache) keeps the estimate alive and lets a level whose locality
//!   improves win back cache access;
//! * the comparison carries a small hysteresis margin ([`BYPASS_MARGIN`]):
//!   a level must fall clearly below the data hit rate before bypassing.
//!   The paper observes a "sharp drop-off" at the bypassed levels (68.7%
//!   -> 1.0%), so its decisions are never marginal; the margin prevents
//!   oscillation (and needless bypassing) when a level sits within noise
//!   of the data hit rate;
//! * counters are kept **per address space**: with heterogeneous
//!   co-runners, one application's cold leaf level must not force another
//!   application's hot leaf level to bypass (the paper's workload mix has
//!   near-uniform per-level rates, so it does not distinguish the two).

use mask_common::ids::Asid;
use mask_common::req::WalkLevel;
use mask_common::stats::HitStats;

/// Fraction of bypassed requests that still probe (1 / `SAMPLE_PERIOD`).
const SAMPLE_PERIOD: u64 = 32;

/// Default hysteresis margin: a walk level bypasses only when its hit rate
/// is at least this far below the data hit rate.
pub const BYPASS_MARGIN: f64 = 0.05;

/// Per-level, per-address-space hit-rate state.
#[derive(Clone, Debug, Default)]
struct AppMonitor {
    level_epoch: [HitStats; 4],
    data_epoch: HitStats,
    bypass_level: [bool; 4],
    level_rate: [f64; 4],
    data_rate: f64,
    sample_ctr: [u64; 4],
}

impl AppMonitor {
    fn new() -> Self {
        AppMonitor {
            level_rate: [1.0; 4],
            ..Default::default()
        }
    }
}

/// Per-level hit-rate monitor driving the L2 bypass decision.
#[derive(Clone, Debug)]
pub struct BypassMonitor {
    apps: Vec<AppMonitor>,
    margin: f64,
}

impl BypassMonitor {
    /// Creates a monitor for `n_asids` address spaces with the default
    /// hysteresis margin; no level bypasses until the first epoch ends.
    pub fn new(n_asids: usize) -> Self {
        Self::with_margin(n_asids, BYPASS_MARGIN)
    }

    /// Creates a monitor with an explicit hysteresis margin (0.0 = the
    /// paper's literal `level < data` comparison).
    pub fn with_margin(n_asids: usize, margin: f64) -> Self {
        BypassMonitor {
            apps: (0..n_asids.max(1)).map(|_| AppMonitor::new()).collect(),
            margin,
        }
    }

    fn app(&mut self, asid: Asid) -> &mut AppMonitor {
        let n = self.apps.len();
        &mut self.apps[asid.index().min(n - 1)]
    }

    /// Records the outcome of a *probing* L2 access.
    pub fn record(&mut self, asid: Asid, class: mask_common::req::RequestClass, hit: bool) {
        let app = self.app(asid);
        match class {
            mask_common::req::RequestClass::Data => app.data_epoch.record(hit),
            mask_common::req::RequestClass::Translation(l) => {
                app.level_epoch[l.index()].record(hit);
            }
        }
    }

    /// Decides whether a translation request at `level` for `asid` should
    /// bypass the L2 (no probe, no fill) right now.
    ///
    /// Stateful: bypassed levels still probe on a 1-in-32 duty cycle to
    /// keep the hit-rate estimate fresh, so two consecutive calls may
    /// differ. Data requests never bypass.
    pub fn should_bypass(&mut self, asid: Asid, level: WalkLevel) -> bool {
        let i = level.index();
        let app = self.app(asid);
        if !app.bypass_level[i] {
            return false;
        }
        app.sample_ctr[i] += 1;
        !app.sample_ctr[i].is_multiple_of(SAMPLE_PERIOD)
    }

    /// Latches new decisions at an epoch boundary.
    ///
    /// Levels with fewer than 16 samples keep their previous estimate.
    pub fn end_epoch(&mut self) {
        let margin = self.margin;
        for app in &mut self.apps {
            if app.data_epoch.accesses >= 16 {
                app.data_rate = app.data_epoch.hit_rate();
            }
            for i in 0..4 {
                if app.level_epoch[i].accesses >= 16 {
                    app.level_rate[i] = app.level_epoch[i].hit_rate();
                }
                // "if (Level Hit Rate < L2 Hit Rate)" -> bypass (Fig. 10),
                // with a hysteresis margin (see module docs).
                app.bypass_level[i] = app.level_rate[i] + margin < app.data_rate;
                app.level_epoch[i] = HitStats::default();
            }
            app.data_epoch = HitStats::default();
        }
    }

    /// The latched decision for `(asid, level)` (ignoring the sampling
    /// duty cycle).
    pub fn is_bypassing(&self, asid: Asid, level: WalkLevel) -> bool {
        self.apps[asid.index().min(self.apps.len() - 1)].bypass_level[level.index()]
    }

    /// The latched hit-rate estimate for `(asid, level)`.
    pub fn level_hit_rate(&self, asid: Asid, level: WalkLevel) -> f64 {
        self.apps[asid.index().min(self.apps.len() - 1)].level_rate[level.index()]
    }

    /// The latched data hit-rate estimate for `asid`.
    pub fn data_hit_rate(&self, asid: Asid) -> f64 {
        self.apps[asid.index().min(self.apps.len() - 1)].data_rate
    }
}

impl mask_common::snapshot::Snapshot for BypassMonitor {
    /// Serializes every per-app field except the config-derived margin.
    /// Rates are captured as exact f64 bit patterns so a restored monitor
    /// latches bit-identical decisions at the next epoch boundary.
    fn snapshot(&self, w: &mut mask_common::snapshot::SnapshotWriter) {
        w.seq(self.apps.len());
        for app in &self.apps {
            for s in &app.level_epoch {
                s.snapshot(w);
            }
            app.data_epoch.snapshot(w);
            for &b in &app.bypass_level {
                w.bool(b);
            }
            for &rate in &app.level_rate {
                w.f64(rate);
            }
            w.f64(app.data_rate);
            for &c in &app.sample_ctr {
                w.u64(c);
            }
        }
    }

    fn restore(
        &mut self,
        r: &mut mask_common::snapshot::SnapshotReader<'_>,
    ) -> Result<(), mask_common::snapshot::SnapshotError> {
        r.seq_exact(self.apps.len())?;
        for app in &mut self.apps {
            for s in &mut app.level_epoch {
                s.restore(r)?;
            }
            app.data_epoch.restore(r)?;
            for b in &mut app.bypass_level {
                *b = r.bool()?;
            }
            for rate in &mut app.level_rate {
                *rate = r.f64()?;
            }
            app.data_rate = r.f64()?;
            for c in &mut app.sample_ctr {
                *c = r.u64()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mask_common::req::RequestClass;

    const A0: Asid = Asid::new(0);

    fn feed(m: &mut BypassMonitor, level: u8, hits: u32, misses: u32) {
        let class = RequestClass::Translation(WalkLevel::new(level));
        for _ in 0..hits {
            m.record(A0, class, true);
        }
        for _ in 0..misses {
            m.record(A0, class, false);
        }
    }

    fn feed_data(m: &mut BypassMonitor, hits: u32, misses: u32) {
        for _ in 0..hits {
            m.record(A0, RequestClass::Data, true);
        }
        for _ in 0..misses {
            m.record(A0, RequestClass::Data, false);
        }
    }

    #[test]
    fn no_bypassing_before_first_epoch() {
        let mut m = BypassMonitor::new(2);
        assert!(!m.should_bypass(A0, WalkLevel::new(4)));
    }

    #[test]
    fn leaf_levels_bypass_when_below_data_hit_rate() {
        let mut m = BypassMonitor::new(2);
        // Paper's §4.3 shape: L1/L2 hot, L3 warm, L4 cold; data at 70%.
        feed(&mut m, 1, 99, 1);
        feed(&mut m, 2, 98, 2);
        feed(&mut m, 3, 60, 40);
        feed(&mut m, 4, 1, 99);
        feed_data(&mut m, 70, 30);
        m.end_epoch();
        assert!(!m.is_bypassing(A0, WalkLevel::new(1)));
        assert!(!m.is_bypassing(A0, WalkLevel::new(2)));
        assert!(
            m.is_bypassing(A0, WalkLevel::new(3)),
            "60% is clearly below the 70% data hit rate"
        );
        assert!(m.is_bypassing(A0, WalkLevel::new(4)));

        // A level within the hysteresis margin of the data hit rate keeps
        // probing (marginal bypasses lose real hits for no queueing win).
        let mut m2 = BypassMonitor::new(2);
        feed(&mut m2, 3, 68, 32);
        feed_data(&mut m2, 70, 30);
        m2.end_epoch();
        assert!(
            !m2.is_bypassing(A0, WalkLevel::new(3)),
            "68% vs 70% is marginal"
        );
    }

    #[test]
    fn bypassed_level_still_samples() {
        let mut m = BypassMonitor::new(2);
        feed(&mut m, 4, 0, 100);
        feed_data(&mut m, 80, 20);
        m.end_epoch();
        let probes = (0..320)
            .filter(|_| !m.should_bypass(A0, WalkLevel::new(4)))
            .count();
        assert_eq!(probes, 10, "1-in-32 sampling keeps the estimate alive");
    }

    #[test]
    fn level_recovers_when_locality_improves() {
        let mut m = BypassMonitor::new(2);
        feed(&mut m, 3, 0, 100);
        feed_data(&mut m, 80, 20);
        m.end_epoch();
        assert!(m.is_bypassing(A0, WalkLevel::new(3)));
        // Next epoch the sampled probes all hit.
        feed(&mut m, 3, 100, 0);
        feed_data(&mut m, 80, 20);
        m.end_epoch();
        assert!(!m.is_bypassing(A0, WalkLevel::new(3)));
    }

    #[test]
    fn sparse_levels_keep_previous_estimate() {
        let mut m = BypassMonitor::new(2);
        feed(&mut m, 2, 100, 0);
        feed_data(&mut m, 50, 50);
        m.end_epoch();
        assert!(!m.is_bypassing(A0, WalkLevel::new(2)));
        // Only 3 samples this epoch (below the 16-sample floor): estimate
        // and decision are unchanged even though all 3 missed.
        feed(&mut m, 2, 0, 3);
        feed_data(&mut m, 50, 50);
        m.end_epoch();
        assert!(!m.is_bypassing(A0, WalkLevel::new(2)));
        assert!((m.level_hit_rate(A0, WalkLevel::new(2)) - 1.0).abs() < 1e-12);
    }
}
