//! High-level simulation runners.
//!
//! [`PairRunner`] reproduces the paper's experimental procedure (§6): each
//! multiprogrammed workload runs once *shared* (both apps concurrently on a
//! partitioned set of cores) and once *alone* per application ("`IPCalone` is
//! the IPC of an application that runs on the same number of GPU cores, but
//! does not share GPU resources with any other application"). Alone runs
//! are first-class [`SimJob`]s deduplicated in the process-wide
//! [`BaselineCache`](crate::engine::BaselineCache) — they are
//! design-dependent but pair-independent, so every experiment (and every
//! oracle probe) shares one memo and each unique baseline is simulated
//! exactly once per process.
//!
//! The batch entry points ([`PairRunner::run_pairs`],
//! [`PairRunner::run_multi_batch`], [`PairRunner::run_batch`]) submit whole
//! workload sets to the [`JobPool`] at once, so independent simulations fan
//! out over `MASK_JOBS` worker threads while results stay bit-identical at
//! any worker count.

use crate::engine::{JobPool, SimJob};
use crate::metrics::{unfairness, weighted_speedup};
use mask_common::config::{DesignKind, GpuConfig, JobOptions};
use mask_common::stats::SimStats;
use mask_gpu::AppSpec;
use mask_workloads::{app_by_name, AppPair, AppProfile};

/// Options shared by all runs of one experiment.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Total GPU cores (Table 1: 30).
    pub n_cores: usize,
    /// Cycles per run.
    pub max_cycles: u64,
    /// Base PRNG seed.
    pub seed: u64,
    /// Warm-up cycles excluded from measurement (clamped to at most half
    /// of `max_cycles`). MASK's epoch mechanisms engage after the first
    /// 100K-cycle epoch, so the default warm-up is one epoch.
    pub warmup_cycles: u64,
    /// Machine template (its `n_cores` is overridden per run).
    pub gpu: GpuConfig,
    /// Worker policy for the job engine (default: `MASK_JOBS`, else the
    /// machine's available parallelism).
    pub jobs: JobOptions,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            n_cores: 30,
            max_cycles: mask_common::config::default_max_cycles(),
            seed: 0xA55A_2018,
            warmup_cycles: 100_000,
            gpu: GpuConfig::maxwell(),
            jobs: JobOptions::default(),
        }
    }
}

/// Result of one shared pair run plus its alone baselines.
#[derive(Clone, Debug, PartialEq)]
pub struct PairOutcome {
    /// Workload name (`A_B`).
    pub name: String,
    /// The design simulated.
    pub design: DesignKind,
    /// Per-app IPC in the shared run.
    pub shared_ipc: Vec<f64>,
    /// Per-app IPC running alone on the same core counts.
    pub alone_ipc: Vec<f64>,
    /// Weighted speedup (§6).
    pub weighted_speedup: f64,
    /// Aggregate IPC of the shared run (§7.1 "IPC throughput").
    pub ipc_throughput: f64,
    /// Maximum slowdown (§6).
    pub unfairness: f64,
    /// Full statistics of the shared run.
    pub stats: SimStats,
}

fn assemble_outcome(
    design: DesignKind,
    stats: SimStats,
    alone_ipc: Vec<f64>,
    name: String,
) -> PairOutcome {
    let shared_ipc: Vec<f64> = stats.apps.iter().map(mask_common::AppStats::ipc).collect();
    PairOutcome {
        name,
        design,
        weighted_speedup: weighted_speedup(&shared_ipc, &alone_ipc),
        ipc_throughput: shared_ipc.iter().sum(),
        unfairness: unfairness(&shared_ipc, &alone_ipc),
        shared_ipc,
        alone_ipc,
        stats,
    }
}

/// Runs single apps, pairs, and n-app mixes through the job engine.
#[derive(Clone, Debug)]
pub struct PairRunner {
    opts: RunOptions,
    pool: JobPool,
}

impl PairRunner {
    /// Creates a runner; its [`JobPool`] honours `opts.jobs` and shares the
    /// process-wide baseline cache.
    #[must_use]
    pub fn new(opts: RunOptions) -> Self {
        let pool = JobPool::with_options(opts.jobs);
        PairRunner { opts, pool }
    }

    /// Creates a runner on an explicit pool (e.g. one with a private
    /// baseline cache, or shared with another runner).
    #[must_use]
    pub fn with_pool(opts: RunOptions, pool: JobPool) -> Self {
        PairRunner { opts, pool }
    }

    /// The options in use.
    #[must_use]
    pub fn options(&self) -> &RunOptions {
        &self.opts
    }

    /// The job pool this runner submits to.
    #[must_use]
    pub fn pool(&self) -> &JobPool {
        &self.pool
    }

    /// Builds the [`SimJob`] for one placement under this runner's options.
    fn job(&self, design: DesignKind, specs: Vec<AppSpec>) -> SimJob {
        SimJob {
            design,
            specs,
            max_cycles: self.opts.max_cycles,
            warmup_cycles: self.opts.warmup_cycles,
            seed: self.opts.seed,
            gpu: self.opts.gpu.clone(),
        }
    }

    /// Splits `n_cores` evenly over `n` apps (remainder to the last app).
    fn even_split(&self, n: usize) -> Vec<usize> {
        let base = self.opts.n_cores / n;
        (0..n)
            .map(|i| {
                if i == n - 1 {
                    self.opts.n_cores - base * (n - 1)
                } else {
                    base
                }
            })
            .collect()
    }

    /// Runs an arbitrary placement and returns its statistics, measured
    /// after the warm-up window. Single-app placements are served from the
    /// baseline cache when available.
    #[must_use]
    pub fn run_apps(&self, design: DesignKind, specs: &[AppSpec]) -> SimStats {
        let jobs = [self.job(design, specs.to_vec())];
        self.pool
            .run_batch(&jobs)
            .pop()
            .expect("one job in, one result out")
    }

    /// IPC of `profile` running alone on `cores` cores under `design`
    /// (served from the process-wide baseline cache).
    #[must_use]
    pub fn alone_ipc(&self, design: DesignKind, profile: &'static AppProfile, cores: usize) -> f64 {
        let stats = self.run_apps(
            design,
            &[AppSpec {
                profile,
                n_cores: cores,
            }],
        );
        stats.apps[0].ipc()
    }

    /// Plans, executes, and assembles a whole batch: for every placement ×
    /// design, the shared run plus one alone baseline per member app are
    /// submitted as jobs in a single [`JobPool::run_batch`] call.
    ///
    /// Returns outcomes placement-major, design-minor: the outcome of
    /// `placements[p]` under `designs[d]` is at index `p * designs.len() + d`.
    ///
    /// # Panics
    ///
    /// Panics if any placement is empty.
    #[must_use]
    pub fn run_batch(
        &self,
        placements: &[Vec<AppSpec>],
        designs: &[DesignKind],
    ) -> Vec<PairOutcome> {
        // Plan: one shared job plus per-app alone jobs per placement × design.
        let mut jobs = Vec::new();
        for placement in placements {
            assert!(!placement.is_empty(), "need at least one application");
            for &design in designs {
                jobs.push(self.job(design, placement.clone()));
                for spec in placement {
                    jobs.push(self.job(design, vec![*spec]));
                }
            }
        }
        // Execute: the pool dedups equal jobs and fans out over workers.
        let stats = self.pool.run_batch(&jobs);
        // Assemble: walk the results in the exact order they were planned.
        let mut out = Vec::with_capacity(placements.len() * designs.len());
        let mut cursor = stats.into_iter();
        for placement in placements {
            let name = placement
                .iter()
                .map(|s| s.profile.name)
                .collect::<Vec<_>>()
                .join("_");
            for &design in designs {
                let shared = cursor.next().expect("one result per planned job");
                let alone_ipc: Vec<f64> = placement
                    .iter()
                    .map(|_| cursor.next().expect("one result per planned job").apps[0].ipc())
                    .collect();
                out.push(assemble_outcome(design, shared, alone_ipc, name.clone()));
            }
        }
        out
    }

    /// Runs every pair × design combination with even core splits in one
    /// batch. Outcomes are pair-major, design-minor (chunk by
    /// `designs.len()` to group per pair).
    #[must_use]
    pub fn run_pairs(&self, pairs: &[AppPair], designs: &[DesignKind]) -> Vec<PairOutcome> {
        let ca = self.opts.n_cores / 2;
        let cb = self.opts.n_cores - ca;
        let placements: Vec<Vec<AppSpec>> = pairs
            .iter()
            .map(|p| {
                vec![
                    AppSpec {
                        profile: p.a,
                        n_cores: ca,
                    },
                    AppSpec {
                        profile: p.b,
                        n_cores: cb,
                    },
                ]
            })
            .collect();
        self.run_batch(&placements, designs)
    }

    /// Runs every mix × design combination with even core splits in one
    /// batch. Outcomes are mix-major, design-minor.
    ///
    /// # Panics
    ///
    /// Panics if any mix is empty.
    #[must_use]
    pub fn run_multi_batch(
        &self,
        mixes: &[Vec<&'static AppProfile>],
        designs: &[DesignKind],
    ) -> Vec<PairOutcome> {
        let placements: Vec<Vec<AppSpec>> = mixes
            .iter()
            .map(|mix| {
                assert!(!mix.is_empty(), "need at least one application");
                let split = self.even_split(mix.len());
                mix.iter()
                    .zip(split)
                    .map(|(&profile, n_cores)| AppSpec { profile, n_cores })
                    .collect()
            })
            .collect();
        self.run_batch(&placements, designs)
    }

    /// Runs a two-application workload with an even core split.
    #[must_use]
    pub fn run_pair(
        &self,
        a: &'static AppProfile,
        b: &'static AppProfile,
        design: DesignKind,
    ) -> PairOutcome {
        let ca = self.opts.n_cores / 2;
        let cb = self.opts.n_cores - ca;
        self.run_pair_split(a, b, design, ca, cb)
    }

    /// Runs a two-application workload with an explicit core split.
    #[must_use]
    pub fn run_pair_split(
        &self,
        a: &'static AppProfile,
        b: &'static AppProfile,
        design: DesignKind,
        cores_a: usize,
        cores_b: usize,
    ) -> PairOutcome {
        let placement = vec![
            AppSpec {
                profile: a,
                n_cores: cores_a,
            },
            AppSpec {
                profile: b,
                n_cores: cores_b,
            },
        ];
        self.run_batch(std::slice::from_ref(&placement), &[design])
            .pop()
            .expect("one placement in, one outcome out")
    }

    /// Runs a pair looked up by benchmark names.
    #[must_use]
    pub fn run_named(&self, a: &str, b: &str, design: DesignKind) -> Option<PairOutcome> {
        Some(self.run_pair(app_by_name(a)?, app_by_name(b)?, design))
    }

    /// Finds the best core split for a pair by probing candidate splits
    /// with short runs, then runs the full-length simulation at the winner.
    ///
    /// This implements the paper's oracle scheduler (§6): "the scheduler
    /// partitions the cores according to the best weighted speedup for that
    /// pair found by an exhaustive search over all possible static core
    /// partitionings". We bound the search to `candidates` splits (cores
    /// assigned to the first app) probed at `probe_cycles` each; pass every
    /// value in `1..n_cores` for the paper's exhaustive variant.
    ///
    /// All candidate probes are submitted as one batch, and their alone
    /// baselines flow through the same shared cache as everything else —
    /// identical probe baselines are simulated once, not once per candidate.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    #[must_use]
    pub fn run_pair_oracle(
        &self,
        a: &'static AppProfile,
        b: &'static AppProfile,
        design: DesignKind,
        candidates: &[usize],
        probe_cycles: u64,
    ) -> PairOutcome {
        assert!(!candidates.is_empty(), "need at least one candidate split");
        let probe_runner = PairRunner::with_pool(
            RunOptions {
                max_cycles: probe_cycles.max(2),
                warmup_cycles: probe_cycles / 4,
                ..self.opts.clone()
            },
            self.pool.clone(),
        );
        let valid: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&ca| ca != 0 && ca < self.opts.n_cores)
            .collect();
        let placements: Vec<Vec<AppSpec>> = valid
            .iter()
            .map(|&ca| {
                vec![
                    AppSpec {
                        profile: a,
                        n_cores: ca,
                    },
                    AppSpec {
                        profile: b,
                        n_cores: self.opts.n_cores - ca,
                    },
                ]
            })
            .collect();
        let probes = probe_runner.run_batch(&placements, &[design]);
        let mut best = (f64::MIN, self.opts.n_cores / 2);
        for (&ca, o) in valid.iter().zip(&probes) {
            if o.weighted_speedup > best.0 {
                best = (o.weighted_speedup, ca);
            }
        }
        self.run_pair_split(a, b, design, best.1, self.opts.n_cores - best.1)
    }

    /// Runs `n` applications with an even core split, returning the shared
    /// stats plus per-app weighted-speedup inputs.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty.
    #[must_use]
    pub fn run_multi(&self, profiles: &[&'static AppProfile], design: DesignKind) -> PairOutcome {
        self.run_multi_batch(std::slice::from_ref(&profiles.to_vec()), &[design])
            .pop()
            .expect("one mix in, one outcome out")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BaselineCache;
    use std::sync::Arc;

    fn small_opts() -> RunOptions {
        let mut gpu = GpuConfig::maxwell();
        gpu.warps_per_core = 16;
        RunOptions {
            n_cores: 4,
            max_cycles: 6_000,
            seed: 1,
            warmup_cycles: 1_000,
            gpu,
            jobs: JobOptions::serial(),
        }
    }

    fn private_runner() -> PairRunner {
        PairRunner::with_pool(
            small_opts(),
            JobPool::with_workers(1).with_cache(BaselineCache::new()),
        )
    }

    #[test]
    fn pair_outcome_has_consistent_metrics() {
        let r = PairRunner::new(small_opts());
        let o = r
            .run_named("HISTO", "GUP", DesignKind::SharedTlb)
            .expect("known apps");
        assert_eq!(o.shared_ipc.len(), 2);
        assert_eq!(o.name, "HISTO_GUP");
        assert!(o.weighted_speedup > 0.0 && o.weighted_speedup <= 2.5);
        assert!(o.unfairness >= 1.0 - 1e-9 || o.unfairness > 0.0);
        assert!((o.ipc_throughput - o.shared_ipc.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn alone_runs_are_cached_exactly_once() {
        let cache = BaselineCache::new();
        let r = PairRunner::with_pool(
            small_opts(),
            JobPool::with_workers(1).with_cache(Arc::clone(&cache)),
        );
        let p = app_by_name("GUP").expect("exists");
        let a1 = r.alone_ipc(DesignKind::SharedTlb, p, 2);
        let a2 = r.alone_ipc(DesignKind::SharedTlb, p, 2);
        assert_eq!(a1, a2);
        let cs = cache.stats();
        assert_eq!(cs.entries, 1);
        assert_eq!(cs.misses, 1, "baseline simulated exactly once");
        assert_eq!(cs.hits, 1, "repeat answered from the cache");
    }

    #[test]
    fn unknown_app_yields_none() {
        let r = private_runner();
        assert!(r.run_named("NOPE", "GUP", DesignKind::Ideal).is_none());
    }

    #[test]
    fn multi_run_splits_cores() {
        let r = private_runner();
        let apps = ["GUP", "HS", "BP"].map(|n| app_by_name(n).expect("known"));
        let o = r.run_multi(&apps, DesignKind::SharedTlb);
        assert_eq!(o.shared_ipc.len(), 3);
        assert_eq!(o.name, "GUP_HS_BP");
        // Cores split 1/1/2 over 4 cores: all apps make progress.
        assert!(o.shared_ipc.iter().all(|&i| i > 0.0));
    }

    #[test]
    fn batch_order_matches_single_runs() {
        let r = private_runner();
        let pairs = [
            AppPair {
                a: app_by_name("HISTO").expect("known"),
                b: app_by_name("GUP").expect("known"),
            },
            AppPair {
                a: app_by_name("MUM").expect("known"),
                b: app_by_name("LPS").expect("known"),
            },
        ];
        let designs = [DesignKind::SharedTlb, DesignKind::Mask];
        let batch = r.run_pairs(&pairs, &designs);
        assert_eq!(batch.len(), 4);
        for (i, pair) in pairs.iter().enumerate() {
            for (j, &design) in designs.iter().enumerate() {
                let got = &batch[i * designs.len() + j];
                assert_eq!(got.name, pair.name());
                assert_eq!(got.design, design);
                assert_eq!(*got, r.run_pair(pair.a, pair.b, design));
            }
        }
    }

    #[test]
    fn oracle_split_is_at_least_as_good_as_even() {
        let r = private_runner();
        let a = app_by_name("MUM").expect("known");
        let b = app_by_name("LPS").expect("known");
        let even = r.run_pair(a, b, DesignKind::SharedTlb);
        let oracle = r.run_pair_oracle(a, b, DesignKind::SharedTlb, &[1, 2, 3], 3_000);
        // The oracle probes include the even split, so modulo probe noise
        // it should not be substantially worse.
        assert!(
            oracle.weighted_speedup >= even.weighted_speedup * 0.9,
            "oracle ({:.3}) much worse than even split ({:.3})",
            oracle.weighted_speedup,
            even.weighted_speedup
        );
    }

    #[test]
    fn oracle_probe_baselines_land_in_the_shared_cache() {
        let cache = BaselineCache::new();
        let r = PairRunner::with_pool(
            small_opts(),
            JobPool::with_workers(1).with_cache(Arc::clone(&cache)),
        );
        let a = app_by_name("MUM").expect("known");
        let b = app_by_name("LPS").expect("known");
        let _ = r.run_pair_oracle(a, b, DesignKind::SharedTlb, &[1, 2, 3], 3_000);
        let after_first = cache.stats();
        // 3 probe splits × 2 apps at probe length (all distinct core
        // counts) + 2 full-length baselines at the winning split.
        assert_eq!(after_first.entries as u64, after_first.misses);
        // A second oracle run over the same candidates re-simulates nothing.
        let _ = r.run_pair_oracle(a, b, DesignKind::SharedTlb, &[1, 2, 3], 3_000);
        let after_second = cache.stats();
        assert_eq!(after_second.misses, after_first.misses);
        assert!(after_second.hits > after_first.hits);
    }

    #[test]
    fn ideal_weighted_speedup_beats_shared_tlb() {
        // MUM scatters 4 pages per memory instruction, so translation
        // pressure saturates the walker even on the tiny test GPU.
        let r = PairRunner::new(RunOptions {
            max_cycles: 12_000,
            ..small_opts()
        });
        let base = r
            .run_named("MUM", "RED", DesignKind::SharedTlb)
            .expect("known");
        let ideal = r.run_named("MUM", "RED", DesignKind::Ideal).expect("known");
        assert!(
            ideal.ipc_throughput > base.ipc_throughput,
            "ideal {:.3} vs base {:.3}",
            ideal.ipc_throughput,
            base.ipc_throughput
        );
    }
}
