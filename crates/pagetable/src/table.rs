//! Radix page tables materialized in simulated physical memory.

use crate::frame::FrameAllocator;
use mask_common::addr::{levels_for_page_size, LineAddr, Ppn, Vpn, BITS_PER_LEVEL};
use mask_common::config::AllocPolicy;
use mask_common::ids::Asid;
use mask_common::req::WalkLevel;

/// Entries per page-table node (512 for 9 radix bits).
const NODE_ENTRIES: usize = 1 << BITS_PER_LEVEL;
/// Bytes per page-table entry.
const PTE_BYTES: u64 = 8;

/// One interior node of the radix tree.
#[derive(Clone, Debug)]
struct Node {
    /// 4 KB frame number holding this node in physical memory.
    frame: u64,
    /// Child node indices (into `PageTable::nodes`) for interior levels.
    children: Box<[u32; NODE_ENTRIES]>,
    /// Leaf translations (valid only at the deepest level).
    leaves: Box<[u64; NODE_ENTRIES]>,
}

const NO_CHILD: u32 = u32::MAX;
const NO_LEAF: u64 = u64::MAX;

impl Node {
    fn new(frame: u64) -> Self {
        Node {
            frame,
            children: Box::new([NO_CHILD; NODE_ENTRIES]),
            leaves: Box::new([NO_LEAF; NODE_ENTRIES]),
        }
    }
}

/// The page table of a single address space.
///
/// Walk depth is determined by the data-page size: 4 levels for 4 KB pages,
/// 3 for 2 MB pages (§7.3 large-page study).
#[derive(Clone, Debug)]
pub struct PageTable {
    asid: Asid,
    page_size_log2: u32,
    levels: u8,
    nodes: Vec<Node>,
    /// Number of mapped leaf pages.
    mapped: usize,
}

impl PageTable {
    /// Creates an empty page table for `asid`, allocating its root node.
    pub fn new(asid: Asid, alloc: &mut FrameAllocator) -> Self {
        let page_size_log2 = alloc.page_size_log2();
        let root = Node::new(alloc.alloc_node());
        PageTable {
            asid,
            page_size_log2,
            levels: levels_for_page_size(page_size_log2),
            nodes: vec![root],
            mapped: 0,
        }
    }

    /// The owning address space.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// Number of radix levels a full walk traverses.
    pub fn levels(&self) -> u8 {
        self.levels
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.mapped
    }

    /// Functionally translates `vpn`, without modelling any latency.
    ///
    /// Walks the radix tree directly: three or four dependent array loads,
    /// which beats a search-tree side index once a workload has mapped
    /// hundreds of thousands of pages (this runs on every issued memory
    /// instruction and every completed walk).
    pub fn translate(&self, vpn: Vpn) -> Option<Ppn> {
        let mut node = 0usize;
        for level in 1..self.levels {
            let idx = vpn.level_index(level, self.page_size_log2) as usize;
            let child = self.nodes[node].children[idx];
            if child == NO_CHILD {
                return None;
            }
            node = child as usize;
        }
        let leaf_idx = vpn.level_index(self.levels, self.page_size_log2) as usize;
        let leaf = self.nodes[node].leaves[leaf_idx];
        (leaf != NO_LEAF).then_some(Ppn(leaf))
    }

    /// Maps `vpn`, allocating intermediate nodes and a data frame on first
    /// touch; returns the (possibly pre-existing) translation.
    ///
    /// The paper's experiments run with pre-faulted memory ("Address
    /// translation inevitably introduces page faults. ... We leave this as
    /// future work", §5.5), so mapping never fails and is not timed.
    pub fn ensure_mapped(&mut self, vpn: Vpn, alloc: &mut FrameAllocator) -> Ppn {
        let mut node = 0usize;
        for level in 1..self.levels {
            let idx = vpn.level_index(level, self.page_size_log2) as usize;
            let child = self.nodes[node].children[idx];
            node = if child == NO_CHILD {
                let frame = alloc.alloc_node();
                let new_idx = self.nodes.len() as u32;
                self.nodes.push(Node::new(frame));
                self.nodes[node].children[idx] = new_idx;
                new_idx as usize
            } else {
                child as usize
            };
        }
        let leaf_idx = vpn.level_index(self.levels, self.page_size_log2) as usize;
        let leaf = self.nodes[node].leaves[leaf_idx];
        if leaf != NO_LEAF {
            return Ppn(leaf);
        }
        let ppn = alloc.alloc_data(self.asid);
        self.nodes[node].leaves[leaf_idx] = ppn.0;
        self.mapped += 1;
        ppn
    }

    /// The physical line a walk of `vpn` touches at `level`.
    ///
    /// Level 1 reads the root node; level `k` reads the node reached after
    /// `k - 1` radix steps. The returned address is the PTE slot's line, so
    /// nearby VPNs share lines at shallow levels (16 PTEs per 128 B line).
    ///
    /// # Panics
    ///
    /// Panics if `vpn` is not mapped (callers must `ensure_mapped` first) or
    /// if `level` exceeds the walk depth.
    pub fn walk_line(&self, vpn: Vpn, level: WalkLevel) -> LineAddr {
        assert!(level.raw() <= self.levels, "level beyond walk depth");
        let mut node = 0usize;
        for l in 1..level.raw() {
            let idx = vpn.level_index(l, self.page_size_log2) as usize;
            let child = self.nodes[node].children[idx];
            assert!(child != NO_CHILD, "walk_line on unmapped vpn {vpn:?}");
            node = child as usize;
        }
        let idx = vpn.level_index(level.raw(), self.page_size_log2);
        let byte = (self.nodes[node].frame << 12) + idx * PTE_BYTES;
        mask_common::addr::PhysAddr::new(byte).line()
    }
}

/// All address spaces' page tables plus the shared frame allocator.
#[derive(Clone, Debug)]
pub struct PageTables {
    alloc: FrameAllocator,
    tables: Vec<PageTable>,
}

impl PageTables {
    /// Creates tables for `n_asids` address spaces with the given page size
    /// and a [`AllocPolicy::Linear`] frame allocator.
    pub fn new(n_asids: usize, page_size_log2: u32) -> Self {
        PageTables::with_alloc(n_asids, page_size_log2, AllocPolicy::Linear)
    }

    /// Like [`PageTables::new`] with an explicit frame-allocation policy:
    /// [`AllocPolicy::ColorAware`] stripes each address space's data frames
    /// over `n_asids` page colors (see [`FrameAllocator::with_colors`]).
    pub fn with_alloc(n_asids: usize, page_size_log2: u32, policy: AllocPolicy) -> Self {
        let mut alloc = match policy {
            AllocPolicy::Linear => FrameAllocator::new(page_size_log2),
            AllocPolicy::ColorAware => {
                FrameAllocator::with_colors(page_size_log2, n_asids.max(1) as u64)
            }
        };
        let tables = (0..n_asids)
            .map(|i| PageTable::new(Asid::new(i as u16), &mut alloc))
            .collect();
        PageTables { alloc, tables }
    }

    /// The table for `asid`.
    ///
    /// # Panics
    ///
    /// Panics if `asid` was not created at construction time.
    pub fn table(&self, asid: Asid) -> &PageTable {
        &self.tables[asid.index()]
    }

    /// Number of address spaces.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether no address spaces exist.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Maps `vpn` in `asid` on demand and returns its translation.
    pub fn ensure_mapped(&mut self, asid: Asid, vpn: Vpn) -> Ppn {
        let idx = asid.index();
        self.tables[idx].ensure_mapped(vpn, &mut self.alloc)
    }

    /// Like [`PageTables::ensure_mapped`], additionally reporting whether
    /// the page was newly mapped (a demand-paging fault).
    pub fn ensure_mapped_report(&mut self, asid: Asid, vpn: Vpn) -> (Ppn, bool) {
        if let Some(ppn) = self.translate(asid, vpn) {
            return (ppn, false);
        }
        (self.ensure_mapped(asid, vpn), true)
    }

    /// Functional translation (no latency modelling).
    pub fn translate(&self, asid: Asid, vpn: Vpn) -> Option<Ppn> {
        self.tables[asid.index()].translate(vpn)
    }

    /// The physical line touched at `level` of a walk of `(asid, vpn)`.
    pub fn walk_line(&self, asid: Asid, vpn: Vpn, level: WalkLevel) -> LineAddr {
        self.tables[asid.index()].walk_line(vpn, level)
    }

    /// Walk depth (same for all address spaces).
    pub fn levels(&self) -> u8 {
        self.tables.first().map_or(4, PageTable::levels)
    }
}

impl mask_common::snapshot::Snapshot for PageTable {
    /// Serializes the radix nodes densely (frame, children, leaves) plus the
    /// mapped-page count; the ASID, page size, and level count are fixed at
    /// construction.
    fn snapshot(&self, w: &mut mask_common::snapshot::SnapshotWriter) {
        w.seq(self.nodes.len());
        for node in &self.nodes {
            w.u64(node.frame);
            for &c in node.children.iter() {
                w.u32(c);
            }
            for &l in node.leaves.iter() {
                w.u64(l);
            }
        }
        w.usize(self.mapped);
    }

    fn restore(
        &mut self,
        r: &mut mask_common::snapshot::SnapshotReader<'_>,
    ) -> Result<(), mask_common::snapshot::SnapshotError> {
        let n = r.seq()?;
        if n == 0 {
            return Err(mask_common::snapshot::SnapshotError::Malformed(
                "page table without a root node",
            ));
        }
        self.nodes.clear();
        for _ in 0..n {
            let frame = r.u64()?;
            let mut node = Node::new(frame);
            for c in node.children.iter_mut() {
                *c = r.u32()?;
            }
            for l in node.leaves.iter_mut() {
                *l = r.u64()?;
            }
            self.nodes.push(node);
        }
        self.mapped = r.usize()?;
        Ok(())
    }
}

impl mask_common::snapshot::Snapshot for PageTables {
    fn snapshot(&self, w: &mut mask_common::snapshot::SnapshotWriter) {
        w.section("pagetables");
        self.alloc.snapshot(w);
        w.seq(self.tables.len());
        for t in &self.tables {
            t.snapshot(w);
        }
    }

    fn restore(
        &mut self,
        r: &mut mask_common::snapshot::SnapshotReader<'_>,
    ) -> Result<(), mask_common::snapshot::SnapshotError> {
        r.section("pagetables")?;
        self.alloc.restore(r)?;
        r.seq_exact(self.tables.len())?;
        for t in &mut self.tables {
            t.restore(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mask_common::addr::{PAGE_SIZE_2M_LOG2, PAGE_SIZE_4K_LOG2};
    use std::collections::HashSet;

    fn tables() -> PageTables {
        PageTables::new(2, PAGE_SIZE_4K_LOG2)
    }

    #[test]
    fn map_then_translate_roundtrip() {
        let mut pts = tables();
        let vpn = Vpn(0x12345);
        let ppn = pts.ensure_mapped(Asid::new(0), vpn);
        assert_eq!(pts.translate(Asid::new(0), vpn), Some(ppn));
        // Mapping again returns the same frame.
        assert_eq!(pts.ensure_mapped(Asid::new(0), vpn), ppn);
    }

    #[test]
    fn unmapped_translates_to_none() {
        let pts = tables();
        assert_eq!(pts.translate(Asid::new(0), Vpn(0x1)), None);
    }

    #[test]
    fn asids_are_isolated() {
        let mut pts = tables();
        let vpn = Vpn(0x777);
        let p0 = pts.ensure_mapped(Asid::new(0), vpn);
        let p1 = pts.ensure_mapped(Asid::new(1), vpn);
        assert_ne!(
            p0, p1,
            "same VPN in different address spaces gets different frames"
        );
        assert_eq!(pts.translate(Asid::new(0), vpn), Some(p0));
        assert_eq!(pts.translate(Asid::new(1), vpn), Some(p1));
    }

    #[test]
    fn root_level_lines_are_shared_leaf_lines_are_not() {
        let mut pts = tables();
        let asid = Asid::new(0);
        // Map pages spread over a large footprint: distinct leaf nodes,
        // common root.
        let vpns: Vec<Vpn> = (0..256u64).map(|i| Vpn(i * 513)).collect();
        for &v in &vpns {
            pts.ensure_mapped(asid, v);
        }
        let root_lines: HashSet<_> = vpns
            .iter()
            .map(|&v| pts.walk_line(asid, v, WalkLevel::new(1)))
            .collect();
        let leaf_lines: HashSet<_> = vpns
            .iter()
            .map(|&v| pts.walk_line(asid, v, WalkLevel::new(4)))
            .collect();
        assert!(
            root_lines.len() <= 2,
            "root walk lines should be heavily shared"
        );
        assert!(
            leaf_lines.len() > vpns.len() / 2,
            "leaf walk lines should be mostly distinct"
        );
    }

    #[test]
    fn sequential_pages_share_leaf_pte_lines() {
        // 16 PTEs fit in one 128 B line, so 16 consecutive VPNs share the
        // leaf line — the spatial locality that makes page-walk caches work.
        let mut pts = tables();
        let asid = Asid::new(0);
        for i in 0..16u64 {
            pts.ensure_mapped(asid, Vpn(i));
        }
        let lines: HashSet<_> = (0..16u64)
            .map(|i| pts.walk_line(asid, Vpn(i), WalkLevel::new(4)))
            .collect();
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn large_pages_walk_three_levels() {
        let mut pts = PageTables::new(1, PAGE_SIZE_2M_LOG2);
        assert_eq!(pts.levels(), 3);
        let vpn = Vpn(0xabc);
        pts.ensure_mapped(Asid::new(0), vpn);
        // Level 3 is the leaf; level 4 must panic.
        let _ = pts.walk_line(Asid::new(0), vpn, WalkLevel::new(3));
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pts.walk_line(Asid::new(0), vpn, WalkLevel::new(4))
        }));
        assert!(res.is_err());
    }

    #[test]
    #[should_panic(expected = "walk_line on unmapped vpn")]
    fn walk_line_requires_mapping() {
        let pts = tables();
        let _ = pts.walk_line(Asid::new(0), Vpn(0x55), WalkLevel::new(4));
    }

    #[test]
    fn color_aware_tables_stripe_data_frames() {
        let mut pts = PageTables::with_alloc(2, PAGE_SIZE_4K_LOG2, AllocPolicy::ColorAware);
        for i in 0..64u64 {
            assert_eq!(pts.ensure_mapped(Asid::new(0), Vpn(i)).0 % 2, 0);
            assert_eq!(pts.ensure_mapped(Asid::new(1), Vpn(i)).0 % 2, 1);
        }
    }

    #[test]
    fn distinct_mappings_get_distinct_frames() {
        let mut pts = tables();
        let asid = Asid::new(0);
        let mut frames = HashSet::new();
        for i in 0..2000u64 {
            assert!(frames.insert(pts.ensure_mapped(asid, Vpn(i * 7))));
        }
    }
}
