//! Quickstart: share a GPU between two applications and compare designs.
//!
//! Runs the `CONS_LPS` workload (a TLB-thrashing scatter kernel next to a
//! TLB-friendly stencil kernel) under the SharedTLB baseline, full MASK,
//! and the Ideal TLB, then prints weighted speedup, per-app IPC, and
//! unfairness for each.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mask_core::prelude::*;

fn main() {
    // 30-core Maxwell-like GPU (Table 1), 150K measured cycles after a
    // 100K-cycle warm-up. Raise max_cycles for higher fidelity.
    let opts = RunOptions {
        max_cycles: 250_000,
        ..Default::default()
    };
    let runner = PairRunner::new(opts);

    println!("CONS + LPS sharing a 30-core GPU (15 cores each)\n");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "design", "WS", "IPC(sum)", "unfair", "IPC(CONS)", "IPC(LPS)"
    );
    for design in [DesignKind::SharedTlb, DesignKind::Mask, DesignKind::Ideal] {
        let o = runner
            .run_named("CONS", "LPS", design)
            .expect("benchmarks exist");
        println!(
            "{:<10} {:>9.3} {:>9.2} {:>9.2} {:>10.2} {:>10.2}",
            design.label(),
            o.weighted_speedup,
            o.ipc_throughput,
            o.unfairness,
            o.shared_ipc[0],
            o.shared_ipc[1],
        );
    }
    println!("\nMASK recovers translation throughput lost to shared-TLB");
    println!("contention; Ideal shows the no-translation upper bound.");
}
