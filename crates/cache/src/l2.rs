//! The banked, timed shared L2 cache.
//!
//! Table 1: "2MB total, 16-way associative, LRU, 16 cache banks, 2 ports
//! per cache bank, 10-cycle latency". Requests queue per bank; each bank
//! services at most `ports_per_bank` requests per cycle once they have been
//! queued for at least the pipeline latency, so *queueing latency emerges*
//! — the effect §4.3/§5.3 identify as a major cost for page-table walks.
//!
//! With Address-Translation-Aware L2 Bypass enabled, translation requests
//! whose walk level is currently bypassing skip the bank queue entirely
//! (no probe, no fill) and go straight to DRAM, "minimiz\[ing\] the impact of
//! long L2 cache queuing latency" (§7.2).

use crate::bypass::BypassMonitor;
use crate::data::DataCache;
use crate::mshr::{MshrAlloc, MshrTable};
use mask_common::addr::LineAddr;
use mask_common::config::{CacheConfig, L2Policy};
use mask_common::req::{MemRequest, RequestClass};
use mask_common::Cycle;
use std::collections::VecDeque;

/// How an L2 access was ultimately serviced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum L2Outcome {
    /// Hit in the L2 array.
    Hit,
    /// Missed; serviced by DRAM and filled into the array.
    Miss,
    /// Bypassed the L2 entirely (MASK translation bypass).
    Bypassed,
}

/// A completed L2 access returned to the requester.
#[derive(Clone, Copy, Debug)]
pub struct L2Response {
    /// The original request.
    pub req: MemRequest,
    /// How it was serviced.
    pub outcome: L2Outcome,
}

#[derive(Clone, Debug)]
struct Bank {
    /// FIFO of (request, earliest service cycle).
    queue: VecDeque<(MemRequest, Cycle)>,
    mshr: MshrTable<MemRequest>,
}

/// The shared L2 cache.
#[derive(Clone, Debug)]
pub struct SharedL2Cache {
    array: DataCache,
    banks: Vec<Bank>,
    monitor: BypassMonitor,
    bypass_enabled: bool,
    latency: u64,
    ports: usize,
    /// MSHRs for requests that bypassed the banks.
    bypass_mshr: MshrTable<MemRequest>,
    to_dram: Vec<MemRequest>,
    responses: Vec<L2Response>,
    /// Scratch for `dram_fill`: waiters gathered from the banked and bypass
    /// MSHRs before being turned into responses. Reused across fills.
    scratch_fill: Vec<MemRequest>,
    /// Sanitizer instance id for cycle-monotonicity tracking.
    san_id: u64,
}

impl SharedL2Cache {
    /// Builds the L2 from its configuration under `policy` — the one
    /// [`DesignSpec`](mask_common::config::DesignSpec) axis this layer
    /// consumes. [`L2Policy::SharedBypass`] activates MASK's
    /// translation-aware bypass (mechanism ❷);
    /// [`L2Policy::WayPartitioned`] / [`L2Policy::SetColored`] split the
    /// array between address spaces (no-ops for a single app).
    pub fn new(cfg: &CacheConfig, policy: L2Policy, n_asids: usize) -> Self {
        Self::with_bypass_margin(cfg, policy, n_asids, crate::bypass::BYPASS_MARGIN)
    }

    /// Like [`SharedL2Cache::new`] with an explicit bypass hysteresis
    /// margin (ablation studies).
    pub fn with_bypass_margin(
        cfg: &CacheConfig,
        policy: L2Policy,
        n_asids: usize,
        margin: f64,
    ) -> Self {
        let mut array = DataCache::new(cfg.bytes, cfg.assoc);
        if n_asids > 1 {
            match policy {
                L2Policy::WayPartitioned => array.partition_ways(n_asids),
                L2Policy::SetColored => array.partition_sets(n_asids),
                L2Policy::Shared | L2Policy::SharedBypass => {}
            }
        }
        SharedL2Cache {
            array,
            banks: (0..cfg.banks)
                .map(|_| Bank {
                    queue: VecDeque::new(),
                    mshr: MshrTable::labelled("l2-bank-mshr", cfg.mshrs),
                })
                .collect(),
            monitor: BypassMonitor::with_margin(n_asids, margin),
            bypass_enabled: matches!(policy, L2Policy::SharedBypass),
            latency: cfg.latency,
            ports: cfg.ports_per_bank,
            bypass_mshr: MshrTable::labelled("l2-bypass-mshr", cfg.mshrs * cfg.banks),
            to_dram: Vec::new(),
            responses: Vec::new(),
            scratch_fill: Vec::new(),
            san_id: mask_sanitizer::register_component("l2-cache"),
        }
    }

    /// Statically partitions the array's ways among `n_apps` (the `Static`
    /// baseline design).
    pub fn partition_ways(&mut self, n_apps: usize) {
        self.array.partition_ways(n_apps);
    }

    fn bank_index(&self, line: LineAddr) -> usize {
        // Bank counts are powers of two in every shipped geometry; the mask
        // is the same residue as `%` without a per-request 64-bit divide.
        let n = self.banks.len() as u64;
        let folded = line.0 ^ (line.0 >> 8);
        if n.is_power_of_two() {
            (folded & (n - 1)) as usize
        } else {
            (folded % n) as usize
        }
    }

    /// Accepts a request into the L2 at cycle `now`.
    ///
    /// Translation requests at a bypassing walk level skip the banks and go
    /// straight toward DRAM (merged through the bypass MSHRs).
    pub fn enqueue(&mut self, req: MemRequest, now: Cycle) {
        // Conservation: every request accepted here leaves exactly once via
        // `take_responses`.
        mask_sanitizer::issue("l2-cache", req.id.0);
        if self.bypass_enabled {
            if let RequestClass::Translation(level) = req.class {
                let bypass = self.monitor.should_bypass(req.asid, level);
                mask_obs::hooks::bypass_decision(req.asid.index() as u16, level.raw(), bypass);
                if bypass {
                    match self.bypass_mshr.allocate(req.line, req) {
                        MshrAlloc::Primary => {
                            let mut fwd = req;
                            fwd.issued_at = now;
                            self.to_dram.push(fwd);
                        }
                        MshrAlloc::Secondary => {}
                        MshrAlloc::Full => {
                            // Fall back to the banked path under extreme
                            // pressure rather than dropping the request.
                            let bank = self.bank_index(req.line);
                            self.banks[bank].queue.push_back((req, now + self.latency));
                            return;
                        }
                    }
                    return;
                }
            }
        }
        let bank = self.bank_index(req.line);
        self.banks[bank].queue.push_back((req, now + self.latency));
    }

    /// Advances one cycle: each bank services up to `ports` ready requests.
    pub fn tick(&mut self, now: Cycle) {
        mask_sanitizer::cycle(self.san_id, "l2-cache", now);
        for b in 0..self.banks.len() {
            for _ in 0..self.ports {
                let Some(&(req, ready)) = self.banks[b].queue.front() else {
                    break;
                };
                if ready > now {
                    break;
                }
                // Probe the array.
                let hit = self.array.probe(req.line, req.asid);
                self.monitor.record(req.asid, req.class, hit);
                if hit {
                    self.banks[b].queue.pop_front();
                    self.responses.push(L2Response {
                        req,
                        outcome: L2Outcome::Hit,
                    });
                } else {
                    match self.banks[b].mshr.allocate(req.line, req) {
                        MshrAlloc::Primary => {
                            self.banks[b].queue.pop_front();
                            let mut fwd = req;
                            fwd.issued_at = now;
                            self.to_dram.push(fwd);
                        }
                        MshrAlloc::Secondary => {
                            self.banks[b].queue.pop_front();
                        }
                        MshrAlloc::Full => break, // head-of-line stall: retry next cycle
                    }
                }
            }
        }
    }

    /// Delivers a DRAM fill for `line`: wakes all waiters and fills the
    /// array (unless only bypassed requests wanted the line).
    pub fn dram_fill(&mut self, line: LineAddr, _now: Cycle) {
        let bank = self.bank_index(line);
        let mut gathered = std::mem::take(&mut self.scratch_fill);
        gathered.clear();
        let n_banked = self.banks[bank].mshr.complete_into(line, &mut gathered);
        self.bypass_mshr.complete_into(line, &mut gathered);
        if n_banked > 0 {
            // Fill on behalf of the first demander's address space (only
            // relevant under way partitioning / set coloring; every
            // physical line belongs to exactly one application, so all
            // gathered demanders share an ASID).
            self.array.fill(line, gathered[0].asid);
        }
        for (i, req) in gathered.drain(..).enumerate() {
            let outcome = if i < n_banked {
                L2Outcome::Miss
            } else {
                L2Outcome::Bypassed
            };
            self.responses.push(L2Response { req, outcome });
        }
        self.scratch_fill = gathered;
    }

    /// Drains requests destined for DRAM (call every cycle).
    ///
    /// Allocating wrapper around [`SharedL2Cache::drain_dram_requests_into`]
    /// for tests and cold paths.
    pub fn take_dram_requests(&mut self) -> Vec<MemRequest> {
        // lint: allow(hotpath) -- allocating wrapper for tests/cold paths.
        let mut out = Vec::new();
        self.drain_dram_requests_into(&mut out);
        out
    }

    /// Moves all pending DRAM-bound requests into `out` (not cleared).
    pub fn drain_dram_requests_into(&mut self, out: &mut Vec<MemRequest>) {
        out.append(&mut self.to_dram);
    }

    /// Drains completed responses (call every cycle).
    ///
    /// Allocating wrapper around [`SharedL2Cache::drain_responses_into`]
    /// for tests and cold paths.
    pub fn take_responses(&mut self) -> Vec<L2Response> {
        // lint: allow(hotpath) -- allocating wrapper for tests/cold paths.
        let mut out = Vec::new();
        self.drain_responses_into(&mut out);
        out
    }

    /// Moves all completed responses into `out` (not cleared), retiring
    /// them from the sanitizer's conservation ledger.
    pub fn drain_responses_into(&mut self, out: &mut Vec<L2Response>) {
        if mask_sanitizer::is_enabled() {
            for r in &self.responses {
                mask_sanitizer::retire("l2-cache", r.req.id.0);
            }
        }
        out.append(&mut self.responses);
    }

    /// Earliest cycle at which this cache can make progress: `Some(0)` when
    /// output buffers hold undelivered work, the earliest bank-queue ready
    /// cycle otherwise, and `None` when fully drained (MSHR fills arrive
    /// via `dram_fill`, so outstanding misses are DRAM events, not ours).
    pub fn next_event(&self) -> Option<Cycle> {
        if !self.to_dram.is_empty() || !self.responses.is_empty() {
            return Some(0);
        }
        // Bank queues are FIFO with a constant latency offset, so the front
        // entry is each bank's earliest ready cycle.
        self.banks
            .iter()
            .filter_map(|b| b.queue.front().map(|&(_, ready)| ready))
            .min()
    }

    /// Ends a monitoring epoch (latches new bypass decisions).
    pub fn end_epoch(&mut self) {
        self.monitor.end_epoch();
    }

    /// Read access to the bypass monitor (for experiment reporting).
    pub fn monitor(&self) -> &BypassMonitor {
        &self.monitor
    }

    /// Total queued requests across banks (queueing-pressure metric).
    pub fn queued(&self) -> usize {
        self.banks.iter().map(|b| b.queue.len()).sum()
    }

    /// Flushes the data array (context-switch experiments).
    pub fn flush(&mut self) {
        self.array.flush();
    }

    /// Visits every request currently held inside the L2 — bank queues,
    /// banked MSHR waiters, bypass MSHR waiters, and undelivered responses.
    ///
    /// This set is exactly the requests accepted by [`SharedL2Cache::enqueue`]
    /// and not yet drained by [`SharedL2Cache::drain_responses_into`], with
    /// each request visited once (`to_dram` copies are duplicates of MSHR
    /// primaries and are skipped). [`GpuSim::restore`] uses it to re-open
    /// client-side conservation domains after restoring into a fresh
    /// sanitizer session.
    ///
    /// [`GpuSim::restore`]: mask_common::snapshot::Snapshot::restore
    pub fn for_each_in_flight(&self, mut f: impl FnMut(&MemRequest)) {
        for bank in &self.banks {
            for (req, _) in &bank.queue {
                f(req);
            }
            for entry in bank.mshr.entries() {
                for req in &entry.waiters {
                    f(req);
                }
            }
        }
        for entry in self.bypass_mshr.entries() {
            for req in &entry.waiters {
                f(req);
            }
        }
        for resp in &self.responses {
            f(&resp.req);
        }
    }
}

impl mask_common::snapshot::Snapshot for SharedL2Cache {
    fn snapshot(&self, w: &mut mask_common::snapshot::SnapshotWriter) {
        use mask_common::snapshot::SnapField;
        w.section("l2cache");
        self.array.snapshot(w);
        w.seq(self.banks.len());
        for bank in &self.banks {
            w.seq(bank.queue.len());
            for (req, ready) in &bank.queue {
                req.write(w);
                w.u64(*ready);
            }
            bank.mshr.snapshot(w);
        }
        self.monitor.snapshot(w);
        self.bypass_mshr.snapshot(w);
        w.seq(self.to_dram.len());
        for req in &self.to_dram {
            req.write(w);
        }
        w.seq(self.responses.len());
        for resp in &self.responses {
            resp.req.write(w);
            w.u8(match resp.outcome {
                L2Outcome::Hit => 0,
                L2Outcome::Miss => 1,
                L2Outcome::Bypassed => 2,
            });
        }
    }

    fn restore(
        &mut self,
        r: &mut mask_common::snapshot::SnapshotReader<'_>,
    ) -> Result<(), mask_common::snapshot::SnapshotError> {
        use mask_common::snapshot::{SnapField, SnapshotError};
        r.section("l2cache")?;
        self.array.restore(r)?;
        r.seq_exact(self.banks.len())?;
        for b in 0..self.banks.len() {
            let n = r.seq()?;
            self.banks[b].queue.clear();
            for _ in 0..n {
                let req = MemRequest::read(r)?;
                let ready = r.u64()?;
                self.banks[b].queue.push_back((req, ready));
            }
            self.banks[b].mshr.restore(r)?;
        }
        self.monitor.restore(r)?;
        self.bypass_mshr.restore(r)?;
        let n = r.seq()?;
        self.to_dram.clear();
        for _ in 0..n {
            self.to_dram.push(MemRequest::read(r)?);
        }
        let n = r.seq()?;
        self.responses.clear();
        for _ in 0..n {
            let req = MemRequest::read(r)?;
            let outcome = match r.u8()? {
                0 => L2Outcome::Hit,
                1 => L2Outcome::Miss,
                2 => L2Outcome::Bypassed,
                _ => return Err(SnapshotError::Malformed("unknown L2 outcome")),
            };
            self.responses.push(L2Response { req, outcome });
        }
        // Re-open the L2's own conservation domain in the current sanitizer
        // session: every request inside the restored structures was issued
        // before the snapshot and has yet to retire.
        if mask_sanitizer::is_enabled() {
            self.for_each_in_flight(|req| mask_sanitizer::issue("l2-cache", req.id.0));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mask_common::ids::{Asid, CoreId};
    use mask_common::req::{ReqId, WalkLevel};

    fn cfg() -> CacheConfig {
        CacheConfig {
            bytes: 64 * 1024,
            assoc: 8,
            latency: 10,
            banks: 4,
            ports_per_bank: 2,
            mshrs: 8,
        }
    }

    fn req(id: u64, line: u64, class: RequestClass) -> MemRequest {
        MemRequest::new(
            ReqId(id),
            LineAddr(line),
            Asid::new(0),
            CoreId::new(0),
            class,
            0,
        )
    }

    fn run_until_responses(
        l2: &mut SharedL2Cache,
        start: Cycle,
        max: u64,
    ) -> (Vec<L2Response>, Cycle) {
        let mut out = Vec::new();
        for now in start..start + max {
            l2.tick(now);
            // Simulate a 20-cycle DRAM for any outgoing requests.
            for r in l2.take_dram_requests() {
                // Immediate fill for test simplicity (latency covered elsewhere).
                let _ = r;
            }
            out.extend(l2.take_responses());
            if !out.is_empty() {
                return (out, now);
            }
        }
        (out, start + max)
    }

    #[test]
    fn miss_goes_to_dram_then_fill_hits() {
        let mut l2 = SharedL2Cache::new(&cfg(), L2Policy::Shared, 1);
        l2.enqueue(req(1, 42, RequestClass::Data), 0);
        // Nothing served before the pipeline latency elapses.
        for now in 0..10 {
            l2.tick(now);
            assert!(l2.take_responses().is_empty(), "no response before latency");
        }
        l2.tick(10);
        let dram = l2.take_dram_requests();
        assert_eq!(dram.len(), 1);
        assert_eq!(dram[0].line, LineAddr(42));
        l2.dram_fill(LineAddr(42), 50);
        let resp = l2.take_responses();
        assert_eq!(resp.len(), 1);
        assert_eq!(resp[0].outcome, L2Outcome::Miss);
        // Second access to the same line now hits.
        l2.enqueue(req(2, 42, RequestClass::Data), 51);
        let (resp, _) = run_until_responses(&mut l2, 51, 30);
        assert_eq!(resp.len(), 1);
        assert_eq!(resp[0].outcome, L2Outcome::Hit);
    }

    #[test]
    fn concurrent_misses_merge_in_mshr() {
        let mut l2 = SharedL2Cache::new(&cfg(), L2Policy::Shared, 1);
        l2.enqueue(req(1, 7, RequestClass::Data), 0);
        l2.enqueue(req(2, 7, RequestClass::Data), 0);
        l2.enqueue(req(3, 7, RequestClass::Data), 0);
        for now in 0..=12 {
            l2.tick(now);
        }
        assert_eq!(l2.take_dram_requests().len(), 1, "one primary miss only");
        l2.dram_fill(LineAddr(7), 100);
        assert_eq!(l2.take_responses().len(), 3, "all three waiters wake");
    }

    #[test]
    fn ports_limit_throughput_creates_queueing() {
        let mut l2 = SharedL2Cache::new(&cfg(), L2Policy::Shared, 1);
        // 40 requests to distinct lines all at cycle 0.
        for i in 0..40u64 {
            l2.enqueue(req(i, i * 64, RequestClass::Data), 0);
        }
        l2.tick(10);
        let first_wave = l2.take_dram_requests().len();
        // 4 banks x 2 ports = at most 8 per cycle.
        assert!(first_wave <= 8, "served {first_wave} in one cycle");
        assert!(l2.queued() >= 32);
    }

    #[test]
    fn bypassed_translation_skips_queue_and_array() {
        let mut l2 = SharedL2Cache::new(&cfg(), L2Policy::SharedBypass, 1);
        // Train the monitor: leaf translations always miss, data often hits.
        let leaf = RequestClass::Translation(WalkLevel::new(4));
        for i in 0..32u64 {
            l2.enqueue(req(100 + i, 1000 + i * 64, leaf), 0);
            l2.enqueue(req(200 + i, 3, RequestClass::Data), 0);
        }
        for now in 0..200 {
            l2.tick(now);
            for r in l2.take_dram_requests() {
                l2.dram_fill(r.line, now);
            }
            l2.take_responses();
        }
        l2.end_epoch();
        assert!(l2.monitor().is_bypassing(Asid::new(0), WalkLevel::new(4)));
        // A bypassing leaf translation is forwarded to DRAM immediately,
        // without waiting the 10-cycle pipeline.
        l2.enqueue(req(999, 555_000, leaf), 1000);
        let dram = l2.take_dram_requests();
        assert_eq!(dram.len(), 1, "bypass forwards without tick");
        l2.dram_fill(dram[0].line, 1001);
        let resp = l2.take_responses();
        assert_eq!(resp.len(), 1);
        assert_eq!(resp[0].outcome, L2Outcome::Bypassed);
    }

    #[test]
    fn data_requests_never_bypass() {
        let mut l2 = SharedL2Cache::new(&cfg(), L2Policy::SharedBypass, 1);
        l2.enqueue(req(1, 42, RequestClass::Data), 0);
        assert!(
            l2.take_dram_requests().is_empty(),
            "data goes through banks"
        );
        assert_eq!(l2.queued(), 1);
    }

    #[test]
    fn mshr_full_stalls_bank() {
        let mut small = CacheConfig { mshrs: 2, ..cfg() };
        small.banks = 1;
        let mut l2 = SharedL2Cache::new(&small, L2Policy::Shared, 1);
        for i in 0..6u64 {
            l2.enqueue(req(i, i * 64, RequestClass::Data), 0);
        }
        for now in 0..30 {
            l2.tick(now);
        }
        // Only 2 primaries can be outstanding.
        assert_eq!(l2.take_dram_requests().len(), 2);
        assert!(l2.queued() >= 4);
        // Draining the MSHRs lets the rest proceed.
        l2.dram_fill(LineAddr(0), 31);
        l2.dram_fill(LineAddr(64), 31);
        for now in 31..60 {
            l2.tick(now);
        }
        assert_eq!(l2.take_dram_requests().len(), 2);
    }
}
