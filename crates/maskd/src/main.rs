//! The `maskd` binary: resolve configuration, boot the daemon, serve
//! until killed. `MASKD_ADDR=127.0.0.1:0` binds an ephemeral port; the
//! bound address is printed either way so callers can parse it.

fn main() {
    let cfg = maskd::DaemonConfig::from_env();
    match maskd::Daemon::spawn(cfg) {
        Ok(handle) => {
            println!("[maskd] listening on {}", handle.addr());
            // Serve forever: the daemon's own threads do all the work,
            // and the process is stopped by signal. Parking (instead of
            // returning) keeps the handle — and the listener — alive.
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("[maskd] failed to start: {e}");
            std::process::exit(1);
        }
    }
}
