//! A minimal HTTP/1.1 layer over `std::io` streams.
//!
//! Only what the daemon needs, nothing more: request-line + header
//! parsing, `Content-Length` and `chunked` request bodies with a hard
//! size cap, and response writing in both fixed-length and chunked
//! flavours (the events endpoint streams frames as chunks). Connections
//! are handled one request at a time (`Connection: close` semantics); the
//! sweep client opens a socket per call, which is plenty for a simulation
//! farm whose unit of work is measured in simulated megacycles.
//!
//! Parsing failures carry the status code the handler should answer with
//! ([`HttpError::status`]): malformed syntax → 400, a body above the
//! configured cap → 413. A truncated chunked body is a 400, not a hang —
//! every read path is bounded by the same cap.

use std::fmt;
use std::io::{BufRead, Write};

/// Hard cap on the request head (request line + headers) in bytes.
const MAX_HEAD: usize = 16 * 1024;

/// A parse or I/O failure while reading a request.
#[derive(Debug)]
pub struct HttpError {
    status: u16,
    msg: String,
}

impl HttpError {
    fn new(status: u16, msg: impl Into<String>) -> Self {
        HttpError {
            status,
            msg: msg.into(),
        }
    }

    /// The HTTP status the handler should answer with.
    #[must_use]
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Human-readable description for the error body.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.status, self.msg)
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::new(400, format!("i/o error reading request: {e}"))
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token, e.g. `GET`.
    pub method: String,
    /// Request target (path + optional query), e.g. `/jobs/7/events`.
    pub path: String,
    /// Headers, names lowercased, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Decoded body (empty when the request has none).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn read_line(r: &mut impl BufRead, budget: &mut usize) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 => return Err(HttpError::new(400, "unexpected end of stream")),
            _ => {
                if *budget == 0 {
                    return Err(HttpError::new(431, "request head too large"));
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map_err(|_| HttpError::new(400, "non-UTF-8 request head"));
                }
                line.push(byte[0]);
            }
        }
    }
}

/// Reads and decodes one request from `stream`, enforcing `max_body` on
/// the decoded body size (fixed-length *and* chunked).
pub fn read_request(stream: &mut impl BufRead, max_body: usize) -> Result<Request, HttpError> {
    let mut budget = MAX_HEAD;
    let request_line = read_line(stream, &mut budget)?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::new(400, "empty request line"))?
        .to_owned();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing request target"))?
        .to_owned();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(505, "unsupported HTTP version"));
    }
    if !path.starts_with('/') {
        return Err(HttpError::new(400, "request target must be absolute path"));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(stream, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(400, "malformed header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };

    let chunked = req
        .header("transfer-encoding")
        .is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        read_chunked_body(stream, max_body)?
    } else if let Some(len) = req.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::new(400, "invalid Content-Length"))?;
        if len > max_body {
            return Err(HttpError::new(413, "request body exceeds MASKD_MAX_BODY"));
        }
        let mut body = vec![0u8; len];
        stream
            .read_exact(&mut body)
            .map_err(|_| HttpError::new(400, "request body shorter than Content-Length"))?;
        body
    } else {
        Vec::new()
    };

    Ok(Request { body, ..req })
}

fn read_chunked_body(stream: &mut impl BufRead, max_body: usize) -> Result<Vec<u8>, HttpError> {
    let mut body = Vec::new();
    loop {
        // Chunk-size lines are tiny; reuse the head budget machinery with
        // a fresh allowance per line so a garbage stream cannot spin.
        let mut budget = 128;
        let size_line = read_line(stream, &mut budget)
            .map_err(|_| HttpError::new(400, "truncated chunked body"))?;
        let size_hex = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_hex, 16)
            .map_err(|_| HttpError::new(400, "invalid chunk size"))?;
        if size == 0 {
            // Trailer section: read lines until the blank terminator.
            loop {
                let mut budget = 1024;
                let line = read_line(stream, &mut budget)
                    .map_err(|_| HttpError::new(400, "truncated chunk trailer"))?;
                if line.is_empty() {
                    return Ok(body);
                }
            }
        }
        if body.len() + size > max_body {
            return Err(HttpError::new(413, "request body exceeds MASKD_MAX_BODY"));
        }
        let start = body.len();
        body.resize(start + size, 0);
        stream
            .read_exact(&mut body[start..])
            .map_err(|_| HttpError::new(400, "truncated chunk"))?;
        let mut crlf = [0u8; 2];
        stream
            .read_exact(&mut crlf)
            .map_err(|_| HttpError::new(400, "truncated chunk"))?;
        if &crlf != b"\r\n" {
            return Err(HttpError::new(400, "chunk missing CRLF terminator"));
        }
    }
}

/// Canonical reason phrase for the handful of statuses the daemon emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Internal Server Error",
    }
}

/// Writes a fixed-length JSON response with optional extra headers.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    )?;
    for (k, v) in extra_headers {
        write!(stream, "{k}: {v}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Starts a chunked response; follow with [`write_chunk`] calls and a
/// final [`finish_chunked`].
pub fn start_chunked(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        reason(status)
    )?;
    stream.flush()
}

/// Writes one chunk (skipped silently for empty payloads, which would
/// otherwise terminate the chunked stream).
pub fn write_chunk(stream: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.is_empty() {
        return Ok(());
    }
    write!(stream, "{:x}\r\n", payload.len())?;
    stream.write_all(payload)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked response.
pub fn finish_chunked(stream: &mut impl Write) -> std::io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw), 1024)
    }

    #[test]
    fn parses_post_with_content_length() {
        let req = parse(b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .expect("valid request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn parses_chunked_body_with_trailer() {
        let raw = b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n";
        let req = parse(raw).expect("valid chunked request");
        assert_eq!(req.body, b"wikipedia");
    }

    #[test]
    fn rejects_oversized_and_truncated_bodies() {
        let long = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: 2048\r\n\r\n{}",
            "x".repeat(2048)
        );
        assert_eq!(parse(long.as_bytes()).expect_err("too large").status(), 413);

        let trunc = b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nff\r\nshort";
        assert_eq!(parse(trunc).expect_err("truncated").status(), 400);

        let overflow =
            b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nffff\r\nnope\r\n0\r\n\r\n";
        assert_eq!(parse(overflow).expect_err("over cap").status(), 413);
    }

    #[test]
    fn rejects_malformed_heads() {
        assert_eq!(parse(b"\r\n\r\n").expect_err("empty").status(), 400);
        assert_eq!(
            parse(b"GET /x SPDY/3\r\n\r\n")
                .expect_err("version")
                .status(),
            505
        );
        assert_eq!(
            parse(b"GET x HTTP/1.1\r\n\r\n").expect_err("path").status(),
            400
        );
        assert_eq!(
            parse(b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n")
                .expect_err("header")
                .status(),
            400
        );
    }

    #[test]
    fn chunked_response_round_trips() {
        let mut out = Vec::new();
        start_chunked(&mut out, 200, "application/jsonl").expect("write");
        write_chunk(&mut out, b"{\"e\":1}\n").expect("write");
        write_chunk(&mut out, b"").expect("write");
        write_chunk(&mut out, b"{\"e\":2}\n").expect("write");
        finish_chunked(&mut out).expect("write");
        let text = String::from_utf8(out).expect("utf-8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.ends_with("8\r\n{\"e\":1}\n\r\n8\r\n{\"e\":2}\n\r\n0\r\n\r\n"));
    }
}
