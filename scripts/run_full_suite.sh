#!/bin/bash
# Full test + bench sweep, logging output and per-stage exit codes.
#
# The recorded rc must be cargo's, not tee's: `rc=$?` after a pipeline
# reports the status of the LAST command in it (tee, which nearly always
# succeeds), silently masking test failures. `pipefail` makes the
# pipeline's status the first failing command, and ${PIPESTATUS[0]} —
# captured immediately after each pipeline, before any other command can
# clobber it — is cargo's own exit code.
set -o pipefail
cd /root/repo || exit 1
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt
rc=${PIPESTATUS[0]}
echo "TESTS_DONE rc=$rc" >> /root/repo/final_status.txt
MASK_SIM_CYCLES=200000 cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt
rc=${PIPESTATUS[0]}
echo "BENCH_DONE rc=$rc" >> /root/repo/final_status.txt
