//! Experiment harnesses: one module per paper table/figure.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`timemux`] | Fig. 1 — time-multiplexing overhead vs process count |
//! | [`baseline`] | Fig. 3 — `PWCache` / `SharedTLB` vs Ideal |
//! | [`single_app`] | Figs. 5–6 — concurrent walks, warps stalled per miss |
//! | [`interference`] | Fig. 7 — shared-L2-TLB miss rate, alone vs shared |
//! | [`dram_char`] | Figs. 8–9 — DRAM bandwidth and latency by class |
//! | [`multiprog`] | Figs. 11–15 — multiprogrammed performance + fairness |
//! | [`components`] | §7.2 — per-mechanism analysis |
//! | [`scalability`] | Table 3 — 1–5 concurrent applications |
//! | [`generality`] | Table 4 — Fermi and integrated-GPU architectures |
//! | [`sensitivity`] | §7.3 — TLB size, page size, schedulers, row policy |
//! | [`ablation`] | design-choice ablations: token policy, bypass margin, Golden capacity, epoch length |
//!
//! All harnesses honor three environment variables so the whole suite can
//! be scaled: `MASK_SIM_CYCLES` (cycles per run), `MASK_PAIR_LIMIT`
//! (number of two-app workloads simulated), and `MASK_JOBS` (worker
//! threads the job engine fans simulations over; `1` = serial). Every
//! harness submits its runs as one job batch, so independent simulations
//! execute concurrently while results stay bit-identical at any worker
//! count.

pub mod ablation;
pub mod baseline;
pub mod components;
pub mod dram_char;
pub mod generality;
pub mod interference;
pub mod multiprog;
pub mod scalability;
pub mod sensitivity;
pub mod single_app;
pub mod timemux;

use crate::runner::{PairRunner, RunOptions};
use mask_common::config::{GpuConfig, JobOptions};

/// Common experiment options.
#[derive(Clone, Debug)]
pub struct ExpOptions {
    /// Cycles per simulation run.
    pub cycles: u64,
    /// Total GPU cores.
    pub n_cores: usize,
    /// Warp contexts per core.
    pub warps_per_core: usize,
    /// Number of paper pairs to simulate (1..=35).
    pub pair_limit: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker policy for the job engine (default: `MASK_JOBS`, else the
    /// machine's available parallelism).
    pub jobs: JobOptions,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            cycles: mask_common::config::default_max_cycles(),
            n_cores: 30,
            warps_per_core: 64,
            pair_limit: mask_common::config::default_pair_limit(),
            seed: 0xA55A_2018,
            jobs: JobOptions::default(),
        }
    }
}

impl ExpOptions {
    /// A fast configuration for unit/integration tests.
    pub fn quick() -> Self {
        ExpOptions {
            cycles: 5_000,
            n_cores: 4,
            warps_per_core: 16,
            pair_limit: 2,
            seed: 7,
            jobs: JobOptions::default(),
        }
    }

    /// Builds a [`PairRunner`] honoring these options.
    pub fn runner(&self) -> PairRunner {
        PairRunner::new(self.run_options())
    }

    /// Builds [`RunOptions`] honoring these options.
    pub fn run_options(&self) -> RunOptions {
        let mut gpu = GpuConfig::maxwell();
        gpu.warps_per_core = self.warps_per_core;
        RunOptions {
            n_cores: self.n_cores,
            max_cycles: self.cycles,
            seed: self.seed,
            warmup_cycles: 100_000,
            gpu,
            jobs: self.jobs,
        }
    }

    /// The paper pairs to simulate, truncated to `pair_limit`.
    pub fn pairs(&self) -> Vec<mask_workloads::AppPair> {
        let mut p = mask_workloads::paper_pairs();
        p.truncate(self.pair_limit.max(1));
        p
    }

    /// Like [`ExpOptions::pairs`], but samples the most translation-
    /// pressured pairs first (2-HMR before 1-HMR before 0-HMR, stable
    /// within a category). Experiments that default to a small pair subset
    /// use this so the subset actually exercises the contention the paper
    /// studies.
    pub fn pressured_pairs(&self) -> Vec<mask_workloads::AppPair> {
        let mut p = mask_workloads::paper_pairs();
        p.sort_by_key(|pair| std::cmp::Reverse(pair.hmr_count()));
        p.truncate(self.pair_limit.max(1));
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_honors_env_shape() {
        let o = ExpOptions::default();
        assert_eq!(o.n_cores, 30);
        assert!(o.pair_limit >= 1 && o.pair_limit <= 35);
    }

    #[test]
    fn quick_options_are_small() {
        let o = ExpOptions::quick();
        assert!(o.cycles <= 10_000);
        assert_eq!(o.pairs().len(), 2);
    }
}
