//! The deterministic **plan → execute → assemble** simulation engine.
//!
//! Every paper artefact is a set of *independent* simulations: a
//! [`GpuSim`](mask_gpu::GpuSim) owns its whole machine state, is `Send`,
//! and never observes anything outside itself — the experiment suite is
//! embarrassingly parallel. This module centralizes that parallelism:
//!
//! 1. **plan** — callers (the [`PairRunner`](crate::runner::PairRunner)
//!    batch entry points and the experiment harnesses) describe whole
//!    workload sets as [`SimJob`] lists and submit them in one call;
//! 2. **execute** — a [`JobPool`] deduplicates jobs by their canonical
//!    [`JobKey`], resolves alone-baseline jobs from a process-wide
//!    [`BaselineCache`], and fans the remaining unique jobs out over
//!    `std::thread::scope` workers;
//! 3. **assemble** — results come back indexed by submission order, so
//!    the output of any batch is **byte-identical at every worker count**
//!    (each job is a closed deterministic state machine; scheduling can
//!    only reorder wall-clock execution, never results).
//!
//! Worker count: an explicit [`JobOptions`] request, else the `MASK_JOBS`
//! environment variable, else the machine's available parallelism. `1`
//! runs jobs serially on the calling thread (no threads are spawned).
//!
//! The sanitizer (`mask-sanitizer`) keeps its accounting in thread-local
//! sessions; each job builds and runs its simulator entirely on one worker
//! thread, so sanitized parallel batches keep per-simulation accounting
//! exactly as isolated as serial ones.
//!
//! This is the only module in the simulator crates allowed to use thread
//! primitives (`std::thread`, `Mutex`, atomics) — `cargo xtask lint`
//! enforces the boundary with the `parallelism` rule.

use mask_common::config::{DesignKind, DesignSpec, GpuConfig, JobOptions, ShardOptions, SimConfig};
use mask_common::stats::SimStats;
use mask_gpu::{AppSpec, GpuSim};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One self-contained simulation: a design, an application placement, and
/// a cycle budget. Jobs with equal [`JobKey`]s produce bit-identical
/// statistics and are simulated at most once per batch (alone-baseline
/// jobs: at most once per *process*, via the [`BaselineCache`]).
#[derive(Clone, Debug)]
pub struct SimJob {
    /// The design to simulate.
    pub design: DesignKind,
    /// Application placement; core counts determine the GPU size.
    pub specs: Vec<AppSpec>,
    /// Total cycles to simulate.
    pub max_cycles: u64,
    /// Warm-up cycles excluded from measurement (clamped to at most half
    /// of `max_cycles`, exactly as the serial runner always did).
    pub warmup_cycles: u64,
    /// Base PRNG seed.
    pub seed: u64,
    /// Machine template (its `n_cores` is overridden by the placement).
    pub gpu: GpuConfig,
}

/// Canonical deduplication key of a [`SimJob`].
///
/// Two jobs compare equal exactly when they would simulate the same
/// machine on the same placement for the same cycles — the machine
/// configuration is folded in via its complete `Debug` rendering, so a
/// sensitivity sweep that tweaks any `GpuConfig` knob gets distinct keys.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct JobKey {
    /// The *spec*, not the preset name: two named presets with identical
    /// policy axes would dedup to one simulation, and distinct specs
    /// (e.g. `NoIsolation` vs `SharedTlb`, which differ only in compute
    /// partitioning) never collapse.
    design: DesignSpec,
    apps: Vec<(&'static str, usize)>,
    max_cycles: u64,
    warmup_cycles: u64,
    seed: u64,
    gpu: String,
}

impl SimJob {
    /// The job's canonical deduplication key.
    #[must_use]
    pub fn key(&self) -> JobKey {
        JobKey {
            design: self.design.spec(),
            apps: self
                .specs
                .iter()
                .map(|s| (s.profile.name, s.n_cores))
                .collect(),
            max_cycles: self.max_cycles,
            warmup_cycles: self.warmup_cycles,
            seed: self.seed,
            gpu: format!("{:?}", self.gpu),
        }
    }

    /// Whether this is an alone-baseline run (a single application), the
    /// class of jobs memoized process-wide.
    #[must_use]
    pub fn is_alone(&self) -> bool {
        self.specs.len() == 1
    }

    /// Runs the simulation to completion and snapshots its statistics,
    /// measured after the warm-up window. The SM-frontend shard count
    /// follows `MASK_SM_SHARDS` (unclamped — batch execution through a
    /// [`JobPool`] budgets it against the pool's worker count instead).
    #[must_use]
    pub fn run(&self) -> SimStats {
        self.run_with_shards(None)
    }

    /// Like [`SimJob::run`], with an explicit SM-frontend shard count
    /// (`None` defers to `MASK_SM_SHARDS`). Results are bit-identical at
    /// every shard count.
    #[must_use]
    pub fn run_with_shards(&self, sm_shards: Option<usize>) -> SimStats {
        let total: usize = self.specs.iter().map(|s| s.n_cores).sum();
        let mut gpu = self.gpu.clone();
        gpu.n_cores = total;
        let cfg = SimConfig {
            gpu,
            design: self.design.spec(),
            max_cycles: self.max_cycles,
            seed: self.seed,
            sm_shards: sm_shards.map_or_else(ShardOptions::default, ShardOptions::with_shards),
        };
        let warmup = self.warmup_cycles.min(self.max_cycles / 2);
        let mut sim = GpuSim::new(&cfg, &self.specs);
        sim.run(warmup);
        sim.reset_stats();
        sim.run(self.max_cycles - warmup);
        sim.sync_stats();
        sim.stats().clone()
    }
}

/// Budgets a per-simulation shard request against the machine: with
/// `workers` simulations running concurrently, `workers × shards` threads
/// must not oversubscribe `avail` hardware threads. Returns the largest
/// per-simulation shard count within budget (at least 1 — the serial
/// frontend).
fn clamp_shards(requested: usize, workers: usize, avail: usize) -> usize {
    let requested = requested.max(1);
    let workers = workers.max(1);
    if requested * workers <= avail {
        requested
    } else {
        (avail / workers).max(1)
    }
}

/// The oversubscription warning text, stating the resolved jobs×shards
/// split so readers can tell exactly what configuration actually ran.
fn shards_clamped_message(
    requested: usize,
    granted: usize,
    workers: usize,
    avail: usize,
) -> String {
    format!(
        "[mask-core] MASK_JOBS ({workers}) x MASK_SM_SHARDS ({requested}) exceeds \
         available parallelism ({avail}); resolved split: {workers} job worker(s) x \
         {granted} SM shard(s) per simulation ({} thread(s) total; results are \
         identical at any shard count)",
        workers * granted
    )
}

/// Emits the oversubscription warning once per process.
fn warn_shards_clamped(requested: usize, granted: usize, workers: usize, avail: usize) {
    static WARNED: AtomicBool = AtomicBool::new(false);
    // Relaxed ordering: warn-once latch; the swap alone decides a unique
    // winner and no other memory hangs off it.
    if !WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "{}",
            shards_clamped_message(requested, granted, workers, avail)
        );
    }
}

/// Runs one job with an engine-timeline span around it (`mask-obs` job
/// profiling; the span label and timing cost nothing unless tracing is
/// live).
fn run_one_timed(job: &SimJob, shards: usize, lane: u32) -> SimStats {
    let timer = mask_obs::profile::begin_job();
    let stats = job.run_with_shards(Some(shards));
    if mask_obs::tracing_active() {
        timer.finish(&job_label(job), lane);
    }
    stats
}

/// Short human-readable label for a job's engine-timeline span.
fn job_label(job: &SimJob) -> String {
    use fmt::Write;
    let mut s = format!("{:?}", job.design);
    for spec in &job.specs {
        let _ = write!(s, " {}x{}", spec.profile.name, spec.n_cores);
    }
    s
}

/// Counters describing one [`BaselineCache`]'s effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Distinct alone-baseline simulations held.
    pub entries: usize,
    /// Lookups answered from the cache (simulations avoided).
    pub hits: u64,
    /// Lookups that had to simulate (one per distinct entry).
    pub misses: u64,
}

#[derive(Default)]
struct CacheInner {
    map: BTreeMap<JobKey, SimStats>,
    hits: u64,
    misses: u64,
}

/// Process-wide memo of alone-baseline simulations.
///
/// `IPC_alone` baselines are design-dependent but pair-independent, and the
/// oracle scheduler's probe runs re-derive the same baselines again at probe
/// length — so one cache shared by every experiment (and every probe)
/// guarantees each unique `(design, placement, cycles, seed, machine)`
/// alone run is simulated exactly once per process. Tests that need exact
/// accounting can attach a private cache via [`JobPool::with_cache`].
#[derive(Default)]
pub struct BaselineCache {
    inner: Mutex<CacheInner>,
}

impl BaselineCache {
    /// Creates an empty cache behind the shared handle [`JobPool`] expects.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(BaselineCache::default())
    }

    /// Hit/miss/occupancy counters.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked while holding the cache lock.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("baseline cache lock poisoned");
        CacheStats {
            entries: inner.map.len(),
            hits: inner.hits,
            misses: inner.misses,
        }
    }

    fn lookup(&self, key: &JobKey) -> Option<SimStats> {
        let mut inner = self.inner.lock().expect("baseline cache lock poisoned");
        match inner.map.get(key).cloned() {
            Some(stats) => {
                inner.hits += 1;
                Some(stats)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    fn insert(&self, key: JobKey, stats: SimStats) {
        let mut inner = self.inner.lock().expect("baseline cache lock poisoned");
        inner.map.insert(key, stats);
    }
}

/// The process-wide [`BaselineCache`] every default [`JobPool`] shares.
#[must_use]
pub fn process_cache() -> Arc<BaselineCache> {
    static CACHE: OnceLock<Arc<BaselineCache>> = OnceLock::new();
    Arc::clone(CACHE.get_or_init(BaselineCache::new))
}

/// Executes [`SimJob`] batches over a fixed number of worker threads.
///
/// Cheap to clone: clones share the same baseline cache.
#[derive(Clone)]
pub struct JobPool {
    workers: usize,
    cache: Arc<BaselineCache>,
}

impl fmt::Debug for JobPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobPool")
            .field("workers", &self.workers)
            .field("cache", &self.cache.stats())
            .finish()
    }
}

impl JobPool {
    /// A pool honoring `MASK_JOBS` / available parallelism, sharing the
    /// process-wide baseline cache.
    #[must_use]
    pub fn from_env() -> Self {
        Self::with_options(JobOptions::default())
    }

    /// A pool with `opts`' worker policy (explicit request, else
    /// `MASK_JOBS`, else available parallelism).
    #[must_use]
    pub fn with_options(opts: JobOptions) -> Self {
        let workers = opts.requested().unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
        JobPool {
            workers: workers.max(1),
            cache: process_cache(),
        }
    }

    /// A pool with exactly `n` workers (`1` = serial).
    #[must_use]
    pub fn with_workers(n: usize) -> Self {
        Self::with_options(JobOptions::with_workers(n))
    }

    /// Replaces the baseline cache (e.g. with a private one in tests that
    /// assert exact simulation counts).
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<BaselineCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The worker count this pool fans out over.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The alone-baseline cache this pool consults.
    #[must_use]
    pub fn cache(&self) -> &Arc<BaselineCache> {
        &self.cache
    }

    /// Runs a batch and returns one [`SimStats`] per job, in submission
    /// order. Equal-keyed jobs are simulated once; alone-baseline jobs are
    /// additionally served from (and recorded in) the baseline cache.
    ///
    /// # Panics
    ///
    /// Re-raises any panic from a job (e.g. a sanitizer violation) on the
    /// calling thread, payload intact.
    #[must_use]
    pub fn run_batch(&self, jobs: &[SimJob]) -> Vec<SimStats> {
        // Trace bookkeeping for the `job_pool` metrics frame (see
        // `mask-obs`); both values stay `None` unless tracing is live.
        let trace = mask_obs::tracing_active();
        let batch_start = trace.then(std::time::Instant::now); // lint: allow(nondeterminism) -- profiling only, never read by the simulation
        let cache_before = trace.then(|| self.cache.stats());
        // Plan: collapse equal-keyed jobs, answer alone runs from cache.
        let mut results: Vec<Option<SimStats>> = vec![None; jobs.len()];
        let mut unique: BTreeMap<JobKey, Vec<usize>> = BTreeMap::new();
        for (i, job) in jobs.iter().enumerate() {
            unique.entry(job.key()).or_default().push(i);
        }
        let n_unique = unique.len();
        let mut work: Vec<(&SimJob, Vec<usize>)> = Vec::new();
        for (key, idxs) in unique {
            let job = &jobs[idxs[0]];
            if job.is_alone() {
                if let Some(stats) = self.cache.lookup(&key) {
                    for &i in &idxs {
                        results[i] = Some(stats.clone());
                    }
                    continue;
                }
            }
            work.push((job, idxs));
        }
        // Execute: fan the unique jobs out; output is keyed by work index,
        // so worker scheduling cannot affect what callers observe.
        let outputs = self.execute(&work);
        // Assemble: scatter each unique result to every submitting slot.
        for ((job, idxs), stats) in work.iter().zip(outputs) {
            if job.is_alone() {
                self.cache.insert(job.key(), stats.clone());
            }
            for &i in idxs {
                results[i] = Some(stats.clone());
            }
        }
        if let (Some(start), Some(before)) = (batch_start, cache_before) {
            let after = self.cache.stats();
            mask_obs::metrics::job_pool_frame(
                self.workers,
                jobs.len(),
                n_unique,
                after.hits.saturating_sub(before.hits),
                after.misses.saturating_sub(before.misses),
                start.elapsed().as_micros() as u64,
            );
        }
        results
            .into_iter()
            .map(|r| r.expect("every planned job resolves to a result"))
            .collect()
    }

    fn execute(&self, work: &[(&SimJob, Vec<usize>)]) -> Vec<SimStats> {
        let n_workers = self.workers.min(work.len());
        // Budget the per-simulation shard request (MASK_SM_SHARDS) against
        // the machine so `workers x shards` never oversubscribes it.
        let avail = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let requested = ShardOptions::default().requested();
        let shards = clamp_shards(requested, n_workers.max(1), avail);
        if shards < requested {
            warn_shards_clamped(requested, shards, n_workers.max(1), avail);
        }
        if n_workers <= 1 {
            return work
                .iter()
                .map(|(job, _)| run_one_timed(job, shards, 0))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let collected: Vec<Vec<(usize, SimStats)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n_workers)
                .map(|w| {
                    let next = &next;
                    s.spawn(move || {
                        let lane = w as u32;
                        let mut local = Vec::new();
                        loop {
                            // Relaxed ordering: the ticket counter only
                            // hands out unique indices; `work` is read-only
                            // and was published by the scope spawn.
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= work.len() {
                                break;
                            }
                            local.push((i, run_one_timed(work[i].0, shards, lane)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(local) => local,
                    // Surface job panics (sanitizer violations, simulator
                    // asserts) on the caller with their original payload.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut out: Vec<Option<SimStats>> = vec![None; work.len()];
        for (i, stats) in collected.into_iter().flatten() {
            out[i] = Some(stats);
        }
        out.into_iter()
            .map(|o| o.expect("workers drain the whole work list"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mask_workloads::app_by_name;

    fn job(design: DesignKind, apps: &[(&str, usize)], seed: u64) -> SimJob {
        let mut gpu = GpuConfig::maxwell();
        gpu.warps_per_core = 16;
        SimJob {
            design,
            specs: apps
                .iter()
                .map(|&(name, n_cores)| AppSpec {
                    profile: app_by_name(name).expect("known app"),
                    n_cores,
                })
                .collect(),
            max_cycles: 4_000,
            warmup_cycles: 1_000,
            seed,
            gpu,
        }
    }

    #[test]
    fn clamp_shards_budgets_against_available_parallelism() {
        // Fits: granted as requested.
        assert_eq!(clamp_shards(4, 2, 8), 4);
        assert_eq!(clamp_shards(1, 8, 8), 1);
        // Oversubscribed: split the machine across the workers.
        assert_eq!(clamp_shards(8, 2, 8), 4);
        assert_eq!(clamp_shards(4, 3, 8), 2);
        // Never below the serial frontend, even on tiny machines.
        assert_eq!(clamp_shards(8, 4, 1), 1);
        assert_eq!(clamp_shards(0, 0, 1), 1);
    }

    #[test]
    fn clamp_warning_states_the_resolved_split() {
        let msg = shards_clamped_message(8, 4, 2, 8);
        assert!(
            msg.contains("2 job worker(s) x 4 SM shard(s)"),
            "message must state the resolved split, got: {msg}"
        );
        assert!(msg.contains("8 thread(s) total"), "got: {msg}");
        assert!(
            msg.contains("MASK_JOBS (2)") && msg.contains("MASK_SM_SHARDS (8)"),
            "message must echo the requested configuration, got: {msg}"
        );
    }

    #[test]
    fn run_with_shards_matches_serial_run() {
        let j = job(DesignKind::Mask, &[("GUP", 2), ("HISTO", 2)], 11);
        let serial = j.run_with_shards(Some(1));
        for shards in [2, 3] {
            assert_eq!(
                serial,
                j.run_with_shards(Some(shards)),
                "shards={shards} must be bit-identical to serial"
            );
        }
    }

    #[test]
    fn keys_separate_every_ingredient() {
        let base = job(DesignKind::SharedTlb, &[("GUP", 2)], 1);
        assert_eq!(base.key(), base.clone().key());
        let design = job(DesignKind::Mask, &[("GUP", 2)], 1);
        let apps = job(DesignKind::SharedTlb, &[("GUP", 2), ("HS", 2)], 1);
        let seed = job(DesignKind::SharedTlb, &[("GUP", 2)], 2);
        let mut gpu = base.clone();
        gpu.gpu.tlb.l2_entries /= 2;
        for other in [&design, &apps, &seed, &gpu] {
            assert_ne!(base.key(), other.key());
        }
    }

    #[test]
    fn batch_order_and_dedup_are_stable_at_any_worker_count() {
        let jobs = vec![
            job(DesignKind::SharedTlb, &[("GUP", 2)], 7),
            job(DesignKind::Mask, &[("HISTO", 2), ("GUP", 2)], 7),
            job(DesignKind::SharedTlb, &[("GUP", 2)], 7), // duplicate of #0
        ];
        let serial = JobPool::with_workers(1).with_cache(BaselineCache::new());
        let wide_cache = BaselineCache::new();
        let wide = JobPool::with_workers(8).with_cache(Arc::clone(&wide_cache));
        let a = serial.run_batch(&jobs);
        let b = wide.run_batch(&jobs);
        assert_eq!(a, b, "results must not depend on worker count");
        assert_eq!(a[0], a[2], "equal keys yield equal results");
        // The duplicated alone job was simulated once and cached once.
        let stats = wide_cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn alone_baselines_are_served_from_the_cache_across_batches() {
        let cache = BaselineCache::new();
        let pool = JobPool::with_workers(2).with_cache(Arc::clone(&cache));
        let j = job(DesignKind::SharedTlb, &[("HS", 2)], 3);
        let first = pool.run_batch(std::slice::from_ref(&j));
        let again = pool.run_batch(std::slice::from_ref(&j));
        assert_eq!(first, again);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.misses, 1, "simulated exactly once");
        assert_eq!(stats.hits, 1, "second batch answered from cache");
    }

    #[test]
    fn shared_runs_are_not_cached_process_wide() {
        let cache = BaselineCache::new();
        let pool = JobPool::with_workers(1).with_cache(Arc::clone(&cache));
        let j = job(DesignKind::SharedTlb, &[("HISTO", 2), ("GUP", 2)], 3);
        let _ = pool.run_batch(std::slice::from_ref(&j));
        assert_eq!(cache.stats().entries, 0);
    }
}
