//! Shared helpers for the MASK paper-reproduction bench harnesses.
//!
//! Every `benches/*.rs` target is a plain binary (`harness = false`) that
//! regenerates one of the paper's tables or figures and prints it. Three
//! environment variables scale the whole suite:
//!
//! * `MASK_SIM_CYCLES` — cycles per simulation run (default 300 000:
//!   100 000 warm-up + 200 000 measured, i.e. two full MASK epochs);
//! * `MASK_PAIR_LIMIT` — number of two-application workloads (default 35);
//! * `MASK_JOBS` — worker threads the job engine fans simulations over
//!   (default: available parallelism; `1` = serial). The harnesses submit
//!   whole workload batches, and the engine's process-wide baseline cache
//!   simulates each unique alone baseline once across the entire suite —
//!   results are bit-identical at any worker count.

use mask_core::engine::JobPool;
use mask_core::experiments::ExpOptions;
use mask_core::table::Table;

/// Builds experiment options, applying an experiment-specific cap on the
/// number of pairs (heavy sweeps default to fewer pairs; `MASK_PAIR_LIMIT`
/// always wins when set).
pub fn options(default_pair_cap: usize) -> ExpOptions {
    let mut opts = ExpOptions::default();
    if std::env::var("MASK_PAIR_LIMIT").is_err() {
        opts.pair_limit = opts.pair_limit.min(default_pair_cap);
    }
    opts
}

/// Prints a table and archives it as CSV plus machine-readable JSON under
/// `target/mask-results/` (`<slug>.csv` / `<slug>.json`).
pub fn emit(table: &Table) {
    println!("{table}");
    println!();
    let dir = std::path::Path::new("target/mask-results");
    let slug: String = table
        .title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_");
    // The writers create missing parent directories themselves.
    let _ = table.write_csv(dir.join(format!("{slug}.csv")));
    let _ = table.write_json(dir.join(format!("{slug}.json")));
}

/// Prints the standard harness banner, including the engine's resolved
/// worker count (from `MASK_JOBS`, else available parallelism).
pub fn banner(name: &str, opts: &ExpOptions) {
    let pool = JobPool::with_options(opts.jobs);
    println!(
        "=== {name} — cycles/run={} cores={} warps/core={} pairs={} jobs={} ===\n",
        opts.cycles,
        opts.n_cores,
        opts.warps_per_core,
        opts.pair_limit,
        pool.workers()
    );
}
