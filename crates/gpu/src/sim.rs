//! The top-level cycle loop: cores + translation + shared L2 + DRAM.

use crate::core_model::{DirectIssue, GpuCore, IssueSink};
use crate::shard::{ShardOutput, ShardPool};
use crate::translation::{ResolvedTranslation, TranslationUnit};
use mask_cache::l2::{L2Outcome, L2Response};
use mask_cache::SharedL2Cache;
use mask_common::config::{ComputePolicy, SimConfig, TranslationPath};
use mask_common::ids::{Asid, CoreId, WarpId};
use mask_common::req::{MemRequest, RequestClass};
use mask_common::stats::SimStats;
use mask_common::Cycle;
use mask_dram::{Dram, DramCompletion, RowOutcome};
use mask_obs::profile::SimStage;
use mask_obs::QueueKind;
use mask_workloads::AppProfile;

/// One application's placement in a simulation.
#[derive(Clone, Copy, Debug)]
pub struct AppSpec {
    /// The workload to run.
    pub profile: &'static AppProfile,
    /// Number of GPU cores assigned to it.
    pub n_cores: usize,
}

/// Maps every core index to the application that owns it, honoring the
/// spec's compute-partitioning axis.
///
/// * [`ComputePolicy::SmSets`] gives each application a contiguous block of
///   cores (§7's disjoint SM sets — every baseline and MASK design).
/// * [`ComputePolicy::AllSms`] interleaves applications round-robin across
///   the whole GPU (MPS-style `NoIsolation`), honoring the per-app core
///   counts; with a single application the two layouts coincide.
pub(crate) fn core_layout(policy: ComputePolicy, cores_per_app: &[usize]) -> Vec<usize> {
    let total: usize = cores_per_app.iter().sum();
    let mut layout = Vec::with_capacity(total);
    match policy {
        ComputePolicy::SmSets => {
            for (app, &n) in cores_per_app.iter().enumerate() {
                layout.extend(std::iter::repeat_n(app, n));
            }
        }
        ComputePolicy::AllSms => {
            let mut remaining = cores_per_app.to_vec();
            while layout.len() < total {
                for (app, rem) in remaining.iter_mut().enumerate() {
                    if *rem > 0 {
                        *rem -= 1;
                        layout.push(app);
                    }
                }
            }
        }
    }
    layout
}

/// Result of a [`GpuSim::run_sampled`] span: extrapolated per-app
/// instruction counts with an explicit uncertainty band.
#[derive(Clone, Debug)]
pub struct SampledRun {
    /// Cycles simulated in detail (the sampled windows).
    pub detailed_cycles: u64,
    /// Cycles statistically skipped (the gaps).
    pub skipped_cycles: u64,
    /// Number of detailed windows taken.
    pub windows: usize,
    /// Per-app instruction estimate for the whole span.
    pub est_instructions: Vec<f64>,
    /// Per-app ± error band: two standard errors of the window IPC,
    /// scaled to the span.
    pub error_band: Vec<f64>,
}

/// The assembled GPU simulator.
#[derive(Debug)]
pub struct GpuSim {
    pub(crate) cfg: SimConfig,
    pub(crate) cores: Vec<GpuCore>,
    pub(crate) xlat: TranslationUnit,
    pub(crate) l2: SharedL2Cache,
    pub(crate) dram: Dram,
    pub(crate) stats: SimStats,
    pub(crate) now: Cycle,
    pub(crate) next_req_id: u64,
    pub(crate) n_apps: usize,
    /// Reusable scratch buffer for L2-bound requests.
    scratch_l2: Vec<MemRequest>,
    scratch_pwc: Vec<(Asid, bool)>,
    /// Scratch for translations resolved by the translation unit's tick.
    scratch_resolved: Vec<ResolvedTranslation>,
    /// Scratch for L2→DRAM request transfer.
    scratch_dram: Vec<MemRequest>,
    /// Scratch for DRAM completions.
    scratch_compl: Vec<DramCompletion>,
    /// Scratch for L2 responses.
    scratch_resp: Vec<L2Response>,
    /// Per-core waiter buckets for `deliver_one` (indexed by core).
    bucket_warps: Vec<Vec<WarpId>>,
    /// Cores touched by the current `deliver_one`, in first-appearance
    /// order (preserves the legacy wake ordering bit-for-bit).
    bucket_touched: Vec<usize>,
    /// Whether `run` may fast-forward over provably idle cycles.
    pub(crate) skip_enabled: bool,
    /// Sanitizer accounting session (0 when the sanitizer is disabled).
    san_session: u64,
    /// Sanitizer instance id for cycle-monotonicity tracking.
    san_id: u64,
    /// Resolved SM-frontend shard count (1 = the serial issue loop).
    sm_shards: usize,
    /// Worker pool for the sharded issue stage, spawned on first use so
    /// never-stepped (and cloned) simulators carry no threads.
    pool: Option<ShardPool>,
    /// Per-shard output queues (empty when running serial).
    shard_outs: Vec<ShardOutput>,
    /// SM-set-aligned shard cut points (`shard_cuts`; empty when serial).
    shard_cuts: Vec<usize>,
    /// Per-epoch metrics tracker (zero-sized and inert unless the `obs`
    /// feature is compiled in and `MASK_TRACE` is live).
    obs: mask_obs::metrics::EpochTracker,
}

// The job engine (`mask-core`'s `engine` module) fans simulations out over
// worker threads, so a `GpuSim` must be fully owned by — and movable to —
// one worker. Compile-time proof that stays red if a non-`Send` field ever
// sneaks in:
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<GpuSim>();
};

impl GpuSim {
    /// Builds a simulator placing `apps` on consecutive core ranges.
    ///
    /// # Panics
    ///
    /// Panics if the core counts do not sum to the configured core count,
    /// or if `apps` is empty.
    pub fn new(cfg: &SimConfig, apps: &[AppSpec]) -> Self {
        // Give each simulator its own sanitizer session so that sims built
        // side by side (determinism tests) keep separate accounting.
        let san_session = mask_sanitizer::new_session();
        mask_sanitizer::enter_session(san_session);
        assert!(!apps.is_empty(), "at least one application required");
        let total: usize = apps.iter().map(|a| a.n_cores).sum();
        assert_eq!(total, cfg.gpu.n_cores, "core counts must cover the GPU");
        let n_apps = apps.len();
        let cores_per_app: Vec<usize> = apps.iter().map(|a| a.n_cores).collect();
        let design = cfg.design;
        let ideal_xlat = design.translation == TranslationPath::Ideal;
        // Each layer consumes exactly one axis of the spec: the translation
        // unit its translation/token/alloc axes, the L2 its cache policy,
        // the DRAM its scheduling/partitioning policy, and the core layout
        // the compute policy.
        let xlat = TranslationUnit::new(&cfg.gpu, design, &cores_per_app);
        let l2 = SharedL2Cache::with_bypass_margin(
            &cfg.gpu.l2_cache,
            design.l2,
            n_apps,
            cfg.gpu.mask.bypass_margin,
        );
        let dram = Dram::new(&cfg.gpu.dram, n_apps, design.dram);
        let layout = core_layout(design.compute, &cores_per_app);
        let mut cores = Vec::with_capacity(cfg.gpu.n_cores);
        let mut ranks = vec![0usize; n_apps];
        for (core_idx, &app_idx) in layout.iter().enumerate() {
            let rank = ranks[app_idx];
            ranks[app_idx] += 1;
            cores.push(GpuCore::new(
                &cfg.gpu,
                CoreId::new(core_idx as u16),
                Asid::new(app_idx as u16),
                rank,
                apps[app_idx].profile,
                cfg.seed ^ (app_idx as u64) << 32,
                ideal_xlat,
            ));
        }
        // The Ideal design translates synchronously inside the issue stage
        // (mutating page-table frame allocation), so it always runs serial.
        // More shards than cores would leave trailing shards permanently
        // empty; clamp rather than spin idle workers.
        let sm_shards = if ideal_xlat {
            1
        } else {
            cfg.sm_shards.requested().min(cfg.gpu.n_cores).max(1)
        };
        let mut shard_outs = Vec::new();
        let mut shard_cuts = Vec::new();
        if sm_shards > 1 {
            shard_outs.reserve_exact(sm_shards);
            for _ in 0..sm_shards {
                shard_outs.push(ShardOutput::new(n_apps));
            }
            // Align shard boundaries to SM-set edges so one application's
            // cores straddle shards only when shards outnumber SM sets;
            // interleaved layouts have no edges to respect.
            let app_starts: Vec<usize> = match design.compute {
                ComputePolicy::SmSets => cores_per_app
                    .iter()
                    .scan(0usize, |acc, &n| {
                        *acc += n;
                        Some(*acc)
                    })
                    .collect(),
                ComputePolicy::AllSms => Vec::new(),
            };
            shard_cuts = crate::shard::shard_cuts(cfg.gpu.n_cores, sm_shards, &app_starts);
        }
        GpuSim {
            cfg: cfg.clone(),
            cores,
            xlat,
            l2,
            dram,
            stats: SimStats::new(n_apps, cfg.gpu.dram.channels),
            now: 0,
            next_req_id: 0,
            n_apps,
            scratch_l2: Vec::new(),
            scratch_pwc: Vec::new(),
            scratch_resolved: Vec::new(),
            scratch_dram: Vec::new(),
            scratch_compl: Vec::new(),
            scratch_resp: Vec::new(),
            bucket_warps: vec![Vec::new(); cfg.gpu.n_cores],
            bucket_touched: Vec::new(),
            skip_enabled: true,
            san_session,
            san_id: mask_sanitizer::register_component("gpu"),
            sm_shards,
            pool: None,
            shard_outs,
            shard_cuts,
            obs: mask_obs::metrics::EpochTracker::new(),
        }
    }

    /// The resolved SM-frontend shard count (1 = serial issue loop).
    pub fn sm_shards(&self) -> usize {
        self.sm_shards
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Synchronizes lifetime TLB/walker/token counters into the statistics
    /// block. Call after running (and before [`GpuSim::stats`]) so the
    /// snapshot reflects the structures' current state.
    pub fn sync_stats(&mut self) {
        for app in 0..self.n_apps {
            let asid = Asid::new(app as u16);
            self.stats.apps[app].l2_tlb = self.xlat.l2_tlb_stats(asid);
            self.stats.apps[app].tokens_final = self.xlat.tokens_for(asid);
            self.stats.apps[app].page_faults = self.xlat.fault_count(asid);
            self.stats.apps[app].walks_started =
                self.stats.apps[app].walks_completed + self.xlat.concurrent_walks(asid) as u64;
            if let Some(b) = self.xlat.bypass_cache_stats() {
                self.stats.apps[app].tlb_bypass_cache = b;
            }
            if let Some(p) = self.xlat.pwc_stats() {
                self.stats.apps[app].pwc = p;
            }
        }
    }

    /// Simulation statistics collected so far. Per-cycle counters are always
    /// current; lifetime TLB/walker/token counters are only as fresh as the
    /// last [`GpuSim::sync_stats`] call. The split lets the job engine (and
    /// any other reader) snapshot results without mutable access.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    fn deliver_one(&mut self, r: ResolvedTranslation) {
        let app = r.asid.index();
        if r.walked {
            self.stats.apps[app].walks_completed += 1;
            self.stats.apps[app].walk_latency_sum += r.walk_latency;
        }
        self.stats.apps[app].stalled_warps_sum += r.waiters.len() as u64;
        self.stats.apps[app].stalled_warps_events += 1;
        self.stats.apps[app].stalled_warps_max = self.stats.apps[app]
            .stalled_warps_max
            .max(r.waiters.len() as u64);
        // Group waiters per core into index buckets. `bucket_touched`
        // records cores in first-appearance order, matching the legacy
        // grouped wake order (and therefore request-id assignment) exactly.
        self.bucket_touched.clear();
        for gw in &r.waiters {
            let c = gw.core.index();
            if self.bucket_warps[c].is_empty() {
                self.bucket_touched.push(c);
            }
            self.bucket_warps[c].push(gw.warp);
        }
        self.xlat.recycle_waiters(r.waiters);
        for i in 0..self.bucket_touched.len() {
            let c = self.bucket_touched[i];
            let app_idx = self.cores[c].asid.index();
            // Split borrows: core, its app stats, the sink's fields, and
            // the buckets are disjoint fields.
            let stats = &mut self.stats.apps[app_idx];
            let mut sink = DirectIssue {
                xlat: &mut self.xlat,
                out_l2: &mut self.scratch_l2,
                next_req_id: &mut self.next_req_id,
            };
            self.cores[c].translation_done(
                r.vpn,
                r.ppn,
                &self.bucket_warps[c],
                self.now,
                &mut sink,
                stats,
            );
        }
        for i in 0..self.bucket_touched.len() {
            let c = self.bucket_touched[i];
            self.bucket_warps[c].clear();
        }
    }

    /// Stage 1 of `step` on the sharded frontend: fan the cores out over
    /// the worker pool, then merge the per-shard outputs serially in
    /// ascending shard (= ascending core) order. See `crate::shard` for
    /// the determinism argument.
    fn issue_sharded(&mut self, now: Cycle) {
        // All-idle cycles reduce to one stall count per core in the serial
        // loop (`is_idle` ⇒ no retries to drain, no warp to select); take
        // the equivalent cheap path instead of a cross-thread handshake.
        if self.cores.iter().all(GpuCore::is_idle) {
            for c in &self.cores {
                self.stats.apps[c.asid.index()].stall_cycles += 1;
            }
            return;
        }
        let pool = self
            .pool
            .get_or_insert_with(|| ShardPool::new(self.sm_shards));
        pool.run_issue(&mut self.cores, &mut self.shard_outs, &self.shard_cuts, now);
        for s in 0..self.shard_outs.len() {
            let out = &mut self.shard_outs[s];
            // Worker-side sanitizer events first: they were observed while
            // the shard's cores mutated their tables.
            mask_sanitizer::replay(&mut out.san);
            // Translation requests and data misses are independent streams
            // within a cycle (requests allocate no ids and touch only the
            // translation unit), so draining one then the other reproduces
            // the serial per-core interleaving's end state and id order.
            for x in out.xlat.drain(..) {
                self.xlat
                    .request(x.asid, x.vpn, x.requester, x.core_rank, now);
            }
            let mut sink = DirectIssue {
                xlat: &mut self.xlat,
                out_l2: &mut self.scratch_l2,
                next_req_id: &mut self.next_req_id,
            };
            for m in out.misses.drain(..) {
                sink.data_miss(m.core, m.asid, m.line, now);
            }
            for (app, delta) in out.stats.iter_mut().enumerate() {
                self.stats.apps[app].absorb(delta);
                delta.reset();
            }
        }
    }

    /// Advances the simulation one cycle.
    pub fn step(&mut self) {
        mask_sanitizer::enter_session(self.san_session);
        let now = self.now;
        mask_sanitizer::cycle(self.san_id, "gpu", now);
        mask_obs::hooks::set_cycle(now);
        // 1. Core issue stage: serial loop (the PR 3 hot path) or the
        // sharded frontend + serial merge tail (bit-identical, see
        // `crate::shard`).
        let timing = mask_obs::profile::stage(SimStage::Issue, now);
        if self.sm_shards > 1 {
            self.issue_sharded(now);
        } else {
            let mut sink = DirectIssue {
                xlat: &mut self.xlat,
                out_l2: &mut self.scratch_l2,
                next_req_id: &mut self.next_req_id,
            };
            for i in 0..self.cores.len() {
                let app = self.cores[i].asid.index();
                self.cores[i].issue(now, &mut sink, &mut self.stats.apps[app]);
            }
        }
        drop(timing);
        // 2. Translation unit: L2 TLB pipeline + walker activation. The
        // resolved scratch is taken out of `self` because `deliver_one`
        // needs `&mut self`; it is put back below with its capacity intact.
        let timing = mask_obs::profile::stage(SimStage::Translation, now);
        let mut pwc_hits = std::mem::take(&mut self.scratch_pwc);
        let mut resolved = std::mem::take(&mut self.scratch_resolved);
        self.xlat.tick(
            now,
            &mut self.next_req_id,
            &mut self.scratch_l2,
            &mut pwc_hits,
            &mut resolved,
        );
        for r in resolved.drain(..) {
            self.deliver_one(r);
        }
        self.scratch_resolved = resolved;
        drop(timing);
        // 3. Push L2-bound requests (disjoint-field borrow: the drain
        // iterator holds `scratch_l2` while `enqueue` borrows `l2`).
        let timing = mask_obs::profile::stage(SimStage::CacheL2, now);
        for req in self.scratch_l2.drain(..) {
            self.l2.enqueue(req, now);
        }
        // 4. Shared L2 cache.
        self.l2.tick(now);
        self.l2.drain_dram_requests_into(&mut self.scratch_dram);
        for req in self.scratch_dram.drain(..) {
            self.dram.enqueue(req, now);
        }
        drop(timing);
        // 5. DRAM.
        let timing = mask_obs::profile::stage(SimStage::Dram, now);
        self.dram.tick(now);
        self.dram
            .drain_completions_into(now, &mut self.scratch_compl);
        for c in self.scratch_compl.drain(..) {
            let app = c.req.asid.index();
            let class_stats = if c.req.class.is_translation() {
                &mut self.stats.apps[app].dram_translation
            } else {
                &mut self.stats.apps[app].dram_data
            };
            class_stats.requests += 1;
            class_stats.latency_sum += c.finish.saturating_sub(c.arrival);
            class_stats.bus_busy_cycles += c.bus_cycles;
            match c.outcome {
                RowOutcome::Hit => class_stats.row_hits += 1,
                RowOutcome::Miss => class_stats.row_misses += 1,
                RowOutcome::Conflict => class_stats.row_conflicts += 1,
            }
            self.stats.dram_bus_busy += c.bus_cycles;
            self.l2.dram_fill(c.req.line, now);
        }
        drop(timing);
        // 6. L2 responses: data to cores, translations to the walker. The
        // response scratch is taken out because the loop body re-enters
        // `&mut self` (`deliver_one`), then put back.
        let timing = mask_obs::profile::stage(SimStage::Responses, now);
        let mut resps = std::mem::take(&mut self.scratch_resp);
        self.l2.drain_responses_into(&mut resps);
        for resp in resps.drain(..) {
            let app = resp.req.asid.index();
            match resp.req.class {
                RequestClass::Data => {
                    mask_sanitizer::retire("core-data", resp.req.id.0);
                    self.stats.apps[app]
                        .l2_data
                        .record(resp.outcome == L2Outcome::Hit);
                    self.cores[resp.req.core.index()].line_done(resp.req.line);
                }
                RequestClass::Translation(level) => {
                    match resp.outcome {
                        L2Outcome::Bypassed => self.stats.apps[app].l2_translation_bypassed += 1,
                        out => {
                            self.stats.apps[app]
                                .record_l2_translation(level, out == L2Outcome::Hit);
                        }
                    }
                    let done = self.xlat.memory_response(
                        &resp.req,
                        now,
                        &mut self.next_req_id,
                        &mut self.scratch_l2,
                        &mut pwc_hits,
                    );
                    if let Some(r) = done {
                        self.deliver_one(r);
                    }
                }
            }
        }
        self.scratch_resp = resps;
        // Late-generated requests (walk continuations, fresh data after
        // translation wake-ups) enter the L2 this cycle as well.
        for req in self.scratch_l2.drain(..) {
            self.l2.enqueue(req, now);
        }
        drop(timing);
        // 7. PWC statistics.
        for (asid, hit) in pwc_hits.drain(..) {
            self.stats.apps[asid.index()].pwc.record(hit);
        }
        self.scratch_pwc = pwc_hits;
        // Queue-depth sampling (deduplicated per thread inside the hook);
        // the depth computations are skipped entirely when tracing is off.
        if mask_obs::tracing_active() {
            mask_obs::hooks::queue_depth(QueueKind::L2, self.l2.queued() as u32);
            mask_obs::hooks::queue_depth(QueueKind::Dram, self.dram.queued() as u32);
            mask_obs::hooks::queue_depth(QueueKind::DramInFlight, self.dram.in_flight() as u32);
            mask_obs::hooks::queue_depth(QueueKind::Walker, self.xlat.walker_demand() as u32);
        }
        // 8. Per-cycle sampling.
        for app in 0..self.n_apps {
            let walks = self.xlat.concurrent_walks(Asid::new(app as u16)) as u64;
            self.stats.apps[app].walk_cycles_integral += walks;
            self.stats.apps[app].walk_concurrency_max =
                self.stats.apps[app].walk_concurrency_max.max(walks);
            self.stats.apps[app].cycles += 1;
        }
        self.stats.cycles += 1;
        self.now += 1;
        // 9. Epoch boundary.
        if self.now.is_multiple_of(self.cfg.gpu.mask.epoch_cycles) {
            let pressure = self.xlat.end_epoch(self.cfg.gpu.mask.epoch_cycles);
            self.dram.update_pressure(&pressure);
            self.l2.end_epoch();
            self.emit_epoch_metrics();
        }
        mask_obs::hooks::flush_events(0);
    }

    /// Emits the per-epoch metrics frames when tracing is live.
    ///
    /// `sync_stats` is re-run first so the lifetime TLB/walker/token
    /// counters in the snapshot are current; it writes pure functions of
    /// simulator state that nothing reads back, so traced runs stay
    /// bit-identical to untraced ones.
    pub(crate) fn emit_epoch_metrics(&mut self) {
        if mask_obs::tracing_active() {
            self.sync_stats();
            self.obs.on_epoch(self.now, &self.stats);
        }
    }

    /// Runs for `cycles` additional cycles, fast-forwarding over spans
    /// where every core and component is provably idle. Results are
    /// bit-identical to stepping cycle by cycle (see `idle_horizon`);
    /// disable with [`GpuSim::set_cycle_skip`] to force the slow path.
    pub fn run(&mut self, cycles: u64) {
        let end = self.now + cycles;
        while self.now < end {
            if let Some(target) = self.idle_horizon(end) {
                self.fast_forward(target - self.now);
            } else {
                self.step();
            }
        }
    }

    /// Runs to the configured cycle budget.
    pub fn run_to_completion(&mut self) {
        let end = self.cfg.max_cycles;
        if self.now < end {
            self.run(end - self.now);
        }
    }

    /// Enables or disables idle cycle-skipping in [`GpuSim::run`]
    /// (enabled by default; determinism tests compare both modes).
    pub fn set_cycle_skip(&mut self, enabled: bool) {
        self.skip_enabled = enabled;
    }

    /// The earliest future cycle (≤ `end`) at which anything can happen,
    /// or `None` if the next cycle must be simulated in full.
    ///
    /// A span may be skipped only when every core is idle (no issuable
    /// warp, no deferred MSHR retry) and no component reports an event at
    /// or before `now`. Under those conditions `step()` provably changes
    /// nothing but the per-cycle counters that `fast_forward` replays in
    /// bulk: cores only count stall cycles, ticking a drained L2/DRAM is a
    /// no-op, and the translation unit only accrues its epoch integral.
    /// The skip is also capped at the next epoch boundary so epoch-end
    /// work fires on exactly the same cycle as in step-by-step execution.
    pub(crate) fn idle_horizon(&self, end: Cycle) -> Option<Cycle> {
        if !self.skip_enabled {
            return None;
        }
        if self.cores.iter().any(|c| !c.is_idle()) {
            return None;
        }
        let mut target = end;
        for ev in [
            self.xlat.next_event(),
            self.l2.next_event(),
            self.dram.next_event(),
        ]
        .into_iter()
        .flatten()
        {
            if ev <= self.now {
                return None;
            }
            target = target.min(ev);
        }
        let epoch = self.cfg.gpu.mask.epoch_cycles;
        if let Some(done) = self.now.checked_div(epoch) {
            target = target.min((done + 1) * epoch);
        }
        (target > self.now).then_some(target)
    }

    /// Advances `delta` fully idle cycles at once, applying exactly the
    /// state changes `delta` calls to `step()` would have made under the
    /// `idle_horizon` preconditions.
    pub(crate) fn fast_forward(&mut self, delta: u64) {
        debug_assert!(delta > 0);
        // Each idle core's issue stage counts one stall per cycle.
        for c in &self.cores {
            self.stats.apps[c.asid.index()].stall_cycles += delta;
        }
        // The translation unit's per-tick epoch integral.
        self.xlat.fast_forward(delta);
        // Per-cycle sampling (stage 8 of `step`).
        for app in 0..self.n_apps {
            let walks = self.xlat.concurrent_walks(Asid::new(app as u16)) as u64;
            self.stats.apps[app].walk_cycles_integral += walks * delta;
            self.stats.apps[app].walk_concurrency_max =
                self.stats.apps[app].walk_concurrency_max.max(walks);
            self.stats.apps[app].cycles += delta;
        }
        self.stats.cycles += delta;
        self.now += delta;
        // Epoch boundary (stage 9) — `idle_horizon` caps the skip at the
        // next boundary, so this fires on exactly the same cycles.
        if self.now.is_multiple_of(self.cfg.gpu.mask.epoch_cycles) {
            let pressure = self.xlat.end_epoch(self.cfg.gpu.mask.epoch_cycles);
            self.dram.update_pressure(&pressure);
            self.l2.end_epoch();
            self.emit_epoch_metrics();
        }
    }

    /// Runs `cycles` further cycles in sampled mode: `window`-cycle
    /// detailed bursts separated by `gap`-cycle statistical skips, in the
    /// spirit of interval sampling. Detailed windows execute exactly like
    /// [`GpuSim::run`]; gaps advance the clock (and fire epoch-boundary
    /// bookkeeping on schedule) without simulating, so in-flight work
    /// simply resumes at the next window.
    ///
    /// Sampled numbers are *estimates*, not bit-exact results — that is
    /// why the returned [`SampledRun`] carries an explicit error band
    /// (±2 standard errors of the per-window IPC) next to every
    /// extrapolated instruction count. The serial, snapshot-free run
    /// remains the oracle sampled numbers are judged against.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn run_sampled(&mut self, cycles: u64, window: u64, gap: u64) -> SampledRun {
        assert!(window > 0, "sampled mode needs a non-empty detailed window");
        let end = self.now + cycles;
        // lint: allow(hotpath) -- per-window bookkeeping, not per-cycle.
        let mut window_ipc: Vec<Vec<f64>> = vec![Vec::new(); self.n_apps];
        let mut detailed_cycles = 0u64;
        let mut skipped_cycles = 0u64;
        let mut windows = 0usize;
        while self.now < end {
            let w = window.min(end - self.now);
            let before: Vec<u64> = self.stats.apps.iter().map(|a| a.instructions).collect(); // lint: allow(hotpath) -- once per detailed window.
            self.run(w);
            detailed_cycles += w;
            windows += 1;
            for (app, b) in before.into_iter().enumerate() {
                let delta = self.stats.apps[app].instructions - b;
                window_ipc[app].push(delta as f64 / w as f64);
            }
            let g = gap.min(end - self.now);
            if g > 0 {
                self.statistical_skip(g);
                skipped_cycles += g;
            }
        }
        let span = cycles as f64;
        let mut est_instructions = Vec::with_capacity(self.n_apps);
        let mut error_band = Vec::with_capacity(self.n_apps);
        for ipcs in &window_ipc {
            let n = ipcs.len() as f64;
            let mean = ipcs.iter().sum::<f64>() / n;
            let var = if ipcs.len() > 1 {
                ipcs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
            } else {
                0.0
            };
            let stderr = (var / n).sqrt();
            est_instructions.push(mean * span);
            error_band.push(2.0 * stderr * span);
        }
        SampledRun {
            detailed_cycles,
            skipped_cycles,
            windows,
            est_instructions,
            error_band,
        }
    }

    /// Advances the clock by `delta` cycles without simulating, firing
    /// epoch-boundary bookkeeping on its usual schedule. Unlike
    /// [`GpuSim::fast_forward`] this needs no idleness proof — it is the
    /// deliberate approximation behind [`GpuSim::run_sampled`], never used
    /// on the bit-exact paths.
    fn statistical_skip(&mut self, delta: u64) {
        let epoch = self.cfg.gpu.mask.epoch_cycles;
        let mut left = delta;
        while left > 0 {
            let step = if epoch == 0 {
                left
            } else {
                left.min(epoch - self.now % epoch)
            };
            self.now += step;
            self.stats.cycles += step;
            for app in 0..self.n_apps {
                self.stats.apps[app].cycles += step;
            }
            left -= step;
            if epoch != 0 && self.now.is_multiple_of(epoch) {
                let pressure = self.xlat.end_epoch(epoch);
                self.dram.update_pressure(&pressure);
                self.l2.end_epoch();
            }
        }
    }

    /// Performs a TLB shootdown for one address space (§5.5): every core
    /// assigned to the address space flushes its L1 TLB, and the shared L2
    /// TLB (plus bypass cache) drops the matching entries. In-flight walks
    /// are unaffected — they re-fill after completion, exactly as hardware
    /// would behave with an invalidate racing a walk.
    pub fn tlb_shootdown(&mut self, asid: Asid) {
        for c in &mut self.cores {
            if c.asid == asid {
                c.flush_tlb_asid(asid);
            }
        }
        self.xlat.shootdown(asid);
    }

    /// Flushes *all* translation structures after a page-table-entry
    /// modification (§5.2).
    pub fn pte_update_flush(&mut self) {
        for c in &mut self.cores {
            c.flush_volatile();
        }
        self.xlat.pte_update_flush();
    }

    /// Zeroes every statistics counter while leaving all architectural and
    /// cached state intact.
    ///
    /// Call after a warm-up period so measurements reflect steady state —
    /// in particular, MASK's epoch-based mechanisms (tokens, bypass
    /// decisions, Silver-queue quotas) only activate after the first
    /// 100K-cycle epoch.
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::new(self.n_apps, self.cfg.gpu.dram.channels);
        self.xlat.reset_stats();
    }

    /// Flushes all cached state (TLBs, caches) — the cost of a context
    /// switch in the time-multiplexing experiment (Fig. 1).
    pub fn flush_volatile(&mut self) {
        for c in &mut self.cores {
            c.flush_volatile();
        }
        self.xlat.flush_volatile();
        self.l2.flush();
    }

    /// Total instructions issued by one application.
    pub fn instructions(&self, app: usize) -> u64 {
        self.stats.apps[app].instructions
    }

    /// Number of applications.
    pub fn n_apps(&self) -> usize {
        self.n_apps
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Whether the current cycle is a safe snapshot point: an epoch
    /// boundary, or any between-step cycle before the first boundary
    /// (where no epoch-end bookkeeping has run yet). Only at such points
    /// is the encoded state independent of the epoch-end-only MASK knobs
    /// excluded from [`mask_common::snapshot::PrefixKey`] derivation.
    pub fn at_epoch_safe_point(&self) -> bool {
        let epoch = self.cfg.gpu.mask.epoch_cycles;
        epoch == 0 || self.now.is_multiple_of(epoch) || self.now < epoch
    }

    /// Encodes the full dynamic simulator state into a sealed snapshot
    /// carrying `key`.
    ///
    /// # Panics
    ///
    /// Panics when called off an epoch-safe point (see
    /// [`GpuSim::at_epoch_safe_point`]) — snapshots between epoch
    /// boundaries would silently invalidate prefix-key sharing.
    pub fn encode_snapshot(&self, key: mask_common::snapshot::PrefixKey) -> Vec<u8> {
        use mask_common::snapshot::Snapshot as _;
        assert!(
            self.at_epoch_safe_point(),
            "snapshot at cycle {} is not epoch-safe (epoch = {})",
            self.now,
            self.cfg.gpu.mask.epoch_cycles
        );
        let mut w = mask_common::snapshot::SnapshotWriter::new();
        self.snapshot(&mut w);
        w.seal(key)
    }

    /// Restores the dynamic state encoded in `bytes` into this simulator,
    /// which must have been freshly constructed from the same
    /// configuration and applications. Rejects snapshots sealed under a
    /// different [`mask_common::snapshot::PrefixKey`] than `key`.
    ///
    /// # Errors
    ///
    /// Any envelope or payload failure leaves the simulator unusable;
    /// discard it and fall back to simulating from cycle zero.
    pub fn restore_snapshot(
        &mut self,
        bytes: &[u8],
        key: mask_common::snapshot::PrefixKey,
    ) -> Result<(), mask_common::snapshot::SnapshotError> {
        use mask_common::snapshot::Snapshot as _;
        let mut r = mask_common::snapshot::SnapshotReader::open_keyed(bytes, key)?;
        self.restore(&mut r)?;
        r.finish()
    }

    /// Field-by-field clone of all simulation state. The worker pool is
    /// *not* cloned — the copy lazily spawns its own on first sharded
    /// step — and the per-shard queues start fresh (they are empty between
    /// cycles anyway).
    fn new_clone(&self) -> Self {
        let mut shard_outs = Vec::new();
        if self.sm_shards > 1 {
            shard_outs.reserve_exact(self.sm_shards);
            for _ in 0..self.sm_shards {
                shard_outs.push(ShardOutput::new(self.n_apps));
            }
        }
        GpuSim {
            cfg: self.cfg.clone(),
            cores: self.cores.clone(),
            xlat: self.xlat.clone(),
            l2: self.l2.clone(),
            dram: self.dram.clone(),
            stats: self.stats.clone(),
            now: self.now,
            next_req_id: self.next_req_id,
            n_apps: self.n_apps,
            scratch_l2: self.scratch_l2.clone(),
            scratch_pwc: self.scratch_pwc.clone(),
            scratch_resolved: self.scratch_resolved.clone(),
            scratch_dram: self.scratch_dram.clone(),
            scratch_compl: self.scratch_compl.clone(),
            scratch_resp: self.scratch_resp.clone(),
            bucket_warps: self.bucket_warps.clone(),
            bucket_touched: self.bucket_touched.clone(),
            skip_enabled: self.skip_enabled,
            san_session: self.san_session,
            san_id: self.san_id,
            sm_shards: self.sm_shards,
            pool: None,
            shard_outs,
            shard_cuts: self.shard_cuts.clone(),
            obs: self.obs.clone(),
        }
    }
}

impl Clone for GpuSim {
    fn clone(&self) -> Self {
        self.new_clone()
    }
}

impl mask_common::snapshot::Snapshot for GpuSim {
    fn snapshot(&self, w: &mut mask_common::snapshot::SnapshotWriter) {
        w.section("gpu");
        w.u64(self.now);
        w.u64(self.next_req_id);
        self.stats.snapshot(w);
        w.seq(self.cores.len());
        for core in &self.cores {
            core.snapshot(w);
        }
        self.xlat.snapshot(w);
        self.l2.snapshot(w);
        self.dram.snapshot(w);
    }

    fn restore(
        &mut self,
        r: &mut mask_common::snapshot::SnapshotReader<'_>,
    ) -> Result<(), mask_common::snapshot::SnapshotError> {
        // Bind the structural replays performed by component restores
        // (MSHR mirrors, walker slots, conservation domains) to this
        // simulator's own sanitizer session.
        mask_sanitizer::enter_session(self.san_session);
        r.section("gpu")?;
        self.now = r.u64()?;
        self.next_req_id = r.u64()?;
        self.stats.restore(r)?;
        r.seq_exact(self.cores.len())?;
        for core in &mut self.cores {
            core.restore(r)?;
        }
        self.xlat.restore(r)?;
        self.l2.restore(r)?;
        self.dram.restore(r)?;
        // Conservation: data-class requests below the cores were `issue`d
        // as "core-data" in the snapshotted session. Every outstanding one
        // is visible in the L2 exactly once (requests forwarded to DRAM
        // are copies whose originals remain as MSHR waiters); translation
        // requests were already re-issued by the translation unit from its
        // own outstanding-walk table.
        if mask_sanitizer::is_enabled() {
            self.l2.for_each_in_flight(|req| {
                if req.class == RequestClass::Data {
                    mask_sanitizer::issue("core-data", req.id.0);
                }
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mask_common::config::DesignKind;
    use mask_workloads::app_by_name;

    fn sim(design: DesignKind, apps: &[(&str, usize)], cycles: u64) -> GpuSim {
        let mut cfg = SimConfig::new(design).with_max_cycles(cycles);
        cfg.gpu.n_cores = apps.iter().map(|(_, c)| c).sum();
        cfg.gpu.warps_per_core = 16; // keep unit tests fast
        let specs: Vec<AppSpec> = apps
            .iter()
            .map(|(name, c)| AppSpec {
                profile: app_by_name(name).expect("known app"),
                n_cores: *c,
            })
            .collect();
        GpuSim::new(&cfg, &specs)
    }

    #[test]
    fn single_app_makes_progress() {
        let mut s = sim(DesignKind::SharedTlb, &[("HISTO", 4)], 5_000);
        s.run_to_completion();
        s.sync_stats();
        let stats = s.stats();
        assert!(
            stats.apps[0].instructions > 1_000,
            "got {}",
            stats.apps[0].instructions
        );
        assert!(stats.apps[0].l1_tlb.accesses > 0);
        assert!(
            stats.apps[0].walks_completed > 0,
            "HISTO must trigger walks"
        );
    }

    #[test]
    fn ideal_beats_shared_tlb() {
        let mut ideal = sim(DesignKind::Ideal, &[("CONS", 4)], 10_000);
        let mut base = sim(DesignKind::SharedTlb, &[("CONS", 4)], 10_000);
        ideal.run_to_completion();
        base.run_to_completion();
        ideal.sync_stats();
        base.sync_stats();
        let i = ideal.stats().apps[0].ipc();
        let b = base.stats().apps[0].ipc();
        assert!(
            i > b,
            "ideal TLB ({i:.3} IPC) must outperform SharedTLB ({b:.3} IPC)"
        );
    }

    #[test]
    fn two_apps_share_the_gpu() {
        let mut s = sim(DesignKind::SharedTlb, &[("HISTO", 2), ("GUP", 2)], 8_000);
        s.run_to_completion();
        s.sync_stats();
        let st = s.stats();
        assert!(st.apps[0].instructions > 0);
        assert!(st.apps[1].instructions > 0);
        // Both applications used the DRAM.
        assert!(st.apps[0].dram_data.requests > 0);
        assert!(st.apps[1].dram_data.requests > 0);
    }

    #[test]
    fn translation_requests_traverse_memory_hierarchy() {
        let mut s = sim(DesignKind::SharedTlb, &[("SCAN", 4)], 8_000);
        s.run_to_completion();
        s.sync_stats();
        let st = s.stats();
        let xlat_probes: u64 = (0..4).map(|l| st.apps[0].l2_translation[l].accesses).sum();
        assert!(xlat_probes > 0, "walker requests must reach the L2 cache");
        assert!(st.apps[0].dram_translation.requests > 0, "and DRAM");
    }

    #[test]
    fn upper_walk_levels_hit_more_than_leaves() {
        let mut s = sim(DesignKind::SharedTlb, &[("CONS", 4)], 20_000);
        s.run_to_completion();
        s.sync_stats();
        let st = s.stats();
        let root = st.apps[0].l2_translation[0].hit_rate();
        let leaf = st.apps[0].l2_translation[3].hit_rate();
        assert!(
            root > leaf,
            "root PTE lines are shared (hit {root:.2}); leaf lines are not (hit {leaf:.2})"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = sim(DesignKind::Mask, &[("HISTO", 2), ("GUP", 2)], 3_000);
        let mut b = sim(DesignKind::Mask, &[("HISTO", 2), ("GUP", 2)], 3_000);
        a.run_to_completion();
        b.run_to_completion();
        a.sync_stats();
        b.sync_stats();
        assert_eq!(a.stats(), b.stats(), "simulation must be bit-reproducible");
    }

    #[test]
    fn mask_design_reports_tokens() {
        let mut s = sim(DesignKind::Mask, &[("CONS", 2), ("RED", 2)], 4_000);
        s.run_to_completion();
        s.sync_stats();
        let st = s.stats();
        assert!(st.apps[0].tokens_final > 0);
    }

    #[test]
    fn flush_volatile_preserves_progress() {
        let mut s = sim(DesignKind::SharedTlb, &[("HISTO", 2)], 4_000);
        s.run(2_000);
        let before = s.instructions(0);
        s.flush_volatile();
        s.run(2_000);
        assert!(
            s.instructions(0) > before,
            "execution continues after a flush"
        );
    }

    #[test]
    fn shootdown_degrades_then_recovers() {
        let mut s = sim(DesignKind::SharedTlb, &[("GUP", 2), ("HS", 2)], 30_000);
        s.run(10_000);
        s.sync_stats();
        let miss_before = s.stats().apps[0].l1_tlb.miss_rate();
        // Shoot down app 0's translations; its miss rate must spike while
        // app 1 is unaffected structurally.
        s.tlb_shootdown(Asid::new(0));
        s.reset_stats();
        s.run(2_000);
        s.sync_stats();
        let miss_after = s.stats().apps[0].l1_tlb.miss_rate();
        assert!(
            miss_after > miss_before,
            "shootdown must cause a refill burst ({miss_before:.3} -> {miss_after:.3})"
        );
        // Execution continues and recovers.
        s.run(10_000);
        s.sync_stats();
        assert!(s.stats().apps[0].instructions > 0);
        assert!(s.stats().apps[1].instructions > 0);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        use mask_common::snapshot::PrefixKey;
        let apps: &[(&str, usize)] = &[("HISTO", 2), ("GUP", 2)];
        let mut oracle = sim(DesignKind::Mask, apps, 6_000);
        oracle.run(6_000);
        oracle.sync_stats();

        let mut prefix = sim(DesignKind::Mask, apps, 6_000);
        prefix.run(3_000);
        let bytes = prefix.encode_snapshot(PrefixKey(7));

        let mut resumed = sim(DesignKind::Mask, apps, 6_000);
        resumed
            .restore_snapshot(&bytes, PrefixKey(7))
            .expect("restore");
        resumed.run(3_000);
        resumed.sync_stats();
        assert_eq!(oracle.stats(), resumed.stats(), "resume must be bit-exact");

        // The encoded state at the common end point must be byte-identical
        // too — stats equality alone could hide architectural divergence.
        assert_eq!(
            oracle.encode_snapshot(PrefixKey(7)),
            resumed.encode_snapshot(PrefixKey(7)),
        );
    }

    #[test]
    fn restore_rejects_wrong_key_and_garbage() {
        use mask_common::snapshot::PrefixKey;
        let apps: &[(&str, usize)] = &[("HISTO", 2)];
        let mut s = sim(DesignKind::SharedTlb, apps, 2_000);
        s.run(1_000);
        let bytes = s.encode_snapshot(PrefixKey(1));
        let mut fresh = sim(DesignKind::SharedTlb, apps, 2_000);
        assert!(fresh.restore_snapshot(&bytes, PrefixKey(2)).is_err());
        assert!(fresh
            .restore_snapshot(&bytes[..bytes.len() / 2], PrefixKey(1))
            .is_err());
    }

    #[test]
    fn sampled_run_brackets_the_serial_oracle() {
        let apps: &[(&str, usize)] = &[("HISTO", 2), ("GUP", 2)];
        let mut oracle = sim(DesignKind::SharedTlb, apps, 40_000);
        oracle.run(40_000);

        let mut sampled = sim(DesignKind::SharedTlb, apps, 40_000);
        let report = sampled.run_sampled(40_000, 2_000, 2_000);
        assert_eq!(report.detailed_cycles + report.skipped_cycles, 40_000);
        assert!(report.windows >= 10);
        for app in 0..2 {
            let exact = oracle.instructions(app) as f64;
            let est = report.est_instructions[app];
            let band = report.error_band[app].max(exact * 0.05);
            assert!(
                (est - exact).abs() <= band.max(exact * 0.25),
                "app {app}: est {est:.0} vs oracle {exact:.0} outside band {band:.0}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "core counts must cover the GPU")]
    fn mismatched_core_counts_panic() {
        let mut cfg = SimConfig::new(DesignKind::SharedTlb);
        cfg.gpu.n_cores = 8;
        let _ = GpuSim::new(
            &cfg,
            &[AppSpec {
                profile: app_by_name("GUP").expect("known"),
                n_cores: 4,
            }],
        );
    }
}
