//! The timed DRAM device: channels, banks, row buffers, and scheduling.

use crate::mapping::{decode, ChannelPartition, Decoded};
use crate::queues::{frfcfs_pick, BatchState, MaskQueues, QueueEntry};
use mask_common::config::{DramConfig, DramPolicy, MemSchedKind, RowPolicy};
use mask_common::ids::Asid;
use mask_common::req::MemRequest;
use mask_common::Cycle;

/// How an access interacted with its bank's row buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RowOutcome {
    /// The row was already open (CAS only).
    Hit,
    /// The bank was precharged (RCD + CAS).
    Miss,
    /// A different row was open (RP + RCD + CAS).
    Conflict,
}

/// A finished DRAM access.
#[derive(Clone, Copy, Debug)]
pub struct DramCompletion {
    /// The serviced request.
    pub req: MemRequest,
    /// Row-buffer interaction.
    pub outcome: RowOutcome,
    /// Cycle the request arrived at the controller.
    pub arrival: Cycle,
    /// Cycle the data transfer finished.
    pub finish: Cycle,
    /// Channel data-bus cycles consumed (burst length).
    pub bus_cycles: u64,
}

#[derive(Clone, Debug)]
struct BankState {
    open_row: Option<u64>,
    busy_until: Cycle,
}

#[derive(Clone, Debug)]
enum ChannelQueue {
    /// Single request buffer with FR-FCFS or batch scheduling.
    Baseline(Vec<QueueEntry>, Option<BatchState>),
    /// MASK's Golden/Silver/Normal queues.
    Mask(MaskQueues),
}

#[derive(Clone, Debug)]
struct Channel {
    banks: Vec<BankState>,
    queue: ChannelQueue,
    bus_free_at: Cycle,
    in_flight: Vec<DramCompletion>,
}

impl Channel {
    fn queue_len(&self) -> usize {
        match &self.queue {
            ChannelQueue::Baseline(q, _) => q.len(),
            ChannelQueue::Mask(m) => m.len(),
        }
    }
}

/// The DRAM device.
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    channels: Vec<Channel>,
    partition: ChannelPartition,
    n_apps: usize,
    /// Sanitizer instance id for cycle-monotonicity tracking.
    san_id: u64,
}

impl Dram {
    /// Creates the device under `policy` — the one
    /// [`DesignSpec`](mask_common::config::DesignSpec) axis this layer
    /// consumes. [`DramPolicy::MaskQueues`] selects the Address-Space-Aware
    /// scheduler; [`DramPolicy::ChannelPartitioned`] confines applications
    /// to channel subsets (Static baseline);
    /// [`DramPolicy::BankColored`] colors banks within shared channels
    /// (Partitioned baseline). Partitioning is a no-op for a single app.
    pub fn new(cfg: &DramConfig, n_apps: usize, policy: DramPolicy) -> Self {
        let mask_sched = policy == DramPolicy::MaskQueues;
        let partition = match policy {
            DramPolicy::ChannelPartitioned if n_apps > 1 => {
                ChannelPartition::split(cfg.channels, n_apps)
            }
            DramPolicy::BankColored if n_apps > 1 => {
                ChannelPartition::bank_colored(cfg.banks_per_channel, n_apps)
            }
            _ => ChannelPartition::shared(),
        };
        let make_queue = || {
            if mask_sched {
                ChannelQueue::Mask(MaskQueues::new(
                    cfg.golden_capacity,
                    cfg.silver_capacity,
                    cfg.thresh_max,
                    n_apps,
                ))
            } else {
                let batch = matches!(cfg.sched, MemSchedKind::GpuBatch).then(BatchState::default);
                ChannelQueue::Baseline(Vec::new(), batch)
            }
        };
        Dram {
            cfg: cfg.clone(),
            channels: (0..cfg.channels)
                .map(|_| Channel {
                    banks: (0..cfg.banks_per_channel)
                        .map(|_| BankState {
                            open_row: None,
                            busy_until: 0,
                        })
                        .collect(),
                    queue: make_queue(),
                    bus_free_at: 0,
                    in_flight: Vec::new(),
                })
                .collect(),
            partition,
            n_apps: n_apps.max(1),
            san_id: mask_sanitizer::register_component("dram"),
        }
    }

    /// Accepts a request at cycle `now`.
    pub fn enqueue(&mut self, req: MemRequest, now: Cycle) {
        // Conservation: every accepted request must surface again through
        // `take_completions`.
        mask_sanitizer::issue("dram", req.id.0);
        let decoded = decode(req.line, &self.cfg, &self.partition, req.asid);
        if mask_sanitizer::is_enabled() {
            if let Some((start, n)) = self.partition.bank_range(req.asid) {
                mask_sanitizer::check(
                    decoded.bank >= start && decoded.bank < start + n,
                    "dram-bank-color",
                    "a bank-colored request must stay inside its application's bank range",
                );
            }
        }
        let entry = QueueEntry {
            req,
            decoded,
            arrival: now,
        };
        match &mut self.channels[decoded.channel].queue {
            ChannelQueue::Baseline(q, _) => q.push(entry),
            ChannelQueue::Mask(m) => m.enqueue(entry),
        }
    }

    /// Advances one cycle: each channel may issue one request to a free
    /// bank according to its scheduling policy.
    pub fn tick(&mut self, now: Cycle) {
        mask_sanitizer::cycle(self.san_id, "dram", now);
        for ch in &mut self.channels {
            let banks = &ch.banks;
            let bank_free = |b: usize| banks[b].busy_until <= now;
            let open_row = |b: usize| banks[b].open_row;
            let picked: Option<QueueEntry> = match &mut ch.queue {
                ChannelQueue::Baseline(q, batch) => {
                    let idx = match batch {
                        Some(state) => state.pick(q, self.n_apps, bank_free, open_row),
                        None => frfcfs_pick(q, bank_free, open_row),
                    };
                    idx.map(|i| q.remove(i))
                }
                ChannelQueue::Mask(m) => m.pick(bank_free, open_row),
            };
            let Some(entry) = picked else { continue };
            let Decoded { bank, row, .. } = entry.decoded;
            let bank_state = &mut ch.banks[bank];
            let (outcome, access_lat) = match (self.cfg.row_policy, bank_state.open_row) {
                (RowPolicy::Open, Some(open)) if open == row => (RowOutcome::Hit, self.cfg.t_cas),
                (RowPolicy::Open, Some(_)) => (
                    RowOutcome::Conflict,
                    self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas,
                ),
                (RowPolicy::Open, None) | (RowPolicy::Closed, None) => {
                    (RowOutcome::Miss, self.cfg.t_rcd + self.cfg.t_cas)
                }
                (RowPolicy::Closed, Some(_)) => {
                    // Closed policy never leaves rows open; defensive arm.
                    (RowOutcome::Miss, self.cfg.t_rcd + self.cfg.t_cas)
                }
            };
            bank_state.open_row = match self.cfg.row_policy {
                RowPolicy::Open => Some(row),
                RowPolicy::Closed => None,
            };
            let data_ready = now + access_lat;
            let start = data_ready.max(ch.bus_free_at);
            let finish = start + self.cfg.burst_cycles;
            ch.bus_free_at = finish;
            // The bank is occupied until its data is ready to transfer;
            // subsequent CAS commands to the open row pipeline behind the
            // shared data bus (which `bus_free_at` serializes).
            bank_state.busy_until = data_ready;
            ch.in_flight.push(DramCompletion {
                req: entry.req,
                outcome,
                arrival: entry.arrival,
                finish,
                bus_cycles: self.cfg.burst_cycles,
            });
        }
    }

    /// Drains accesses whose data transfer has finished by `now`.
    ///
    /// Allocating wrapper around [`Dram::drain_completions_into`] for tests
    /// and cold paths.
    pub fn take_completions(&mut self, now: Cycle) -> Vec<DramCompletion> {
        let mut out = Vec::new();
        self.drain_completions_into(now, &mut out);
        out
    }

    /// Moves accesses whose data transfer has finished by `now` into `out`
    /// (not cleared).
    pub fn drain_completions_into(&mut self, now: Cycle, out: &mut Vec<DramCompletion>) {
        let start = out.len();
        for ch in &mut self.channels {
            let mut i = 0;
            while i < ch.in_flight.len() {
                if ch.in_flight[i].finish <= now {
                    out.push(ch.in_flight.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        if mask_sanitizer::is_enabled() {
            for c in &out[start..] {
                mask_sanitizer::retire("dram", c.req.id.0);
            }
        }
    }

    /// Earliest cycle at which this device can make progress: `Some(0)`
    /// while any channel still holds queued requests (scheduling depends on
    /// bank/bus state, so we conservatively call it busy every cycle), the
    /// earliest in-flight finish otherwise, and `None` when fully drained.
    pub fn next_event(&self) -> Option<Cycle> {
        if self.channels.iter().any(|ch| ch.queue_len() > 0) {
            return Some(0);
        }
        self.channels
            .iter()
            .flat_map(|ch| ch.in_flight.iter().map(|c| c.finish))
            .min()
    }

    /// Pushes fresh per-app pressure products (`ConPTW_i * WarpsStalled_i`)
    /// into every channel's MASK queues (no-op for baseline scheduling).
    pub fn update_pressure(&mut self, pressure: &[u64]) {
        for ch in &mut self.channels {
            if let ChannelQueue::Mask(m) = &mut ch.queue {
                m.update_pressure(pressure);
            }
        }
    }

    /// Total requests queued across channels.
    pub fn queued(&self) -> usize {
        self.channels.iter().map(Channel::queue_len).sum()
    }

    /// Requests issued to banks but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.channels.iter().map(|c| c.in_flight.len()).sum()
    }

    /// The channel an address-space's line maps to (telemetry/tests).
    pub fn channel_of(&self, line: mask_common::addr::LineAddr, asid: Asid) -> usize {
        decode(line, &self.cfg, &self.partition, asid).channel
    }

    /// Visits every request currently held by the device — queued in a
    /// channel's request buffer or in flight to a bank. Each accepted,
    /// uncompleted request is visited exactly once.
    pub fn for_each_in_flight(&self, mut f: impl FnMut(&MemRequest)) {
        for ch in &self.channels {
            match &ch.queue {
                ChannelQueue::Baseline(q, _) => {
                    for e in q {
                        f(&e.req);
                    }
                }
                ChannelQueue::Mask(m) => m.for_each_entry(|e| f(&e.req)),
            }
            for c in &ch.in_flight {
                f(&c.req);
            }
        }
    }
}

fn row_outcome_tag(outcome: RowOutcome) -> u8 {
    match outcome {
        RowOutcome::Hit => 0,
        RowOutcome::Miss => 1,
        RowOutcome::Conflict => 2,
    }
}

impl mask_common::snapshot::Snapshot for Dram {
    fn snapshot(&self, w: &mut mask_common::snapshot::SnapshotWriter) {
        use mask_common::snapshot::SnapField;
        w.section("dram");
        w.seq(self.channels.len());
        for ch in &self.channels {
            w.seq(ch.banks.len());
            for bank in &ch.banks {
                w.bool(bank.open_row.is_some());
                w.u64(bank.open_row.unwrap_or(0));
                w.u64(bank.busy_until);
            }
            // The queue *variant* is config-derived; only contents are state.
            match &ch.queue {
                ChannelQueue::Baseline(q, batch) => {
                    w.seq(q.len());
                    for e in q {
                        e.write(w);
                    }
                    if let Some(b) = batch {
                        b.snapshot(w);
                    }
                }
                ChannelQueue::Mask(m) => m.snapshot(w),
            }
            w.u64(ch.bus_free_at);
            w.seq(ch.in_flight.len());
            for c in &ch.in_flight {
                c.req.write(w);
                w.u8(row_outcome_tag(c.outcome));
                w.u64(c.arrival);
                w.u64(c.finish);
                w.u64(c.bus_cycles);
            }
        }
    }

    fn restore(
        &mut self,
        r: &mut mask_common::snapshot::SnapshotReader<'_>,
    ) -> Result<(), mask_common::snapshot::SnapshotError> {
        use mask_common::snapshot::{SnapField, SnapshotError};
        r.section("dram")?;
        r.seq_exact(self.channels.len())?;
        for ch in &mut self.channels {
            r.seq_exact(ch.banks.len())?;
            for bank in &mut ch.banks {
                let open = r.bool()?;
                let row = r.u64()?;
                bank.open_row = open.then_some(row);
                bank.busy_until = r.u64()?;
            }
            match &mut ch.queue {
                ChannelQueue::Baseline(q, batch) => {
                    let n = r.seq()?;
                    q.clear();
                    for _ in 0..n {
                        q.push(QueueEntry::read(r)?);
                    }
                    if let Some(b) = batch {
                        b.restore(r)?;
                    }
                }
                ChannelQueue::Mask(m) => m.restore(r)?,
            }
            ch.bus_free_at = r.u64()?;
            let n = r.seq()?;
            ch.in_flight.clear();
            for _ in 0..n {
                let req = MemRequest::read(r)?;
                let outcome = match r.u8()? {
                    0 => RowOutcome::Hit,
                    1 => RowOutcome::Miss,
                    2 => RowOutcome::Conflict,
                    _ => return Err(SnapshotError::Malformed("unknown row outcome")),
                };
                ch.in_flight.push(DramCompletion {
                    req,
                    outcome,
                    arrival: r.u64()?,
                    finish: r.u64()?,
                    bus_cycles: r.u64()?,
                });
            }
        }
        // Re-open the device's conservation domain: every queued or
        // in-flight request was accepted before the snapshot and has yet to
        // complete. (MaskQueues re-opens its own `dram-queues` domain.)
        if mask_sanitizer::is_enabled() {
            for ch in &self.channels {
                match &ch.queue {
                    ChannelQueue::Baseline(q, _) => {
                        for e in q {
                            mask_sanitizer::issue("dram", e.req.id.0);
                        }
                    }
                    ChannelQueue::Mask(m) => {
                        m.for_each_entry(|e| mask_sanitizer::issue("dram", e.req.id.0));
                    }
                }
                for c in &ch.in_flight {
                    mask_sanitizer::issue("dram", c.req.id.0);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mask_common::addr::LineAddr;
    use mask_common::ids::CoreId;
    use mask_common::req::{ReqId, RequestClass, WalkLevel};

    fn cfg() -> DramConfig {
        DramConfig::default()
    }

    fn req(id: u64, line: u64, class: RequestClass) -> MemRequest {
        MemRequest::new(
            ReqId(id),
            LineAddr(line),
            Asid::new(0),
            CoreId::new(0),
            class,
            0,
        )
    }

    fn run(dram: &mut Dram, from: Cycle, to: Cycle) -> Vec<DramCompletion> {
        let mut out = Vec::new();
        for now in from..to {
            dram.tick(now);
            out.extend(dram.take_completions(now));
        }
        out
    }

    #[test]
    fn single_access_latency_is_miss_plus_burst() {
        let mut d = Dram::new(&cfg(), 1, DramPolicy::Shared);
        d.enqueue(req(1, 100, RequestClass::Data), 0);
        let done = run(&mut d, 0, 100);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].outcome, RowOutcome::Miss);
        // t_rcd + t_cas + burst = 12 + 12 + 4 = 28.
        assert_eq!(done[0].finish, 28);
    }

    #[test]
    fn same_row_second_access_is_a_hit() {
        let mut d = Dram::new(&cfg(), 1, DramPolicy::Shared);
        d.enqueue(req(1, 100, RequestClass::Data), 0);
        d.enqueue(req(2, 101, RequestClass::Data), 0); // same 16-line row
        let done = run(&mut d, 0, 200);
        assert_eq!(done.len(), 2);
        let hit = done
            .iter()
            .find(|c| c.req.id == ReqId(2))
            .expect("second completes");
        assert_eq!(hit.outcome, RowOutcome::Hit);
    }

    #[test]
    fn conflict_costs_more_than_hit() {
        let mut d = Dram::new(&cfg(), 1, DramPolicy::Shared);
        // Two rows in the same bank: line +16 moves one row but the bank
        // XOR-fold may move banks; pick rows far apart mapping to the same
        // channel+bank by brute force.
        let base = 0u64;
        let d0 = d.channel_of(LineAddr(base), Asid::new(0));
        let mut other = None;
        for k in 1..4096u64 {
            let line = base + k * 16;
            if d.channel_of(LineAddr(line), Asid::new(0)) == d0 {
                let a = decode(
                    LineAddr(base),
                    &cfg(),
                    &ChannelPartition::shared(),
                    Asid::new(0),
                );
                let b = decode(
                    LineAddr(line),
                    &cfg(),
                    &ChannelPartition::shared(),
                    Asid::new(0),
                );
                if a.bank == b.bank && a.row != b.row {
                    other = Some(line);
                    break;
                }
            }
        }
        let other = other.expect("found a conflicting row");
        d.enqueue(req(1, base, RequestClass::Data), 0);
        d.enqueue(req(2, other, RequestClass::Data), 0);
        let done = run(&mut d, 0, 300);
        let c = done
            .iter()
            .find(|c| c.req.id == ReqId(2))
            .expect("completes");
        assert_eq!(c.outcome, RowOutcome::Conflict);
    }

    #[test]
    fn closed_row_policy_never_hits_or_conflicts() {
        let mut c = cfg();
        c.row_policy = RowPolicy::Closed;
        let mut d = Dram::new(&c, 1, DramPolicy::Shared);
        for i in 0..8u64 {
            d.enqueue(req(i, 100 + i, RequestClass::Data), 0);
        }
        let done = run(&mut d, 0, 500);
        assert_eq!(done.len(), 8);
        assert!(done.iter().all(|x| x.outcome == RowOutcome::Miss));
    }

    #[test]
    fn frfcfs_starves_scattered_translations_behind_streams() {
        // The Fig. 9 phenomenon: once a data stream has its row open,
        // FR-FCFS keeps serving its row hits and an isolated translation
        // request (different row, no hit) waits even though it is older
        // than most of the stream.
        let mut d = Dram::new(&cfg(), 1, DramPolicy::Shared);
        // Find a line in the same channel and bank as line 0 but another
        // row: the translation then row-conflicts with the stream.
        let part = ChannelPartition::shared();
        let d0 = decode(LineAddr(0), &cfg(), &part, Asid::new(0));
        let xlat_line = (1..65536u64)
            .map(|k| k * 16)
            .find(|&l| {
                let dd = decode(LineAddr(l), &cfg(), &part, Asid::new(0));
                dd.channel == d0.channel && dd.bank == d0.bank && dd.row != d0.row
            })
            .expect("same-bank different-row line exists");
        // Open the stream's row first.
        d.enqueue(req(0, 0, RequestClass::Data), 0);
        for now in 0..30 {
            d.tick(now);
        }
        d.take_completions(30);
        // Translation arrives, then a burst of row-hitting data behind it.
        d.enqueue(
            req(999, xlat_line, RequestClass::Translation(WalkLevel::new(4))),
            30,
        );
        for i in 1..16u64 {
            d.enqueue(req(i, i, RequestClass::Data), 31);
        }
        let done = run(&mut d, 31, 2000);
        let xlat_done = done
            .iter()
            .find(|c| c.req.id == ReqId(999))
            .expect("completes");
        let data_before = done
            .iter()
            .filter(|c| c.req.id != ReqId(999) && c.finish < xlat_done.finish)
            .count();
        assert!(
            data_before >= 10,
            "row-hit stream should be served before the older scattered \
             translation, only {data_before} data requests finished first"
        );
    }

    #[test]
    fn mask_scheduler_prioritizes_translations() {
        let mut d = Dram::new(&cfg(), 2, DramPolicy::MaskQueues);
        // Flood with data row hits, then one translation.
        for i in 0..32u64 {
            d.enqueue(req(i, i % 16, RequestClass::Data), 0);
        }
        d.enqueue(
            req(
                999,
                16 * 8 * 8 * 4,
                RequestClass::Translation(WalkLevel::new(4)),
            ),
            0,
        );
        let done = run(&mut d, 0, 3000);
        let xlat = done
            .iter()
            .find(|c| c.req.id == ReqId(999))
            .expect("completes");
        let same_ch: Vec<_> = done
            .iter()
            .filter(|c| c.req.id != ReqId(999))
            .filter(|c| {
                d.channel_of(c.req.line, Asid::new(0)) == d.channel_of(xlat.req.line, Asid::new(0))
            })
            .collect();
        if same_ch.len() >= 4 {
            let served_before = same_ch.iter().filter(|c| c.finish < xlat.finish).count();
            assert!(
                served_before <= 2,
                "golden queue should jump ahead of the data backlog, {served_before} served first"
            );
        }
    }

    #[test]
    fn bus_serializes_transfers_on_one_channel() {
        let mut d = Dram::new(&cfg(), 1, DramPolicy::Shared);
        // 4 accesses to the same row: one miss + three hits, but the bus
        // only moves one burst at a time.
        for i in 0..4u64 {
            d.enqueue(req(i, i, RequestClass::Data), 0);
        }
        let done = run(&mut d, 0, 200);
        let mut finishes: Vec<Cycle> = done.iter().map(|c| c.finish).collect();
        finishes.sort_unstable();
        for w in finishes.windows(2) {
            assert!(w[1] >= w[0] + cfg().burst_cycles, "bursts must not overlap");
        }
    }

    #[test]
    fn channels_operate_in_parallel() {
        let mut d = Dram::new(&cfg(), 1, DramPolicy::Shared);
        // One access per channel: all finish at the same cycle.
        for ch_target in 0..8u64 {
            d.enqueue(req(ch_target, ch_target * 16, RequestClass::Data), 0);
        }
        let done = run(&mut d, 0, 100);
        assert_eq!(done.len(), 8);
        let first = done[0].finish;
        assert!(
            done.iter().all(|c| c.finish == first),
            "independent channels don't serialize"
        );
    }

    #[test]
    fn queue_occupancy_tracks_enqueues() {
        let mut d = Dram::new(&cfg(), 1, DramPolicy::Shared);
        for i in 0..10u64 {
            d.enqueue(req(i, i * 1000, RequestClass::Data), 0);
        }
        assert_eq!(d.queued(), 10);
        d.tick(0);
        assert!(d.queued() < 10);
        assert!(d.in_flight() > 0);
    }
}
