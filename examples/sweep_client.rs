//! Parameter sweep through the `maskd` daemon, with an in-process oracle.
//!
//! Boots a daemon on an ephemeral loopback port with a temporary on-disk
//! result store, sweeps designs × seeds × an integer TLB-size override
//! through the HTTP client, and byte-compares every served result against
//! the same `SimJob` run directly in this process — the all-integer
//! statistics make `==` an exact check. The sweep is then resubmitted in
//! full: every job must be answered from the content-addressed store with
//! zero additional simulation.
//!
//! ```text
//! cargo run --release --example sweep_client
//! ```

use mask_common::config::DesignKind;
use mask_core::JobPool;
use maskd::json::Value;
use maskd::wire::{GpuOverrides, JobSpec};
use maskd::{Client, Daemon, DaemonConfig};

fn spec(design: DesignKind, seed: u64, l2_tlb_entries: usize) -> JobSpec {
    JobSpec {
        tenant: "sweep".to_owned(),
        design,
        apps: vec![("CONS".to_owned(), 2), ("LPS".to_owned(), 2)],
        max_cycles: 5_000,
        warmup_cycles: 1_000,
        seed,
        gpu: "maxwell".to_owned(),
        overrides: GpuOverrides {
            l2_tlb_entries: Some(l2_tlb_entries),
            ..GpuOverrides::default()
        },
    }
}

fn scheduler_counter(stats: &Value, key: &str) -> u64 {
    stats
        .get("scheduler")
        .and_then(|s| s.get(key))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

fn main() {
    let store_dir = std::env::temp_dir().join(format!("maskd-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);

    let cfg = DaemonConfig {
        addr: "127.0.0.1:0".to_owned(),
        store_dir: Some(store_dir.clone()),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::spawn_with_pool(cfg, JobPool::with_workers(4)).expect("boot daemon");
    let client = Client::new(daemon.addr().to_string());
    println!(
        "daemon listening on {} (store: {})\n",
        daemon.addr(),
        store_dir.display()
    );

    let designs = [DesignKind::SharedTlb, DesignKind::Mask, DesignKind::Ideal];
    let tlb_sizes = [256usize, 512];
    let seeds = [7u64, 8];

    let mut points: Vec<JobSpec> = Vec::new();
    for &design in &designs {
        for &entries in &tlb_sizes {
            for &seed in &seeds {
                points.push(spec(design, seed, entries));
            }
        }
    }

    println!(
        "{:<10} {:>8} {:>6} {:>12} {:>10}",
        "design", "L2 TLB", "seed", "cycles", "oracle"
    );
    let mut ids = Vec::new();
    for point in &points {
        let submitted = client.submit(point).expect("submit");
        ids.push(submitted.id);
    }
    for (point, id) in points.iter().zip(&ids) {
        let reply = client.wait(*id).expect("wait");
        let served = reply.result.expect("done job has a result");
        // The oracle: same job, run directly in this process.
        let local = point.to_sim_job().run();
        assert_eq!(served, local, "served result must be bit-identical");
        println!(
            "{:<10} {:>8} {:>6} {:>12} {:>10}",
            point.design.label(),
            point.overrides.l2_tlb_entries.unwrap_or(0),
            point.seed,
            served.cycles,
            "exact"
        );
    }

    let before = client.store_stats().expect("stats");
    let simulated = scheduler_counter(&before, "simulated_jobs");
    println!("\nfirst pass: {simulated} jobs simulated; resubmitting the full sweep...");

    // Second pass: every point is already in the store.
    let mut hits = 0;
    for point in &points {
        let submitted = client.submit(point).expect("resubmit");
        assert!(submitted.store_hit, "resubmission must be a store hit");
        assert_eq!(submitted.status, "done");
        hits += 1;
    }
    let after = client.store_stats().expect("stats");
    assert_eq!(
        scheduler_counter(&after, "simulated_jobs"),
        simulated,
        "resubmissions must not simulate anything"
    );
    println!(
        "second pass: {hits}/{} store hits, 0 new simulations (store: {} entries, {} hits)",
        points.len(),
        after
            .get("store")
            .and_then(|s| s.get("entries"))
            .and_then(Value::as_u64)
            .unwrap_or(0),
        after
            .get("store")
            .and_then(|s| s.get("hits"))
            .and_then(Value::as_u64)
            .unwrap_or(0),
    );

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);
    println!("\nall served results byte-identical to in-process runs");
}
