//! GDDR5-style DRAM model with FR-FCFS and MASK's Address-Space-Aware
//! scheduler.
//!
//! The DRAM device models channels, banks, and row buffers with
//! open/closed-row policies (Table 1: 8 channels, 8 banks, FR-FCFS,
//! burst 8). Timing is expressed in core cycles.
//!
//! Two scheduler families are provided:
//!
//! * the baseline **FR-FCFS** request buffer [110, 152] (plus a batch-based
//!   GPU scheduler in the spirit of Jog et al. \[60\] for the §7.3
//!   sensitivity study), and
//! * MASK's **Address-Space-Aware DRAM Scheduler** (mechanism ❸, §5.4):
//!   a Golden queue (translation requests, FIFO, highest priority), a
//!   Silver queue (one application's data requests at a time, quota from
//!   Eq. 1), and a Normal queue (everything else), with FR-FCFS inside the
//!   Silver and Normal queues.
//!
//! The FR-FCFS row-hit-first rule is what makes translation requests —
//! which "have low row buffer locality" (§5.4) — wait behind streaming data
//! requests in the baseline (Fig. 9); the Golden queue removes exactly that
//! effect.

pub mod device;
pub mod mapping;
pub mod queues;

pub use device::{Dram, DramCompletion, RowOutcome};
pub use mapping::{ChannelPartition, Decoded};
pub use queues::MaskQueues;
