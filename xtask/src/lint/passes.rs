//! The analysis passes of mask-lint v2.
//!
//! Each pass is a plain function over a [`FileCtx`] reporting into a
//! [`Sink`]; the engine in [`super`] runs every pass over every file and
//! layers the allow/test-mask machinery (plus the engine-implemented
//! `stale-allow` rule) on top. Passes search the lexer's code view, so a
//! token inside a string literal or comment can never fire a rule, and
//! consult the comment view for justification comments (`SAFETY:`,
//! ordering rationales).

use super::lexer::Line;
use super::{find_word, FileCtx, Fix, Sink, HOTPATH_FILES};

/// Static description of one rule, for `--format sarif|json` output.
pub(crate) struct RuleInfo {
    /// Stable rule id, usable in `// lint: allow(<id>)`.
    pub id: &'static str,
    /// One-line summary (SARIF `shortDescription`).
    pub short: &'static str,
    /// Longer rationale (SARIF `fullDescription`).
    pub help: &'static str,
}

/// Every rule the engine knows, in stable order (SARIF `ruleIndex`).
pub(crate) const RULES: [RuleInfo; 12] = [
    RuleInfo {
        id: "collections",
        short: "HashMap/HashSet in a simulator crate",
        help: "HashMap/HashSet iteration order is seeded per process by \
               RandomState, which breaks run-to-run determinism of anything \
               that iterates; use BTreeMap/BTreeSet.",
    },
    RuleInfo {
        id: "nondeterminism",
        short: "wall clock or OS entropy outside crates/bench",
        help: "Instant::now/SystemTime/thread_rng inject wall-clock or OS \
               state into the simulation; only crates/bench may measure \
               real time.",
    },
    RuleInfo {
        id: "float-accum",
        short: "naive float accumulation in statistics code",
        help: "Float sums in stats.rs must go through CompensatedSum (or be \
               integer sums annotated with their type) so figures do not \
               drift with summation order.",
    },
    RuleInfo {
        id: "debug-derive",
        short: "pub struct in mask-common::req without #[derive(Debug)]",
        help: "Sanitizer and test diagnostics format requests; every pub \
               struct in the request vocabulary must derive Debug. \
               Mechanically fixable with --fix.",
    },
    RuleInfo {
        id: "unwrap",
        short: ".unwrap()/panic! in library code",
        help: "Use expect with an invariant message, return a typed error, \
               or annotate why the panic cannot fire.",
    },
    RuleInfo {
        id: "parallelism",
        short: "thread primitive outside the parallelism islands",
        help: "std::thread/Mutex/RwLock/Condvar/mpsc/atomics stay inside \
               crates/core/src/engine*, crates/gpu/src/shard.rs, \
               crates/gpu/src/spec.rs, crates/obs/src/ring.rs, \
               crates/maskd (a threaded network daemon), and crates/bench \
               so the rest of the simulator remains single-threaded.",
    },
    RuleInfo {
        id: "hotpath",
        short: "heap traffic in a per-cycle hot file",
        help: "vec!/Vec::new()/.clone()/.collect outside constructors in \
               the per-cycle hot files; the cycle loop must stay \
               allocation-free in steady state.",
    },
    RuleInfo {
        id: "unsafe-audit",
        short: "unaudited or out-of-island `unsafe`",
        help: "unsafe is only permitted in the declared parallelism \
               islands, and every unsafe block/fn/impl needs a `// SAFETY:` \
               comment (or a `# Safety` doc section) stating the invariant \
               that makes it sound.",
    },
    RuleInfo {
        id: "atomic-ordering",
        short: "atomic memory ordering without a justification comment",
        help: "Every Ordering::Relaxed/Acquire/Release/AcqRel/SeqCst use \
               needs a same-statement or preceding comment justifying the \
               ordering; SeqCst in a per-cycle hot file must additionally \
               be justified by name (it is the costliest ordering).",
    },
    RuleInfo {
        id: "stale-allow",
        short: "lint: allow annotation that suppresses nothing",
        help: "A `// lint: allow(R)` that no longer masks any violation is \
               dead and hides future regressions; remove it (--fix does) or \
               correct its rule name.",
    },
    RuleInfo {
        id: "design-predicates",
        short: "DesignKind consulted outside the config/experiment layers",
        help: "Simulator layers must consume their own DesignSpec policy \
               axis (translation, tokens, l2, dram, compute, alloc) instead \
               of matching on named presets; DesignKind stays in \
               crates/common/src/config.rs (where the presets are defined), \
               crates/core (the experiment harnesses and job vocabulary), \
               crates/maskd (which names presets in wire documents), and \
               crates/bench.",
    },
    RuleInfo {
        id: "env-determinism",
        short: "environment read outside the config entry points",
        help: "std::env::var reads (MASK_* / MASKD_* or otherwise) are only \
               permitted in crates/common/src/config.rs, \
               crates/obs/src/ring.rs, crates/obs/src/export.rs, \
               crates/core/src/engine.rs, crates/maskd/src/config.rs, and \
               crates/bench; anywhere else a stage of the cycle loop could \
               silently fork behavior on the environment.",
    },
];

/// The pass functions, run in order over every file. (`stale-allow` is
/// implemented by the engine itself, from the allow-usage ledger.)
pub(crate) const PASSES: [fn(&FileCtx<'_>, &mut Sink<'_>); 11] = [
    pass_collections,
    pass_nondeterminism,
    pass_parallelism,
    pass_hotpath,
    pass_float_accum,
    pass_unwrap,
    pass_debug_derive,
    pass_unsafe_audit,
    pass_atomic_ordering,
    pass_design_predicates,
    pass_env_determinism,
];

/// Allocation/copy tokens forbidden on the hot path. `.collect` (no paren)
/// also catches turbofish `.collect::<T>()`.
const HOTPATH_TOKENS: [&str; 4] = ["vec![", "Vec::new()", ".clone()", ".collect"];

/// Integer type names whose presence marks an accumulation as exact.
const INT_TYPES: [&str; 11] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
];

fn pass_collections(ctx: &FileCtx<'_>, sink: &mut Sink<'_>) {
    for (i, l) in ctx.lines.iter().enumerate() {
        if let Some(c) = l.code.find("HashMap").or_else(|| l.code.find("HashSet")) {
            sink.report(
                i,
                c,
                "collections",
                "HashMap/HashSet iteration order is randomized per process; \
                 use BTreeMap/BTreeSet so simulation results are reproducible"
                    .into(),
                None,
            );
        }
    }
}

fn pass_nondeterminism(ctx: &FileCtx<'_>, sink: &mut Sink<'_>) {
    if ctx.krate == "bench" {
        return;
    }
    for (i, l) in ctx.lines.iter().enumerate() {
        for src in ["Instant::now", "SystemTime", "thread_rng"] {
            if let Some(c) = l.code.find(src) {
                sink.report(
                    i,
                    c,
                    "nondeterminism",
                    format!(
                        "`{src}` injects wall-clock/OS state into the simulation; \
                         only crates/bench may measure real time"
                    ),
                    None,
                );
            }
        }
    }
}

fn pass_parallelism(ctx: &FileCtx<'_>, sink: &mut Sink<'_>) {
    if ctx.island {
        return;
    }
    for (i, l) in ctx.lines.iter().enumerate() {
        for prim in [
            "std::thread",
            "Mutex",
            "RwLock",
            "Condvar",
            "mpsc",
            "Atomic",
        ] {
            if let Some(c) = l.code.find(prim) {
                sink.report(
                    i,
                    c,
                    "parallelism",
                    format!(
                        "`{prim}` outside the job engine; only \
                         crates/core/src/engine*, crates/gpu/src/shard.rs, \
                         crates/gpu/src/spec.rs, crates/obs/src/ring.rs (and \
                         crates/bench) may spawn threads or share mutable \
                         state across them"
                    ),
                    None,
                );
            }
        }
    }
}

fn pass_hotpath(ctx: &FileCtx<'_>, sink: &mut Sink<'_>) {
    if !ctx.hot_file {
        return;
    }
    for (i, l) in ctx.lines.iter().enumerate() {
        if ctx.ctor_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        for tok in HOTPATH_TOKENS {
            if let Some(c) = l.code.find(tok) {
                sink.report(
                    i,
                    c,
                    "hotpath",
                    format!(
                        "`{tok}` in a per-cycle hot file; the cycle loop must be \
                         allocation-free — reuse a scratch buffer, drain into an \
                         out-parameter, or move the allocation into a constructor"
                    ),
                    None,
                );
            }
        }
    }
}

fn pass_float_accum(ctx: &FileCtx<'_>, sink: &mut Sink<'_>) {
    if ctx.file_name != "stats.rs" {
        return;
    }
    for (i, l) in ctx.lines.iter().enumerate() {
        let code = &l.code;
        let exact = INT_TYPES
            .iter()
            .any(|t| code.contains(&format!(": {t}")) || code.contains(&format!("::<{t}>")));
        let compensated = code.contains("CompensatedSum") || code.contains("compensation");
        let float_sum = code.contains(".sum()")
            || (code.contains("+=") && (code.contains("f64") || code.contains("f32")));
        if float_sum && !exact && !compensated {
            sink.report(
                i,
                0,
                "float-accum",
                "float accumulation in statistics code must use CompensatedSum \
                 (or annotate an integer sum with its type)"
                    .into(),
                None,
            );
        }
    }
}

fn pass_unwrap(ctx: &FileCtx<'_>, sink: &mut Sink<'_>) {
    for (i, l) in ctx.lines.iter().enumerate() {
        if let Some(c) = l.code.find(".unwrap()").or_else(|| l.code.find("panic!")) {
            sink.report(
                i,
                c,
                "unwrap",
                "library code must not `.unwrap()`/`panic!`; use `expect` with an \
                 invariant message, return an error, or annotate why it cannot fire"
                    .into(),
                None,
            );
        }
    }
}

fn pass_debug_derive(ctx: &FileCtx<'_>, sink: &mut Sink<'_>) {
    if ctx.krate != "common" || ctx.file_name != "req.rs" {
        return;
    }
    for (i, l) in ctx.lines.iter().enumerate() {
        if !l.code.trim_start().starts_with("pub struct ") {
            continue;
        }
        // Walk the contiguous attribute/doc block above the struct.
        let mut has_debug = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let above = &ctx.lines[j];
            let code = above.code.trim_start();
            if code.starts_with("#[") || code.starts_with("#!") {
                if code.contains("derive") && code.contains("Debug") {
                    has_debug = true;
                }
            } else if !above.code_is_blank() {
                break;
            }
        }
        if !has_debug {
            let indent: String = l.raw.chars().take_while(|c| c.is_whitespace()).collect();
            sink.report(
                i,
                0,
                "debug-derive",
                "pub structs in mask-common::req must #[derive(Debug)] so \
                 diagnostics can print requests"
                    .into(),
                Some(Fix::InsertAbove(format!("{indent}#[derive(Debug)]"))),
            );
        }
    }
}

fn pass_unsafe_audit(ctx: &FileCtx<'_>, sink: &mut Sink<'_>) {
    for (i, l) in ctx.lines.iter().enumerate() {
        let Some(c) = find_word(&l.code, "unsafe") else {
            continue;
        };
        if !ctx.island {
            sink.report(
                i,
                c,
                "unsafe-audit",
                "`unsafe` outside the declared parallelism islands \
                 (crates/core/src/engine*, crates/gpu/src/shard.rs, \
                 crates/gpu/src/spec.rs, crates/obs/src/ring.rs, \
                 crates/bench); the simulator model itself must stay in \
                 safe Rust"
                    .into(),
                None,
            );
        } else if !justification(ctx.lines, i)
            .is_some_and(|t| t.contains("SAFETY:") || t.contains("# Safety"))
        {
            sink.report(
                i,
                c,
                "unsafe-audit",
                "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc \
                 section) on the statement or directly above it; state the \
                 invariant that makes this sound"
                    .into(),
                None,
            );
        }
    }
}

/// The orderings the `atomic-ordering` pass audits.
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn pass_atomic_ordering(ctx: &FileCtx<'_>, sink: &mut Sink<'_>) {
    for (i, l) in ctx.lines.iter().enumerate() {
        for ord in ORDERINGS {
            let token = format!("Ordering::{ord}");
            let Some(c) = l.code.find(token.as_str()) else {
                continue;
            };
            let just = justification(ctx.lines, i).unwrap_or_default();
            let justified = just.to_lowercase().contains("ordering") || just.contains(ord);
            if !justified {
                sink.report(
                    i,
                    c,
                    "atomic-ordering",
                    format!(
                        "`{token}` without an ordering-justification comment on \
                         the statement or directly above it; say what this \
                         ordering synchronizes with (or why no ordering is \
                         needed)"
                    ),
                    None,
                );
            } else if ord == "SeqCst" && ctx.hot_file && !just.contains("SeqCst") {
                sink.report(
                    i,
                    c,
                    "atomic-ordering",
                    "`Ordering::SeqCst` in a per-cycle hot file is a smell: \
                     justify by name why the strongest (and costliest) ordering \
                     is required here, or weaken it"
                        .into(),
                    None,
                );
            }
        }
    }
}

fn pass_design_predicates(ctx: &FileCtx<'_>, sink: &mut Sink<'_>) {
    // The preset table itself, the experiment/bench harnesses (which name
    // designs for tables and plots), the job vocabulary in mask-core, and
    // the daemon's wire format (which names presets in job documents)
    // legitimately speak in presets.
    if ctx.krate == "core"
        || ctx.krate == "bench"
        || ctx.krate == "maskd"
        || (ctx.krate == "common" && ctx.file_name == "config.rs")
    {
        return;
    }
    for (i, l) in ctx.lines.iter().enumerate() {
        if let Some(c) = find_word(&l.code, "DesignKind") {
            sink.report(
                i,
                c,
                "design-predicates",
                "simulator layers must consume their own `DesignSpec` axis \
                 (translation/tokens/l2/dram/compute/alloc), not branch on \
                 named `DesignKind` presets; preset knowledge belongs in \
                 crates/common/src/config.rs and the experiment harnesses"
                    .into(),
                None,
            );
        }
    }
}

fn pass_env_determinism(ctx: &FileCtx<'_>, sink: &mut Sink<'_>) {
    if ctx.env_entry {
        return;
    }
    for (i, l) in ctx.lines.iter().enumerate() {
        if let Some(c) = l.code.find("env::var") {
            sink.report(
                i,
                c,
                "env-determinism",
                "environment read outside the designated config entry points \
                 (crates/common/src/config.rs, crates/obs/src/ring.rs, \
                 crates/obs/src/export.rs, crates/core/src/engine.rs, \
                 crates/bench); resolve MASK_* settings once at configuration \
                 time so no stage of the cycle loop can fork behavior on the \
                 environment"
                    .into(),
                None,
            );
        }
    }
}

/// First line of the multi-line statement containing line `i`: walks up
/// while the previous line is a code line that does not end a statement
/// (`;`, `{`, or `}`). A heuristic, not a parse — good enough to attach a
/// justification comment above an `if`/`while` head to the atomic loads in
/// its multi-line condition.
fn stmt_start(lines: &[Line], i: usize) -> usize {
    let mut s = i;
    while s > 0 {
        let above = lines[s - 1].code.trim_end();
        let t = above.trim_start();
        if t.is_empty()
            || t.starts_with("#[")
            || above.ends_with(';')
            || above.ends_with('{')
            || above.ends_with('}')
        {
            break;
        }
        s -= 1;
    }
    s
}

/// The justification text visible from line `i`: trailing comments on the
/// statement's own lines plus the contiguous comment/attribute block
/// directly above the statement. `None` when there is no comment at all.
fn justification(lines: &[Line], i: usize) -> Option<String> {
    let s = stmt_start(lines, i);
    let mut text = String::new();
    for l in &lines[s..=i] {
        text.push_str(&l.comment);
        text.push('\n');
    }
    let mut j = s;
    while j > 0 {
        let above = &lines[j - 1];
        let code = above.code.trim();
        let comment_only = code.is_empty() && !above.comment.trim().is_empty();
        if comment_only || code.starts_with("#[") || code.starts_with("#!") {
            text.push_str(&above.comment);
            text.push('\n');
        } else {
            break;
        }
        j -= 1;
    }
    if text.trim().is_empty() {
        None
    } else {
        Some(text)
    }
}

/// True when `path` (normalized) is one of the per-cycle hot files.
pub(crate) fn is_hot_file(norm: &str) -> bool {
    HOTPATH_FILES.iter().any(|f| norm.ends_with(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_table_matches_pass_count() {
        // 11 pass functions + the engine-implemented stale-allow.
        assert_eq!(RULES.len(), PASSES.len() + 1);
        let ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        assert!(ids.contains(&"stale-allow"));
        // Ids are unique (ruleIndex in SARIF output relies on this).
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn hot_file_predicate_matches_suffixes() {
        assert!(is_hot_file("/repo/crates/gpu/src/sim.rs"));
        // The speculative segment runner's verify/commit loop is hot.
        assert!(is_hot_file("/repo/crates/gpu/src/spec.rs"));
        assert!(!is_hot_file("/repo/crates/gpu/src/core_model.rs"));
        // Functional fast-forward runs in epoch-sized chunks, not per cycle.
        assert!(!is_hot_file("/repo/crates/gpu/src/functional.rs"));
        // The snapshot codec runs at epoch boundaries, not per cycle.
        assert!(!is_hot_file("/repo/crates/common/src/snapshot.rs"));
    }
}
