//! Sharded SM frontend: runs the per-cycle core issue stage across a
//! persistent in-simulation worker pool, bit-identically to the serial
//! loop.
//!
//! Stage 1 of `GpuSim::step` is embarrassingly parallel *except* for three
//! side channels: translation requests into the shared
//! [`TranslationUnit`](crate::translation::TranslationUnit), L2-bound data
//! requests (whose ids come from the simulation-global counter), and the
//! per-app statistics block. Each shard therefore owns a contiguous slice
//! of cores plus a private [`ShardOutput`] — deferred translation
//! requests, deferred data misses, per-app stat deltas, and a captured
//! sanitizer event buffer. The serial merge tail in `GpuSim` replays the
//! queues in ascending shard order, which reproduces the serial engine's
//! ascending-core order exactly:
//!
//! - **Request ids** are not allocated on the workers at all. A primary L1
//!   data miss is recorded as a [`DeferredMiss`]; the merge tail feeds the
//!   misses through the canonical serial sink
//!   ([`DirectIssue::data_miss`](crate::core_model::DirectIssue)), so the
//!   id sequence is the serial one (ascending core, program order within a
//!   core). Translation requests allocate no ids (walker ids are drawn in
//!   the translation unit's tick, which stays serial).
//! - **Stream independence**: within a cycle, `TranslationUnit::request`
//!   and data-miss id allocation touch disjoint state, so draining a
//!   shard's translation queue before its miss queue produces the same
//!   final state as the serial per-core interleaving.
//! - **Stat deltas** are all-integer (`+=`, or `max` for watermarks), so
//!   [`AppStats::absorb`]ing shard deltas in fixed order equals serial
//!   accumulation bit-for-bit.
//! - **Sanitizer events** fired on a worker are captured into the shard's
//!   [`EventBuffer`] and replayed on the owning thread in shard order (see
//!   `mask-sanitizer`'s capture API), keeping per-table event order equal
//!   to the serial run.
//!
//! The pool itself is a classic persistent-worker design: shard 0 runs
//! inline on the coordinating thread, workers 1..k wake on an epoch bump,
//! execute their fixed shard through raw slice pointers (disjoint ranges,
//! so no aliasing), and signal completion on an atomic counter. Workers
//! spin briefly, then yield, then park — the yield rung keeps progress on
//! machines with fewer hardware threads than shards. This module is, with
//! `mask-core`'s job engine, one of the two places in the workspace
//! allowed to touch `std::thread` (enforced by `cargo xtask lint`).

use crate::core_model::{GpuCore, IssueSink};
use mask_common::addr::{LineAddr, Ppn, Vpn};
use mask_common::ids::{Asid, CoreId, GlobalWarpId};
use mask_common::stats::AppStats;
use mask_common::Cycle;
use mask_sanitizer::EventBuffer;
use std::any::Any;
use std::cell::UnsafeCell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

/// One deferred `TranslationUnit::request` call (an L1 TLB miss).
#[derive(Clone, Copy, Debug)]
pub struct DeferredXlat {
    /// Address space of the missing access.
    pub asid: Asid,
    /// The missing virtual page.
    pub vpn: Vpn,
    /// The warp waiting on the translation.
    pub requester: GlobalWarpId,
    /// Rank of the requesting core within its application.
    pub core_rank: usize,
}

/// One deferred data miss (a primary L1 MSHR allocation awaiting its
/// request id).
#[derive(Clone, Copy, Debug)]
pub struct DeferredMiss {
    /// The requesting core.
    pub core: CoreId,
    /// Its address space.
    pub asid: Asid,
    /// The missing line.
    pub line: LineAddr,
}

/// Private output queues of one shard for one cycle.
#[derive(Debug, Default)]
pub struct ShardOutput {
    /// Deferred translation requests, in issue order.
    pub xlat: Vec<DeferredXlat>,
    /// Deferred data misses, in issue order.
    pub misses: Vec<DeferredMiss>,
    /// Per-app statistic deltas accumulated by this shard's cores.
    pub stats: Vec<AppStats>,
    /// Sanitizer events captured on the shard's thread.
    pub san: EventBuffer,
}

impl ShardOutput {
    /// An empty output block for a simulation with `n_apps` applications.
    #[must_use]
    pub fn new(n_apps: usize) -> Self {
        ShardOutput {
            xlat: Vec::new(),
            misses: Vec::new(),
            stats: vec![AppStats::default(); n_apps],
            san: EventBuffer::new(),
        }
    }
}

/// The sharded [`IssueSink`]: records issue side effects into a shard's
/// private queues for the serial merge tail to replay.
#[derive(Debug)]
pub struct DeferredIssue<'a> {
    /// Deferred translation-request queue.
    pub xlat: &'a mut Vec<DeferredXlat>,
    /// Deferred data-miss queue.
    pub misses: &'a mut Vec<DeferredMiss>,
}

impl IssueSink for DeferredIssue<'_> {
    #[inline]
    fn xlat_request(
        &mut self,
        asid: Asid,
        vpn: Vpn,
        requester: GlobalWarpId,
        core_rank: usize,
        _now: Cycle,
    ) {
        self.xlat.push(DeferredXlat {
            asid,
            vpn,
            requester,
            core_rank,
        });
    }

    #[inline]
    fn data_miss(&mut self, core: CoreId, asid: Asid, line: LineAddr, _now: Cycle) {
        self.misses.push(DeferredMiss { core, asid, line });
    }

    fn functional_translate(&mut self, _asid: Asid, _vpn: Vpn) -> Ppn {
        // The Ideal design mutates page-table frame allocation inside the
        // issue stage, so `GpuSim` always runs it on the serial path.
        unreachable!("the Ideal design never issues through the sharded frontend")
    }
}

/// The contiguous core range owned by `shard` of `shards` over `n_cores`
/// cores: remainders go to the leading shards, one extra core each.
#[must_use]
pub fn shard_range(n_cores: usize, shards: usize, shard: usize) -> Range<usize> {
    debug_assert!(shard < shards);
    let base = n_cores / shards;
    let rem = n_cores % shards;
    let start = shard * base + shard.min(rem);
    start..start + base + usize::from(shard < rem)
}

/// Computes the `shards + 1` cut points slicing `n_cores` cores into shard
/// ranges (`cuts[s]..cuts[s + 1]` is shard `s`).
///
/// The cuts start from the balanced [`shard_range`] positions; an interior
/// cut is then snapped to the nearest application boundary in `app_starts`
/// (the SM-set layout under
/// [`ComputePolicy::SmSets`](mask_common::config::ComputePolicy)) when that
/// boundary lies within half a balanced shard of the cut, so shards follow
/// SM-set edges without collapsing to empty ranges when there are more
/// shards than SM sets. Pass an empty `app_starts` for unaligned slicing —
/// interleaved `AllSms` layouts have no meaningful core boundaries. The
/// cut sequence is monotone. Because the merge tail replays shards in
/// ascending order, results are bit-identical for *any* monotone cut
/// placement — alignment only keeps one application's cores from straddling
/// shards when the shapes allow it.
#[must_use]
pub fn shard_cuts(n_cores: usize, shards: usize, app_starts: &[usize]) -> Vec<usize> {
    let snap_radius = (n_cores / shards.max(1)) / 2;
    let mut cuts = Vec::with_capacity(shards + 1);
    cuts.push(0);
    for s in 1..shards {
        let even = shard_range(n_cores, shards, s).start;
        let snapped = app_starts
            .iter()
            .copied()
            .filter(|&b| b > 0 && b < n_cores)
            .min_by_key(|&b| (b.abs_diff(even), b))
            .filter(|&b| b.abs_diff(even) <= snap_radius)
            .unwrap_or(even);
        let prev = *cuts.last().expect("cuts start non-empty");
        cuts.push(snapped.clamp(prev, n_cores));
    }
    cuts.push(n_cores);
    cuts
}

/// Runs the issue stage for one shard's cores, capturing sanitizer events
/// and recording all cross-shard side effects into `out`.
pub fn run_shard(cores: &mut [GpuCore], now: Cycle, out: &mut ShardOutput) {
    // Stamp this worker thread's trace ring with the simulation cycle.
    mask_obs::hooks::set_cycle(now);
    // Reuses the buffer drained by the previous cycle's replay.
    mask_sanitizer::capture_begin(std::mem::take(&mut out.san));
    for core in cores.iter_mut() {
        let app = core.asid.index();
        let mut sink = DeferredIssue {
            xlat: &mut out.xlat,
            misses: &mut out.misses,
        };
        core.issue(now, &mut sink, &mut out.stats[app]);
    }
    out.san = mask_sanitizer::capture_end();
}

/// One published unit of work: raw views of the coordinator's core slice
/// and output array, valid only between the epoch bump and the matching
/// completion count (the coordinator blocks in `run_issue` for exactly
/// that window, keeping the underlying `&mut` borrows alive).
struct Job {
    cores: *mut GpuCore,
    /// The `shards + 1` cut points slicing the core slice (see
    /// [`shard_cuts`]); lives in the coordinator's `GpuSim` for the whole
    /// hand-off window.
    cuts: *const usize,
    outs: *mut ShardOutput,
    shards: usize,
    now: Cycle,
}

impl Job {
    const fn empty() -> Self {
        Job {
            cores: std::ptr::null_mut(),
            cuts: std::ptr::null(),
            outs: std::ptr::null_mut(),
            shards: 0,
            now: 0,
        }
    }
}

/// State shared between the coordinator and the shard workers.
struct Shared {
    /// The published job. Written by the coordinator only while every
    /// worker is quiescent (before the `epoch` bump); read by workers only
    /// after observing the bump.
    job: UnsafeCell<Job>,
    /// Bumped once per published cycle; the workers' wake condition.
    epoch: AtomicU64,
    /// Count of workers finished with the current job.
    done: AtomicU64,
    /// Tells workers to exit.
    shutdown: AtomicBool,
    /// Park flags, one per worker, for the wake handshake.
    parked: Vec<AtomicBool>,
    /// First worker panic payload, re-raised by the coordinator.
    panic_slot: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `Job`'s raw pointers make `Shared` neither `Send` nor `Sync`
// automatically. The pool's protocol guarantees exclusive, disjoint
// access: the coordinator derives the pointers from live `&mut` slices it
// holds across the whole hand-off, each shard touches only its
// `shard_range` of cores and its own output slot, and the epoch/done
// atomics order publication before any worker read. See `run_issue`.
unsafe impl Send for Shared {}
// SAFETY: same protocol as `Send` above — shared references only expose
// the atomics, the `Mutex`-guarded panic slot, and the `UnsafeCell` job
// slot, whose single writer (the coordinator) and readers (the shard
// workers) are sequenced by the epoch/done handshake.
unsafe impl Sync for Shared {}

/// Executes `shard` of the currently published job.
///
/// # Safety
///
/// Callable only between the job's epoch bump and its completion, and at
/// most once per shard index per epoch: the shard ranges are disjoint and
/// each output slot has exactly one writer, so the constructed `&mut`
/// slices never alias.
unsafe fn exec_shard(job: *const Job, shard: usize) {
    // SAFETY: the caller guarantees the job is published and live.
    let job = unsafe { &*job };
    // SAFETY: `cuts` points at the coordinator's live `[usize; shards + 1]`
    // cut array, immutable for the whole window.
    let cuts = unsafe { std::slice::from_raw_parts(job.cuts, job.shards + 1) };
    let range = cuts[shard]..cuts[shard + 1];
    // SAFETY: `cores` points at a live `[GpuCore; n_cores]` held as `&mut`
    // by the coordinator for the whole window; `range` is disjoint from
    // every other shard's range.
    let cores = unsafe { std::slice::from_raw_parts_mut(job.cores.add(range.start), range.len()) };
    // SAFETY: likewise, output slot `shard` has this single writer.
    let out = unsafe { &mut *job.outs.add(shard) };
    run_shard(cores, job.now, out);
    // Drain this thread's trace ring, tagged with its shard lane, while the
    // events are still cheap to attribute (before the next cycle's stamp).
    mask_obs::hooks::flush_events(shard as u32);
}

/// Spin iterations before a waiting thread starts yielding.
const SPIN_LIMIT: u32 = 64;
/// Yield iterations before a waiting worker parks. Yielding early matters
/// on machines with fewer hardware threads than shards: a spinning waiter
/// would otherwise starve the thread it is waiting for.
const YIELD_LIMIT: u32 = 4096;

fn worker_loop(shared: &Arc<Shared>, index: usize) {
    let my_shard = index + 1;
    let mut seen_epoch = 0u64;
    loop {
        let mut spins = 0u32;
        loop {
            // Acquire ordering: pairs with the publisher's epoch bump in
            // `run_issue`, making the job fields written before the bump
            // visible to this worker.
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen_epoch {
                seen_epoch = e;
                break;
            }
            // Acquire ordering: pairs with the `Drop` store so anything
            // written before shutdown is visible on this exit path.
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            spins += 1;
            if spins < SPIN_LIMIT {
                std::hint::spin_loop();
            } else if spins < YIELD_LIMIT {
                std::thread::yield_now();
            } else {
                // Dekker-style park handshake with `run_issue`'s publisher:
                // either we see the bump here and skip the park, or the
                // publisher sees `parked` and unparks us. SeqCst on every
                // access (the `parked` stores and the epoch/shutdown
                // re-checks): the handshake needs a total order between
                // "I am parked" and "the epoch bumped" — with anything
                // weaker both sides could miss each other and this worker
                // would sleep through a published job. Cold path only
                // (after YIELD_LIMIT), so the cost is irrelevant.
                shared.parked[index].store(true, Ordering::SeqCst);
                // SeqCst re-checks: totally ordered after the `parked`
                // store above (see the handshake ordering rationale).
                if shared.epoch.load(Ordering::SeqCst) != seen_epoch
                    || shared.shutdown.load(Ordering::SeqCst)
                {
                    // SeqCst ordering: withdraws from the handshake before
                    // retrying the outer wait loop.
                    shared.parked[index].store(false, Ordering::SeqCst);
                    continue;
                }
                std::thread::park();
                // SeqCst ordering: closes the same handshake after waking
                // (see above); cold path.
                shared.parked[index].store(false, Ordering::SeqCst);
            }
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: the epoch bump publishes a live job; this worker is
            // the unique executor of `my_shard` for it.
            unsafe { exec_shard(shared.job.get(), my_shard) }
        }));
        if let Err(payload) = result {
            let mut slot = shared
                .panic_slot
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            slot.get_or_insert(payload);
        }
        // Release ordering: publishes this shard's output writes before the
        // coordinator's Acquire read of `done` in `run_issue`.
        shared.done.fetch_add(1, Ordering::Release);
    }
}

/// A persistent pool of `shards - 1` worker threads executing the sharded
/// issue stage; shard 0 always runs inline on the calling thread.
pub struct ShardPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    shards: usize,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("shards", &self.shards)
            .finish_non_exhaustive()
    }
}

impl ShardPool {
    /// Spawns the pool's `shards - 1` workers (named `mask-shard-<i>`).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a pool needs at least one shard");
        let workers = shards - 1;
        let mut parked = Vec::with_capacity(workers);
        for _ in 0..workers {
            parked.push(AtomicBool::new(false));
        }
        let shared = Arc::new(Shared {
            job: UnsafeCell::new(Job::empty()),
            epoch: AtomicU64::new(0),
            done: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            parked,
            panic_slot: Mutex::new(None),
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("mask-shard-{}", i + 1))
                .spawn(move || worker_loop(&shared, i))
                .expect("spawn shard worker");
            handles.push(handle);
        }
        ShardPool {
            shared,
            handles,
            shards,
        }
    }

    /// Number of shards (including the inline shard 0).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Runs one cycle's issue stage: shards `cores` over the pool, filling
    /// `outs[s]` for each shard `s`. Blocks until every shard finished;
    /// worker panics are re-raised here.
    ///
    /// # Panics
    ///
    /// Re-raises panics from shard execution (e.g. sanitizer violations).
    pub fn run_issue(
        &self,
        cores: &mut [GpuCore],
        outs: &mut [ShardOutput],
        cuts: &[usize],
        now: Cycle,
    ) {
        assert_eq!(outs.len(), self.shards, "one output slot per shard");
        assert_eq!(cuts.len(), self.shards + 1, "shards + 1 cut points");
        debug_assert!(cuts.windows(2).all(|w| w[0] <= w[1]), "monotone cuts");
        assert_eq!(*cuts.last().expect("non-empty"), cores.len());
        if self.shards == 1 {
            run_shard(cores, now, &mut outs[0]);
            return;
        }
        // Publish. SAFETY: every worker is quiescent (previous job fully
        // completed or none published yet), so this write is unobserved
        // until the epoch bump below releases it.
        unsafe {
            *self.shared.job.get() = Job {
                cores: cores.as_mut_ptr(),
                cuts: cuts.as_ptr(),
                outs: outs.as_mut_ptr(),
                shards: self.shards,
                now,
            };
        }
        // Release ordering: the reset must not reorder after the epoch bump
        // below, or a worker could pair a stale `done` with the new job.
        self.shared.done.store(0, Ordering::Release);
        // SeqCst (the bump and the `parked` reads): publisher side of the
        // Dekker park handshake in `worker_loop` — the bump must be totally
        // ordered with each worker's "I am parked" store so exactly one
        // side always sees the other. Once per job, not per cycle, so
        // SeqCst costs nothing measurable here.
        self.shared.epoch.fetch_add(1, Ordering::SeqCst);
        for (i, flag) in self.shared.parked.iter().enumerate() {
            // SeqCst read of `parked` (same handshake): ordered after the
            // bump, so a worker that parked before it is always seen.
            if flag.load(Ordering::SeqCst) {
                self.handles[i].thread().unpark();
            }
        }
        // Shard 0 runs inline, through the same raw-pointer path as the
        // workers so the coordinator never materializes an aliasing whole-
        // slice borrow.
        let inline = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: the job was just published; shard 0 is executed only
            // here.
            unsafe { exec_shard(self.shared.job.get(), 0) }
        }));
        // Wait for the workers; their output writes are ordered before the
        // `done` release increments. The wait is the merge tail's serial
        // overhead, so it is what the self-profiler times here.
        let wait = mask_obs::profile::begin_merge_wait();
        let want = (self.shards - 1) as u64;
        let mut spins = 0u32;
        // Acquire ordering: pairs with each worker's Release increment so
        // all shard output writes are visible once the count matches.
        while self.shared.done.load(Ordering::Acquire) != want {
            spins += 1;
            if spins < SPIN_LIMIT {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        wait.finish();
        if let Err(payload) = inline {
            resume_unwind(payload);
        }
        let worker_panic = self
            .shared
            .panic_slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // SeqCst ordering: shutdown participates in the same park handshake
        // as the epoch bump (a parking worker re-checks it); one store at
        // teardown, so the strongest ordering is free.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for handle in self.handles.drain(..) {
            handle.thread().unpark();
            // A worker that panicked outside a job already delivered its
            // payload; nothing useful to do with the join error here.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_the_cores() {
        for (n_cores, shards) in [(30, 4), (30, 8), (7, 3), (4, 8), (1, 1), (16, 16)] {
            let mut covered = 0;
            for s in 0..shards {
                let r = shard_range(n_cores, shards, s);
                assert_eq!(r.start, covered, "contiguous ascending ranges");
                covered = r.end;
                // Balanced to within one core.
                assert!(r.len() <= n_cores / shards + 1);
            }
            assert_eq!(covered, n_cores, "every core covered exactly once");
        }
    }

    #[test]
    fn shard_cuts_align_to_sm_set_edges() {
        // No boundaries: the cuts reproduce `shard_range` exactly.
        assert_eq!(shard_cuts(30, 4, &[]), vec![0, 8, 16, 23, 30]);
        // A nearby SM-set edge (app split 10 + 22) pulls the first cut.
        assert_eq!(shard_cuts(32, 4, &[10, 32]), vec![0, 10, 16, 24, 32]);
        // Edges beyond the snap radius are ignored.
        assert_eq!(shard_cuts(32, 4, &[2, 32]), vec![0, 8, 16, 24, 32]);
        // Uneven three-way SM sets (5, 5, 6) over two shards.
        assert_eq!(shard_cuts(16, 2, &[5, 10, 16]), vec![0, 10, 16]);
        // Cuts stay monotone and cover the cores for odd shapes.
        for (n, k, starts) in [(7usize, 3usize, vec![3usize, 7]), (16, 8, vec![8, 16])] {
            let cuts = shard_cuts(n, k, &starts);
            assert_eq!(cuts.len(), k + 1);
            assert_eq!((cuts[0], cuts[k]), (0, n));
            assert!(cuts.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn pool_survives_empty_work_and_drop() {
        let pool = ShardPool::new(3);
        assert_eq!(pool.shards(), 3);
        let mut outs = [
            ShardOutput::new(1),
            ShardOutput::new(1),
            ShardOutput::new(1),
        ];
        // No cores at all: every shard range is empty, the handshake still
        // completes, and dropping the pool joins its workers.
        pool.run_issue(&mut [], &mut outs, &[0, 0, 0, 0], 0);
        pool.run_issue(&mut [], &mut outs, &[0, 0, 0, 0], 1);
        drop(pool);
    }

    #[test]
    #[should_panic(expected = "never issues through the sharded frontend")]
    fn deferred_sink_rejects_functional_translation() {
        let mut xlat = Vec::new();
        let mut misses = Vec::new();
        let mut sink = DeferredIssue {
            xlat: &mut xlat,
            misses: &mut misses,
        };
        let _ = sink.functional_translate(Asid::new(0), Vpn(0));
    }
}
