//! Engine and rule tests: one red-fixture test per rule (proving each
//! rule fires), one clean fixture per rule, the v1 regression cases
//! (`//` inside strings, brace-in-string `#[cfg(test)]` spans), and a
//! self-check that the repository itself is lint-clean under all 12 rules.

use super::*;

fn lint(path: &str, src: &str) -> Vec<Violation> {
    lint_source(Path::new(path), src)
}

fn rules(v: &[Violation]) -> Vec<&'static str> {
    v.iter().map(|x| x.rule).collect()
}

// One red test per rule: each proves the rule actually fires.

#[test]
fn red_collections_flags_hashmap() {
    let v = lint(
        "crates/tlb/src/l1.rs",
        "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\n",
    );
    assert_eq!(rules(&v), ["collections", "collections"]);
    assert_eq!(v[0].line, 1);
}

#[test]
fn red_nondeterminism_flags_wall_clock() {
    let v = lint(
        "crates/gpu/src/sim.rs",
        "let t = std::time::Instant::now();\n",
    );
    assert_eq!(rules(&v), ["nondeterminism"]);
    let v = lint("crates/dram/src/device.rs", "let r = rand::thread_rng();\n");
    assert_eq!(rules(&v), ["nondeterminism"]);
}

#[test]
fn red_float_accum_flags_naive_sum() {
    let v = lint(
        "crates/common/src/stats.rs",
        "pub fn total(&self) -> f64 {\n    self.apps.iter().map(A::ipc).sum()\n}\n",
    );
    assert_eq!(rules(&v), ["float-accum"]);
    assert_eq!(v[0].line, 2);
}

#[test]
fn red_debug_derive_flags_missing_debug() {
    let v = lint(
        "crates/common/src/req.rs",
        "#[derive(Clone, Copy)]\npub struct Raw {\n    pub bits: u64,\n}\n",
    );
    assert_eq!(rules(&v), ["debug-derive"]);
    // The violation is mechanically fixable: insert a derive line above.
    assert_eq!(v[0].fix, Some(Fix::InsertAbove("#[derive(Debug)]".into())));
}

#[test]
fn red_parallelism_flags_thread_primitives_outside_engine() {
    let v = lint(
        "crates/gpu/src/sim.rs",
        "let h = std::thread::spawn(f);\nlet m = std::sync::Mutex::new(0);\n",
    );
    assert_eq!(rules(&v), ["parallelism", "parallelism"]);
    let v = lint(
        "crates/core/src/runner.rs",
        "use std::sync::atomic::AtomicUsize;\n",
    );
    assert_eq!(rules(&v), ["parallelism"]);
}

#[test]
fn red_unwrap_flags_unwrap_and_panic() {
    let v = lint(
        "crates/cache/src/l2.rs",
        "let x = m.get(&k).unwrap();\npanic!(\"boom\");\n",
    );
    assert_eq!(rules(&v), ["unwrap", "unwrap"]);
}

#[test]
fn red_hotpath_flags_allocation_in_cycle_code() {
    let src = "\
pub fn tick(&mut self) {
    let xs = vec![1, 2];
    let mut out = Vec::new();
    let c = self.reqs.clone();
    let v: Vec<u32> = self.reqs.iter().map(f).collect();
}
";
    for file in HOTPATH_FILES {
        let v = lint(&format!("/repo/{file}"), src);
        assert_eq!(
            rules(&v),
            ["hotpath", "hotpath", "hotpath", "hotpath"],
            "in {file}: {v:?}"
        );
    }
}

#[test]
fn red_hotpath_catches_turbofish_collect() {
    let v = lint(
        "crates/cache/src/l2.rs",
        "pub fn tick(&mut self) {\n    let v = xs.iter().collect::<Vec<_>>();\n}\n",
    );
    assert_eq!(rules(&v), ["hotpath"]);
}

// The four mask-lint v2 passes: red + clean fixtures per rule.

#[test]
fn red_unsafe_audit_flags_unsafe_outside_islands() {
    let v = lint(
        "crates/tlb/src/l1.rs",
        "pub fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n",
    );
    assert_eq!(rules(&v), ["unsafe-audit"]);
    assert!(v[0].message.contains("islands"), "{}", v[0].message);
}

#[test]
fn red_unsafe_audit_flags_missing_safety_comment_inside_island() {
    let v = lint(
        "crates/gpu/src/shard.rs",
        "fn g(p: *mut u32) {\n    let r = unsafe { &mut *p };\n    *r = 1;\n}\n",
    );
    assert_eq!(rules(&v), ["unsafe-audit"]);
    assert!(v[0].message.contains("SAFETY"), "{}", v[0].message);
}

#[test]
fn clean_unsafe_audit_accepts_safety_comment_and_doc_section() {
    let src = "\
/// Does a thing.
///
/// # Safety
///
/// `p` must be valid and exclusively owned for the call.
unsafe fn g(p: *mut u32) {
    // SAFETY: the caller guarantees `p` is valid and unaliased.
    let r = unsafe { &mut *p };
    *r = 1;
}
";
    assert!(lint("crates/gpu/src/shard.rs", src).is_empty());
}

#[test]
fn clean_unsafe_audit_safety_comment_covers_multiline_statement() {
    let src = "\
// SAFETY: disjoint shard ranges; single writer per slot.
let cores = unsafe {
    std::slice::from_raw_parts_mut(base.add(start), len)
};
";
    assert!(lint("crates/gpu/src/shard.rs", src).is_empty());
}

#[test]
fn red_atomic_ordering_flags_uncommented_ordering() {
    let v = lint(
        "crates/core/src/engine.rs",
        "let e = self.epoch.load(Ordering::Acquire);\n",
    );
    assert_eq!(rules(&v), ["atomic-ordering"]);
}

#[test]
fn clean_atomic_ordering_accepts_justification_comments() {
    let src = "\
// Acquire: pairs with the publisher's release bump, making the job
// visible before we execute it.
let e = self.epoch.load(Ordering::Acquire);
let n = counter.fetch_add(1, Ordering::Relaxed); // Relaxed: counter only, nothing synchronizes on it
";
    assert!(lint("crates/core/src/engine.rs", src).is_empty());
}

#[test]
fn clean_atomic_ordering_comment_above_covers_multiline_condition() {
    let src = "\
// SeqCst (both loads): the Dekker handshake re-check must not reorder.
if shared.epoch.load(Ordering::SeqCst) != seen
    || shared.shutdown.load(Ordering::SeqCst)
{
    return;
}
";
    assert!(lint("crates/gpu/src/shard.rs", src).is_empty());
}

#[test]
fn red_atomic_ordering_seqcst_smell_in_hot_file_needs_naming() {
    // Justified generically ("ordering"), but SeqCst in a hot file must be
    // justified by name.
    let src = "\
// This ordering keeps the flag in sync.
flag.store(true, Ordering::SeqCst);
";
    let v = lint("crates/gpu/src/shard.rs", src);
    assert_eq!(rules(&v), ["atomic-ordering"]);
    assert!(v[0].message.contains("smell"), "{}", v[0].message);
    // Outside a hot file the generic justification suffices.
    assert!(lint("crates/core/src/engine.rs", src).is_empty());
    // Naming SeqCst satisfies the hot-file smell check too.
    let named = "\
// SeqCst: the park/unpark handshake needs total order with the bump.
flag.store(true, Ordering::SeqCst);
";
    assert!(lint("crates/gpu/src/shard.rs", named).is_empty());
}

#[test]
fn red_stale_allow_flags_suppressing_nothing() {
    let v = lint(
        "crates/cache/src/mshr.rs",
        "let x = well_behaved(); // lint: allow(unwrap)\n",
    );
    assert_eq!(rules(&v), ["stale-allow"]);
    assert_eq!(v[0].fix, Some(Fix::TruncateAt(24)));
    // An annotation alone on its line is removed wholesale.
    let v = lint(
        "crates/cache/src/mshr.rs",
        "// lint: allow(hotpath) -- obsolete\nlet x = well_behaved();\n",
    );
    assert_eq!(rules(&v), ["stale-allow"]);
    assert_eq!(v[0].fix, Some(Fix::DeleteLine));
}

#[test]
fn clean_stale_allow_used_annotations_survive() {
    let v = lint(
        "crates/cache/src/mshr.rs",
        "let x = m.get(&k).unwrap(); // lint: allow(unwrap) -- checked above\n",
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn stale_allow_catches_misspelled_rule_names() {
    // A typo'd rule id suppresses nothing, so it rots immediately instead
    // of silently masking the author's intent.
    let v = lint(
        "crates/cache/src/mshr.rs",
        "let x = m.get(&k).unwrap(); // lint: allow(unwarp)\n",
    );
    assert_eq!(rules(&v), ["unwrap", "stale-allow"]);
}

#[test]
fn red_design_predicates_flags_preset_checks_in_sim_layers() {
    let v = lint(
        "crates/gpu/src/sim.rs",
        "if design == DesignKind::Mask { enable_tokens(); }\n",
    );
    assert_eq!(rules(&v), ["design-predicates"]);
    // Any mention counts, not just comparisons: imports rot into use sites.
    let v = lint(
        "crates/dram/src/device.rs",
        "use mask_common::config::DesignKind;\n",
    );
    assert_eq!(rules(&v), ["design-predicates"]);
}

#[test]
fn clean_design_predicates_config_harnesses_and_tests_are_exempt() {
    let src = "let d = DesignKind::Mask.spec();\n";
    // The preset table itself.
    assert!(lint("crates/common/src/config.rs", src).is_empty());
    // Experiment harnesses and the job vocabulary.
    assert!(lint("crates/core/src/experiments/multiprog.rs", src).is_empty());
    assert!(lint("crates/core/src/engine.rs", src).is_empty());
    assert!(lint("crates/bench/src/lib.rs", src).is_empty());
    // Test code is masked like every other rule.
    let guarded = "#[cfg(test)]\nmod tests {\n    use mask_common::DesignKind;\n}\n";
    assert!(lint("crates/gpu/src/sim.rs", guarded).is_empty());
    // A word-boundary hit only: identifiers merely containing the token
    // are someone else's business.
    let v = lint("crates/gpu/src/sim.rs", "let my_design_kind = 3;\n");
    assert!(v.is_empty());
}

#[test]
fn red_env_determinism_flags_env_reads_outside_entry_points() {
    let v = lint(
        "crates/gpu/src/sim.rs",
        "let n = std::env::var(\"MASK_FANCY\").ok();\n",
    );
    assert_eq!(rules(&v), ["env-determinism"]);
    let v = lint(
        "crates/core/src/experiments/mod.rs",
        "let n = std::env::var_os(\"MASK_PAIR_LIMIT\");\n",
    );
    assert_eq!(rules(&v), ["env-determinism"]);
}

#[test]
fn clean_env_determinism_entry_points_may_read() {
    let src = "let n = std::env::var(\"MASK_JOBS\").ok();\n";
    assert!(lint("crates/common/src/config.rs", src).is_empty());
    assert!(lint("crates/obs/src/ring.rs", src).is_empty());
    assert!(lint("crates/obs/src/export.rs", src).is_empty());
    assert!(lint("crates/bench/src/lib.rs", src).is_empty());
}

#[test]
fn maskd_is_a_parallelism_island_but_not_an_env_free_for_all() {
    // The daemon crate is a declared island: its server/queue/store
    // layers are threaded by design.
    let threads = "let h = std::thread::spawn(f);\nlet m = std::sync::Mutex::new(0);\n";
    assert!(lint("crates/maskd/src/server.rs", threads).is_empty());
    // Island status does not exempt it from env-determinism: only the
    // daemon's config module may read MASKD_* knobs...
    let env = "let a = std::env::var(\"MASKD_ADDR\").ok();\n";
    assert!(lint("crates/maskd/src/config.rs", env).is_empty());
    // ...and an env read anywhere else in the crate is a violation.
    assert_eq!(
        rules(&lint("crates/maskd/src/server.rs", env)),
        ["env-determinism"]
    );
}

#[test]
fn maskd_unsafe_still_needs_a_safety_comment() {
    // Being an island admits `unsafe`, but the audit half of the rule
    // still applies: without a SAFETY justification it fires.
    let v = lint(
        "crates/maskd/src/http.rs",
        "pub fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n",
    );
    assert_eq!(rules(&v), ["unsafe-audit"]);
}

#[test]
fn clean_env_determinism_engine_resolves_snapshot_dir() {
    // The job engine is a designated entry point: it resolves
    // MASK_SNAPSHOT_DIR once when the process-wide prefix cache is built.
    let src = "let d = std::env::var_os(\"MASK_SNAPSHOT_DIR\");\n";
    assert!(lint("crates/core/src/engine.rs", src).is_empty());
    // Entry-point status does not leak to the rest of mask-core.
    assert_eq!(
        rules(&lint("crates/core/src/runner.rs", src)),
        ["env-determinism"]
    );
}

#[test]
fn clean_hotpath_snapshot_codec_may_allocate() {
    // The snapshot codec is registered as a cold file: it runs at
    // epoch-boundary checkpoint points, never inside the cycle loop.
    let src = "let mut buf: Vec<u8> = Vec::new();\nlet c = self.sections.clone();\n";
    assert!(lint("crates/common/src/snapshot.rs", src).is_empty());
}

#[test]
fn red_hotpath_snapshot_style_code_in_hot_files_still_fires() {
    // The same allocation pattern inside a per-cycle hot file stays red —
    // the codec exemption is per-file, not per-pattern.
    let v = lint(
        "crates/gpu/src/translation.rs",
        "let mut buf: Vec<u8> = Vec::new();\n",
    );
    assert_eq!(rules(&v), ["hotpath"]);
}

// v1 regression cases the token-aware engine fixes.

#[test]
fn regression_comment_slashes_inside_string_do_not_truncate_the_line() {
    // v1's `code_of` cut this line at the `//` inside the string literal,
    // so the HashMap after it was never scanned. v2 lexes the string and
    // sees the whole line.
    let v = lint(
        "crates/tlb/src/l1.rs",
        "let note = \"// not a comment\"; let m: HashMap<u8, u8> = HashMap::new();\n",
    );
    assert_eq!(rules(&v), ["collections"]);
    assert!(
        v[0].col > 20,
        "flagged after the string, not inside it: {v:?}"
    );
}

#[test]
fn forbidden_tokens_inside_strings_and_chars_do_not_fire() {
    let v = lint(
        "crates/tlb/src/l1.rs",
        "let s = \"HashMap::new() Instant::now Mutex\";\nlet c = '{';\n",
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn cfg_test_span_survives_braces_inside_strings() {
    // v1 counted the `"}"` string brace and closed the test span early,
    // leaking the rest of the module into linted code.
    let src = "\
pub fn lib() {}

#[cfg(test)]
mod tests {
    fn fixture() -> &'static str { \"}\" }

    #[test]
    fn t() {
        use std::collections::HashMap;
        let m: HashMap<u8, u8> = HashMap::new();
    }
}
";
    assert!(lint("crates/tlb/src/l1.rs", src).is_empty());
}

#[test]
fn nested_cfg_test_items_are_masked() {
    let src = "\
#[cfg(test)]
mod tests {
    #[cfg(test)]
    mod inner {
        use std::collections::HashMap;
    }

    fn t() { let m = HashMap::new(); }
}
";
    assert!(lint("crates/tlb/src/l1.rs", src).is_empty());
}

#[test]
fn cfg_test_on_use_statements_is_masked() {
    let src = "\
#[cfg(test)]
use std::collections::HashMap;

#[cfg(test)]
use std::sync::{Mutex, RwLock};

pub fn f() {
    let x = Some(1).unwrap();
}
";
    let v = lint("crates/tlb/src/l1.rs", src);
    assert_eq!(rules(&v), ["unwrap"]);
    assert_eq!(v[0].line, 8);
}

#[test]
fn cfg_test_conjunctions_are_masked_but_not_test_is_not() {
    let masked = "\
#[cfg(all(test, feature = \"slow\"))]
mod tests {
    use std::collections::HashMap;
}
";
    assert!(lint("crates/tlb/src/l1.rs", masked).is_empty());
    let not_test = "\
#[cfg(not(test))]
pub fn f() {
    let m = std::collections::HashMap::new();
}
";
    assert_eq!(
        rules(&lint("crates/tlb/src/l1.rs", not_test)),
        ["collections"]
    );
}

// Exemptions and scoping (ported from v1).

#[test]
fn hotpath_constructors_may_allocate() {
    let src = "\
pub fn new(n: usize) -> Self {
    Self { banks: vec![Bank::new(); n], scratch: Vec::new() }
}

pub fn with_bypass(n: usize) -> Self {
    let banks: Vec<Bank> = (0..n).map(|_| Bank::new()).collect();
    Self { banks, scratch: Vec::new() }
}
";
    assert!(lint("crates/cache/src/l2.rs", src).is_empty());
}

#[test]
fn hotpath_rule_is_scoped_to_hot_files() {
    let src = "pub fn tick(&mut self) {\n    let v = Vec::new();\n}\n";
    assert!(lint("crates/cache/src/mshr.rs", src).is_empty());
    assert!(lint("crates/gpu/src/core_model.rs", src).is_empty());
}

#[test]
fn hotpath_allow_annotation_works() {
    let v = lint(
        "crates/gpu/src/sim.rs",
        "pub fn snapshot(&self) -> Vec<u32> {\n    \
         self.xs.clone() // lint: allow(hotpath) -- debug API, off-cycle\n}\n",
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn allow_annotation_suppresses_same_line_and_next_line() {
    let v = lint(
        "crates/cache/src/l2.rs",
        "let x = m.get(&k).unwrap(); // lint: allow(unwrap)\n\
         // lint: allow(unwrap) -- checked above\n\
         let y = m.get(&k).unwrap();\n",
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn consecutive_same_line_allows_each_cover_their_own_line() {
    // The first annotation also *covers* the second line, but the second
    // line's own annotation must be the one consumed — otherwise it would
    // be reported stale.
    let v = lint(
        "crates/cache/src/l2.rs",
        "let x = m.get(&a).unwrap(); // lint: allow(unwrap)\n\
         let y = m.get(&b).unwrap(); // lint: allow(unwrap)\n",
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn allow_annotation_is_rule_specific_and_rots_when_mismatched() {
    // The mismatched annotation does not suppress the unwrap — and, being
    // useless, is itself flagged as stale.
    let v = lint(
        "crates/cache/src/l2.rs",
        "let x = m.get(&k).unwrap(); // lint: allow(collections)\n",
    );
    assert_eq!(rules(&v), ["unwrap", "stale-allow"]);
}

#[test]
fn cfg_test_module_is_exempt() {
    let src = "\
pub fn lib() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn t() {
        let m: HashMap<u8, u8> = HashMap::new();
        assert!(m.is_empty() || panic!(\"x\"));
    }
}
";
    assert!(lint("crates/tlb/src/l1.rs", src).is_empty());
}

#[test]
fn cfg_test_single_item_is_exempt_but_rest_is_not() {
    let src = "\
#[cfg(test)]
use std::collections::HashMap;

pub fn f() {
    let x = Some(1).unwrap();
}
";
    let v = lint("crates/tlb/src/l1.rs", src);
    assert_eq!(rules(&v), ["unwrap"]);
    assert_eq!(v[0].line, 5);
}

#[test]
fn commented_out_code_is_exempt() {
    let v = lint("crates/tlb/src/l1.rs", "// let m = HashMap::new();\n");
    assert!(v.is_empty());
    let v = lint("crates/tlb/src/l1.rs", "/* let m = HashMap::new(); */\n");
    assert!(v.is_empty());
}

#[test]
fn engine_and_bench_may_use_thread_primitives() {
    let src = "use std::sync::Mutex;\nstd::thread::scope(|s| {});\n";
    assert!(lint("crates/core/src/engine.rs", src).is_empty());
    assert!(lint("crates/bench/src/lib.rs", src).is_empty());
    // The exemption is for engine files only, not all of mask-core.
    assert!(!lint("crates/core/src/metrics.rs", src).is_empty());
}

#[test]
fn shard_pool_may_use_thread_primitives_but_stays_hotpath_clean() {
    // The SM-frontend shard pool is the second parallelism island…
    let threads = "use std::sync::Mutex;\nstd::thread::scope(|s| {});\n";
    assert!(lint("crates/gpu/src/shard.rs", threads).is_empty());
    // …but only shard.rs: the rest of mask-gpu stays single-threaded.
    assert!(!lint("crates/gpu/src/sim.rs", threads).is_empty());
    // And the hotpath rule still fires inside shard.rs — the per-cycle
    // shard/merge code must not allocate in steady state.
    let alloc = "pub fn run_shard(&mut self) {\n    let v = Vec::new();\n}\n";
    let v = lint("crates/gpu/src/shard.rs", alloc);
    assert_eq!(rules(&v), ["hotpath"]);
}

#[test]
fn spec_runner_may_use_thread_primitives_but_stays_hotpath_clean() {
    // The speculative segment runner is a declared parallelism island…
    let threads = "use std::sync::Mutex;\nstd::thread::scope(|s| {});\n";
    assert!(lint("crates/gpu/src/spec.rs", threads).is_empty());
    // …but the functional fast-forward mode it drives is not: predictions
    // run on plain single-threaded replicas.
    assert!(!lint("crates/gpu/src/functional.rs", threads).is_empty());
    // And the hotpath rule still fires inside spec.rs — the per-boundary
    // verify/commit loop must not allocate in steady state.
    let alloc = "pub fn verify_segment(&mut self) {\n    let v = Vec::new();\n}\n";
    assert_eq!(rules(&lint("crates/gpu/src/spec.rs", alloc)), ["hotpath"]);
}

#[test]
fn red_env_determinism_functional_mode_must_not_read_env() {
    // Functional fast-forward feeds speculative predictions; an env read
    // there would let MASK_* settings fork replica behavior mid-run and
    // silently change which segments commit.
    let v = lint(
        "crates/gpu/src/functional.rs",
        "let n = std::env::var(\"MASK_SPEC_SEGMENTS\").ok();\n",
    );
    assert_eq!(rules(&v), ["env-determinism"]);
    // The segment runner itself is no env entry point either: segment
    // counts arrive resolved through SpecPlan.
    let v = lint(
        "crates/gpu/src/spec.rs",
        "let n = std::env::var(\"MASK_SPEC_SEGMENTS\").ok();\n",
    );
    assert_eq!(rules(&v), ["env-determinism"]);
}

#[test]
fn obs_ring_may_use_thread_primitives_but_hooks_stay_hotpath_clean() {
    // The tracer's ring-buffer module is the third parallelism island…
    let threads = "use std::sync::Mutex;\nstatic GATE: AtomicU8 = AtomicU8::new(0);\n";
    assert!(lint("crates/obs/src/ring.rs", threads).is_empty());
    // …and only ring.rs: the rest of mask-obs stays primitive-free.
    assert_eq!(
        rules(&lint("crates/obs/src/metrics.rs", threads)),
        ["parallelism", "parallelism"]
    );
    assert!(!lint("crates/obs/src/hooks.rs", threads).is_empty());
    // The hooks the cycle loop calls unconditionally are a hot file:
    // the disabled-tracing path must not allocate.
    let alloc = "pub fn tlb_probe(level: TlbLevel) {\n    let v = Vec::new();\n}\n";
    assert_eq!(rules(&lint("crates/obs/src/hooks.rs", alloc)), ["hotpath"]);
    // The hotpath rule is scoped to hooks.rs, not the whole crate —
    // the exporter may allocate freely.
    assert!(lint("crates/obs/src/export.rs", alloc).is_empty());
}

#[test]
fn bench_crate_may_use_wall_clock() {
    let v = lint(
        "crates/bench/src/lib.rs",
        "let t = std::time::Instant::now();\n",
    );
    assert!(v.is_empty());
}

#[test]
fn integer_and_compensated_sums_are_exempt_in_stats() {
    let src = "\
let n: u64 = xs.iter().sum();
let t = CompensatedSum::total(ys.iter().map(f));
";
    assert!(lint("crates/common/src/stats.rs", src).is_empty());
}

#[test]
fn float_sum_outside_stats_rs_is_not_this_rules_business() {
    let v = lint(
        "crates/core/src/metrics.rs",
        "let t: f64 = xs.iter().sum::<f64>();\n",
    );
    assert!(v.is_empty());
}

#[test]
fn debug_derive_accepts_derive_with_doc_comments_between() {
    let src = "\
#[derive(Clone, Copy, Debug)]
pub struct Tagged {
    pub bits: u64,
}
";
    assert!(lint("crates/common/src/req.rs", src).is_empty());
}

#[test]
fn expect_with_message_is_allowed() {
    let v = lint(
        "crates/cache/src/l2.rs",
        "let x = m.get(&k).expect(\"present\");\n",
    );
    assert!(v.is_empty());
}

// Fix application.

#[test]
fn apply_fixes_rewrites_stale_allows_and_missing_derives() {
    let dir = std::env::temp_dir().join(format!("mask-lint-fix-{}", std::process::id()));
    std::fs::create_dir_all(dir.join("crates/common/src")).unwrap();
    let req = dir.join("crates/common/src/req.rs");
    std::fs::write(
        &req,
        "// lint: allow(collections) -- long gone\n\
         #[derive(Clone)]\n\
         pub struct Raw {\n\
         \x20   pub bits: u64, // lint: allow(unwrap)\n\
         }\n",
    )
    .unwrap();
    let contents = std::fs::read_to_string(&req).unwrap();
    let violations = lint_source(&req, &contents);
    assert_eq!(
        rules(&violations),
        ["stale-allow", "debug-derive", "stale-allow"]
    );
    let log = apply_fixes(&violations).unwrap();
    assert_eq!(log.len(), 3, "{log:?}");
    let fixed = std::fs::read_to_string(&req).unwrap();
    // The derive is inserted directly above the struct line (a second
    // derive attribute is valid Rust).
    assert_eq!(
        fixed,
        "#[derive(Clone)]\n\
         #[derive(Debug)]\n\
         pub struct Raw {\n\
         \x20   pub bits: u64,\n\
         }\n"
    );
    // The fixed file is clean.
    assert!(
        lint_source(&req, &fixed).is_empty(),
        "{:?}",
        lint_source(&req, &fixed)
    );
    std::fs::remove_dir_all(&dir).ok();
}

// Self-check: the repository itself must be clean under all 12 rules.

#[test]
fn repo_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives one level under the workspace root");
    let violations = lint_workspace(root).expect("scan the workspace");
    assert!(
        violations.is_empty(),
        "the repo must hold its own lint rules:\n{}",
        violations
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
