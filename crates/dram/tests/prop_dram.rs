//! Property tests for the DRAM device and schedulers.

use mask_common::addr::LineAddr;
use mask_common::config::{DramConfig, DramPolicy, MemSchedKind, RowPolicy};
use mask_common::ids::{Asid, CoreId};
use mask_common::req::{MemRequest, ReqId, RequestClass, WalkLevel};
use mask_dram::Dram;
use proptest::prelude::*;
use std::collections::HashSet;

fn request(i: usize, line: u64, asid: u16) -> MemRequest {
    let class = if i.is_multiple_of(4) {
        RequestClass::Translation(WalkLevel::new((i % 4 + 1) as u8))
    } else {
        RequestClass::Data
    };
    MemRequest::new(
        ReqId(i as u64),
        LineAddr(line),
        Asid::new(asid),
        CoreId::new(0),
        class,
        0,
    )
}

fn drain(dram: &mut Dram, expected: usize) -> Vec<mask_dram::DramCompletion> {
    let mut done = Vec::new();
    for now in 0..200_000u64 {
        dram.tick(now);
        done.extend(dram.take_completions(now));
        if done.len() == expected {
            break;
        }
    }
    done
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every enqueued request completes exactly once, under every
    /// scheduler and row policy.
    #[test]
    fn conservation(
        lines in proptest::collection::vec((0u64..100_000, 0u16..2), 1..120),
        mask_sched: bool,
        closed_row: bool,
        batch: bool,
    ) {
        let cfg = DramConfig {
            row_policy: if closed_row { RowPolicy::Closed } else { RowPolicy::Open },
            sched: if batch { MemSchedKind::GpuBatch } else { MemSchedKind::FrFcfs },
            ..DramConfig::default()
        };
        let mut dram = Dram::new(&cfg, 2, if mask_sched { DramPolicy::MaskQueues } else { DramPolicy::Shared });
        for (i, &(l, a)) in lines.iter().enumerate() {
            dram.enqueue(request(i, l, a), 0);
        }
        let done = drain(&mut dram, lines.len());
        prop_assert_eq!(done.len(), lines.len(), "requests lost");
        let ids: HashSet<u64> = done.iter().map(|c| c.req.id.0).collect();
        prop_assert_eq!(ids.len(), lines.len(), "duplicate completions");
        prop_assert_eq!(dram.queued(), 0);
        prop_assert_eq!(dram.in_flight(), 0);
    }

    /// Channel data-bus transfers never overlap (bandwidth conservation).
    #[test]
    fn bus_transfers_serialize(lines in proptest::collection::vec(0u64..4096, 1..60)) {
        let cfg = DramConfig::default();
        let mut dram = Dram::new(&cfg, 1, DramPolicy::Shared);
        for (i, &l) in lines.iter().enumerate() {
            dram.enqueue(request(i, l, 0), 0);
        }
        let done = drain(&mut dram, lines.len());
        // Group completions per channel and check bursts do not overlap.
        for ch in 0..cfg.channels {
            let mut finishes: Vec<u64> = done
                .iter()
                .filter(|c| dram.channel_of(c.req.line, c.req.asid) == ch)
                .map(|c| c.finish)
                .collect();
            finishes.sort_unstable();
            for w in finishes.windows(2) {
                prop_assert!(w[1] >= w[0] + cfg.burst_cycles, "overlapping bursts on channel {ch}");
            }
        }
    }

    /// Static channel partitioning confines each ASID to its channels.
    #[test]
    fn partition_isolation(lines in proptest::collection::vec(0u64..100_000, 1..60)) {
        let cfg = DramConfig::default();
        let dram = Dram::new(&cfg, 2, DramPolicy::ChannelPartitioned);
        for &l in &lines {
            prop_assert!(dram.channel_of(LineAddr(l), Asid::new(0)) < 4);
            prop_assert!(dram.channel_of(LineAddr(l), Asid::new(1)) >= 4);
        }
    }

    /// Closed-row policy never produces row hits or conflicts.
    #[test]
    fn closed_row_uniform_latency(lines in proptest::collection::vec(0u64..10_000, 1..60)) {
        let cfg = DramConfig { row_policy: RowPolicy::Closed, ..DramConfig::default() };
        let mut dram = Dram::new(&cfg, 1, DramPolicy::Shared);
        for (i, &l) in lines.iter().enumerate() {
            dram.enqueue(request(i, l, 0), 0);
        }
        let done = drain(&mut dram, lines.len());
        prop_assert!(done.iter().all(|c| c.outcome == mask_dram::RowOutcome::Miss));
    }
}
