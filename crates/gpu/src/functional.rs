//! Functional fast-forward: a timing-free execution mode for state
//! prediction.
//!
//! PR 3's idle fast-forward advances the clock over spans where *nothing*
//! can happen and is therefore bit-exact. This module lifts that machinery
//! into a first-class functional mode: [`GpuSim::run_functional`] advances
//! a simulator over a span of any activity level by combining
//!
//! 1. the exact idle fast-forward wherever its preconditions hold, and
//! 2. a cheap functional chunk everywhere else — ready warps retire
//!    instructions at the core's peak rate with memory completed
//!    instantly through the page tables
//!    ([`crate::core_model::GpuCore::functional_advance`]), while parked
//!    warps, caches, MSHRs, and DRAM state are left untouched.
//!
//! The result is a *predicted* state: traces, page tables, the clock, and
//! coarse statistics advance; detailed cache/DRAM timing does not. The
//! speculative segment runner (`crate::spec`) uses these predictions as
//! segment start states and relies on snapshot comparison — never on this
//! mode's accuracy — for correctness. [`FunctionalReport::exact`] records
//! whether a span happened to be covered entirely by the exact idle path
//! (in which case the prediction *is* the true state).
//!
//! Epoch-boundary bookkeeping (token redistribution, DRAM pressure
//! update, L2 epoch reset, metrics frames) fires on exactly the same
//! cycles as in detailed execution, so predicted states are always
//! epoch-consistent and snapshot-safe at epoch multiples.

use crate::sim::GpuSim;
use mask_common::ids::Asid;

/// What [`GpuSim::run_functional`] actually did over a span.
#[derive(Clone, Copy, Debug, Default)]
pub struct FunctionalReport {
    /// Cycles advanced by the exact idle fast-forward.
    pub exact_cycles: u64,
    /// Cycles advanced by the approximate functional chunks.
    pub functional_cycles: u64,
    /// Whether the whole span was covered by the exact idle path — if so
    /// the resulting state is bit-identical to detailed execution.
    pub exact: bool,
}

impl FunctionalReport {
    fn absorb(&mut self, other: FunctionalReport) {
        self.exact_cycles += other.exact_cycles;
        self.functional_cycles += other.functional_cycles;
        self.exact &= other.exact;
    }
}

impl GpuSim {
    /// Advances `cycles` in functional mode (see the module docs): exact
    /// idle fast-forward where provable, instant-memory functional
    /// execution elsewhere. Cheap — no per-cycle loop, no detailed cache
    /// or DRAM modeling — and approximate unless the returned report says
    /// [`FunctionalReport::exact`].
    pub fn run_functional(&mut self, cycles: u64) -> FunctionalReport {
        let end = self.now + cycles;
        let mut report = FunctionalReport {
            exact: true,
            ..FunctionalReport::default()
        };
        while self.now < end {
            if let Some(target) = self.idle_horizon(end) {
                report.exact_cycles += target - self.now;
                self.fast_forward(target - self.now);
            } else {
                report.absorb(self.functional_chunk(end));
            }
        }
        report
    }

    /// One approximate functional chunk: advance to the next epoch
    /// boundary (or `end`, whichever is first) in a single step.
    fn functional_chunk(&mut self, end: u64) -> FunctionalReport {
        let epoch = self.cfg.gpu.mask.epoch_cycles;
        let target = self
            .now
            .checked_div(epoch)
            .map_or(end, |q| end.min((q + 1) * epoch));
        let delta = target - self.now;
        debug_assert!(delta > 0);
        // Ready warps retire at most `delta` instructions per core (the
        // peak issue rate), memory completed instantly via the page
        // tables. Split borrows: each core, the translation unit, and the
        // per-app stats block are disjoint fields.
        for i in 0..self.cores.len() {
            let app = self.cores[i].asid.index();
            self.cores[i].functional_advance(delta, &mut self.xlat, &mut self.stats.apps[app]);
        }
        // Clock + per-cycle sampling, in bulk (mirrors `fast_forward`).
        self.xlat.fast_forward(delta);
        for app in 0..self.n_apps {
            let walks = self.xlat.concurrent_walks(Asid::new(app as u16)) as u64;
            self.stats.apps[app].walk_cycles_integral += walks * delta;
            self.stats.apps[app].walk_concurrency_max =
                self.stats.apps[app].walk_concurrency_max.max(walks);
            self.stats.apps[app].cycles += delta;
        }
        self.stats.cycles += delta;
        self.now = target;
        // Epoch boundary on its exact schedule (the chunk is capped at
        // the next multiple above).
        if epoch != 0 && self.now.is_multiple_of(epoch) {
            let pressure = self.xlat.end_epoch(epoch);
            self.dram.update_pressure(&pressure);
            self.l2.end_epoch();
            self.emit_epoch_metrics();
        }
        FunctionalReport {
            exact_cycles: 0,
            functional_cycles: delta,
            exact: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::AppSpec;
    use mask_common::config::{DesignKind, SimConfig};
    use mask_common::snapshot::PrefixKey;
    use mask_workloads::app_by_name;

    fn sim(cycles: u64) -> GpuSim {
        let mut cfg = SimConfig::new(DesignKind::Mask).with_max_cycles(cycles);
        cfg.gpu.n_cores = 4;
        cfg.gpu.warps_per_core = 16;
        let specs: Vec<AppSpec> = [("HISTO", 2), ("GUP", 2)]
            .iter()
            .map(|&(name, c)| AppSpec {
                profile: app_by_name(name).expect("known app"),
                n_cores: c,
            })
            .collect();
        GpuSim::new(&cfg, &specs)
    }

    #[test]
    fn functional_mode_advances_clock_and_work() {
        let mut s = sim(10_000);
        let report = s.run_functional(10_000);
        assert_eq!(s.now(), 10_000);
        assert_eq!(report.exact_cycles + report.functional_cycles, 10_000);
        // Busy synthetic traces force the approximate path.
        assert!(!report.exact);
        assert!(report.functional_cycles > 0);
        s.sync_stats();
        assert!(s.stats().apps[0].instructions > 0, "traces must advance");
        assert_eq!(s.stats().cycles, 10_000, "coarse stats track the clock");
    }

    #[test]
    fn functional_mode_lands_on_epoch_safe_points() {
        let mut s = sim(300_000);
        let epoch = s.config().gpu.mask.epoch_cycles;
        s.run_functional(2 * epoch);
        assert!(s.at_epoch_safe_point());
        // Snapshots of predicted states are well-formed envelopes.
        let bytes = s.encode_snapshot(PrefixKey(1));
        assert!(mask_common::snapshot::validate_envelope(&bytes).is_ok());
    }

    #[test]
    fn functional_mode_is_deterministic() {
        let run = || {
            let mut s = sim(50_000);
            s.run_functional(50_000);
            s.encode_snapshot(PrefixKey(9))
        };
        assert_eq!(run(), run(), "functional prediction must be reproducible");
    }

    #[test]
    fn predicted_state_resumes_detailed_execution() {
        // A predicted state is a valid simulator state: detailed execution
        // can continue from it without tripping any invariant.
        let mut s = sim(20_000);
        s.run_functional(10_000);
        s.run(10_000);
        s.sync_stats();
        assert_eq!(s.now(), 20_000);
        assert!(s.stats().apps[0].instructions > 0);
    }
}
