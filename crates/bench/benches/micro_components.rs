//! Criterion micro-benchmarks of the simulator's hot components: TLB
//! probes, page walks, DRAM scheduling, and whole-simulator cycle
//! throughput. These measure the *reproduction's* performance (useful when
//! modifying the simulator), not the paper's results.
#![allow(missing_docs)] // criterion_group! expands to undocumented items

use criterion::{criterion_group, criterion_main, Criterion};
use mask_common::addr::{LineAddr, Vpn, PAGE_SIZE_4K_LOG2};
use mask_common::config::{DesignKind, DramConfig, SimConfig};
use mask_common::ids::{Asid, CoreId};
use mask_common::req::{MemRequest, ReqId, RequestClass};
use mask_dram::{ChannelPartition, Dram};
use mask_gpu::{AppSpec, GpuSim};
use mask_pagetable::PageTables;
use mask_tlb::SharedL2Tlb;
use mask_workloads::app_by_name;
use std::hint::black_box;

fn bench_l2_tlb(c: &mut Criterion) {
    let mut tlb = SharedL2Tlb::new(512, 16, 2, 32);
    for i in 0..512u64 {
        tlb.fill(
            Asid::new((i % 2) as u16),
            Vpn(i),
            mask_common::addr::Ppn(i),
            true,
        );
    }
    let mut i = 0u64;
    c.bench_function("shared_l2_tlb_probe", |b| {
        b.iter(|| {
            i = i.wrapping_add(17);
            black_box(tlb.probe(Asid::new((i % 2) as u16), Vpn(i % 1024)))
        })
    });
}

fn bench_page_walk_lines(c: &mut Criterion) {
    let mut tables = PageTables::new(1, PAGE_SIZE_4K_LOG2);
    for i in 0..4096u64 {
        tables.ensure_mapped(Asid::new(0), Vpn(i * 7));
    }
    let mut i = 0u64;
    c.bench_function("page_table_walk_line_lookup", |b| {
        b.iter(|| {
            i = (i + 1) % 4096;
            black_box(tables.walk_line(
                Asid::new(0),
                Vpn((i * 7) % (4096 * 7)),
                mask_common::req::WalkLevel::new(4),
            ))
        })
    });
}

fn bench_dram_tick(c: &mut Criterion) {
    let cfg = DramConfig::default();
    let mut dram = Dram::new(&cfg, 2, true, ChannelPartition::shared());
    let mut id = 0u64;
    let mut now = 0u64;
    c.bench_function("mask_dram_enqueue_tick", |b| {
        b.iter(|| {
            id += 1;
            now += 1;
            let class = if id.is_multiple_of(5) {
                RequestClass::Translation(mask_common::req::WalkLevel::new(4))
            } else {
                RequestClass::Data
            };
            dram.enqueue(
                MemRequest::new(
                    ReqId(id),
                    LineAddr(id * 37),
                    Asid::new((id % 2) as u16),
                    CoreId::new(0),
                    class,
                    now,
                ),
                now,
            );
            dram.tick(now);
            black_box(dram.take_completions(now).len())
        })
    });
}

fn bench_full_sim_cycles(c: &mut Criterion) {
    c.bench_function("gpu_sim_1000_cycles_2apps", |b| {
        let mut cfg = SimConfig::new(DesignKind::Mask).with_max_cycles(u64::MAX);
        cfg.gpu.n_cores = 4;
        cfg.gpu.warps_per_core = 16;
        let specs = [
            AppSpec {
                profile: app_by_name("CONS").expect("known"),
                n_cores: 2,
            },
            AppSpec {
                profile: app_by_name("LPS").expect("known"),
                n_cores: 2,
            },
        ];
        let mut sim = GpuSim::new(&cfg, &specs);
        b.iter(|| {
            sim.run(1000);
            black_box(sim.now())
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_l2_tlb, bench_page_walk_lines, bench_dram_tick, bench_full_sim_cycles
);
criterion_main!(micro);
