//! End-to-end design-ordering invariants: the qualitative relationships
//! the paper's evaluation (§7) establishes must hold in the reproduction.
//!
//! Uses MUM (4-page scatter per memory instruction) so translation
//! pressure saturates the shared walker even on the scaled-down test GPU.

use mask_core::prelude::*;

fn opts(cycles: u64) -> RunOptions {
    let mut gpu = GpuConfig::maxwell();
    gpu.warps_per_core = 32;
    RunOptions {
        n_cores: 8,
        max_cycles: cycles,
        seed: 3,
        warmup_cycles: cycles / 4,
        gpu,
        jobs: JobOptions::serial(),
    }
}

/// Runs one translation-heavy pair under every design.
fn sweep(cycles: u64) -> Vec<(DesignKind, PairOutcome)> {
    let runner = PairRunner::new(opts(cycles));
    DesignKind::ALL
        .into_iter()
        .map(|d| (d, runner.run_named("MUM", "LPS", d).expect("known pair")))
        .collect()
}

#[test]
fn ideal_dominates_every_design() {
    let all = sweep(30_000);
    let ideal = all
        .iter()
        .find(|(d, _)| *d == DesignKind::Ideal)
        .expect("ideal present");
    for (d, o) in &all {
        assert!(
            o.ipc_throughput <= ideal.1.ipc_throughput * 1.02,
            "{d} ({:.3}) must not beat Ideal ({:.3})",
            o.ipc_throughput,
            ideal.1.ipc_throughput
        );
    }
}

#[test]
fn baselines_pay_a_translation_cost() {
    let all = sweep(30_000);
    let get = |k| {
        all.iter()
            .find(|(d, _)| *d == k)
            .map(|(_, o)| o.ipc_throughput)
            .expect("design present")
    };
    let ideal = get(DesignKind::Ideal);
    let shared = get(DesignKind::SharedTlb);
    assert!(
        shared < ideal * 0.97,
        "SharedTLB ({shared:.3}) should be measurably below Ideal ({ideal:.3}) on a \
         translation-heavy pair"
    );
}

#[test]
fn static_partitioning_underperforms_dynamic_sharing() {
    let all = sweep(30_000);
    let get = |k| {
        all.iter()
            .find(|(d, _)| *d == k)
            .map(|(_, o)| o.weighted_speedup)
            .expect("design present")
    };
    assert!(
        get(DesignKind::Static) <= get(DesignKind::SharedTlb) * 1.05,
        "Static ({:.3}) should not beat dynamic sharing ({:.3})",
        get(DesignKind::Static),
        get(DesignKind::SharedTlb)
    );
}

#[test]
fn mask_components_never_collapse() {
    // Every MASK component must stay within a reasonable band of the
    // baseline (they are designed to help, and must never be catastrophic).
    let all = sweep(30_000);
    let base = all
        .iter()
        .find(|(d, _)| *d == DesignKind::SharedTlb)
        .map(|(_, o)| o.weighted_speedup)
        .expect("baseline");
    for k in [
        DesignKind::MaskTlb,
        DesignKind::MaskCache,
        DesignKind::MaskDram,
        DesignKind::Mask,
    ] {
        let ws = all
            .iter()
            .find(|(d, _)| *d == k)
            .map(|(_, o)| o.weighted_speedup)
            .expect("design");
        assert!(
            ws > base * 0.85,
            "{k} weighted speedup ({ws:.3}) collapsed vs SharedTLB ({base:.3})"
        );
    }
}
