//! Table 4: generality across Fermi / integrated-GPU architectures.

use mask_bench::{banner, emit, options};
use mask_core::experiments::generality;

fn main() {
    let opts = options(6);
    banner("Table 4: architecture generality", &opts);
    let t0 = std::time::Instant::now();
    emit(&generality::run(&opts));
    println!("[tab04 done in {:?}]", t0.elapsed());
}
