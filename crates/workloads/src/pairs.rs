//! The 35 two-application workloads of the paper's evaluation.
//!
//! "We randomly select 35 pairs of applications, avoiding pairs where both
//! applications have a low L1 TLB miss rate and low L2 TLB miss rate" (§6).
//! The exact pair list is taken from Figs. 8–9; pairs are categorized by
//! how many member applications have *both* high L1 and high L2 TLB miss
//! rates (`n-HMR`, §6).

use crate::apps::{app_by_name, expected_class};
use crate::profile::AppProfile;

/// A two-application workload.
#[derive(Clone, Copy, Debug)]
pub struct AppPair {
    /// First application (also first in the paper's `A_B` name).
    pub a: &'static AppProfile,
    /// Second application.
    pub b: &'static AppProfile,
}

impl AppPair {
    /// The paper's workload name, e.g. `"3DS_HISTO"`.
    pub fn name(&self) -> String {
        format!("{}_{}", self.a.name, self.b.name)
    }

    /// How many member apps are High-L1 *and* High-L2 (HMR) by Table 2.
    pub fn hmr_count(&self) -> usize {
        [self.a, self.b]
            .iter()
            .filter(|p| expected_class(p.name).is_some_and(|c| c.l1_high && c.l2_high))
            .count()
    }

    /// The workload category used to group Figs. 11–15.
    pub fn category(&self) -> HmrCategory {
        match self.hmr_count() {
            0 => HmrCategory::Hmr0,
            1 => HmrCategory::Hmr1,
            _ => HmrCategory::Hmr2,
        }
    }
}

/// Workload categories of §6: `n-HMR` contains pairs with `n` high-miss-
/// rate members.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HmrCategory {
    /// Neither app is high/high.
    Hmr0,
    /// One app is high/high.
    Hmr1,
    /// Both apps are high/high.
    Hmr2,
}

impl HmrCategory {
    /// All categories in display order.
    pub const ALL: [HmrCategory; 3] = [HmrCategory::Hmr0, HmrCategory::Hmr1, HmrCategory::Hmr2];

    /// The paper's label.
    pub const fn label(self) -> &'static str {
        match self {
            HmrCategory::Hmr0 => "0-HMR",
            HmrCategory::Hmr1 => "1-HMR",
            HmrCategory::Hmr2 => "2-HMR",
        }
    }
}

impl core::fmt::Display for HmrCategory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// The paper's 35 workload pairs (order of Figs. 8–9).
pub const PAIR_NAMES: [(&str, &str); 35] = [
    ("3DS", "BP"),
    ("3DS", "HISTO"),
    ("BLK", "LPS"),
    ("CFD", "MM"),
    ("CONS", "LPS"),
    ("CONS", "LUH"),
    ("FWT", "BP"),
    ("HISTO", "GUP"),
    ("HISTO", "LPS"),
    ("LUH", "BFS2"),
    ("LUH", "GUP"),
    ("MM", "CONS"),
    ("MUM", "HISTO"),
    ("NW", "HS"),
    ("NW", "LPS"),
    ("RAY", "GUP"),
    ("RAY", "HS"),
    ("RED", "BP"),
    ("RED", "GUP"),
    ("RED", "MM"),
    ("RED", "RAY"),
    ("RED", "SC"),
    ("SCAN", "CONS"),
    ("SCAN", "HISTO"),
    ("SCAN", "SAD"),
    ("SCAN", "SRAD"),
    ("SCP", "GUP"),
    ("SCP", "HS"),
    ("SC", "FWT"),
    ("SRAD", "3DS"),
    ("TRD", "HS"),
    ("TRD", "LPS"),
    ("TRD", "MUM"),
    ("TRD", "RAY"),
    ("TRD", "RED"),
];

/// Builds the full pair list.
///
/// # Panics
///
/// Panics if a pair references an unknown benchmark (would be a bug in
/// [`PAIR_NAMES`]).
pub fn paper_pairs() -> Vec<AppPair> {
    PAIR_NAMES
        .iter()
        .map(|(a, b)| AppPair {
            // PAIR_NAMES is a static table cross-checked against APPS by the
            // tests below, so lookup failure is unreachable in a shipped build.
            a: app_by_name(a).unwrap_or_else(|| panic!("unknown app {a}")), // lint: allow(unwrap)
            b: app_by_name(b).unwrap_or_else(|| panic!("unknown app {b}")), // lint: allow(unwrap)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_five_pairs() {
        assert_eq!(paper_pairs().len(), 35);
    }

    #[test]
    fn category_counts_match_figures_12_to_14() {
        let pairs = paper_pairs();
        let count = |c| pairs.iter().filter(|p| p.category() == c).count();
        // Fig. 12 shows 8 0-HMR pairs; Figs. 13/14 split the remainder.
        assert_eq!(count(HmrCategory::Hmr0), 8);
        assert_eq!(count(HmrCategory::Hmr1), 16);
        assert_eq!(count(HmrCategory::Hmr2), 11);
    }

    #[test]
    fn no_pair_is_doubly_insensitive() {
        // §6 excludes pairs where both apps are low/low.
        for p in paper_pairs() {
            let ca = expected_class(p.a.name).expect("classified");
            let cb = expected_class(p.b.name).expect("classified");
            let low = |c: &crate::classify::TlbClass| !c.l1_high && !c.l2_high;
            assert!(!(low(&ca) && low(&cb)), "{} is insensitive", p.name());
        }
    }

    #[test]
    fn fig_12_zero_hmr_pairs_match_paper() {
        let expected = [
            "HISTO_GUP",
            "HISTO_LPS",
            "NW_HS",
            "NW_LPS",
            "RAY_GUP",
            "RAY_HS",
            "SCP_GUP",
            "SCP_HS",
        ];
        let got: Vec<String> = paper_pairs()
            .iter()
            .filter(|p| p.category() == HmrCategory::Hmr0)
            .map(AppPair::name)
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn names_and_display() {
        let pairs = paper_pairs();
        assert_eq!(pairs[1].name(), "3DS_HISTO");
        assert_eq!(HmrCategory::Hmr1.to_string(), "1-HMR");
    }
}
