//! The workload parameter space.

/// The page-level access pattern of an application.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Pattern {
    /// Burst-streaming: warps march through pages in groups, issuing
    /// `burst` memory instructions per page before advancing.
    ///
    /// First touch of each page misses everywhere (high L2 TLB miss rate);
    /// the burst amortizes that miss (low L1 TLB miss rate for large
    /// `burst`). `group` warps share the same page stream, so one TLB miss
    /// stalls the whole group — the Fig. 6 effect.
    Stream {
        /// Pages in the streamed region.
        pages: u64,
        /// Memory instructions issued per page before advancing.
        burst: u64,
        /// Warps per page-sharing group.
        group: u32,
    },
    /// Uniform random pages from a shared set (GUPS/backprop style).
    ///
    /// `pages` far above the L1 TLB capacity but below the shared L2
    /// capacity yields the High-L1 / Low-L2 quadrant; `pages` far above
    /// both yields High/High.
    Random {
        /// Pages in the randomly-accessed region.
        pages: u64,
        /// Distinct pages touched per memory instruction (scatter degree).
        pages_per_instr: u32,
    },
    /// A hot working set with a background stream (tiled/blocked kernels).
    TiledHot {
        /// Pages in the hot set (shared by all warps).
        hot: u64,
        /// Probability an access targets the hot set.
        p_hot: f64,
        /// Pages in the background stream region.
        stream_pages: u64,
        /// Memory instructions per background page before advancing.
        burst: u64,
        /// Warps per page-sharing group for the background stream.
        group: u32,
    },
    /// A hot set that fits the L1 TLB plus uniform random accesses over a
    /// cold set that fits the shared L2 TLB (LUD/NN-style blocked kernels).
    ///
    /// With `p_hot` close to 1 both miss rates are low: the hot tile stays
    /// L1-resident and the occasional cold access finds its page in the
    /// shared L2 TLB.
    HotCold {
        /// Pages in the hot set.
        hot: u64,
        /// Probability an access targets the hot set.
        p_hot: f64,
        /// Pages in the cold region (hot + cold should fit the L2 TLB).
        cold: u64,
    },
}

/// A complete application signature.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AppProfile {
    /// Benchmark name (paper's abbreviation, e.g. `"3DS"`).
    pub name: &'static str,
    /// Page-level access pattern.
    pub pattern: Pattern,
    /// Cache lines touched per memory instruction (coalescing degree;
    /// 1 = fully scattered, up to 8 = well-coalesced half-warp).
    pub lines_per_instr: u32,
    /// Average compute instructions between memory instructions
    /// (memory intensity knob).
    pub compute_per_mem: u32,
    /// Probability a line access re-touches a recently used line
    /// (drives the L1 *data* cache hit rate).
    pub line_locality: f64,
}

impl AppProfile {
    /// Total pages the application can touch (footprint).
    pub fn footprint_pages(&self) -> u64 {
        match self.pattern {
            Pattern::Stream { pages, .. } => pages,
            Pattern::Random { pages, .. } => pages,
            Pattern::TiledHot {
                hot, stream_pages, ..
            } => hot + stream_pages,
            Pattern::HotCold { hot, cold, .. } => hot + cold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_covers_all_regions() {
        let p = AppProfile {
            name: "X",
            pattern: Pattern::TiledHot {
                hot: 10,
                p_hot: 0.9,
                stream_pages: 90,
                burst: 4,
                group: 8,
            },
            lines_per_instr: 4,
            compute_per_mem: 5,
            line_locality: 0.3,
        };
        assert_eq!(p.footprint_pages(), 100);
        let s = AppProfile {
            pattern: Pattern::Stream {
                pages: 512,
                burst: 16,
                group: 8,
            },
            ..p
        };
        assert_eq!(s.footprint_pages(), 512);
        let r = AppProfile {
            pattern: Pattern::Random {
                pages: 64,
                pages_per_instr: 2,
            },
            ..p
        };
        assert_eq!(r.footprint_pages(), 64);
    }
}
