//! TLB capacity planning: how large must a shared L2 TLB be before
//! hardware thrashing control stops mattering?
//!
//! Sweeps the shared L2 TLB from 64 to 8192 entries for the `CONS_LPS`
//! workload and prints SharedTLB vs MASK weighted speedup at each size —
//! the §7.3 sensitivity study. The crossover (MASK's advantage vanishing
//! once the combined working set fits) is the paper's 8192-entry result.
//!
//! ```text
//! cargo run --release --example tlb_sensitivity
//! ```

use mask_core::prelude::*;

fn main() {
    println!("Shared L2 TLB size sweep, CONS_LPS on 30 cores\n");
    println!(
        "{:>8} {:>12} {:>9} {:>12}",
        "entries", "SharedTLB WS", "MASK WS", "MASK gain"
    );
    for entries in [64usize, 256, 512, 1024, 4096, 8192] {
        let mut gpu = GpuConfig::maxwell();
        gpu.tlb.l2_entries = entries;
        let runner = PairRunner::new(RunOptions {
            max_cycles: 250_000,
            gpu,
            ..Default::default()
        });
        let base = runner
            .run_named("CONS", "LPS", DesignKind::SharedTlb)
            .expect("known");
        let mask = runner
            .run_named("CONS", "LPS", DesignKind::Mask)
            .expect("known");
        println!(
            "{:>8} {:>12.3} {:>9.3} {:>11.1}%",
            entries,
            base.weighted_speedup,
            mask.weighted_speedup,
            (mask.weighted_speedup / base.weighted_speedup - 1.0) * 100.0
        );
    }
}
