//! The default sanitizer: panics on the first violated invariant.

use crate::{
    CycleEvent, FillEvent, IssueEvent, MshrAllocEvent, MshrOutcome, RetireEvent, SimSanitizer,
    TokenEpochEvent, WalkEvent,
};
use std::collections::BTreeMap;

/// The deepest level of a 4-level page walk.
const MAX_WALK_LEVEL: u8 = 4;

/// Independent mirror of one MSHR table.
#[derive(Debug)]
struct TableMirror {
    component: &'static str,
    capacity: usize,
    /// Pending line → waiter count.
    lines: BTreeMap<u64, usize>,
}

/// Enforces the crate-level invariants with immediate panics.
///
/// All state is ordinary `BTreeMap`s so that diagnostics (and any future
/// serialization of sanitizer state) are deterministic.
#[derive(Debug, Default)]
pub struct InvariantSanitizer {
    /// Current accounting session (0 = ambient).
    session: u64,
    /// In-flight requests: (session, domain, id) → issue order.
    in_flight: BTreeMap<(u64, &'static str, u64), u64>,
    /// Total issues observed (gives each in-flight entry an issue order).
    issues: u64,
    /// MSHR mirrors by table id.
    tables: BTreeMap<u64, TableMirror>,
    /// Last cycle observed per (session, component instance).
    cycles: BTreeMap<(u64, u64), u64>,
    /// Active walker slots: (session, slot) → current level.
    walks: BTreeMap<(u64, u32), u8>,
}

impl InvariantSanitizer {
    /// A sanitizer with no recorded state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    #[track_caller]
    fn fail(&self, msg: &str) -> ! {
        // Aborting with a diagnostic is the sanitizer's contract: a violated
        // simulation invariant must never be carried past the violating event.
        panic!("[mask-sanitizer] session {}: {msg}", self.session); // lint: allow(unwrap)
    }

    fn table(&mut self, id: u64) -> &mut TableMirror {
        // Tables created before the sanitizer was installed (or replayed
        // from a clone) self-register on first sight with unbounded
        // capacity; `on_register_table` tightens it.
        self.tables.entry(id).or_insert_with(|| TableMirror {
            component: "mshr",
            capacity: usize::MAX,
            lines: BTreeMap::new(),
        })
    }
}

impl SimSanitizer for InvariantSanitizer {
    fn on_issue(&mut self, ev: IssueEvent) {
        let key = (self.session, ev.domain, ev.id);
        self.issues += 1;
        let order = self.issues;
        if self.in_flight.insert(key, order).is_some() {
            self.fail(&format!(
                "request conservation violated: id {} issued into domain `{}` while already in flight \
                 (duplicate issue)",
                ev.id, ev.domain
            ));
        }
    }

    fn on_retire(&mut self, ev: RetireEvent) {
        let key = (self.session, ev.domain, ev.id);
        if self.in_flight.remove(&key).is_none() {
            self.fail(&format!(
                "request conservation violated: id {} retired from domain `{}` without a matching issue \
                 (lost, duplicated, or foreign retire)",
                ev.id, ev.domain
            ));
        }
    }

    fn on_fill(&mut self, ev: FillEvent) {
        match ev {
            FillEvent::Mshr {
                table,
                line,
                waiters,
                found,
            } => {
                let mirror = self.table(table);
                let (component, mirrored) = (mirror.component, mirror.lines.remove(&line));
                match (found, mirrored) {
                    (true, Some(n)) if n == waiters => {}
                    (true, Some(n)) => self.fail(&format!(
                        "MSHR accounting violated in `{component}` (table {table}): fill of line {line:#x} \
                         released {waiters} waiters but the mirror attached {n}"
                    )),
                    (true, None) => self.fail(&format!(
                        "MSHR accounting violated in `{component}` (table {table}): fill of line {line:#x} \
                         completed an entry the mirror never saw allocated"
                    )),
                    (false, Some(n)) => self.fail(&format!(
                        "MSHR accounting violated in `{component}` (table {table}): line {line:#x} with \
                         {n} waiter(s) outlived its fill (table reported no entry)"
                    )),
                    (false, None) => {}
                }
            }
            FillEvent::Array {
                component,
                len,
                capacity,
            } => {
                if len > capacity {
                    self.fail(&format!(
                        "structure overflow in `{component}`: {len} resident entries exceed capacity \
                         {capacity}"
                    ));
                }
            }
        }
    }

    fn on_cycle(&mut self, ev: CycleEvent) {
        let key = (self.session, ev.instance);
        match self.cycles.get(&key) {
            Some(&last) if ev.now < last => self.fail(&format!(
                "cycle monotonicity violated in `{}`: ticked with cycle {} after observing {}",
                ev.component, ev.now, last
            )),
            _ => {
                self.cycles.insert(key, ev.now);
            }
        }
    }

    fn on_mshr_alloc(&mut self, ev: MshrAllocEvent) {
        let mirror = self.table(ev.table);
        let component = mirror.component;
        let registered = mirror.capacity;
        if registered != usize::MAX && registered != ev.capacity {
            self.fail(&format!(
                "MSHR accounting violated in `{component}` (table {}): allocation reports capacity {} \
                 but the table registered capacity {registered}",
                ev.table, ev.capacity
            ));
        }
        let mirror = self.table(ev.table);
        match ev.outcome {
            MshrOutcome::Primary => {
                if let Some(n) = mirror.lines.insert(ev.line, 1) {
                    self.fail(&format!(
                        "MSHR accounting violated in `{component}` (table {}): Primary allocation for \
                         line {:#x} which already has a mirror entry with {n} waiter(s) — misses were \
                         not merged",
                        ev.table, ev.line
                    ));
                }
                let mirror = self.table(ev.table);
                let occupancy = mirror.lines.len();
                if occupancy > ev.capacity {
                    self.fail(&format!(
                        "MSHR accounting violated in `{component}` (table {}): {occupancy} entries \
                         exceed capacity {}",
                        ev.table, ev.capacity
                    ));
                }
                if occupancy != ev.len {
                    self.fail(&format!(
                        "MSHR accounting violated in `{component}` (table {}): table reports {} entries \
                         but mirror holds {occupancy} (shared or corrupted table state?)",
                        ev.table, ev.len
                    ));
                }
            }
            MshrOutcome::Secondary => {
                let merged = mirror.lines.get_mut(&ev.line).map(|n| *n += 1).is_some();
                if !merged {
                    self.fail(&format!(
                        "MSHR accounting violated in `{component}` (table {}): Secondary merge into \
                         line {:#x} which has no pending entry",
                        ev.table, ev.line
                    ));
                }
            }
            MshrOutcome::Full => {
                let occupancy = mirror.lines.len();
                let pending = mirror.lines.contains_key(&ev.line);
                if pending || occupancy < ev.capacity {
                    self.fail(&format!(
                        "MSHR accounting violated in `{component}` (table {}): Full reported for line \
                         {:#x} but the table is not genuinely full ({occupancy}/{} entries, line \
                         pending: {pending})",
                        ev.table, ev.line, ev.capacity
                    ));
                }
            }
        }
    }

    fn on_walk(&mut self, ev: WalkEvent) {
        match ev {
            WalkEvent::Activate { slot, level } => {
                if level != 1 {
                    self.fail(&format!(
                        "walker lifecycle violated: slot {slot} activated at level {level} (walks start \
                         at level 1)"
                    ));
                }
                if let Some(prev) = self.walks.insert((self.session, slot), level) {
                    self.fail(&format!(
                        "walker lifecycle violated: slot {slot} activated while already walking at \
                         level {prev} (WalkIds are single-use until freed)"
                    ));
                }
            }
            WalkEvent::Advance { slot, level } => {
                let key = (self.session, slot);
                match self.walks.get(&key).copied() {
                    Some(prev) => {
                        if level != prev + 1 || level > MAX_WALK_LEVEL {
                            self.fail(&format!(
                                "walker lifecycle violated: slot {slot} advanced from level {prev} to \
                                 {level} (levels must strictly increase 1→{MAX_WALK_LEVEL})"
                            ));
                        }
                        self.walks.insert(key, level);
                    }
                    None => self.fail(&format!(
                        "walker lifecycle violated: slot {slot} advanced to level {level} while inactive"
                    )),
                }
            }
            WalkEvent::Retire { slot } => {
                if self.walks.remove(&(self.session, slot)).is_none() {
                    self.fail(&format!(
                        "walker lifecycle violated: slot {slot} freed while not active (double free?)"
                    ));
                }
            }
        }
    }

    fn on_token_epoch(&mut self, ev: TokenEpochEvent) {
        if ev.total_warps > 0 && !(1..=ev.total_warps).contains(&ev.tokens) {
            self.fail(&format!(
                "token conservation violated: asid {} granted {} TLB-fill tokens for an epoch with {} \
                 warps (must stay within 1..={})",
                ev.asid, ev.tokens, ev.total_warps, ev.total_warps
            ));
        }
    }

    fn on_check(&mut self, component: &'static str, ok: bool, what: &'static str) {
        if !ok {
            self.fail(&format!(
                "structural invariant violated in `{component}`: {what}"
            ));
        }
    }

    fn on_register_table(&mut self, table: u64, component: &'static str, capacity: usize) {
        self.tables.insert(
            table,
            TableMirror {
                component,
                capacity,
                lines: BTreeMap::new(),
            },
        );
    }

    fn on_session(&mut self, session: u64) {
        self.session = session;
    }

    fn check_quiescent(&self) {
        let leaked: Vec<String> = self
            .in_flight
            .keys()
            .filter(|(s, _, _)| *s == self.session)
            .map(|(_, domain, id)| format!("{domain}:{id}"))
            .collect();
        if !leaked.is_empty() {
            self.fail(&format!(
                "request conservation violated at quiescence: {} request(s) issued but never retired: \
                 [{}]",
                leaked.len(),
                leaked.join(", ")
            ));
        }
        for (id, t) in &self.tables {
            if !t.lines.is_empty() {
                let lines: Vec<String> = t
                    .lines
                    .iter()
                    .map(|(l, n)| format!("{l:#x} ({n} waiter(s))"))
                    .collect();
                self.fail(&format!(
                    "MSHR accounting violated at quiescence: `{}` (table {id}) still holds entries: [{}]",
                    t.component,
                    lines.join(", ")
                ));
            }
        }
        let walking: Vec<String> = self
            .walks
            .iter()
            .filter(|((s, _), _)| *s == self.session)
            .map(|((_, slot), level)| format!("slot {slot} at level {level}"))
            .collect();
        if !walking.is_empty() {
            self.fail(&format!(
                "walker lifecycle violated at quiescence: {} walk(s) never retired: [{}]",
                walking.len(),
                walking.join(", ")
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn san() -> InvariantSanitizer {
        InvariantSanitizer::new()
    }

    #[test]
    fn conservation_happy_path() {
        let mut s = san();
        s.on_issue(IssueEvent {
            domain: "dram",
            id: 7,
        });
        s.on_retire(RetireEvent {
            domain: "dram",
            id: 7,
        });
        s.check_quiescent();
    }

    #[test]
    #[should_panic(expected = "duplicate issue")]
    fn duplicate_issue_panics() {
        let mut s = san();
        s.on_issue(IssueEvent {
            domain: "dram",
            id: 7,
        });
        s.on_issue(IssueEvent {
            domain: "dram",
            id: 7,
        });
    }

    #[test]
    #[should_panic(expected = "without a matching issue")]
    fn duplicate_retire_panics() {
        let mut s = san();
        s.on_issue(IssueEvent {
            domain: "dram",
            id: 7,
        });
        s.on_retire(RetireEvent {
            domain: "dram",
            id: 7,
        });
        s.on_retire(RetireEvent {
            domain: "dram",
            id: 7,
        });
    }

    #[test]
    #[should_panic(expected = "never retired")]
    fn leaked_request_fails_quiescence() {
        let mut s = san();
        s.on_issue(IssueEvent {
            domain: "l2-cache",
            id: 3,
        });
        s.check_quiescent();
    }

    #[test]
    fn sessions_isolate_request_ids() {
        let mut s = san();
        s.on_session(1);
        s.on_issue(IssueEvent {
            domain: "dram",
            id: 7,
        });
        s.on_session(2);
        s.on_issue(IssueEvent {
            domain: "dram",
            id: 7,
        });
        s.on_retire(RetireEvent {
            domain: "dram",
            id: 7,
        });
        s.check_quiescent(); // session 2 is clean; session 1's leak is not ours
    }

    #[test]
    #[should_panic(expected = "not genuinely full")]
    fn premature_full_panics() {
        let mut s = san();
        s.on_register_table(1, "l2-bank", 4);
        s.on_mshr_alloc(MshrAllocEvent {
            table: 1,
            line: 9,
            outcome: MshrOutcome::Full,
            len: 1,
            capacity: 4,
        });
    }

    #[test]
    #[should_panic(expected = "outlived its fill")]
    fn entry_outliving_fill_panics() {
        let mut s = san();
        s.on_register_table(1, "l2-bank", 4);
        s.on_mshr_alloc(MshrAllocEvent {
            table: 1,
            line: 9,
            outcome: MshrOutcome::Primary,
            len: 1,
            capacity: 4,
        });
        // Table claims it had no entry for the line it was asked to fill.
        s.on_fill(FillEvent::Mshr {
            table: 1,
            line: 9,
            waiters: 0,
            found: false,
        });
    }

    #[test]
    fn mshr_merge_and_fill_roundtrip() {
        let mut s = san();
        s.on_register_table(1, "l2-bank", 4);
        s.on_mshr_alloc(MshrAllocEvent {
            table: 1,
            line: 9,
            outcome: MshrOutcome::Primary,
            len: 1,
            capacity: 4,
        });
        s.on_mshr_alloc(MshrAllocEvent {
            table: 1,
            line: 9,
            outcome: MshrOutcome::Secondary,
            len: 1,
            capacity: 4,
        });
        s.on_fill(FillEvent::Mshr {
            table: 1,
            line: 9,
            waiters: 2,
            found: true,
        });
        s.check_quiescent();
    }

    #[test]
    #[should_panic(expected = "single-use")]
    fn walker_slot_reuse_panics() {
        let mut s = san();
        s.on_walk(WalkEvent::Activate { slot: 3, level: 1 });
        s.on_walk(WalkEvent::Activate { slot: 3, level: 1 });
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn walker_double_free_panics() {
        let mut s = san();
        s.on_walk(WalkEvent::Activate { slot: 3, level: 1 });
        s.on_walk(WalkEvent::Retire { slot: 3 });
        s.on_walk(WalkEvent::Retire { slot: 3 });
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn walker_level_skip_panics() {
        let mut s = san();
        s.on_walk(WalkEvent::Activate { slot: 3, level: 1 });
        s.on_walk(WalkEvent::Advance { slot: 3, level: 3 });
    }

    #[test]
    fn walker_full_walk_roundtrip() {
        let mut s = san();
        s.on_walk(WalkEvent::Activate { slot: 0, level: 1 });
        for level in 2..=4 {
            s.on_walk(WalkEvent::Advance { slot: 0, level });
        }
        s.on_walk(WalkEvent::Retire { slot: 0 });
        s.check_quiescent();
    }

    #[test]
    #[should_panic(expected = "ticked with cycle")]
    fn backwards_clock_panics() {
        let mut s = san();
        s.on_cycle(CycleEvent {
            instance: 1,
            component: "dram",
            now: 10,
        });
        s.on_cycle(CycleEvent {
            instance: 1,
            component: "dram",
            now: 9,
        });
    }

    #[test]
    fn distinct_instances_have_independent_clocks() {
        let mut s = san();
        s.on_cycle(CycleEvent {
            instance: 1,
            component: "dram",
            now: 10,
        });
        s.on_cycle(CycleEvent {
            instance: 2,
            component: "dram",
            now: 0,
        });
    }

    #[test]
    #[should_panic(expected = "token conservation")]
    fn token_overgrant_panics() {
        let mut s = san();
        s.on_token_epoch(TokenEpochEvent {
            asid: 0,
            tokens: 65,
            total_warps: 64,
        });
    }

    #[test]
    #[should_panic(expected = "structure overflow")]
    fn array_overflow_panics() {
        let mut s = san();
        s.on_fill(FillEvent::Array {
            component: "l1-tlb",
            len: 65,
            capacity: 64,
        });
    }
}
