//! Bit-reproducibility across the whole stack.

use mask_core::prelude::*;

fn run(seed: u64, design: DesignKind) -> SimStats {
    let mut gpu = GpuConfig::maxwell();
    gpu.warps_per_core = 16;
    let runner = PairRunner::new(RunOptions {
        n_cores: 4,
        max_cycles: 8_000,
        seed,
        warmup_cycles: 2_000,
        gpu,
        jobs: JobOptions::serial(),
    });
    runner.run_apps(
        design,
        &[
            AppSpec {
                profile: app_by_name("MUM").expect("known"),
                n_cores: 2,
            },
            AppSpec {
                profile: app_by_name("HISTO").expect("known"),
                n_cores: 2,
            },
        ],
    )
}

#[test]
fn identical_seeds_identical_stats() {
    for design in [DesignKind::SharedTlb, DesignKind::Mask, DesignKind::PwCache] {
        let a = run(42, design);
        let b = run(42, design);
        assert_eq!(a, b, "{design} not reproducible");
    }
}

#[test]
fn different_seeds_different_traces() {
    let a = run(1, DesignKind::SharedTlb);
    let b = run(2, DesignKind::SharedTlb);
    assert_ne!(
        a.apps[0].instructions, b.apps[0].instructions,
        "different seeds should perturb execution"
    );
}
