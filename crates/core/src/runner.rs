//! High-level simulation runners.
//!
//! [`PairRunner`] reproduces the paper's experimental procedure (§6): each
//! multiprogrammed workload runs once *shared* (both apps concurrently on a
//! partitioned set of cores) and once *alone* per application ("`IPCalone` is
//! the IPC of an application that runs on the same number of GPU cores, but
//! does not share GPU resources with any other application"). Alone runs
//! are memoized per `(design, app, cores)` — they are design-dependent but
//! pair-independent.

use crate::metrics::{unfairness, weighted_speedup};
use mask_common::config::{DesignKind, GpuConfig, SimConfig};
use mask_common::stats::SimStats;
use mask_gpu::{AppSpec, GpuSim};
use mask_workloads::{app_by_name, AppProfile};
use std::collections::BTreeMap;

/// Options shared by all runs of one experiment.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Total GPU cores (Table 1: 30).
    pub n_cores: usize,
    /// Cycles per run.
    pub max_cycles: u64,
    /// Base PRNG seed.
    pub seed: u64,
    /// Warm-up cycles excluded from measurement (clamped to at most half
    /// of `max_cycles`). MASK's epoch mechanisms engage after the first
    /// 100K-cycle epoch, so the default warm-up is one epoch.
    pub warmup_cycles: u64,
    /// Machine template (its `n_cores` is overridden per run).
    pub gpu: GpuConfig,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            n_cores: 30,
            max_cycles: mask_common::config::default_max_cycles(),
            seed: 0xA55A_2018,
            warmup_cycles: 100_000,
            gpu: GpuConfig::maxwell(),
        }
    }
}

impl RunOptions {
    /// Builds a [`SimConfig`] for `design` with `n_cores` cores.
    fn sim_config(&self, design: DesignKind, n_cores: usize) -> SimConfig {
        let mut gpu = self.gpu.clone();
        gpu.n_cores = n_cores;
        SimConfig {
            gpu,
            design,
            max_cycles: self.max_cycles,
            seed: self.seed,
        }
    }
}

/// Result of one shared pair run plus its alone baselines.
#[derive(Clone, Debug)]
pub struct PairOutcome {
    /// Workload name (`A_B`).
    pub name: String,
    /// The design simulated.
    pub design: DesignKind,
    /// Per-app IPC in the shared run.
    pub shared_ipc: Vec<f64>,
    /// Per-app IPC running alone on the same core counts.
    pub alone_ipc: Vec<f64>,
    /// Weighted speedup (§6).
    pub weighted_speedup: f64,
    /// Aggregate IPC of the shared run (§7.1 "IPC throughput").
    pub ipc_throughput: f64,
    /// Maximum slowdown (§6).
    pub unfairness: f64,
    /// Full statistics of the shared run.
    pub stats: SimStats,
}

/// Runs single apps, pairs, and n-app mixes, memoizing alone baselines.
#[derive(Clone, Debug)]
pub struct PairRunner {
    opts: RunOptions,
    alone: BTreeMap<(DesignKind, &'static str, usize), f64>,
}

impl PairRunner {
    /// Creates a runner.
    pub fn new(opts: RunOptions) -> Self {
        PairRunner {
            opts,
            alone: BTreeMap::new(),
        }
    }

    /// The options in use.
    pub fn options(&self) -> &RunOptions {
        &self.opts
    }

    /// Runs an arbitrary placement and returns its statistics, measured
    /// after the warm-up window.
    pub fn run_apps(&self, design: DesignKind, specs: &[AppSpec]) -> SimStats {
        let total: usize = specs.iter().map(|s| s.n_cores).sum();
        let cfg = self.opts.sim_config(design, total);
        let warmup = self.opts.warmup_cycles.min(self.opts.max_cycles / 2);
        let mut sim = GpuSim::new(&cfg, specs);
        sim.run(warmup);
        sim.reset_stats();
        sim.run(self.opts.max_cycles - warmup);
        sim.stats().clone()
    }

    /// IPC of `profile` running alone on `cores` cores under `design`
    /// (memoized).
    pub fn alone_ipc(
        &mut self,
        design: DesignKind,
        profile: &'static AppProfile,
        cores: usize,
    ) -> f64 {
        if let Some(&ipc) = self.alone.get(&(design, profile.name, cores)) {
            return ipc;
        }
        let stats = self.run_apps(
            design,
            &[AppSpec {
                profile,
                n_cores: cores,
            }],
        );
        let ipc = stats.apps[0].ipc();
        self.alone.insert((design, profile.name, cores), ipc);
        ipc
    }

    /// Runs a two-application workload with an even core split.
    pub fn run_pair(
        &mut self,
        a: &'static AppProfile,
        b: &'static AppProfile,
        design: DesignKind,
    ) -> PairOutcome {
        let ca = self.opts.n_cores / 2;
        let cb = self.opts.n_cores - ca;
        self.run_pair_split(a, b, design, ca, cb)
    }

    /// Runs a two-application workload with an explicit core split.
    pub fn run_pair_split(
        &mut self,
        a: &'static AppProfile,
        b: &'static AppProfile,
        design: DesignKind,
        cores_a: usize,
        cores_b: usize,
    ) -> PairOutcome {
        let stats = self.run_apps(
            design,
            &[
                AppSpec {
                    profile: a,
                    n_cores: cores_a,
                },
                AppSpec {
                    profile: b,
                    n_cores: cores_b,
                },
            ],
        );
        let shared_ipc: Vec<f64> = stats.apps.iter().map(mask_common::AppStats::ipc).collect();
        let alone_ipc = vec![
            self.alone_ipc(design, a, cores_a),
            self.alone_ipc(design, b, cores_b),
        ];
        PairOutcome {
            name: format!("{}_{}", a.name, b.name),
            design,
            weighted_speedup: weighted_speedup(&shared_ipc, &alone_ipc),
            ipc_throughput: shared_ipc.iter().sum(),
            unfairness: unfairness(&shared_ipc, &alone_ipc),
            shared_ipc,
            alone_ipc,
            stats,
        }
    }

    /// Runs a pair looked up by benchmark names.
    pub fn run_named(&mut self, a: &str, b: &str, design: DesignKind) -> Option<PairOutcome> {
        Some(self.run_pair(app_by_name(a)?, app_by_name(b)?, design))
    }

    /// Finds the best core split for a pair by probing candidate splits
    /// with short runs, then runs the full-length simulation at the winner.
    ///
    /// This implements the paper's oracle scheduler (§6): "the scheduler
    /// partitions the cores according to the best weighted speedup for that
    /// pair found by an exhaustive search over all possible static core
    /// partitionings". We bound the search to `candidates` splits (cores
    /// assigned to the first app) probed at `probe_cycles` each; pass every
    /// value in `1..n_cores` for the paper's exhaustive variant.
    pub fn run_pair_oracle(
        &mut self,
        a: &'static AppProfile,
        b: &'static AppProfile,
        design: DesignKind,
        candidates: &[usize],
        probe_cycles: u64,
    ) -> PairOutcome {
        assert!(!candidates.is_empty(), "need at least one candidate split");
        let mut probe_runner = PairRunner::new(RunOptions {
            max_cycles: probe_cycles.max(2),
            warmup_cycles: probe_cycles / 4,
            ..self.opts.clone()
        });
        let mut best = (f64::MIN, self.opts.n_cores / 2);
        for &ca in candidates {
            if ca == 0 || ca >= self.opts.n_cores {
                continue;
            }
            let o = probe_runner.run_pair_split(a, b, design, ca, self.opts.n_cores - ca);
            if o.weighted_speedup > best.0 {
                best = (o.weighted_speedup, ca);
            }
        }
        self.run_pair_split(a, b, design, best.1, self.opts.n_cores - best.1)
    }

    /// Runs `n` applications with an even core split, returning the shared
    /// stats plus per-app weighted-speedup inputs.
    pub fn run_multi(
        &mut self,
        profiles: &[&'static AppProfile],
        design: DesignKind,
    ) -> PairOutcome {
        assert!(!profiles.is_empty(), "need at least one application");
        let n = profiles.len();
        let base = self.opts.n_cores / n;
        let mut specs = Vec::with_capacity(n);
        for (i, p) in profiles.iter().enumerate() {
            let cores = if i == n - 1 {
                self.opts.n_cores - base * (n - 1)
            } else {
                base
            };
            specs.push(AppSpec {
                profile: p,
                n_cores: cores,
            });
        }
        let stats = self.run_apps(design, &specs);
        let shared_ipc: Vec<f64> = stats.apps.iter().map(mask_common::AppStats::ipc).collect();
        let alone_ipc: Vec<f64> = specs
            .iter()
            .map(|s| self.alone_ipc(design, s.profile, s.n_cores))
            .collect();
        PairOutcome {
            name: profiles
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>()
                .join("_"),
            design,
            weighted_speedup: weighted_speedup(&shared_ipc, &alone_ipc),
            ipc_throughput: shared_ipc.iter().sum(),
            unfairness: unfairness(&shared_ipc, &alone_ipc),
            shared_ipc,
            alone_ipc,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts() -> RunOptions {
        let mut gpu = GpuConfig::maxwell();
        gpu.warps_per_core = 16;
        RunOptions {
            n_cores: 4,
            max_cycles: 6_000,
            seed: 1,
            warmup_cycles: 1_000,
            gpu,
        }
    }

    #[test]
    fn pair_outcome_has_consistent_metrics() {
        let mut r = PairRunner::new(small_opts());
        let o = r
            .run_named("HISTO", "GUP", DesignKind::SharedTlb)
            .expect("known apps");
        assert_eq!(o.shared_ipc.len(), 2);
        assert_eq!(o.name, "HISTO_GUP");
        assert!(o.weighted_speedup > 0.0 && o.weighted_speedup <= 2.5);
        assert!(o.unfairness >= 1.0 - 1e-9 || o.unfairness > 0.0);
        assert!((o.ipc_throughput - o.shared_ipc.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn alone_runs_are_memoized() {
        let mut r = PairRunner::new(small_opts());
        let p = app_by_name("GUP").expect("exists");
        let a1 = r.alone_ipc(DesignKind::SharedTlb, p, 2);
        let a2 = r.alone_ipc(DesignKind::SharedTlb, p, 2);
        assert_eq!(a1, a2);
        assert_eq!(r.alone.len(), 1);
    }

    #[test]
    fn unknown_app_yields_none() {
        let mut r = PairRunner::new(small_opts());
        assert!(r.run_named("NOPE", "GUP", DesignKind::Ideal).is_none());
    }

    #[test]
    fn multi_run_splits_cores() {
        let mut r = PairRunner::new(small_opts());
        let apps = ["GUP", "HS", "BP"].map(|n| app_by_name(n).expect("known"));
        let o = r.run_multi(&apps, DesignKind::SharedTlb);
        assert_eq!(o.shared_ipc.len(), 3);
        assert_eq!(o.name, "GUP_HS_BP");
        // Cores split 1/1/2 over 4 cores: all apps make progress.
        assert!(o.shared_ipc.iter().all(|&i| i > 0.0));
    }

    #[test]
    fn oracle_split_is_at_least_as_good_as_even() {
        let mut r = PairRunner::new(small_opts());
        let a = app_by_name("MUM").expect("known");
        let b = app_by_name("LPS").expect("known");
        let even = r.run_pair(a, b, DesignKind::SharedTlb);
        let oracle = r.run_pair_oracle(a, b, DesignKind::SharedTlb, &[1, 2, 3], 3_000);
        // The oracle probes include the even split, so modulo probe noise
        // it should not be substantially worse.
        assert!(
            oracle.weighted_speedup >= even.weighted_speedup * 0.9,
            "oracle ({:.3}) much worse than even split ({:.3})",
            oracle.weighted_speedup,
            even.weighted_speedup
        );
    }

    #[test]
    fn ideal_weighted_speedup_beats_shared_tlb() {
        // MUM scatters 4 pages per memory instruction, so translation
        // pressure saturates the walker even on the tiny test GPU.
        let mut r = PairRunner::new(RunOptions {
            max_cycles: 12_000,
            ..small_opts()
        });
        let base = r
            .run_named("MUM", "RED", DesignKind::SharedTlb)
            .expect("known");
        let ideal = r.run_named("MUM", "RED", DesignKind::Ideal).expect("known");
        assert!(
            ideal.ipc_throughput > base.ipc_throughput,
            "ideal {:.3} vs base {:.3}",
            ideal.ipc_throughput,
            base.ipc_throughput
        );
    }
}
