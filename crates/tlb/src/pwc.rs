//! The shared page-walk cache of the `PWCache` baseline variant (Fig. 2a).
//!
//! Power et al.'s design \[106\] places a shared page-walk cache after the L1
//! TLBs: page-walk accesses probe it before going to the shared L2 cache
//! and main memory. We model it as a cache of *PTE lines* — an 8 KB, 16-way
//! structure (Table 1) holding 128 B lines of page-table nodes, so upper
//! walk levels (whose lines are shared by many pages) hit, while leaf lines
//! mostly miss.

use crate::assoc::AssocArray;
use mask_common::addr::{LineAddr, LINE_SIZE};
use mask_common::stats::HitStats;

/// A shared cache over page-table-node lines.
#[derive(Clone, Debug)]
pub struct PageWalkCache {
    lines: AssocArray<LineAddr, ()>,
    stats: HitStats,
}

impl PageWalkCache {
    /// Creates a page-walk cache of `bytes` capacity and `assoc` ways
    /// (8 KB, 16-way per Table 1).
    pub fn new(bytes: usize, assoc: usize) -> Self {
        let entries = (bytes as u64 / LINE_SIZE).max(1) as usize;
        PageWalkCache {
            lines: AssocArray::new(entries, assoc),
            stats: HitStats::default(),
        }
    }

    /// Probes for a PTE line; fills on miss (walk data is always cached —
    /// the PWC is dedicated to translation data so there is no pollution
    /// concern).
    pub fn access(&mut self, line: LineAddr) -> bool {
        let hit = self.lines.probe(&line).is_some();
        self.stats.record(hit);
        if !hit {
            self.lines.fill(line, ());
        }
        hit
    }

    /// Lifetime hit statistics.
    pub fn stats(&self) -> HitStats {
        self.stats
    }

    /// Zeroes the hit statistics (measurement-window reset).
    pub fn reset_stats(&mut self) {
        self.stats = HitStats::default();
    }

    /// Number of line slots.
    pub fn capacity_lines(&self) -> usize {
        self.lines.capacity()
    }

    /// Flushes the cache (page-table update).
    pub fn flush(&mut self) {
        self.lines.flush();
    }
}

impl mask_common::snapshot::Snapshot for PageWalkCache {
    fn snapshot(&self, w: &mut mask_common::snapshot::SnapshotWriter) {
        self.lines.snapshot(w);
        self.stats.snapshot(w);
    }

    fn restore(
        &mut self,
        r: &mut mask_common::snapshot::SnapshotReader<'_>,
    ) -> Result<(), mask_common::snapshot::SnapshotError> {
        self.lines.restore(r)?;
        self.stats.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_from_bytes() {
        let pwc = PageWalkCache::new(8 * 1024, 16);
        assert_eq!(pwc.capacity_lines(), 64); // 8 KB / 128 B
    }

    #[test]
    fn repeated_line_hits() {
        let mut pwc = PageWalkCache::new(8 * 1024, 16);
        assert!(!pwc.access(LineAddr(42)));
        assert!(pwc.access(LineAddr(42)));
        assert_eq!(pwc.stats().accesses, 2);
        assert_eq!(pwc.stats().hits, 1);
    }

    #[test]
    fn streaming_unique_lines_always_misses() {
        let mut pwc = PageWalkCache::new(8 * 1024, 16);
        for i in 0..1000u64 {
            assert!(!pwc.access(LineAddr(i * 17)));
        }
        assert_eq!(pwc.stats().hits, 0);
    }

    #[test]
    fn flush_empties_cache() {
        let mut pwc = PageWalkCache::new(1024, 8);
        pwc.access(LineAddr(1));
        pwc.flush();
        assert!(!pwc.access(LineAddr(1)), "flushed line must miss");
    }
}
