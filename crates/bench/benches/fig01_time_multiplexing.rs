//! Figure 1: time-multiplexing overhead vs concurrent process count.

use mask_bench::{banner, emit, options};
use mask_core::experiments::timemux;

fn main() {
    let opts = options(35);
    banner("Figure 1: time multiplexing", &opts);
    let t0 = std::time::Instant::now();
    emit(&timemux::run(&opts));
    println!("[fig01 done in {:?}]", t0.elapsed());
}
