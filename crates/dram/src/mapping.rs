//! Physical-address to (channel, bank, row, column) mapping.
//!
//! Bit layout (from least significant): line offset (7 b) | column within
//! row | channel | bank | row. Mapping the channel/bank bits *above* the
//! column bits keeps every line of a 2 KB row in the same bank, so
//! streaming accesses produce row hits; the row bits are XOR-folded into
//! the bank index to spread pathological strides across banks.

use mask_common::addr::LineAddr;
use mask_common::config::DramConfig;
use mask_common::ids::Asid;

/// A decoded DRAM coordinate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Decoded {
    /// Memory channel index.
    pub channel: usize,
    /// Bank index within the channel.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
}

/// Restricts address spaces to channel subsets (the `Static` baseline
/// partitions "memory channels ... equally across applications", §7).
#[derive(Clone, Debug, Default)]
pub struct ChannelPartition {
    /// `ranges[asid] = (first_channel, n_channels)`; empty = no partition.
    ranges: Vec<(usize, usize)>,
}

impl ChannelPartition {
    /// No partitioning: all apps use all channels.
    pub fn shared() -> Self {
        ChannelPartition { ranges: Vec::new() }
    }

    /// Splits `channels` equally among `n_apps`.
    ///
    /// # Panics
    ///
    /// Panics if `n_apps` is 0 or exceeds the channel count.
    pub fn split(channels: usize, n_apps: usize) -> Self {
        assert!(
            n_apps > 0 && n_apps <= channels,
            "cannot split {channels} channels {n_apps} ways"
        );
        let per = channels / n_apps;
        let ranges = (0..n_apps)
            .map(|i| {
                let start = i * per;
                let n = if i == n_apps - 1 {
                    channels - start
                } else {
                    per
                };
                (start, n)
            })
            .collect();
        ChannelPartition { ranges }
    }

    /// Maps a nominal channel index to the app's allowed subset.
    pub fn restrict(&self, nominal: usize, asid: Asid) -> usize {
        match self.ranges.get(asid.index()) {
            Some(&(start, n)) if n > 0 => start + nominal % n,
            _ => nominal,
        }
    }
}

/// Decodes `line` for the given geometry, honoring the partition.
pub fn decode(line: LineAddr, cfg: &DramConfig, part: &ChannelPartition, asid: Asid) -> Decoded {
    let lines_per_row = 1u64 << (cfg.row_size_log2 - mask_common::addr::LINE_SIZE_LOG2);
    let col_bits = lines_per_row.trailing_zeros();
    let after_col = line.0 >> col_bits;
    let nominal_channel = (after_col % cfg.channels as u64) as usize;
    let after_chan = after_col / cfg.channels as u64;
    let bank_raw = after_chan % cfg.banks_per_channel as u64;
    let row = after_chan / cfg.banks_per_channel as u64;
    // XOR-fold the row into the bank index to spread strided streams.
    let bank = ((bank_raw ^ (row & (cfg.banks_per_channel as u64 - 1)))
        % cfg.banks_per_channel as u64) as usize;
    Decoded {
        channel: part.restrict(nominal_channel, asid),
        bank,
        row,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mask_common::config::DramConfig;

    fn cfg() -> DramConfig {
        DramConfig::default()
    }

    #[test]
    fn lines_within_a_row_share_coordinates() {
        let cfg = cfg();
        let part = ChannelPartition::shared();
        // 2 KB row / 128 B line = 16 lines per row.
        let base = 0x123u64 * 16;
        let d0 = decode(LineAddr(base), &cfg, &part, Asid::new(0));
        for i in 1..16 {
            let d = decode(LineAddr(base + i), &cfg, &part, Asid::new(0));
            assert_eq!(d, d0, "line {i} of a row must stay in one bank/row");
        }
        // The next row moves somewhere else.
        let d16 = decode(LineAddr(base + 16), &cfg, &part, Asid::new(0));
        assert_ne!(d16, d0);
    }

    #[test]
    fn streams_cover_all_channels() {
        let cfg = cfg();
        let part = ChannelPartition::shared();
        let mut seen = std::collections::HashSet::new();
        for i in 0..(16 * 64) {
            seen.insert(decode(LineAddr(i), &cfg, &part, Asid::new(0)).channel);
        }
        assert_eq!(seen.len(), cfg.channels);
    }

    #[test]
    fn partition_confines_apps_to_their_channels() {
        let cfg = cfg();
        let part = ChannelPartition::split(8, 2);
        for i in 0..4096u64 {
            let d0 = decode(LineAddr(i * 17), &cfg, &part, Asid::new(0));
            let d1 = decode(LineAddr(i * 17), &cfg, &part, Asid::new(1));
            assert!(d0.channel < 4, "app 0 confined to channels 0-3");
            assert!(
                (4..8).contains(&d1.channel),
                "app 1 confined to channels 4-7"
            );
        }
    }

    #[test]
    fn uneven_split_gives_remainder_to_last_app() {
        let part = ChannelPartition::split(8, 3);
        // Apps get 2, 2, and 4 channels.
        assert_eq!(part.restrict(0, Asid::new(0)), 0);
        assert_eq!(part.restrict(5, Asid::new(0)), 1);
        assert_eq!(part.restrict(0, Asid::new(2)), 4);
        assert_eq!(part.restrict(3, Asid::new(2)), 7);
    }

    #[test]
    fn banks_spread_strided_rows() {
        let cfg = cfg();
        let part = ChannelPartition::shared();
        let mut banks = std::collections::HashSet::new();
        // Stride of exactly one row within one channel.
        for r in 0..64u64 {
            let line = r * 16 * cfg.channels as u64;
            banks.insert(decode(LineAddr(line), &cfg, &part, Asid::new(0)).bank);
        }
        assert!(
            banks.len() >= 4,
            "row-strided stream should touch many banks"
        );
    }
}
