//! Walk inspector: profile one application's address-translation pressure.
//!
//! Runs a single benchmark alone on the SharedTLB baseline and prints the
//! full translation profile the paper's §4 analysis is built on: TLB miss
//! rates, concurrent page walks (Fig. 5), warps stalled per miss (Fig. 6),
//! per-walk-level L2 cache hit rates (§4.3), and DRAM behaviour by request
//! class (Figs. 8–9).
//!
//! ```text
//! cargo run --release --example walk_inspector -- SCAN
//! ```

use mask_core::prelude::*;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "CONS".to_string());
    let Some(profile) = app_by_name(&name) else {
        eprintln!("unknown benchmark {name:?}; available:");
        for a in all_apps() {
            eprint!(" {}", a.name);
        }
        eprintln!();
        std::process::exit(1);
    };
    let runner = PairRunner::new(RunOptions {
        max_cycles: 250_000,
        ..Default::default()
    });
    let stats = runner.run_apps(
        DesignKind::SharedTlb,
        &[AppSpec {
            profile,
            n_cores: 30,
        }],
    );
    let a = &stats.apps[0];

    println!(
        "=== {} alone on 30 cores (SharedTLB baseline) ===\n",
        profile.name
    );
    println!("IPC                          {:>10.3}", a.ipc());
    println!("memory instructions          {:>10}", a.mem_instructions);
    println!(
        "L1 TLB miss rate             {:>10.3}",
        a.l1_tlb.miss_rate()
    );
    println!(
        "L2 TLB miss rate             {:>10.3}",
        a.l2_tlb.miss_rate()
    );
    println!("page walks completed         {:>10}", a.walks_completed);
    println!(
        "avg page-walk latency        {:>10.0} cycles",
        a.avg_walk_latency()
    );
    println!(
        "avg concurrent walks (Fig.5) {:>10.1}",
        a.avg_concurrent_walks()
    );
    println!(
        "max concurrent walks         {:>10}",
        a.walk_concurrency_max
    );
    println!(
        "warps stalled/miss (Fig.6)   {:>10.1}",
        a.avg_warps_stalled_per_miss()
    );
    println!("max warps stalled on a miss  {:>10}", a.stalled_warps_max);
    println!();
    println!(
        "L2 cache hit rate, data      {:>10.3}",
        a.l2_data.hit_rate()
    );
    for level in 1..=4u8 {
        let l = mask_common::req::WalkLevel::new(level);
        println!(
            "L2 cache hit rate, walk L{}   {:>10.3}  ({} probes)",
            level,
            a.l2_translation[l.index()].hit_rate(),
            a.l2_translation[l.index()].accesses
        );
    }
    println!();
    println!(
        "DRAM latency: data {:.0} cy / translation {:.0} cy;  row-hit rates {:.2} / {:.2}",
        a.dram_data.avg_latency(),
        a.dram_translation.avg_latency(),
        a.dram_data.row_hit_rate(),
        a.dram_translation.row_hit_rate()
    );
    println!(
        "DRAM bandwidth share: translation {:.1}% of utilized",
        stats.translation_bandwidth_share() * 100.0
    );
}
