//! Admission control and deficit-round-robin fair queueing.
//!
//! MASK's TLB-Fill Tokens ration a shared TLB across address spaces so no
//! application can starve the others (§5.1 of the paper); `maskd` applies
//! the same discipline one level up, rationing the shared
//! [`JobPool`](mask_core::JobPool) across tenants. The mechanism is
//! classic deficit round robin: tenants sit in a rotation, each visit
//! grants the tenant a `quantum` of simulated cycles, and the tenant
//! dequeues jobs while its accumulated deficit covers their cost (a job's
//! cost is its `max_cycles` — the engine's unit of work). Heavy jobs
//! simply take more visits to afford, so a tenant submitting
//! million-cycle sweeps cannot crowd out one submitting smoke tests.
//!
//! Admission is bounded twice: a global queue depth (overflow answers
//! `503`, try again later) and a per-tenant depth (overflow answers
//! `429`, *you* are the noisy one). Dispatch additionally respects a
//! per-tenant in-flight cap so one tenant cannot occupy every pool worker
//! at once even when alone.
//!
//! The queue is plain data — no clocks, no randomness, no threads. Given
//! the same admission sequence it produces the same dispatch order, which
//! is what lets `tests/daemon_e2e.rs` assert fair-share ordering exactly.

use std::collections::{BTreeMap, VecDeque};

/// Why an admission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rejection {
    /// The global queue is full → `503 Service Unavailable`.
    QueueFull,
    /// This tenant's queue is full → `429 Too Many Requests`.
    TenantFull,
}

/// One queued unit of work: an opaque job id plus its cost in simulated
/// cycles (the job's `max_cycles`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueuedJob {
    /// Daemon-assigned job id.
    pub id: u64,
    /// DRR cost: `max_cycles`.
    pub cost: u64,
}

#[derive(Default)]
struct TenantState {
    queue: VecDeque<QueuedJob>,
    deficit: u64,
    inflight: usize,
}

/// Deficit-round-robin queue across tenant ids. See the module docs.
pub struct FairQueue {
    tenants: BTreeMap<String, TenantState>,
    /// Round-robin rotation of tenants with queued work.
    rotation: VecDeque<String>,
    queued: usize,
    queue_depth: usize,
    tenant_depth: usize,
    quantum: u64,
}

impl FairQueue {
    /// A queue admitting at most `queue_depth` jobs globally and
    /// `tenant_depth` per tenant, granting `quantum` cycles per visit.
    #[must_use]
    pub fn new(queue_depth: usize, tenant_depth: usize, quantum: u64) -> Self {
        FairQueue {
            tenants: BTreeMap::new(),
            rotation: VecDeque::new(),
            queued: 0,
            queue_depth: queue_depth.max(1),
            tenant_depth: tenant_depth.max(1),
            quantum: quantum.max(1),
        }
    }

    /// Jobs currently queued across all tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queued
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Admits one job for `tenant`, or reports the backpressure class the
    /// submitter should see.
    pub fn admit(&mut self, tenant: &str, job: QueuedJob) -> Result<(), Rejection> {
        if self.queued >= self.queue_depth {
            return Err(Rejection::QueueFull);
        }
        let state = self.tenants.entry(tenant.to_owned()).or_default();
        if state.queue.len() >= self.tenant_depth {
            return Err(Rejection::TenantFull);
        }
        let was_idle = state.queue.is_empty();
        state.queue.push_back(job);
        self.queued += 1;
        if was_idle {
            self.rotation.push_back(tenant.to_owned());
        }
        Ok(())
    }

    /// Selects up to `max_jobs` jobs for the next dispatch batch, in DRR
    /// order, honoring the per-tenant in-flight cap. Selected jobs are
    /// counted as in flight until [`FairQueue::job_done`].
    pub fn select_batch(&mut self, max_jobs: usize, inflight_cap: usize) -> Vec<(String, u64)> {
        let mut batch = Vec::new();
        if max_jobs == 0 {
            return batch;
        }
        // One full sweep of the rotation per call: every tenant with work
        // gets at most one quantum grant, and a tenant that cannot afford
        // its head job (or is at its in-flight cap) keeps its deficit for
        // the next sweep.
        for _ in 0..self.rotation.len() {
            if batch.len() >= max_jobs {
                break;
            }
            let Some(tenant) = self.rotation.pop_front() else {
                break;
            };
            let Some(state) = self.tenants.get_mut(&tenant) else {
                continue;
            };
            state.deficit = state.deficit.saturating_add(self.quantum);
            while batch.len() < max_jobs
                && state.inflight < inflight_cap.max(1)
                && state
                    .queue
                    .front()
                    .is_some_and(|job| job.cost <= state.deficit)
            {
                let job = state.queue.pop_front().expect("front() was Some");
                state.deficit -= job.cost;
                state.inflight += 1;
                self.queued -= 1;
                batch.push((tenant.clone(), job.id));
            }
            if state.queue.is_empty() {
                // Standard DRR: an emptied tenant forfeits its deficit,
                // so idling never banks future bandwidth.
                state.deficit = 0;
            } else {
                self.rotation.push_back(tenant);
            }
        }
        batch
    }

    /// Marks one of `tenant`'s in-flight jobs complete.
    pub fn job_done(&mut self, tenant: &str) {
        if let Some(state) = self.tenants.get_mut(tenant) {
            state.inflight = state.inflight.saturating_sub(1);
        }
    }

    /// Jobs `tenant` currently has queued (0 for unknown tenants).
    #[must_use]
    pub fn tenant_depth(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).map_or(0, |s| s.queue.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, cost: u64) -> QueuedJob {
        QueuedJob { id, cost }
    }

    #[test]
    fn admission_enforces_both_depths() {
        let mut q = FairQueue::new(3, 2, 100);
        assert_eq!(q.admit("a", job(1, 10)), Ok(()));
        assert_eq!(q.admit("a", job(2, 10)), Ok(()));
        assert_eq!(q.admit("a", job(3, 10)), Err(Rejection::TenantFull));
        assert_eq!(q.admit("b", job(4, 10)), Ok(()));
        assert_eq!(q.admit("c", job(5, 10)), Err(Rejection::QueueFull));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn round_robin_across_tenants() {
        let mut q = FairQueue::new(64, 8, 100);
        for i in 0..3u64 {
            q.admit("a", job(i, 100)).expect("admit");
            q.admit("b", job(10 + i, 100)).expect("admit");
            q.admit("c", job(20 + i, 100)).expect("admit");
        }
        // One sweep with room for three: one job per tenant, admission
        // order of tenants preserved.
        let batch = q.select_batch(3, 8);
        let tenants: Vec<&str> = batch.iter().map(|(t, _)| t.as_str()).collect();
        assert_eq!(tenants, ["a", "b", "c"]);
        assert_eq!(
            batch.iter().map(|(_, id)| *id).collect::<Vec<_>>(),
            [0, 10, 20]
        );
    }

    #[test]
    fn heavy_jobs_need_more_visits() {
        let mut q = FairQueue::new(64, 8, 100);
        q.admit("heavy", job(1, 250)).expect("admit");
        q.admit("light", job(2, 50)).expect("admit");
        q.admit("light", job(3, 50)).expect("admit");
        // Sweep 1: heavy can't afford 250 yet (deficit 100); light runs
        // both its cheap jobs (deficit 100 covers 50 + 50).
        assert_eq!(
            q.select_batch(8, 8),
            [("light".to_owned(), 2), ("light".to_owned(), 3)]
        );
        // Sweeps 2-3: heavy accumulates 200, then 300 — affordable.
        assert_eq!(q.select_batch(8, 8), []);
        assert_eq!(q.select_batch(8, 8), [("heavy".to_owned(), 1)]);
    }

    #[test]
    fn inflight_cap_limits_one_tenant() {
        let mut q = FairQueue::new(64, 8, 1000);
        for i in 0..4u64 {
            q.admit("a", job(i, 10)).expect("admit");
        }
        let batch = q.select_batch(8, 2);
        assert_eq!(batch.len(), 2, "cap of 2 in flight");
        // Nothing more until a completion frees a slot.
        assert_eq!(q.select_batch(8, 2), []);
        q.job_done("a");
        assert_eq!(q.select_batch(8, 2).len(), 1);
    }

    #[test]
    fn emptied_tenant_forfeits_deficit() {
        let mut q = FairQueue::new(64, 8, 100);
        q.admit("a", job(1, 10)).expect("admit");
        assert_eq!(q.select_batch(8, 8).len(), 1);
        // Re-admitting later starts from zero deficit: a 150-cost job
        // needs two fresh quanta, not one plus banked credit.
        q.admit("a", job(2, 150)).expect("admit");
        assert_eq!(q.select_batch(8, 8), []);
        assert_eq!(q.select_batch(8, 8).len(), 1);
    }
}
