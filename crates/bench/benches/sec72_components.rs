//! Section 7.2: component-by-component analysis of MASK's mechanisms.

use mask_bench::{banner, emit, options};
use mask_core::experiments::components;

fn main() {
    let opts = options(8);
    banner("Sec. 7.2: component analysis", &opts);
    let t0 = std::time::Instant::now();
    emit(&components::run(&opts));
    println!("[sec72 done in {:?}]", t0.elapsed());
}
