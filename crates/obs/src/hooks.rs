//! Hook points called from the simulator crates.
//!
//! Same contract as `mask_sanitizer`'s hooks: every function is
//! `#[inline(always)]` and compiles to an empty body unless the `enabled`
//! feature is on; with the feature on it is still a single relaxed load
//! until tracing is switched on at runtime (`MASK_TRACE` /
//! [`crate::set_runtime`]). Hooks never read back any trace state into the
//! simulation, so traced and untraced runs are bit-identical.
//!
//! This file is covered by the `hotpath` rule of `cargo xtask lint`: the
//! recording path must not allocate. All storage lives in the per-thread
//! rings of [`crate::ring`] (the parallelism-allowlisted module), which
//! this file only calls into.

use crate::event::{QueueKind, SpecPhase, StallKind, TlbLevel};

#[cfg(feature = "enabled")]
use crate::event::Event;

/// Stamps subsequent events recorded on this thread with cycle `now`.
///
/// Called once per cycle from `GpuSim::step` (main thread) and once per
/// shard slice from `run_shard` (worker threads), so hook sites themselves
/// never need a cycle argument.
#[inline(always)]
pub fn set_cycle(now: u64) {
    #[cfg(feature = "enabled")]
    crate::ring::set_cycle(now);
    #[cfg(not(feature = "enabled"))]
    let _ = now;
}

/// A warp left the ready pool.
#[inline(always)]
pub fn warp_stall(core: u32, warp: u32, kind: StallKind) {
    #[cfg(feature = "enabled")]
    crate::ring::record(Event::WarpStall { core, warp, kind });
    #[cfg(not(feature = "enabled"))]
    let _ = (core, warp, kind);
}

/// A warp re-entered the ready pool.
#[inline(always)]
pub fn warp_wake(core: u32, warp: u32) {
    #[cfg(feature = "enabled")]
    crate::ring::record(Event::WarpWake { core, warp });
    #[cfg(not(feature = "enabled"))]
    let _ = (core, warp);
}

/// A TLB structure was probed.
#[inline(always)]
pub fn tlb_probe(level: TlbLevel, asid: u16, hit: bool) {
    #[cfg(feature = "enabled")]
    crate::ring::record(Event::TlbProbe { level, asid, hit });
    #[cfg(not(feature = "enabled"))]
    let _ = (level, asid, hit);
}

/// A translation request merged into an in-flight walk's MSHR entry.
#[inline(always)]
pub fn tlb_mshr_merge(asid: u16) {
    #[cfg(feature = "enabled")]
    crate::ring::record(Event::MshrMerge { asid });
    #[cfg(not(feature = "enabled"))]
    let _ = asid;
}

/// A page walk moved into walker slot `slot`, starting at `level`.
#[inline(always)]
pub fn walker_acquire(slot: u32, level: u8) {
    #[cfg(feature = "enabled")]
    crate::ring::record(Event::WalkerAcquire { slot, level });
    #[cfg(not(feature = "enabled"))]
    let _ = (slot, level);
}

/// The walk in `slot` advanced to radix `level`.
#[inline(always)]
pub fn walker_level(slot: u32, level: u8) {
    #[cfg(feature = "enabled")]
    crate::ring::record(Event::WalkerLevel { slot, level });
    #[cfg(not(feature = "enabled"))]
    let _ = (slot, level);
}

/// The walk in `slot` completed and freed the slot.
#[inline(always)]
pub fn walker_release(slot: u32) {
    #[cfg(feature = "enabled")]
    crate::ring::record(Event::WalkerRelease { slot });
    #[cfg(not(feature = "enabled"))]
    let _ = slot;
}

/// A shared queue's depth at the current cycle (deduplicated on change;
/// callers guard any depth computation with [`crate::tracing_active`]).
#[inline(always)]
pub fn queue_depth(queue: QueueKind, depth: u32) {
    #[cfg(feature = "enabled")]
    crate::ring::record_depth(queue, depth);
    #[cfg(not(feature = "enabled"))]
    let _ = (queue, depth);
}

/// MASK's translation-aware L2 bypass routed a translation request.
#[inline(always)]
pub fn bypass_decision(asid: u16, level: u8, bypassed: bool) {
    #[cfg(feature = "enabled")]
    crate::ring::record(Event::Bypass {
        asid,
        level,
        bypassed,
    });
    #[cfg(not(feature = "enabled"))]
    let _ = (asid, level, bypassed);
}

/// A token-controller epoch granted `tokens` fill tokens to `asid`.
#[inline(always)]
pub fn token_epoch(asid: u16, tokens: u64) {
    #[cfg(feature = "enabled")]
    crate::ring::record(Event::TokenEpoch { asid, tokens });
    #[cfg(not(feature = "enabled"))]
    let _ = (asid, tokens);
}

/// A speculative time segment reached lifecycle stage `phase`
/// (predict/verify/commit/replay, see `mask-gpu`'s segment runner).
#[inline(always)]
pub fn spec_phase(segment: u32, phase: SpecPhase) {
    #[cfg(feature = "enabled")]
    crate::ring::record(Event::SpecSegment { segment, phase });
    #[cfg(not(feature = "enabled"))]
    let _ = (segment, phase);
}

/// Drains this thread's ring into the process-wide sink, tagged with
/// `lane` (shard index on worker threads, 0 on the main thread). Called at
/// the end of a shard's cycle slice and of `GpuSim::step`.
#[inline(always)]
pub fn flush_events(lane: u32) {
    #[cfg(feature = "enabled")]
    crate::ring::flush_events(lane);
    #[cfg(not(feature = "enabled"))]
    let _ = lane;
}
