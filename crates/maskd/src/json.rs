//! The hand-rolled JSON layer of the daemon's wire protocol.
//!
//! Zero-dependency by construction (the repo is offline-vendored) and
//! deliberately narrower than full JSON: **numbers are unsigned 64-bit
//! integers only**. Every value the daemon ships — job specs, `SimStats`
//! counters, queue/store telemetry — is an integer, a string, a bool, or a
//! composite of those, so refusing floats and negative numbers makes the
//! round trip *exact*: `parse(serialize(v)) == v` bit for bit, with none of
//! the decimal-float ambiguity that would break the byte-identity contract
//! at the network boundary (DESIGN.md §15).
//!
//! Serialization is canonical: object keys are emitted in sorted order
//! (they live in a `BTreeMap`) with no insignificant whitespace, so equal
//! values serialize to equal byte strings. The grammar accepted by
//! [`parse`] is standard RFC 8259 JSON minus the number restriction;
//! `tests/json_wire.rs` cross-validates the output against the in-tree
//! JSON syntax checker that gates the xtask SARIF emitter.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value (integer-only numbers; see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer. Floats and negative numbers are rejected at
    /// parse time — the wire format is all-integer by design.
    Num(u64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; `BTreeMap` gives canonical (sorted) key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj<const N: usize>(pairs: [(&str, Value); N]) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Member lookup on an object; `None` on other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool payload, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Serializes canonically: sorted keys, no whitespace.
    #[must_use]
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            use fmt::Write;
            let _ = write!(out, "{n}");
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus what the parser expected there.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Nesting deeper than this is rejected (stack-overflow hardening for a
/// network-facing parser).
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn lit(&mut self, s: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'0'..=b'9') => self.number(),
            Some(b'-') => Err(self.err("negative numbers are not part of the wire format")),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("non-integer numbers are not part of the wire format"));
        }
        let text = &self.bytes[start..self.pos];
        if text.len() > 1 && text[0] == b'0' {
            return Err(self.err("leading zero"));
        }
        std::str::from_utf8(text)
            .ok()
            .and_then(|t| t.parse::<u64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("integer out of u64 range"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("lone surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                            continue; // hex4 already advanced
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(c) => {
                    // Consume one UTF-8 scalar; width from the leading byte
                    // so validation stays O(1) per character.
                    let width = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (self.pos + width).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = chunk
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.pos += 1; // {
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:`"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            if map.insert(key, val).is_some() {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_composites() {
        let v = Value::obj([
            ("b", Value::Bool(true)),
            ("a", Value::Num(18_446_744_073_709_551_615)),
            (
                "list",
                Value::Array(vec![Value::Null, Value::Str("x\"y\n".into())]),
            ),
        ]);
        let s = v.serialize();
        assert_eq!(parse(&s).expect("round trip"), v);
        // Canonical: keys sorted, no whitespace.
        assert_eq!(
            s,
            "{\"a\":18446744073709551615,\"b\":true,\"list\":[null,\"x\\\"y\\n\"]}"
        );
    }

    #[test]
    fn accepts_whitespace_and_unicode_escapes() {
        let v = parse(" { \"k\" : [ 1 , \"\\u00e9\\ud83d\\ude00\" ] } ").expect("parses");
        let arr = v.get("k").and_then(Value::as_array).expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_floats_negatives_and_malformed_docs() {
        for bad in [
            "1.5",
            "-3",
            "1e9",
            "01",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"\\q\"",
            "nul",
            "{\"a\":1,\"a\":2}",
            "\"\\ud800\"",
            "18446744073709551616",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }
}
