//! Simulation statistics.
//!
//! Every metric reported in the paper's evaluation (§4, §7) is derived from
//! the counters collected here: IPC / weighted speedup, L1/L2 TLB miss
//! rates, average concurrent page walks (Fig. 5), warps stalled per TLB miss
//! (Fig. 6), DRAM bandwidth utilization and latency split by request class
//! (Figs. 8–9), and per-walk-level L2 cache hit rates (§4.3).

use crate::req::WalkLevel;

/// Neumaier-compensated floating-point accumulator.
///
/// Derived metrics average per-app ratios whose magnitudes can differ by
/// orders of magnitude between a token-throttled app and one running free;
/// naive `f64` accumulation makes such sums depend on iteration order.
/// All float accumulation in statistics code goes through this helper
/// (enforced by `cargo xtask lint`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CompensatedSum {
    sum: f64,
    compensation: f64,
}

impl CompensatedSum {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term.
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }

    /// Sums an iterator of terms with compensation.
    #[must_use]
    pub fn total(terms: impl IntoIterator<Item = f64>) -> f64 {
        let mut acc = CompensatedSum::new();
        for x in terms {
            acc.add(x);
        }
        acc.value()
    }
}

/// Counters for one request class (data vs. translation) at the DRAM.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DramClassStats {
    /// Requests serviced.
    pub requests: u64,
    /// Sum over requests of (completion - arrival at controller), in cycles.
    pub latency_sum: u64,
    /// Cycles the channel data bus spent transferring this class.
    pub bus_busy_cycles: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (closed row).
    pub row_misses: u64,
    /// Row-buffer conflicts (wrong row open).
    pub row_conflicts: u64,
}

impl DramClassStats {
    /// Average service latency in cycles (0 if nothing was serviced).
    pub fn avg_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.requests as f64
        }
    }

    /// Row-buffer hit rate over all serviced requests.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Component-wise difference `self - prev` (counters are monotonic;
    /// saturates defensively so a mismatched snapshot cannot panic).
    #[must_use]
    pub fn delta(&self, prev: &DramClassStats) -> DramClassStats {
        DramClassStats {
            requests: self.requests.saturating_sub(prev.requests),
            latency_sum: self.latency_sum.saturating_sub(prev.latency_sum),
            bus_busy_cycles: self.bus_busy_cycles.saturating_sub(prev.bus_busy_cycles),
            row_hits: self.row_hits.saturating_sub(prev.row_hits),
            row_misses: self.row_misses.saturating_sub(prev.row_misses),
            row_conflicts: self.row_conflicts.saturating_sub(prev.row_conflicts),
        }
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &DramClassStats) {
        self.requests += other.requests;
        self.latency_sum += other.latency_sum;
        self.bus_busy_cycles += other.bus_busy_cycles;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
    }
}

/// Hit/access counter pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HitStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
}

impl HitStats {
    /// Records one access.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        self.accesses += 1;
        self.hits += u64::from(hit);
    }

    /// Misses (`accesses - hits`).
    #[inline]
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Hit rate in `[0, 1]` (0 when never accessed).
    #[inline]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Miss rate in `[0, 1]` (0 when never accessed).
    #[inline]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1.0 - self.hit_rate()
        }
    }

    /// Accumulates another counter pair into this one.
    #[inline]
    pub fn merge(&mut self, other: &HitStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
    }

    /// Component-wise difference `self - prev` (counters are monotonic;
    /// saturates defensively so a mismatched snapshot cannot panic).
    #[inline]
    #[must_use]
    pub fn delta(&self, prev: &HitStats) -> HitStats {
        HitStats {
            accesses: self.accesses.saturating_sub(prev.accesses),
            hits: self.hits.saturating_sub(prev.hits),
        }
    }
}

/// Per-application counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AppStats {
    /// Instructions issued (IPC numerator).
    pub instructions: u64,
    /// Memory instructions issued.
    pub mem_instructions: u64,
    /// Cycles this app's cores were simulated (IPC denominator).
    pub cycles: u64,
    /// Cycles during which *no* warp on a core of this app could issue.
    pub stall_cycles: u64,

    /// Per-core L1 TLB probes.
    pub l1_tlb: HitStats,
    /// Shared L2 TLB probes (only the apps' own probes).
    pub l2_tlb: HitStats,
    /// MASK TLB-bypass-cache probes (§5.2).
    pub tlb_bypass_cache: HitStats,
    /// Page-walk-cache probes (`PWCache` design only).
    pub pwc: HitStats,

    /// Demand-paging faults taken (first touches, when fault latency > 0).
    pub page_faults: u64,
    /// Page walks started.
    pub walks_started: u64,
    /// Page walks completed.
    pub walks_completed: u64,
    /// Sum of completed-walk latencies in cycles.
    pub walk_latency_sum: u64,
    /// Integral over time of in-flight walks (divide by `cycles` to get the
    /// average number of concurrent page walks, Fig. 5).
    pub walk_cycles_integral: u64,
    /// Maximum concurrent walks observed.
    pub walk_concurrency_max: u64,
    /// Sum over resolved L2-TLB misses of the number of warps that were
    /// stalled waiting for that miss (Fig. 6 numerator).
    pub stalled_warps_sum: u64,
    /// Number of resolved L2-TLB misses (Fig. 6 denominator).
    pub stalled_warps_events: u64,
    /// Maximum warps stalled behind one miss.
    pub stalled_warps_max: u64,

    /// L1 data-cache probes.
    pub l1_data: HitStats,
    /// Shared-L2 probes by data demand requests.
    pub l2_data: HitStats,
    /// Shared-L2 probes by translation requests, split by walk level.
    pub l2_translation: [HitStats; 4],
    /// Translation requests that bypassed the shared L2 entirely (§5.3).
    pub l2_translation_bypassed: u64,

    /// DRAM behaviour of this app's data demand requests.
    pub dram_data: DramClassStats,
    /// DRAM behaviour of this app's translation requests.
    pub dram_translation: DramClassStats,

    /// Tokens held at the end of the run (MASK designs).
    pub tokens_final: u64,
    /// Shared-L2-TLB fills that were diverted to the bypass cache.
    pub fills_diverted: u64,
}

impl AppStats {
    /// Instructions per cycle over the whole run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Average latency of completed page walks.
    pub fn avg_walk_latency(&self) -> f64 {
        if self.walks_completed == 0 {
            0.0
        } else {
            self.walk_latency_sum as f64 / self.walks_completed as f64
        }
    }

    /// Average number of concurrent page walks (Fig. 5).
    pub fn avg_concurrent_walks(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.walk_cycles_integral as f64 / self.cycles as f64
        }
    }

    /// Average warps stalled per L2 TLB miss (Fig. 6).
    pub fn avg_warps_stalled_per_miss(&self) -> f64 {
        if self.stalled_warps_events == 0 {
            0.0
        } else {
            self.stalled_warps_sum as f64 / self.stalled_warps_events as f64
        }
    }

    /// L2 cache hit rate of translation requests at one walk level (§4.3).
    pub fn l2_translation_hit_rate(&self, level: WalkLevel) -> f64 {
        self.l2_translation[level.index()].hit_rate()
    }

    /// Records an L2-cache translation probe at `level`.
    pub fn record_l2_translation(&mut self, level: WalkLevel, hit: bool) {
        self.l2_translation[level.index()].record(hit);
    }

    /// Accumulates a per-shard delta into this counter set.
    ///
    /// Every field is an integer accumulated with `+=` (or `merge` for the
    /// nested counter structs), except the two watermarks
    /// (`walk_concurrency_max`, `stalled_warps_max`), which take the `max`
    /// — merging maxima over disjoint observation sets. All operations are
    /// order-insensitive, so absorbing shard deltas in any fixed order
    /// reproduces the serial counters bit-for-bit. Snapshot fields
    /// (`tokens_final`) carry 0 in a delta and are left unchanged.
    pub fn absorb(&mut self, d: &AppStats) {
        self.instructions += d.instructions;
        self.mem_instructions += d.mem_instructions;
        self.cycles += d.cycles;
        self.stall_cycles += d.stall_cycles;
        self.l1_tlb.merge(&d.l1_tlb);
        self.l2_tlb.merge(&d.l2_tlb);
        self.tlb_bypass_cache.merge(&d.tlb_bypass_cache);
        self.pwc.merge(&d.pwc);
        self.page_faults += d.page_faults;
        self.walks_started += d.walks_started;
        self.walks_completed += d.walks_completed;
        self.walk_latency_sum += d.walk_latency_sum;
        self.walk_cycles_integral += d.walk_cycles_integral;
        self.walk_concurrency_max = self.walk_concurrency_max.max(d.walk_concurrency_max);
        self.stalled_warps_sum += d.stalled_warps_sum;
        self.stalled_warps_events += d.stalled_warps_events;
        self.stalled_warps_max = self.stalled_warps_max.max(d.stalled_warps_max);
        self.l1_data.merge(&d.l1_data);
        self.l2_data.merge(&d.l2_data);
        for (mine, theirs) in self.l2_translation.iter_mut().zip(&d.l2_translation) {
            mine.merge(theirs);
        }
        self.l2_translation_bypassed += d.l2_translation_bypassed;
        self.dram_data.merge(&d.dram_data);
        self.dram_translation.merge(&d.dram_translation);
        self.tokens_final += d.tokens_final;
        self.fills_diverted += d.fills_diverted;
    }

    /// Zeroes every counter in place, keeping the allocation-free promise
    /// of the hot loop (the struct is plain data; this is a re-init).
    pub fn reset(&mut self) {
        *self = AppStats::default();
    }

    /// Counter difference `self - prev` for epoch-over-epoch streams
    /// (`mask-obs`). Accumulating counters subtract; watermarks
    /// (`walk_concurrency_max`, `stalled_warps_max`) and snapshots
    /// (`tokens_final`) carry the current value, since "difference" has no
    /// meaning for them within an epoch window.
    #[must_use]
    pub fn delta_since(&self, prev: &AppStats) -> AppStats {
        let mut l2_translation = [HitStats::default(); 4];
        for (out, (cur, old)) in l2_translation
            .iter_mut()
            .zip(self.l2_translation.iter().zip(&prev.l2_translation))
        {
            *out = cur.delta(old);
        }
        AppStats {
            instructions: self.instructions.saturating_sub(prev.instructions),
            mem_instructions: self.mem_instructions.saturating_sub(prev.mem_instructions),
            cycles: self.cycles.saturating_sub(prev.cycles),
            stall_cycles: self.stall_cycles.saturating_sub(prev.stall_cycles),
            l1_tlb: self.l1_tlb.delta(&prev.l1_tlb),
            l2_tlb: self.l2_tlb.delta(&prev.l2_tlb),
            tlb_bypass_cache: self.tlb_bypass_cache.delta(&prev.tlb_bypass_cache),
            pwc: self.pwc.delta(&prev.pwc),
            page_faults: self.page_faults.saturating_sub(prev.page_faults),
            walks_started: self.walks_started.saturating_sub(prev.walks_started),
            walks_completed: self.walks_completed.saturating_sub(prev.walks_completed),
            walk_latency_sum: self.walk_latency_sum.saturating_sub(prev.walk_latency_sum),
            walk_cycles_integral: self
                .walk_cycles_integral
                .saturating_sub(prev.walk_cycles_integral),
            walk_concurrency_max: self.walk_concurrency_max,
            stalled_warps_sum: self
                .stalled_warps_sum
                .saturating_sub(prev.stalled_warps_sum),
            stalled_warps_events: self
                .stalled_warps_events
                .saturating_sub(prev.stalled_warps_events),
            stalled_warps_max: self.stalled_warps_max,
            l1_data: self.l1_data.delta(&prev.l1_data),
            l2_data: self.l2_data.delta(&prev.l2_data),
            l2_translation,
            l2_translation_bypassed: self
                .l2_translation_bypassed
                .saturating_sub(prev.l2_translation_bypassed),
            dram_data: self.dram_data.delta(&prev.dram_data),
            dram_translation: self.dram_translation.delta(&prev.dram_translation),
            tokens_final: self.tokens_final,
            fills_diverted: self.fills_diverted.saturating_sub(prev.fills_diverted),
        }
    }
}

/// Whole-simulation statistics: per-app counters plus global state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Per-application counters, indexed by [`crate::ids::AppId`].
    pub apps: Vec<AppStats>,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Total DRAM data-bus busy cycles across all channels (bandwidth
    /// utilization denominator = `cycles * channels`).
    pub dram_bus_busy: u64,
    /// Number of DRAM channels (for utilization computations).
    pub dram_channels: usize,
}

impl SimStats {
    /// Creates stats for `n_apps` applications.
    pub fn new(n_apps: usize, dram_channels: usize) -> Self {
        SimStats {
            apps: vec![AppStats::default(); n_apps],
            cycles: 0,
            dram_bus_busy: 0,
            dram_channels,
        }
    }

    /// Aggregate IPC across all applications ("IPC throughput", §7.1).
    pub fn total_ipc(&self) -> f64 {
        CompensatedSum::total(self.apps.iter().map(AppStats::ipc))
    }

    /// Fraction of theoretical DRAM data-bus cycles actually used.
    pub fn dram_bandwidth_utilization(&self) -> f64 {
        if self.cycles == 0 || self.dram_channels == 0 {
            return 0.0;
        }
        self.dram_bus_busy as f64 / (self.cycles as f64 * self.dram_channels as f64)
    }

    /// Fraction of utilized DRAM bandwidth consumed by translation requests
    /// (Fig. 8's comparison).
    pub fn translation_bandwidth_share(&self) -> f64 {
        let x = self
            .apps
            .iter()
            .map(|a| a.dram_translation.bus_busy_cycles)
            .sum::<u64>();
        let d = self
            .apps
            .iter()
            .map(|a| a.dram_data.bus_busy_cycles)
            .sum::<u64>();
        if x + d == 0 {
            0.0
        } else {
            x as f64 / (x + d) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compensated_sum_recovers_cancelled_terms() {
        // Naive summation of (1e16 + 1 - 1e16) loses the 1.0 entirely.
        let naive: f64 = [1e16, 1.0, -1e16].iter().sum();
        assert_eq!(naive, 0.0);
        assert_eq!(CompensatedSum::total([1e16, 1.0, -1e16]), 1.0);
        let mut acc = CompensatedSum::new();
        for x in [0.1; 10] {
            acc.add(x);
        }
        assert!((acc.value() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn hit_stats_rates() {
        let mut h = HitStats::default();
        assert_eq!(h.hit_rate(), 0.0);
        h.record(true);
        h.record(true);
        h.record(false);
        h.record(false);
        assert_eq!(h.accesses, 4);
        assert_eq!(h.hits, 2);
        assert_eq!(h.misses(), 2);
        assert!((h.hit_rate() - 0.5).abs() < 1e-12);
        assert!((h.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn app_stats_derived_metrics() {
        let mut a = AppStats {
            instructions: 500,
            cycles: 1000,
            ..Default::default()
        };
        assert!((a.ipc() - 0.5).abs() < 1e-12);
        a.walks_completed = 10;
        a.walk_latency_sum = 2000;
        assert!((a.avg_walk_latency() - 200.0).abs() < 1e-12);
        a.walk_cycles_integral = 3000;
        assert!((a.avg_concurrent_walks() - 3.0).abs() < 1e-12);
        a.stalled_warps_sum = 60;
        a.stalled_warps_events = 3;
        assert!((a.avg_warps_stalled_per_miss() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn dram_class_stats_merge_and_rates() {
        let mut a = DramClassStats {
            requests: 2,
            latency_sum: 100,
            bus_busy_cycles: 8,
            row_hits: 1,
            row_misses: 1,
            row_conflicts: 0,
        };
        let b = DramClassStats {
            requests: 2,
            latency_sum: 300,
            bus_busy_cycles: 8,
            row_hits: 0,
            row_misses: 0,
            row_conflicts: 2,
        };
        a.merge(&b);
        assert_eq!(a.requests, 4);
        assert!((a.avg_latency() - 100.0).abs() < 1e-12);
        assert!((a.row_hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sim_stats_bandwidth_shares() {
        let mut s = SimStats::new(2, 8);
        s.cycles = 1000;
        s.dram_bus_busy = 4000;
        assert!((s.dram_bandwidth_utilization() - 0.5).abs() < 1e-12);
        s.apps[0].dram_translation.bus_busy_cycles = 100;
        s.apps[0].dram_data.bus_busy_cycles = 300;
        s.apps[1].dram_data.bus_busy_cycles = 600;
        assert!((s.translation_bandwidth_share() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn absorb_matches_serial_accumulation() {
        // Two "shard deltas" absorbed in order must equal one serially
        // accumulated counter set.
        let mut d0 = AppStats {
            instructions: 10,
            mem_instructions: 4,
            stall_cycles: 2,
            walk_concurrency_max: 3,
            ..AppStats::default()
        };
        d0.l1_tlb.record(true);
        d0.l1_tlb.record(false);
        d0.l1_data.record(true);
        let mut d1 = AppStats {
            instructions: 7,
            mem_instructions: 1,
            walk_concurrency_max: 5,
            stalled_warps_max: 2,
            ..AppStats::default()
        };
        d1.l1_tlb.record(false);
        d1.l1_data.record(false);
        d1.record_l2_translation(WalkLevel::new(2), true);

        let mut serial = AppStats {
            instructions: 17,
            mem_instructions: 5,
            stall_cycles: 2,
            walk_concurrency_max: 5,
            stalled_warps_max: 2,
            ..AppStats::default()
        };
        serial.l1_tlb.record(true);
        serial.l1_tlb.record(false);
        serial.l1_tlb.record(false);
        serial.l1_data.record(true);
        serial.l1_data.record(false);
        serial.record_l2_translation(WalkLevel::new(2), true);

        let mut merged = AppStats::default();
        merged.absorb(&d0);
        merged.absorb(&d1);
        assert_eq!(merged, serial);

        d1.reset();
        assert_eq!(d1, AppStats::default());
    }

    #[test]
    fn delta_since_subtracts_counters_keeps_watermarks() {
        let mut prev = AppStats {
            instructions: 100,
            cycles: 50,
            walks_completed: 4,
            walk_concurrency_max: 9,
            tokens_final: 12,
            ..AppStats::default()
        };
        prev.l1_tlb.record(true);
        let mut cur = prev.clone();
        cur.instructions = 160;
        cur.cycles = 80;
        cur.walks_completed = 7;
        cur.walk_concurrency_max = 11;
        cur.tokens_final = 8;
        cur.l1_tlb.record(false);
        cur.record_l2_translation(WalkLevel::new(3), true);
        cur.dram_data.requests = 5;

        let d = cur.delta_since(&prev);
        assert_eq!(d.instructions, 60);
        assert_eq!(d.cycles, 30);
        assert_eq!(d.walks_completed, 3);
        assert_eq!(d.l1_tlb.accesses, 1);
        assert_eq!(d.l1_tlb.hits, 0);
        assert_eq!(d.l2_translation[WalkLevel::new(3).index()].hits, 1);
        assert_eq!(d.dram_data.requests, 5);
        // Watermarks and snapshots carry the current value.
        assert_eq!(d.walk_concurrency_max, 11);
        assert_eq!(d.tokens_final, 8);
        // A fresh-baseline delta (prev = default) equals the counters.
        let from_zero = cur.delta_since(&AppStats::default());
        assert_eq!(from_zero, cur);
        // Mismatched snapshots saturate instead of panicking.
        let d = prev.delta_since(&cur);
        assert_eq!(d.instructions, 0);
    }

    #[test]
    fn per_level_translation_hit_rates() {
        let mut a = AppStats::default();
        a.record_l2_translation(WalkLevel::new(1), true);
        a.record_l2_translation(WalkLevel::new(1), true);
        a.record_l2_translation(WalkLevel::new(4), false);
        assert!((a.l2_translation_hit_rate(WalkLevel::new(1)) - 1.0).abs() < 1e-12);
        assert_eq!(a.l2_translation_hit_rate(WalkLevel::new(4)), 0.0);
        assert_eq!(a.l2_translation_hit_rate(WalkLevel::new(2)), 0.0);
    }
}
