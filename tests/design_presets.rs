//! Design-preset contracts for the `DesignSpec` refactor.
//!
//! PR 7 replaced scattered `DesignKind` predicate checks with per-layer
//! `DesignSpec` policy axes. These tests pin the refactor down from three
//! sides:
//!
//! 1. **Oracle checksums** — every preset that existed before the refactor
//!    must simulate *bit-identically* to the predicate-based code. The
//!    constants below were recorded by hashing `format!("{:?}", stats)`
//!    (FNV-1a) on the pre-refactor tree at the same configuration.
//! 2. **Degeneracy** — the new `NoIsolation` preset only differs from
//!    `SharedTlb` in how cores are laid out across applications, so with a
//!    single application they must produce byte-identical statistics.
//! 3. **Isolation** — the new `Partitioned` preset colors frames, L2 sets,
//!    and DRAM banks per application; with `--features sanitize` the
//!    `l2-set-color` and `dram-bank-color` checks audit every fill and
//!    enqueue, and sharding must not perturb any of it.

use mask_core::prelude::*;
use proptest::prelude::*;

/// FNV-1a over the canonical `Debug` rendering of the final statistics.
/// Cheap, dependency-free, and sensitive to any field changing anywhere.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The oracle configuration: MUM (2 cores) + LPS (2 cores), short token
/// epochs, serial frontend. Matches the recording run exactly.
fn oracle_config(design: DesignKind, shards: usize) -> (SimConfig, Vec<AppSpec>) {
    let mut cfg = SimConfig::new(design)
        .with_max_cycles(20_000)
        .with_sm_shards(shards);
    cfg.seed = 3;
    cfg.gpu.n_cores = 4;
    cfg.gpu.warps_per_core = 16;
    cfg.gpu.mask.epoch_cycles = 5_000;
    let specs = [("MUM", 2usize), ("LPS", 2usize)]
        .iter()
        .map(|&(name, n_cores)| AppSpec {
            profile: app_by_name(name).expect("known app"),
            n_cores,
        })
        .collect();
    (cfg, specs)
}

fn checksum(design: DesignKind, shards: usize) -> u64 {
    let (cfg, specs) = oracle_config(design, shards);
    let mut sim = GpuSim::new(&cfg, &specs);
    sim.run_to_completion();
    sim.sync_stats();
    fnv1a(format!("{:?}", sim.stats()).as_bytes())
}

/// Checksums recorded on the pre-refactor tree (predicate methods still in
/// place) for every preset that existed then, in the old plotting order.
const ORACLE: [(DesignKind, u64); 8] = [
    (DesignKind::Static, 0x6cf6_c693_c132_619c),
    (DesignKind::PwCache, 0xc790_aea4_2064_63af),
    (DesignKind::SharedTlb, 0xfa0a_5d67_b666_70fb),
    (DesignKind::MaskTlb, 0x174e_9bb8_09bf_233c),
    (DesignKind::MaskCache, 0x85b7_7f45_86cd_69b8),
    (DesignKind::MaskDram, 0xe5e8_dca8_bf64_1e2f),
    (DesignKind::Mask, 0xd346_3979_a2f8_6822),
    (DesignKind::Ideal, 0x2cab_2687_9807_f317),
];

/// The tentpole's bit-identity guarantee: decomposing each preset into
/// policy axes must not change a single simulated event.
#[test]
fn old_presets_simulate_bit_identically_to_the_predicate_era() {
    for (design, expected) in ORACLE {
        let got = checksum(design, 1);
        assert_eq!(
            got, expected,
            "{design} diverged from its pre-refactor oracle: \
             got {got:#018x}, recorded {expected:#018x}"
        );
    }
}

/// With one application there is nothing to interleave: `AllSms`
/// round-robin over a single app is the identity layout, and every other
/// axis of the two presets is already equal.
#[test]
fn no_isolation_degenerates_to_shared_tlb_for_a_single_app() {
    let run = |design: DesignKind| {
        let mut cfg = SimConfig::new(design).with_max_cycles(15_000);
        cfg.seed = 11;
        cfg.gpu.n_cores = 4;
        cfg.gpu.warps_per_core = 16;
        let specs = [AppSpec {
            profile: app_by_name("HISTO").expect("known app"),
            n_cores: 4,
        }];
        let mut sim = GpuSim::new(&cfg, &specs);
        sim.run_to_completion();
        sim.sync_stats();
        sim.stats().clone()
    };
    assert_eq!(
        run(DesignKind::NoIsolation),
        run(DesignKind::SharedTlb),
        "NoIsolation must be byte-identical to SharedTlb when one app runs"
    );
}

/// Every preset is a distinct point in policy space — the engine dedups
/// jobs by spec, so two presets collapsing silently would drop results.
#[test]
fn all_ten_presets_have_pairwise_distinct_specs() {
    let specs: Vec<_> = DesignKind::ALL.iter().map(|d| d.spec()).collect();
    for i in 0..specs.len() {
        for j in i + 1..specs.len() {
            assert_ne!(
                specs[i],
                specs[j],
                "{} and {} share a DesignSpec; the job engine would dedup them",
                DesignKind::ALL[i],
                DesignKind::ALL[j]
            );
        }
    }
}

/// `Partitioned` isolation end to end. Under `--features sanitize` the
/// `l2-set-color` and `dram-bank-color` checks audit every L2 fill and
/// DRAM enqueue; in any build, per-app instruction counts prove all apps
/// made progress inside their partitions.
#[test]
fn partitioned_runs_clean_under_the_sanitizer() {
    for (a, b) in [("MUM", "LPS"), ("CONS", "GUP"), ("HISTO", "RED")] {
        let mut cfg = SimConfig::new(DesignKind::Partitioned).with_max_cycles(15_000);
        cfg.seed = 5;
        cfg.gpu.n_cores = 4;
        cfg.gpu.warps_per_core = 16;
        let specs = [a, b].map(|name| AppSpec {
            profile: app_by_name(name).expect("known app"),
            n_cores: 2,
        });
        let mut sim = GpuSim::new(&cfg, &specs);
        sim.run_to_completion();
        sim.sync_stats();
        for (app, stats) in sim.stats().apps.iter().enumerate() {
            assert!(
                stats.instructions > 0,
                "{a}+{b}: app {app} starved inside its partition"
            );
        }
    }
}

/// Uneven partitioning: three apps over 16 L2 ways / 8 DRAM banks forces
/// the remainder-to-last split everywhere. Must not panic (sanitized or
/// not) and every app must make progress.
#[test]
fn partitioned_survives_uneven_three_app_splits() {
    let mut cfg = SimConfig::new(DesignKind::Partitioned).with_max_cycles(12_000);
    cfg.seed = 9;
    cfg.gpu.n_cores = 6;
    cfg.gpu.warps_per_core = 16;
    let specs = ["MUM", "LPS", "GUP"].map(|name| AppSpec {
        profile: app_by_name(name).expect("known app"),
        n_cores: 2,
    });
    let mut sim = GpuSim::new(&cfg, &specs);
    sim.run_to_completion();
    sim.sync_stats();
    for (app, stats) in sim.stats().apps.iter().enumerate() {
        assert!(stats.instructions > 0, "app {app} starved");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The sharded SM frontend must stay invisible for the two presets this
    /// PR introduced — including `NoIsolation`, whose interleaved core
    /// layout is exactly what the SM-set-aware shard cuts have to handle.
    #[test]
    fn new_presets_shard_bit_identically(seed in 0u64..1_000, shards in 2usize..8) {
        for design in [DesignKind::Partitioned, DesignKind::NoIsolation] {
            let serial = checksum_with_seed(design, 1, seed);
            let sharded = checksum_with_seed(design, shards, seed);
            prop_assert_eq!(
                serial, sharded,
                "{} diverged at {} shards (seed {})", design, shards, seed
            );
        }
    }
}

fn checksum_with_seed(design: DesignKind, shards: usize, seed: u64) -> u64 {
    let (mut cfg, specs) = oracle_config(design, shards);
    cfg.seed = seed;
    let mut sim = GpuSim::new(&cfg, &specs);
    sim.run_to_completion();
    sim.sync_stats();
    fnv1a(format!("{:?}", sim.stats()).as_bytes())
}
