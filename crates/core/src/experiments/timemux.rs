//! Figure 1: overhead of time multiplexing as process count grows (§2.1).
//!
//! The paper measures real NVIDIA K40 and GTX 1080 GPUs running 2–10
//! concurrent processes, each "a GPU kernel that interleaves basic
//! arithmetic operations with loads and stores". We do not have the
//! hardware, so we reproduce the *mechanism*: time-sliced execution where
//! every context switch (1) drains the pipeline and pays kernel relaunch
//! cost, (2) starts with cold TLBs and caches (simulated by flushing all
//! volatile state and measuring the warm-up loss directly), and (3) pays a
//! device-memory restore cost that grows with the number of resident
//! processes (the 10-process runs oversubscribe device memory, so each
//! switch pages progressively more state back in). The trend — overhead
//! growing from ~10% at 2 processes toward ~90% at 10 — is what Fig. 1
//! demonstrates and what motivates spatial multiplexing.

use super::ExpOptions;
use crate::engine::SimJob;
use crate::table::Table;
use mask_common::config::{DesignKind, ShardOptions, SimConfig};
use mask_gpu::{AppSpec, GpuSim};
use mask_workloads::app_by_name;

/// Pipeline drain + kernel relaunch cost per context switch, in cycles.
const DRAIN_CYCLES: u64 = 800;
/// Device-memory restore cost per additional resident process, per switch.
const SWAP_CYCLES_PER_PROC: u64 = 900;
/// Scheduling quantum in cycles.
const QUANTUM: u64 = 10_000;

/// Runs the Fig. 1 experiment: per-process work `work_instructions`,
/// process counts 2..=10.
pub fn run(opts: &ExpOptions) -> Table {
    let profile = app_by_name("MM").expect("MM exists");
    let ropts = opts.run_options();
    let spec = [AppSpec {
        profile,
        n_cores: opts.n_cores,
    }];

    // Back-to-back execution: steady-state instruction rate. This is an
    // ordinary alone run, so it goes through the job engine (and its
    // baseline cache) like every other baseline.
    let runner = opts.runner();
    let alone_stats = runner.pool().run_batch(&[SimJob {
        design: DesignKind::SharedTlb,
        specs: spec.to_vec(),
        max_cycles: opts.cycles,
        warmup_cycles: 0,
        seed: ropts.seed,
        gpu: ropts.gpu.clone(),
    }]);
    let alone_instr = alone_stats[0].apps[0].instructions.max(1);

    // Time-multiplexed execution cannot be a batch job: the quantum loop
    // flushes volatile state interactively between run() calls.
    let cfg = {
        let mut gpu = ropts.gpu.clone();
        gpu.n_cores = opts.n_cores;
        SimConfig {
            gpu,
            design: DesignKind::SharedTlb.spec(),
            max_cycles: opts.cycles,
            seed: ropts.seed,
            sm_shards: ShardOptions::default(),
        }
    };

    // Time-multiplexed execution: measure the per-quantum instruction rate
    // when every quantum starts from cold TLBs and caches.
    let mut tm = GpuSim::new(&cfg, &spec);
    let quanta = (opts.cycles / QUANTUM).max(1);
    let mut tm_instr = 0u64;
    for _ in 0..quanta {
        tm.flush_volatile();
        let before = tm.instructions(0);
        tm.run(QUANTUM);
        tm_instr += tm.instructions(0) - before;
    }
    let tm_instr = tm_instr.max(1);

    // Per-quantum instruction counts.
    let alone_rate = alone_instr as f64 / opts.cycles as f64;
    let tm_rate = tm_instr as f64 / (quanta * QUANTUM) as f64;

    let mut table = Table::new(
        "Figure 1: time-multiplexing overhead vs. concurrent process count",
        &["processes", "overhead_pct"],
    );
    for k in 2..=10u64 {
        // Work per process: instructions executed in `opts.cycles` of
        // uninterrupted execution.
        let work = alone_instr as f64;
        let back_to_back = k as f64 * (work / alone_rate);
        // Cold-start loss: each quantum yields tm_rate instead of
        // alone_rate. Switch cost: drain + paging that grows with the
        // number of other resident processes.
        let switch_cost = DRAIN_CYCLES + SWAP_CYCLES_PER_PROC * (k - 1);
        let quanta_per_proc = (work / (tm_rate * QUANTUM as f64)).ceil();
        let tm_total = k as f64 * quanta_per_proc * (QUANTUM as f64 + switch_cost as f64);
        let overhead = (tm_total / back_to_back - 1.0) * 100.0;
        table.row(k.to_string(), vec![format!("{overhead:.1}")]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_grows_with_process_count() {
        let opts = ExpOptions {
            cycles: 20_000,
            ..ExpOptions::quick()
        };
        let t = run(&opts);
        assert_eq!(t.len(), 9, "process counts 2..=10");
        let o2 = t.value("2", "overhead_pct").expect("row 2");
        let o10 = t.value("10", "overhead_pct").expect("row 10");
        assert!(
            o2 > 0.0,
            "time multiplexing always costs something, got {o2}"
        );
        assert!(
            o10 > o2,
            "overhead must grow with process count ({o2} -> {o10})"
        );
    }
}
