//! Tracing must be invisible in the results.
//!
//! The `mask-obs` hooks observe the simulator; they never steer it. These
//! tests pin the bit-identity contract: with the `obs` feature compiled in
//! and tracing switched **on** at runtime, every statistic — including raw
//! instruction checksums — is byte-identical to the same run with tracing
//! **off**, across job-engine worker counts and SM shard counts (the
//! `MASK_JOBS` × `MASK_SM_SHARDS` matrix). A second test drives a traced
//! batch end-to-end through the exporter and checks the Perfetto document
//! and the metrics JSONL stream are well-formed and carry every counter
//! family.

#![cfg(feature = "obs")]

use std::sync::Mutex;

use mask_core::prelude::*;
use proptest::prelude::*;

/// The runtime trace gate is process-global, so tests that flip it must
/// not interleave.
static GATE: Mutex<()> = Mutex::new(());

/// A small two-app MASK job with a short token epoch (several epoch
/// boundaries inside a few thousand cycles).
fn job(seed: u64, apps: &[(&str, usize)], cycles: u64) -> SimJob {
    let mut gpu = GpuConfig::maxwell();
    gpu.warps_per_core = 16;
    gpu.mask.epoch_cycles = 2_000;
    SimJob {
        design: DesignKind::Mask,
        specs: apps
            .iter()
            .map(|(name, c)| AppSpec {
                profile: app_by_name(name).expect("known app"),
                n_cores: *c,
            })
            .collect(),
        max_cycles: cycles,
        warmup_cycles: cycles / 4,
        seed,
        gpu,
    }
}

/// Order-sensitive checksum over the raw instruction counters, so even a
/// reordering that leaves totals intact would be caught.
fn checksum(stats: &SimStats) -> u64 {
    stats
        .apps
        .iter()
        .fold(0xcbf2_9ce4_8422_2325, |acc: u64, a| {
            acc.wrapping_mul(0x0100_0000_01b3)
                .wrapping_add(a.instructions)
                .wrapping_mul(0x0100_0000_01b3)
                .wrapping_add(a.mem_instructions)
                .wrapping_mul(0x0100_0000_01b3)
                .wrapping_add(a.cycles)
                .wrapping_mul(0x0100_0000_01b3)
                .wrapping_add(a.stall_cycles)
        })
}

/// Runs `jobs` across the worker × shard matrix: through the job engine at
/// 1 and 2 workers, then directly at 1/2/3 SM shards.
fn run_matrix(jobs: &[SimJob]) -> Vec<SimStats> {
    let mut out = Vec::new();
    for workers in [1, 2] {
        let pool = JobPool::with_workers(workers).with_cache(BaselineCache::new());
        out.extend(pool.run_batch(jobs));
    }
    for shards in [1, 2, 3] {
        for j in jobs {
            out.push(j.run_with_shards(Some(shards)));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The contract itself: tracing on vs. off, same bits everywhere.
    #[test]
    fn tracing_is_bit_identical_across_workers_and_shards(seed in 0u64..500) {
        let _gate = GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let jobs = [
            job(seed, &[("HISTO", 2), ("GUP", 2)], 5_000),
            job(seed, &[("CONS", 2), ("LPS", 2)], 5_000),
        ];
        mask_obs::set_runtime(Some(false));
        let off = run_matrix(&jobs);
        mask_obs::set_runtime(Some(true));
        let on = run_matrix(&jobs);
        mask_obs::set_runtime(Some(false));
        mask_obs::reset_collected();
        prop_assert_eq!(&off, &on, "tracing changed simulation results");
        for (a, b) in off.iter().zip(&on) {
            prop_assert_eq!(checksum(a), checksum(b));
        }
    }
}

/// End-to-end: a traced batch exports a balanced Perfetto document plus a
/// metrics JSONL stream carrying all six counter families.
#[test]
fn traced_batch_exports_all_counter_families() {
    let _gate = GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    mask_obs::reset_collected();
    mask_obs::set_runtime(Some(true));
    let pool = JobPool::with_workers(2).with_cache(BaselineCache::new());
    let jobs = [
        job(11, &[("HISTO", 2), ("GUP", 2)], 8_000),
        job(12, &[("CONS", 2), ("LPS", 2)], 8_000),
    ];
    let _ = pool.run_batch(&jobs);
    mask_obs::set_runtime(Some(false));

    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target/tmp")
        .join(format!("obs_trace_{}", std::process::id()));
    let summary = mask_obs::export::write_to(&dir).expect("export succeeds");
    assert!(summary.events > 0, "ring captured no events");
    assert!(summary.frames > 0, "no metrics frames");

    let trace = std::fs::read_to_string(&summary.trace_path).expect("trace.json written");
    let balance = |open: char, close: char| {
        trace.chars().fold(0i64, |d, c| {
            if c == open {
                d + 1
            } else if c == close {
                d - 1
            } else {
                d
            }
        })
    };
    assert_eq!(balance('{', '}'), 0, "unbalanced braces in trace.json");
    assert_eq!(balance('[', ']'), 0, "unbalanced brackets in trace.json");
    assert!(trace.contains("\"traceEvents\""));

    let jsonl = std::fs::read_to_string(&summary.metrics_path).expect("metrics.jsonl written");
    assert!(jsonl.lines().count() >= 2);
    for family in ["tlb", "walker", "l2", "dram", "shard_merge", "job_pool"] {
        assert!(
            summary.families.iter().any(|f| f == family),
            "family {family} missing; got {:?}\njsonl head:\n{}",
            summary.families,
            jsonl.lines().take(4).collect::<Vec<_>>().join("\n")
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Exporting with nothing collected still produces a loadable (empty)
/// document rather than erroring.
#[test]
fn empty_export_is_well_formed() {
    let _gate = GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    mask_obs::reset_collected();
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target/tmp")
        .join(format!("obs_trace_empty_{}", std::process::id()));
    let summary = mask_obs::export::write_to(&dir).expect("export succeeds");
    assert_eq!(summary.events, 0);
    let trace = std::fs::read_to_string(&summary.trace_path).expect("written");
    assert!(trace.contains("\"traceEvents\""));
    let _ = std::fs::remove_dir_all(&dir);
}
