//! MASK: a GPU memory hierarchy supporting multi-application concurrency.
//!
//! This crate is the public face of the reproduction of *Ausavarungnirun et
//! al., "MASK: Redesigning the GPU Memory Hierarchy to Support
//! Multi-Application Concurrency", ASPLOS 2018*. It assembles the substrate
//! crates into a ready-to-use API:
//!
//! * [`engine`] — the plan → execute → assemble job engine: deduplicated
//!   [`SimJob`](engine::SimJob) batches fanned out over `MASK_JOBS` worker
//!   threads with bit-identical results at any worker count;
//! * [`runner`] — one-call simulation of single apps, app pairs, and n-app
//!   mixes under any of the paper's eight designs;
//! * [`metrics`] — weighted speedup, IPC throughput, and unfairness
//!   (maximum slowdown), the evaluation's three metrics (§6);
//! * [`experiments`] — a module per paper table/figure that regenerates it;
//! * [`overhead`] — the §7.4 storage-cost and §7.5 area/power models;
//! * [`table`] — plain-text experiment tables.
//!
//! # Quickstart
//!
//! ```
//! use mask_core::prelude::*;
//!
//! // Run HISTO and GUP concurrently under full MASK for 20K cycles.
//! let outcome = PairRunner::new(RunOptions { max_cycles: 20_000, n_cores: 8, ..Default::default() })
//!     .run_named("HISTO", "GUP", DesignKind::Mask)
//!     .expect("known benchmarks");
//! assert!(outcome.weighted_speedup > 0.0);
//! ```

pub mod engine;
pub mod metrics;
pub mod overhead;
pub mod runner;
pub mod table;

pub mod experiments;

pub use engine::{BaselineCache, CacheStats, JobPool, PrefixCache, PrefixCacheStats, SimJob};
pub use metrics::{unfairness, weighted_speedup};
pub use runner::{PairOutcome, PairRunner, RunOptions};
pub use table::Table;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::engine::{
        BaselineCache, CacheStats, JobPool, PrefixCache, PrefixCacheStats, SimJob,
    };
    pub use crate::metrics::{unfairness, weighted_speedup};
    pub use crate::runner::{PairOutcome, PairRunner, RunOptions};
    pub use crate::table::Table;
    pub use mask_common::config::{
        DesignKind, GpuConfig, JobOptions, ShardOptions, SimConfig, SpecOptions,
    };
    pub use mask_common::stats::{AppStats, SimStats};
    pub use mask_gpu::{run_speculative, AppSpec, GpuSim, SpecPlan, SpecReport};
    pub use mask_workloads::{all_apps, app_by_name, paper_pairs, AppPair, HmrCategory};
}
