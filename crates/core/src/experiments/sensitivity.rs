//! §7.3 sensitivity studies: shared L2 TLB size, large pages, memory
//! scheduling policy, and DRAM row policy.

use super::ExpOptions;
use crate::metrics::mean;
use crate::runner::{PairRunner, RunOptions};
use crate::table::Table;
use mask_common::addr::PAGE_SIZE_2M_LOG2;
use mask_common::config::{DesignKind, GpuConfig, MemSchedKind, RowPolicy};

fn runner_with(opts: &ExpOptions, tweak: impl FnOnce(&mut GpuConfig)) -> PairRunner {
    let mut gpu = GpuConfig::maxwell();
    gpu.warps_per_core = opts.warps_per_core;
    tweak(&mut gpu);
    PairRunner::new(RunOptions {
        n_cores: opts.n_cores,
        max_cycles: opts.cycles,
        seed: opts.seed,
        warmup_cycles: 100_000,
        gpu,
        jobs: opts.jobs,
    })
}

/// Average weighted speedup per design over the pressured pairs, with the
/// whole pair × design grid submitted as one job batch.
fn avg_ws(runner: &PairRunner, opts: &ExpOptions, designs: &[DesignKind]) -> Vec<f64> {
    let outcomes = runner.run_pairs(&opts.pressured_pairs(), designs);
    (0..designs.len())
        .map(|d| {
            mean(
                outcomes
                    .iter()
                    .skip(d)
                    .step_by(designs.len())
                    .map(|o| o.weighted_speedup),
            )
        })
        .collect()
}

/// Shared-L2-TLB size sweep: `SharedTLB` vs MASK from 64 to 8192 entries.
///
/// The paper: "MASK outperforms `SharedTLB` for all TLB sizes except the
/// 8192-entry shared L2 TLB", where the working set fits entirely.
pub fn tlb_size_sweep(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Sec. 7.3: sensitivity to shared L2 TLB size (avg weighted speedup)",
        &["entries", "SharedTLB", "MASK"],
    );
    for entries in [64usize, 128, 256, 512, 1024, 2048, 4096, 8192] {
        let r = runner_with(opts, |g| g.tlb.l2_entries = entries);
        let ws = avg_ws(&r, opts, &[DesignKind::SharedTlb, DesignKind::Mask]);
        t.row_f64(entries.to_string(), &ws);
    }
    t
}

/// Large (2 MB) pages: `SharedTLB`, MASK, and Ideal.
///
/// The paper: even with 2 MB pages "`SharedTLB` continues to experience high
/// contention ... 44.5% short of Ideal", while "MASK allows the GPU to
/// perform within 1.8% of Ideal".
pub fn large_pages(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Sec. 7.3: 2MB large pages (avg weighted speedup)",
        &["page_size", "SharedTLB", "MASK", "Ideal"],
    );
    for (label, log2) in [
        ("4KB", mask_common::addr::PAGE_SIZE_4K_LOG2),
        ("2MB", PAGE_SIZE_2M_LOG2),
    ] {
        let r = runner_with(opts, |g| g.page_size_log2 = log2);
        let ws = avg_ws(
            &r,
            opts,
            &[DesignKind::SharedTlb, DesignKind::Mask, DesignKind::Ideal],
        );
        t.row_f64(label, &ws);
    }
    t
}

/// Demand paging: fault service time sweep (extends §5.5, which the paper
/// leaves as future work — this quantifies how fault cost interacts with
/// the designs).
pub fn demand_paging(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Extension: demand-paging fault latency (avg weighted speedup)",
        &["fault_latency", "SharedTLB", "MASK", "Ideal"],
    );
    for latency in [0u64, 2_000, 10_000] {
        let r = runner_with(opts, |g| g.page_fault_latency = latency);
        let ws = avg_ws(
            &r,
            opts,
            &[DesignKind::SharedTlb, DesignKind::Mask, DesignKind::Ideal],
        );
        t.row_f64(latency.to_string(), &ws);
    }
    t
}

/// Walker concurrency ablation: the shared walker's slot count bounds
/// translation throughput (DESIGN.md ablation; Table 1 uses 64 slots).
pub fn walker_slots(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Ablation: page-table-walker slots (avg weighted speedup)",
        &["slots", "SharedTLB", "MASK"],
    );
    for slots in [16usize, 32, 64, 128] {
        let r = runner_with(opts, |g| g.walker_slots = slots);
        let ws = avg_ws(&r, opts, &[DesignKind::SharedTlb, DesignKind::Mask]);
        t.row_f64(slots.to_string(), &ws);
    }
    t
}

/// Alternative memory scheduler and row policies.
pub fn memory_policies(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Sec. 7.3: sensitivity to memory policies (avg weighted speedup)",
        &["policy", "SharedTLB", "MASK"],
    );
    let combos: [(&str, MemSchedKind, RowPolicy); 3] = [
        ("FR-FCFS / open-row", MemSchedKind::FrFcfs, RowPolicy::Open),
        (
            "FR-FCFS / closed-row",
            MemSchedKind::FrFcfs,
            RowPolicy::Closed,
        ),
        (
            "GPU batch / open-row",
            MemSchedKind::GpuBatch,
            RowPolicy::Open,
        ),
    ];
    for (label, sched, row) in combos {
        let r = runner_with(opts, |g| {
            g.dram.sched = sched;
            g.dram.row_policy = row;
        });
        let ws = avg_ws(&r, opts, &[DesignKind::SharedTlb, DesignKind::Mask]);
        t.row_f64(label, &ws);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            cycles: 5_000,
            pair_limit: 1,
            ..ExpOptions::quick()
        }
    }

    #[test]
    fn tlb_sweep_has_all_sizes() {
        let t = tlb_size_sweep(&tiny());
        assert_eq!(t.len(), 8);
        assert!(t.value("8192", "MASK").is_some());
    }

    #[test]
    fn large_pages_rows_present() {
        let t = large_pages(&tiny());
        assert_eq!(t.len(), 2);
        let ideal_4k = t.value("4KB", "Ideal").expect("cell");
        assert!(ideal_4k > 0.0);
    }

    #[test]
    fn demand_paging_and_walker_ablations_run() {
        let t1 = demand_paging(&tiny());
        assert_eq!(t1.len(), 3);
        let t2 = walker_slots(&tiny());
        assert_eq!(t2.len(), 4);
    }

    #[test]
    fn memory_policies_rows_present() {
        let t = memory_policies(&tiny());
        assert_eq!(t.len(), 3);
        for (_, cells) in &t.rows {
            assert!(cells
                .iter()
                .all(|c| c.parse::<f64>().expect("numeric") > 0.0));
        }
    }
}
