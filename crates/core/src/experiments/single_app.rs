//! Figures 5 and 6: single-application translation pressure (§4.1), plus
//! the measured Table 2 classification.
//!
//! * Fig. 5 — "average number of concurrent page table walks (sampled
//!   every 10K cycles)";
//! * Fig. 6 — "average number of stalled warps per active TLB miss";
//!
//! both on the `SharedTLB` baseline with each application running alone.

use super::ExpOptions;
use crate::table::Table;
use mask_common::config::DesignKind;
use mask_workloads::{all_apps, expected_class, AppProfile, ClassifyConfig, TlbClass};

/// Per-application single-run measurements.
#[derive(Clone, Debug)]
pub struct SingleAppRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Fig. 5 metric.
    pub avg_concurrent_walks: f64,
    /// Fig. 5 error-bar top (max observed).
    pub max_concurrent_walks: u64,
    /// Fig. 6 metric.
    pub avg_warps_stalled: f64,
    /// Fig. 6 error-bar top.
    pub max_warps_stalled: u64,
    /// Measured L1 TLB miss rate.
    pub l1_miss: f64,
    /// Measured L2 TLB miss rate.
    pub l2_miss: f64,
}

/// Runs every application alone on the `SharedTLB` baseline, submitting
/// the whole set as one job batch.
pub fn measure(opts: &ExpOptions) -> Vec<SingleAppRow> {
    let runner = opts.runner();
    let mixes: Vec<Vec<&'static AppProfile>> = all_apps().iter().map(|p| vec![p]).collect();
    let outcomes = runner.run_multi_batch(&mixes, &[DesignKind::SharedTlb]);
    all_apps()
        .iter()
        .zip(outcomes)
        .map(|(profile, o)| {
            let a = &o.stats.apps[0];
            SingleAppRow {
                name: profile.name,
                avg_concurrent_walks: a.avg_concurrent_walks(),
                max_concurrent_walks: a.walk_concurrency_max,
                avg_warps_stalled: a.avg_warps_stalled_per_miss(),
                max_warps_stalled: a.stalled_warps_max,
                l1_miss: a.l1_tlb.miss_rate(),
                l2_miss: a.l2_tlb.miss_rate(),
            }
        })
        .collect()
}

/// Fig. 5 table.
pub fn fig05(rows: &[SingleAppRow]) -> Table {
    let mut t = Table::new(
        "Figure 5: average number of concurrent page walks (single-app, SharedTLB)",
        &["app", "avg_walks", "max_walks"],
    );
    for r in rows {
        t.row(
            r.name,
            vec![
                format!("{:.1}", r.avg_concurrent_walks),
                r.max_concurrent_walks.to_string(),
            ],
        );
    }
    t
}

/// Fig. 6 table.
pub fn fig06(rows: &[SingleAppRow]) -> Table {
    let mut t = Table::new(
        "Figure 6: average warps stalled per TLB miss (single-app, SharedTLB)",
        &["app", "avg_stalled", "max_stalled"],
    );
    for r in rows {
        t.row(
            r.name,
            vec![
                format!("{:.1}", r.avg_warps_stalled),
                r.max_warps_stalled.to_string(),
            ],
        );
    }
    t
}

/// Table 2: measured L1/L2 TLB miss-rate classification (functional model,
/// same procedure the paper uses for workload selection).
pub fn tab02() -> Table {
    let cfg = ClassifyConfig {
        ops_per_warp: 250,
        ..ClassifyConfig::default()
    };
    let mut t = Table::new(
        "Table 2: workload categorization by L1/L2 TLB miss rates",
        &["app", "l1_miss", "l2_miss", "class", "paper_class", "match"],
    );
    for app in all_apps() {
        let (l1, l2) = mask_workloads::measure_tlb_rates(app, &cfg);
        let got = TlbClass::from_rates(l1, l2);
        let want = expected_class(app.name).expect("all apps classified");
        let fmt = |c: TlbClass| {
            format!(
                "{}-{}",
                if c.l1_high { "HighL1" } else { "LowL1" },
                if c.l2_high { "HighL2" } else { "LowL2" }
            )
        };
        t.row(
            app.name,
            vec![
                format!("{l1:.3}"),
                format!("{l2:.3}"),
                fmt(got),
                fmt(want),
                if got == want {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_app_measurements_cover_all_apps() {
        let mut opts = ExpOptions::quick();
        opts.cycles = 4_000;
        let rows = measure(&opts);
        assert_eq!(rows.len(), all_apps().len());
        // High-pressure apps generate walks.
        let cons = rows
            .iter()
            .find(|r| r.name == "CONS")
            .expect("CONS present");
        assert!(cons.avg_concurrent_walks > 0.0);
        let f5 = fig05(&rows);
        let f6 = fig06(&rows);
        assert_eq!(f5.len(), rows.len());
        assert_eq!(f6.len(), rows.len());
    }

    #[test]
    fn tab02_classification_matches_everywhere() {
        let t = tab02();
        assert_eq!(t.len(), all_apps().len());
        for (label, cells) in &t.rows {
            assert_eq!(cells[4], "yes", "{label} misclassified: {cells:?}");
        }
    }
}
