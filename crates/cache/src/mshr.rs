//! Miss-status holding registers.
//!
//! MSHRs merge concurrent misses to the same line: the first (primary) miss
//! sends one request down the hierarchy; secondary misses attach as
//! waiters. The paper's Fig. 6 metric — warps stalled per TLB miss — is
//! read straight off the translation MSHRs: "we add a 6-bit counter to each
//! TLB MSHR entry, which tracks the maximum number of warps that hit in the
//! entry" (§5.4).

use mask_common::addr::LineAddr;
use mask_sanitizer::MshrOutcome;

/// One MSHR entry: a pending line plus its waiters.
#[derive(Clone, Debug)]
pub struct MshrEntry<W> {
    /// The line being fetched.
    pub line: LineAddr,
    /// Waiters to notify on fill (the primary miss is `waiters[0]`).
    pub waiters: Vec<W>,
}

/// Outcome of allocating into an MSHR table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MshrAlloc {
    /// First miss on this line: a request must be sent downstream.
    Primary,
    /// Merged into an existing entry: no new downstream request.
    Secondary,
    /// Table full and line not present: caller must stall and retry.
    Full,
}

/// A table of MSHR entries keyed by line address.
#[derive(Debug)]
pub struct MshrTable<W> {
    entries: Vec<MshrEntry<W>>,
    capacity: usize,
    /// Largest waiter count ever held by a single entry.
    peak_waiters: usize,
    /// Component label reported to the sanitizer.
    component: &'static str,
    /// Sanitizer mirror-table id (0 when the sanitizer is disabled).
    san_table: u64,
    /// Recycled waiter vectors: primary allocations pop from here instead of
    /// heap-allocating, and `complete_into` pushes emptied vectors back.
    /// Keeps the steady-state hot path allocation-free.
    pool: Vec<Vec<W>>,
}

impl<W> MshrTable<W> {
    /// Creates a table with room for `capacity` distinct lines.
    pub fn new(capacity: usize) -> Self {
        Self::labelled("mshr", capacity)
    }

    /// Creates a table whose sanitizer diagnostics carry `component`.
    pub fn labelled(component: &'static str, capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR table needs capacity");
        MshrTable {
            entries: Vec::new(),
            capacity,
            peak_waiters: 0,
            component,
            san_table: mask_sanitizer::register_table(component, capacity),
            pool: Vec::new(),
        }
    }

    /// Allocates `waiter` against `line`, merging if already pending.
    pub fn allocate(&mut self, line: LineAddr, waiter: W) -> MshrAlloc {
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.waiters.push(waiter);
            self.peak_waiters = self.peak_waiters.max(e.waiters.len());
            mask_sanitizer::mshr_alloc(
                self.san_table,
                line.0,
                MshrOutcome::Secondary,
                self.entries.len(),
                self.capacity,
            );
            return MshrAlloc::Secondary;
        }
        if self.entries.len() >= self.capacity {
            mask_sanitizer::mshr_alloc(
                self.san_table,
                line.0,
                MshrOutcome::Full,
                self.entries.len(),
                self.capacity,
            );
            return MshrAlloc::Full;
        }
        let mut waiters = self.pool.pop().unwrap_or_default();
        waiters.push(waiter);
        self.entries.push(MshrEntry { line, waiters });
        self.peak_waiters = self.peak_waiters.max(1);
        mask_sanitizer::mshr_alloc(
            self.san_table,
            line.0,
            MshrOutcome::Primary,
            self.entries.len(),
            self.capacity,
        );
        MshrAlloc::Primary
    }

    /// Completes `line`, returning all its waiters (empty if none pending).
    ///
    /// Allocating convenience wrapper around [`MshrTable::complete_into`]
    /// for tests and cold paths; the returned vector is detached from the
    /// table's recycling pool.
    pub fn complete(&mut self, line: LineAddr) -> Vec<W> {
        let mut out = Vec::new();
        self.complete_into(line, &mut out);
        out
    }

    /// Completes `line`, appending its waiters to `out` (not cleared) and
    /// returning how many were appended (0 if no entry was pending).
    ///
    /// The entry's internal waiter vector is recycled into the pool, so the
    /// steady-state allocate/complete cycle performs no heap traffic.
    pub fn complete_into(&mut self, line: LineAddr, out: &mut Vec<W>) -> usize {
        match self.entries.iter().position(|e| e.line == line) {
            Some(i) => {
                let mut waiters = self.entries.swap_remove(i).waiters;
                mask_sanitizer::mshr_fill(self.san_table, line.0, waiters.len(), true);
                let n = waiters.len();
                out.append(&mut waiters);
                self.pool.push(waiters);
                n
            }
            None => {
                mask_sanitizer::mshr_fill(self.san_table, line.0, 0, false);
                0
            }
        }
    }

    /// Whether `line` has a pending entry.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|e| e.line == line)
    }

    /// Number of waiters currently attached to `line` (0 if absent).
    pub fn waiters_on(&self, line: LineAddr) -> usize {
        self.entries
            .iter()
            .find(|e| e.line == line)
            .map_or(0, |e| e.waiters.len())
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are occupied.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the table has no free entries.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Largest waiter count ever held by a single entry.
    pub fn peak_waiters(&self) -> usize {
        self.peak_waiters
    }

    /// Iterates over the occupied entries in table order.
    pub fn entries(&self) -> impl Iterator<Item = &MshrEntry<W>> {
        self.entries.iter()
    }

    /// Re-registers a fresh sanitizer mirror and replays the live entries
    /// into it (shared by [`Clone`] and [`Snapshot::restore`], both of which
    /// must leave the mirror consistent with `entries`).
    fn replay_san_mirror(&mut self) {
        self.san_table = if mask_sanitizer::is_enabled() {
            let id = mask_sanitizer::register_table(self.component, self.capacity);
            for (i, e) in self.entries.iter().enumerate() {
                mask_sanitizer::mshr_alloc(
                    id,
                    e.line.0,
                    MshrOutcome::Primary,
                    i + 1,
                    self.capacity,
                );
                for _ in 1..e.waiters.len() {
                    mask_sanitizer::mshr_alloc(
                        id,
                        e.line.0,
                        MshrOutcome::Secondary,
                        i + 1,
                        self.capacity,
                    );
                }
            }
            id
        } else {
            0
        };
    }
}

impl<W: mask_common::snapshot::SnapField> mask_common::snapshot::Snapshot for MshrTable<W> {
    /// Serializes the occupied entries in table order (lookup uses a linear
    /// scan and completion uses `swap_remove`, so order is behaviorally
    /// significant) plus the peak-waiter statistic. Capacity, component
    /// label, and the recycling pool are construction-time/transient.
    fn snapshot(&self, w: &mut mask_common::snapshot::SnapshotWriter) {
        use mask_common::snapshot::SnapField;
        w.usize(self.peak_waiters);
        w.seq(self.entries.len());
        for e in &self.entries {
            e.line.write(w);
            w.seq(e.waiters.len());
            for waiter in &e.waiters {
                waiter.write(w);
            }
        }
    }

    fn restore(
        &mut self,
        r: &mut mask_common::snapshot::SnapshotReader<'_>,
    ) -> Result<(), mask_common::snapshot::SnapshotError> {
        use mask_common::snapshot::{SnapField, SnapshotError};
        self.peak_waiters = r.usize()?;
        let n = r.seq()?;
        if n > self.capacity {
            return Err(SnapshotError::Malformed("MSHR entries exceed capacity"));
        }
        self.entries.clear();
        for _ in 0..n {
            let line = mask_common::addr::LineAddr::read(r)?;
            let n_waiters = r.seq()?;
            if n_waiters == 0 {
                return Err(SnapshotError::Malformed("MSHR entry without waiters"));
            }
            let mut waiters = self.pool.pop().unwrap_or_default();
            for _ in 0..n_waiters {
                waiters.push(W::read(r)?);
            }
            self.entries.push(MshrEntry { line, waiters });
        }
        self.replay_san_mirror();
        Ok(())
    }
}

impl<W: Clone> Clone for MshrTable<W> {
    /// Clones register a fresh sanitizer mirror and replay the live entries
    /// into it, so a cloned simulator keeps independent MSHR accounting.
    fn clone(&self) -> Self {
        let mut cloned = MshrTable {
            entries: self.entries.clone(),
            capacity: self.capacity,
            peak_waiters: self.peak_waiters,
            component: self.component,
            san_table: 0,
            // The pool is a perf cache, not state: clones start empty.
            pool: Vec::new(),
        };
        cloned.replay_san_mirror();
        cloned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_secondary_then_complete() {
        let mut m: MshrTable<u32> = MshrTable::new(4);
        assert_eq!(m.allocate(LineAddr(1), 10), MshrAlloc::Primary);
        assert_eq!(m.allocate(LineAddr(1), 11), MshrAlloc::Secondary);
        assert_eq!(m.allocate(LineAddr(2), 12), MshrAlloc::Primary);
        assert_eq!(m.waiters_on(LineAddr(1)), 2);
        let w = m.complete(LineAddr(1));
        assert_eq!(w, vec![10, 11]);
        assert!(!m.contains(LineAddr(1)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn full_table_rejects_new_lines_but_merges_existing() {
        let mut m: MshrTable<u32> = MshrTable::new(2);
        assert_eq!(m.allocate(LineAddr(1), 1), MshrAlloc::Primary);
        assert_eq!(m.allocate(LineAddr(2), 2), MshrAlloc::Primary);
        assert!(m.is_full());
        assert_eq!(m.allocate(LineAddr(3), 3), MshrAlloc::Full);
        // Merging into an existing entry is still allowed when full.
        assert_eq!(m.allocate(LineAddr(2), 4), MshrAlloc::Secondary);
    }

    #[test]
    fn complete_absent_line_returns_empty() {
        let mut m: MshrTable<u32> = MshrTable::new(2);
        assert!(m.complete(LineAddr(9)).is_empty());
        assert!(m.is_empty());
    }

    #[test]
    fn peak_waiters_tracks_maximum() {
        let mut m: MshrTable<u32> = MshrTable::new(2);
        for i in 0..7 {
            m.allocate(LineAddr(1), i);
        }
        m.complete(LineAddr(1));
        m.allocate(LineAddr(2), 0);
        assert_eq!(m.peak_waiters(), 7);
    }
}
