//! Daemon configuration, resolved from `MASKD_*` environment variables.
//!
//! This module is the **only** place in `crates/maskd` allowed to read the
//! environment (the `env-determinism` rule of `cargo xtask lint` allowlists
//! exactly this file): every knob is resolved once into a [`DaemonConfig`]
//! at startup, so no request handler or scheduling decision can silently
//! fork behavior on ambient process state. See README.md's environment
//! variable reference for the full `MASK_*`/`MASKD_*` table.

use std::path::PathBuf;

/// Default listen address (`MASKD_ADDR` overrides). Port 0 asks the OS for
/// an ephemeral port; the daemon prints the bound address on startup.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7870";

/// Default bound on jobs queued across all tenants (`MASKD_QUEUE_DEPTH`).
pub const DEFAULT_QUEUE_DEPTH: usize = 256;

/// Default bound on one tenant's queued jobs (`MASKD_TENANT_DEPTH`).
pub const DEFAULT_TENANT_DEPTH: usize = 32;

/// Default per-tenant in-flight cap (`MASKD_INFLIGHT`).
pub const DEFAULT_INFLIGHT: usize = 2;

/// Default deficit-round-robin quantum in simulated cycles
/// (`MASKD_QUANTUM`): one default-length job per tenant per round.
pub const DEFAULT_QUANTUM: u64 = 300_000;

/// Default cap on request bodies in bytes (`MASKD_MAX_BODY`).
pub const DEFAULT_MAX_BODY: usize = 1 << 20;

/// Everything the daemon needs to know at startup, fully resolved.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Listen address, e.g. `127.0.0.1:7870` (`MASKD_ADDR`).
    pub addr: String,
    /// Directory for the persistent result store (`MASKD_STORE_DIR`);
    /// `None` keeps results in memory only (they die with the process).
    pub store_dir: Option<PathBuf>,
    /// Maximum results kept on disk, LRU-evicted (`MASKD_STORE_CAP`);
    /// `None` = unbounded.
    pub store_cap: Option<usize>,
    /// Bound on jobs queued across all tenants; submissions beyond it get
    /// `503 Service Unavailable` (`MASKD_QUEUE_DEPTH`).
    pub queue_depth: usize,
    /// Bound on one tenant's queued jobs; submissions beyond it get
    /// `429 Too Many Requests` (`MASKD_TENANT_DEPTH`).
    pub tenant_depth: usize,
    /// Per-tenant in-flight cap: jobs a tenant may have dispatched into the
    /// pool at once (`MASKD_INFLIGHT`).
    pub inflight: usize,
    /// Deficit-round-robin quantum in simulated cycles per tenant per round
    /// (`MASKD_QUANTUM`). A job's cost is its `max_cycles`.
    pub quantum: u64,
    /// Maximum accepted request body in bytes; larger bodies get
    /// `413 Payload Too Large` (`MASKD_MAX_BODY`).
    pub max_body: usize,
    /// Start with dispatch paused (tests and deterministic queue-order
    /// demos call [`crate::server::DaemonHandle::resume_dispatch`]).
    /// Not environment-driven.
    pub start_paused: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: DEFAULT_ADDR.to_owned(),
            store_dir: None,
            store_cap: None,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            tenant_depth: DEFAULT_TENANT_DEPTH,
            inflight: DEFAULT_INFLIGHT,
            quantum: DEFAULT_QUANTUM,
            max_body: DEFAULT_MAX_BODY,
            start_paused: false,
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

impl DaemonConfig {
    /// Resolves every `MASKD_*` knob from the environment, falling back to
    /// the documented defaults. Called once at daemon startup.
    #[must_use]
    pub fn from_env() -> Self {
        let mut cfg = DaemonConfig::default();
        if let Ok(addr) = std::env::var("MASKD_ADDR") {
            if !addr.is_empty() {
                cfg.addr = addr;
            }
        }
        cfg.store_dir = std::env::var("MASKD_STORE_DIR")
            .ok()
            .filter(|d| !d.is_empty())
            .map(PathBuf::from);
        cfg.store_cap = env_usize("MASKD_STORE_CAP");
        if let Some(v) = env_usize("MASKD_QUEUE_DEPTH") {
            cfg.queue_depth = v.max(1);
        }
        if let Some(v) = env_usize("MASKD_TENANT_DEPTH") {
            cfg.tenant_depth = v.max(1);
        }
        if let Some(v) = env_usize("MASKD_INFLIGHT") {
            cfg.inflight = v.max(1);
        }
        if let Some(v) = env_u64("MASKD_QUANTUM") {
            cfg.quantum = v.max(1);
        }
        if let Some(v) = env_usize("MASKD_MAX_BODY") {
            cfg.max_body = v.max(1024);
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = DaemonConfig::default();
        assert_eq!(cfg.addr, DEFAULT_ADDR);
        assert!(cfg.store_dir.is_none());
        assert!(cfg.queue_depth >= cfg.tenant_depth);
        assert!(!cfg.start_paused);
    }
}
