//! Common foundation types for the MASK GPU memory-hierarchy reproduction.
//!
//! This crate holds everything that more than one subsystem needs:
//!
//! * strongly-typed addresses and identifiers ([`addr`], [`ids`]),
//! * the memory-request representation shared by the TLBs, caches, and the
//!   DRAM model ([`req`]),
//! * the full simulated-system configuration, with presets matching Table 1
//!   of the paper ([`config`]),
//! * simulation statistics counters ([`stats`]),
//! * a small deterministic PRNG so that every experiment is bit-reproducible
//!   without external dependencies ([`rng`]).
//!
//! # Example
//!
//! ```
//! use mask_common::addr::{VirtAddr, PAGE_SIZE_4K_LOG2};
//! use mask_common::ids::Asid;
//!
//! let va = VirtAddr::new(0x7f12_3456_7abc);
//! assert_eq!(va.vpn(PAGE_SIZE_4K_LOG2).0, 0x7f12_3456_7);
//! assert_eq!(va.page_offset(PAGE_SIZE_4K_LOG2), 0xabc);
//! let asid = Asid::new(3);
//! assert_eq!(asid.index(), 3);
//! ```

pub mod addr;
pub mod config;
pub mod ids;
pub mod req;
pub mod rng;
pub mod snapshot;
pub mod stats;

pub use addr::{LineAddr, PhysAddr, Ppn, VirtAddr, Vpn};
// lint: allow(design-predicates) -- crate-root re-export, not a policy decision
pub use config::{DesignKind, DesignSpec, GpuConfig, SimConfig};
pub use ids::{AppId, Asid, CoreId, WarpId};
pub use req::{MemRequest, RequestClass, WalkLevel};
pub use rng::Pcg32;
pub use snapshot::{PrefixKey, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
pub use stats::{AppStats, DramClassStats, SimStats};

/// Current simulation time, measured in core clock cycles.
///
/// The whole simulated system runs in a single clock domain (the 1020 MHz
/// shader clock of Table 1); DRAM timing constants are expressed in core
/// cycles.
pub type Cycle = u64;
