//! mask-lint v2: the `cargo xtask lint` token-aware static analyzer.
//!
//! A zero-dependency, pass-based analysis engine over every
//! `crates/*/src/**/*.rs` file. Sources are first run through the
//! [`lexer`], which classifies every character as code, comment, or
//! string/char-literal content (the v1 scanner was line-oriented and could
//! be fooled by `//` or braces inside string literals); the passes in
//! [`passes`] then search the code view and consult the comment view, so
//! rules never fire inside strings and never miss code after one.
//!
//! | rule id           | what it enforces                                             |
//! |-------------------|--------------------------------------------------------------|
//! | `collections`     | no `HashMap`/`HashSet` in simulator crates (iteration order  |
//! |                   | is seeded per process, which breaks run-to-run determinism;  |
//! |                   | use `BTreeMap`/`BTreeSet`)                                   |
//! | `nondeterminism`  | no wall clock / OS entropy (`Instant::now`, `SystemTime`,    |
//! |                   | `thread_rng`) outside `crates/bench`                         |
//! | `float-accum`     | float accumulation in `stats.rs` files goes through          |
//! |                   | `CompensatedSum` (or is an annotated integer sum)            |
//! | `debug-derive`    | `pub struct`s in `mask-common`'s `req.rs` derive `Debug`     |
//! |                   | (mechanically fixable with `--fix`)                          |
//! | `unwrap`          | no `.unwrap()` / bare `panic!` in library code               |
//! | `parallelism`     | thread primitives only in the parallelism islands:           |
//! |                   | `crates/core/src/engine*`, `crates/gpu/src/shard.rs`,        |
//! |                   | `crates/gpu/src/spec.rs`, `crates/obs/src/ring.rs`,          |
//! |                   | `crates/maskd` (a threaded network daemon), and              |
//! |                   | `crates/bench`                                               |
//! | `hotpath`         | no heap traffic (`vec![`, `Vec::new()`, `.clone()`,          |
//! |                   | `.collect`) in the per-cycle hot files outside constructors  |
//! | `unsafe-audit`    | `unsafe` only inside the parallelism islands, and every use  |
//! |                   | carries a `// SAFETY:` (or `# Safety` doc) justification     |
//! | `atomic-ordering` | every `Ordering::*` use carries an ordering-justification    |
//! |                   | comment; `SeqCst` in a hot file must be justified by name    |
//! | `stale-allow`     | a `// lint: allow(R)` that no longer suppresses anything is  |
//! |                   | itself an error (fixable with `--fix`)                       |
//! | `design-predicates` | `DesignKind` stays out of the simulator layers: presets    |
//! |                   | live in `crates/common/src/config.rs` and the experiment /   |
//! |                   | bench harnesses; layers consume `DesignSpec` axes            |
//! | `env-determinism` | environment reads (`env::var*`) only in the designated       |
//! |                   | config entry points, so no stage of the cycle loop can fork  |
//! |                   | behavior on the environment mid-run                          |
//!
//! Test code is exempt: items guarded by `#[cfg(test)]` (including nested
//! guarded items, guarded `use` statements, and spans containing braces
//! inside strings) are masked out. Any line can opt out of rule `R` with
//! `// lint: allow(R)` on the same line or the line directly above — and
//! the `stale-allow` pass guarantees those annotations cannot rot.

pub(crate) mod lexer;
pub(crate) mod output;
pub(crate) mod passes;

use lexer::Line;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Violation {
    /// File the violation is in.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// 1-based char column of the offending token (1 when unknown).
    pub col: usize,
    /// Rule identifier (usable in `// lint: allow(<rule>)`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Mechanical fix, when the rule is auto-fixable (`--fix`).
    pub fix: Option<Fix>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.col,
            self.rule,
            self.message
        )
    }
}

/// A mechanical edit that resolves a violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Fix {
    /// Delete the violation's whole line (a stale annotation on its own).
    DeleteLine,
    /// Truncate the line at this byte offset, right-trimmed (a stale
    /// trailing annotation).
    TruncateAt(usize),
    /// Insert this text as a new line directly above the violation.
    InsertAbove(String),
}

/// One `// lint: allow(rule)` annotation, tracked so unused ones rot into
/// `stale-allow` violations instead of lingering silently.
struct Allow {
    rule: String,
    /// 0-based line the annotation is on (covers this line and the next).
    line: usize,
    used: Cell<bool>,
}

/// Per-file context handed to every pass.
pub(crate) struct FileCtx<'a> {
    /// Crate name (the `crates/<name>` component), or empty.
    pub krate: String,
    /// File name (`stats.rs`, `req.rs` scoping).
    pub file_name: String,
    /// The scanned lines.
    pub lines: &'a [Line],
    /// Lines inside constructor fns (hot files only; empty otherwise).
    pub ctor_mask: &'a [bool],
    /// This file is one of the per-cycle hot files.
    pub hot_file: bool,
    /// This file is a declared parallelism island.
    pub island: bool,
    /// This file is a designated environment-read entry point.
    pub env_entry: bool,
}

/// Collects violations, applying the `#[cfg(test)]` mask and consuming
/// `lint: allow` annotations.
pub(crate) struct Sink<'a> {
    path: &'a Path,
    test_mask: &'a [bool],
    allows: &'a [Allow],
    out: Vec<Violation>,
}

impl Sink<'_> {
    /// Reports one violation at 0-based `line`/`col`, unless the line is
    /// test-masked or an allow annotation covers it.
    pub(crate) fn report(
        &mut self,
        line: usize,
        col: usize,
        rule: &'static str,
        message: String,
        fix: Option<Fix>,
    ) {
        if self.test_mask.get(line).copied().unwrap_or(false) {
            return;
        }
        // Same-line annotations take precedence over line-above ones, so a
        // violation never consumes the annotation of the line above it when
        // it carries its own.
        for dist in [0usize, 1] {
            for a in self.allows {
                if a.rule == rule && a.line + dist == line {
                    a.used.set(true);
                    return;
                }
            }
        }
        self.out.push(Violation {
            path: self.path.to_path_buf(),
            line: line + 1,
            col: col + 1,
            rule,
            message,
            fix,
        });
    }
}

/// Files whose per-cycle code must stay allocation-free (the `hotpath`
/// rule) and where `SeqCst` is a smell. Matched as path suffixes.
///
/// The snapshot codec (`crates/common/src/snapshot.rs`) is deliberately
/// *not* registered here: checkpoint encoding/decoding runs only at
/// epoch-boundary snapshot points, never inside the per-cycle loop, so
/// it may allocate freely (the fixture tests pin this decision down).
///
/// The speculative segment runner (`crates/gpu/src/spec.rs`) *is*
/// registered: its commit/verify loop sits between detailed segment runs
/// and executes once per segment boundary per run, so a stray allocation
/// there multiplies by the segment count on every speculative batch job.
pub(crate) const HOTPATH_FILES: [&str; 7] = [
    "crates/gpu/src/sim.rs",
    "crates/gpu/src/shard.rs",
    "crates/gpu/src/spec.rs",
    "crates/gpu/src/translation.rs",
    "crates/cache/src/l2.rs",
    "crates/dram/src/queues.rs",
    "crates/obs/src/hooks.rs",
];

/// Designated environment-read entry points (the `env-determinism` rule):
/// the shared config module, the tracer's gate/exporter, the job engine
/// (which resolves `MASK_SNAPSHOT_DIR` once when the process-wide prefix
/// cache is built), and the daemon's config module (which resolves every
/// `MASKD_*` knob once at boot — the server/queue/store layers must take
/// a `DaemonConfig`, never read the environment themselves).
/// `crates/bench` is exempt as a whole (wall-clock-facing harness code).
pub(crate) const ENV_ENTRY_FILES: [&str; 5] = [
    "crates/common/src/config.rs",
    "crates/obs/src/ring.rs",
    "crates/obs/src/export.rs",
    "crates/core/src/engine.rs",
    "crates/maskd/src/config.rs",
];

/// Which crate (the `crates/<name>` component) a path belongs to, if any.
fn crate_of(path: &Path) -> Option<String> {
    let mut comps = path.components().map(|c| c.as_os_str().to_string_lossy());
    while let Some(c) = comps.next() {
        if c == "crates" {
            return comps.next().map(std::borrow::Cow::into_owned);
        }
    }
    None
}

/// True when the attribute line guards test-only code: `#[cfg(test)]` or a
/// conjunction containing `test` (but not `not(test)`).
fn is_cfg_test(code: &str) -> bool {
    let t = code.trim();
    t.starts_with("#[cfg(") && contains_word(t, "test") && !t.contains("not(test")
}

/// True when `hay` contains `word` with non-identifier chars on both sides.
pub(crate) fn contains_word(hay: &str, word: &str) -> bool {
    find_word(hay, word).is_some()
}

/// Position of the first identifier-boundary occurrence of `word`.
pub(crate) fn find_word(hay: &str, word: &str) -> Option<usize> {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(p) = hay[from..].find(word) {
        let p = from + p;
        let before_ok = !hay[..p].chars().next_back().is_some_and(ident);
        let after_ok = !hay[p + word.len()..].chars().next().is_some_and(ident);
        if before_ok && after_ok {
            return Some(p);
        }
        from = p + word.len();
    }
    None
}

/// Lines of the file that are test-only: anything covered by a
/// `#[cfg(test)]` attribute — the guarded brace span, or the guarded
/// single item (e.g. a `use`) for bodyless items. Brace counting runs on
/// the code view, so braces inside strings cannot corrupt the span, and
/// nested guarded items inside an already-masked span are handled.
fn test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if mask[i] || !is_cfg_test(&lines[i].code) {
            i += 1;
            continue;
        }
        mask[i] = true;
        // Skip any further attributes, then cover the guarded item.
        let mut j = i + 1;
        while j < lines.len() && lines[j].code.trim_start().starts_with("#[") {
            mask[j] = true;
            j += 1;
        }
        let mut depth: i64 = 0;
        let mut saw_open = false;
        while j < lines.len() {
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        saw_open = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            mask[j] = true;
            let done = (saw_open && depth <= 0)
                || (!saw_open && depth == 0 && lines[j].code.contains(';'));
            j += 1;
            if done {
                break;
            }
        }
        i = j;
    }
    mask
}

/// Lines inside constructor functions (`fn new*`, `fn with_*`,
/// `fn default`), where one-time allocation is expected and allowed.
fn ctor_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let is_ctor = ["fn new", "fn with_", "fn default"]
            .iter()
            .any(|p| lines[i].code.contains(p));
        if !is_ctor {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut saw_open = false;
        let mut j = i;
        while j < lines.len() {
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        saw_open = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            mask[j] = true;
            j += 1;
            if saw_open && depth <= 0 {
                break;
            }
        }
        i = j;
    }
    mask
}

/// Extracts every `lint: allow(rule)` annotation from the comment views.
fn collect_allows(lines: &[Line]) -> Vec<Allow> {
    const TAG: &str = "lint: allow(";
    let mut allows = Vec::new();
    for (i, l) in lines.iter().enumerate() {
        let mut rest = l.comment.as_str();
        while let Some(p) = rest.find(TAG) {
            rest = &rest[p + TAG.len()..];
            if let Some(end) = rest.find(')') {
                allows.push(Allow {
                    rule: rest[..end].trim().to_string(),
                    line: i,
                    used: Cell::new(false),
                });
                rest = &rest[end..];
            }
        }
    }
    allows
}

/// Scans one source file and returns every violation in it, sorted by
/// line then column.
pub(crate) fn lint_source(path: &Path, contents: &str) -> Vec<Violation> {
    let lines = lexer::scan(contents);
    let mask = test_mask(&lines);
    let norm = path.to_string_lossy().replace('\\', "/");
    let krate = crate_of(path).unwrap_or_default();
    let hot_file = passes::is_hot_file(&norm);
    let ctors = if hot_file {
        ctor_mask(&lines)
    } else {
        Vec::new()
    };
    let engine_file = krate == "core" && norm.contains("src/engine");
    let island = krate == "bench"
        || engine_file
        // The daemon is a threaded network server end to end (acceptor,
        // per-connection handlers, dispatcher, condvar-held event
        // streams): the whole crate is a declared island.
        || krate == "maskd"
        || norm.ends_with("crates/gpu/src/shard.rs")
        || norm.ends_with("crates/gpu/src/spec.rs")
        || norm.ends_with("crates/obs/src/ring.rs");
    let env_entry = krate == "bench" || ENV_ENTRY_FILES.iter().any(|f| norm.ends_with(f));
    let ctx = FileCtx {
        krate,
        file_name: path
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_default(),
        lines: &lines,
        ctor_mask: &ctors,
        hot_file,
        island,
        env_entry,
    };
    let allows = collect_allows(&lines);
    let mut sink = Sink {
        path,
        test_mask: &mask,
        allows: &allows,
        out: Vec::new(),
    };
    for pass in passes::PASSES {
        pass(&ctx, &mut sink);
    }
    // stale-allow runs last, over the engine's own usage ledger. Plain
    // annotations are checked first so that an `allow(stale-allow)` which
    // shields one of them is marked used before its own staleness check.
    let stale_last = |a: &&Allow| usize::from(a.rule == "stale-allow");
    let mut ordered: Vec<&Allow> = allows.iter().collect();
    ordered.sort_by_key(stale_last);
    for a in ordered {
        if a.used.get() || mask[a.line] {
            continue;
        }
        let l = &lines[a.line];
        let fix = l.comment_start.map(|cs| {
            if l.raw[..cs].trim().is_empty() {
                Fix::DeleteLine
            } else {
                Fix::TruncateAt(cs)
            }
        });
        sink.report(
            a.line,
            l.comment_start.unwrap_or(0),
            "stale-allow",
            format!(
                "`lint: allow({})` no longer suppresses any violation; remove \
                 the annotation (or fix its rule name) — `--fix` does this",
                a.rule
            ),
            fix,
        );
    }
    let mut out = sink.out;
    out.sort_by_key(|v| (v.line, v.col, v.rule));
    out
}

/// Recursively lints every `.rs` file under `crates/*/src` in `root`.
///
/// # Errors
///
/// Returns an error when the workspace layout cannot be read.
pub(crate) fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            lint_tree(&src, &mut out)?;
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    Ok(out)
}

fn lint_tree(dir: &Path, out: &mut Vec<Violation>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            lint_tree(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let contents = std::fs::read_to_string(&path)?;
            out.extend(lint_source(&path, &contents));
        }
    }
    Ok(())
}

/// Applies every mechanical fix in `violations` to the files on disk.
/// Returns one log line per applied fix.
///
/// # Errors
///
/// Propagates filesystem errors from reading or rewriting a fixed file.
pub(crate) fn apply_fixes(violations: &[Violation]) -> std::io::Result<Vec<String>> {
    let mut by_file: BTreeMap<&PathBuf, Vec<&Violation>> = BTreeMap::new();
    for v in violations {
        if v.fix.is_some() {
            by_file.entry(&v.path).or_default().push(v);
        }
    }
    let mut log = Vec::new();
    for (path, mut fixes) in by_file {
        let contents = std::fs::read_to_string(path)?;
        let had_final_newline = contents.ends_with('\n');
        let mut lines: Vec<String> = contents.lines().map(str::to_string).collect();
        // Bottom-up so earlier line numbers stay valid.
        fixes.sort_by_key(|v| std::cmp::Reverse(v.line));
        fixes.dedup_by_key(|v| v.line);
        for v in fixes {
            let idx = v.line - 1;
            match v.fix.as_ref().expect("only fixable violations collected") {
                Fix::DeleteLine => {
                    lines.remove(idx);
                    log.push(format!(
                        "{}:{}: removed line ({})",
                        path.display(),
                        v.line,
                        v.rule
                    ));
                }
                Fix::TruncateAt(byte) => {
                    let kept = lines[idx][..*byte].trim_end().to_string();
                    lines[idx] = kept;
                    log.push(format!(
                        "{}:{}: stripped trailing annotation ({})",
                        path.display(),
                        v.line,
                        v.rule
                    ));
                }
                Fix::InsertAbove(text) => {
                    lines.insert(idx, text.clone());
                    log.push(format!(
                        "{}:{}: inserted `{}` ({})",
                        path.display(),
                        v.line,
                        text.trim(),
                        v.rule
                    ));
                }
            }
        }
        let mut rebuilt = lines.join("\n");
        if had_final_newline {
            rebuilt.push('\n');
        }
        std::fs::write(path, rebuilt)?;
    }
    Ok(log)
}

#[cfg(test)]
mod tests;
