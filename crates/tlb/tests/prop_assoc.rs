//! Property tests: the set-associative array behaves like a reference
//! model (per-set LRU map) under arbitrary operation sequences.

use mask_tlb::AssocArray;
use proptest::prelude::*;
use std::collections::HashMap;

/// Reference model: an unbounded map plus per-key access stamps; evictions
/// are checked only through the invariant that a *recently touched* subset
/// of keys (within associativity) always survives.
#[derive(Debug, Clone)]
enum Op {
    Fill(u8, u8),
    Probe(u8),
    Invalidate(u8),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Fill(k, v)),
            any::<u8>().prop_map(Op::Probe),
            any::<u8>().prop_map(Op::Invalidate),
        ],
        0..300,
    )
}

proptest! {
    /// A probe never observes a value that was not the most recent fill.
    #[test]
    fn probes_return_latest_fill(ops in ops()) {
        let mut arr: AssocArray<u8, u8> = AssocArray::new(32, 4);
        let mut latest: HashMap<u8, u8> = HashMap::new();
        for op in ops {
            match op {
                Op::Fill(k, v) => {
                    arr.fill(k, v);
                    latest.insert(k, v);
                }
                Op::Probe(k) => {
                    if let Some(v) = arr.probe(&k) {
                        prop_assert_eq!(Some(&v), latest.get(&k), "stale value for {}", k);
                    }
                }
                Op::Invalidate(k) => {
                    arr.invalidate(&k);
                    latest.remove(&k);
                }
            }
            prop_assert!(arr.len() <= arr.capacity());
        }
    }

    /// Fully-associative arrays below capacity never evict.
    #[test]
    fn no_eviction_below_capacity(keys in proptest::collection::hash_set(any::<u16>(), 0..64)) {
        let mut arr: AssocArray<u16, u16> = AssocArray::new(64, 64);
        for &k in &keys {
            prop_assert!(arr.fill(k, k).is_none(), "eviction below capacity");
        }
        for &k in &keys {
            prop_assert_eq!(arr.probe(&k), Some(k));
        }
    }

    /// The most recently touched key of a set is never the next eviction
    /// victim (LRU property).
    #[test]
    fn mru_key_survives_one_fill(seed_keys in proptest::collection::vec(any::<u8>(), 1..50), newcomer: u8) {
        let mut arr: AssocArray<u8, u8> = AssocArray::new(8, 8);
        for &k in &seed_keys {
            arr.fill(k, k);
        }
        let mru = *seed_keys.last().expect("non-empty");
        arr.probe(&mru);
        if newcomer != mru {
            arr.fill(newcomer, newcomer);
            prop_assert!(arr.peek(&mru).is_some(), "MRU key {} evicted", mru);
        }
    }
}
