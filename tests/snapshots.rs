//! Checkpoint/restore must be invisible in the results.
//!
//! `GpuSim` can seal its full dynamic state into a versioned, checksummed
//! snapshot at any epoch-safe point and restore it into a freshly
//! constructed simulator (`mask_common::snapshot`). These properties pin
//! the contract behind the engine's warm-up `PrefixCache`: for every
//! design preset, `snapshot → codec round-trip → restore → run(k)` is
//! **byte-identical** to the straight-through `run(n + k)` — same
//! `SimStats`, same re-encoded snapshot bytes — at every shard count and
//! with the observability hooks on or off. Damaged envelopes (corrupted,
//! truncated, version-bumped, or wrong-keyed bytes) are rejected with an
//! error, never silently restored.

use mask_common::snapshot::{PrefixKey, SnapshotError};
use mask_core::prelude::*;
use proptest::prelude::*;

/// A short epoch so the straddled run lengths below cross boundaries.
const EPOCH: u64 = 2_000;

/// Builds a small two-app simulation (4 cores, 16 warps/core).
fn build(design: DesignKind, seed: u64, cycles: u64, shards: usize) -> GpuSim {
    let mut cfg = SimConfig::new(design)
        .with_max_cycles(cycles)
        .with_sm_shards(shards);
    cfg.seed = seed;
    cfg.gpu.n_cores = 4;
    cfg.gpu.warps_per_core = 16;
    cfg.gpu.mask.epoch_cycles = EPOCH;
    let specs: Vec<AppSpec> = [("HISTO", 2), ("GUP", 2)]
        .iter()
        .map(|&(name, n_cores)| AppSpec {
            profile: app_by_name(name).expect("known app"),
            n_cores,
        })
        .collect();
    GpuSim::new(&cfg, &specs)
}

/// The round-trip property for one configuration: run the prefix, seal,
/// restore into a fresh machine, run the suffix, and compare everything
/// against the straight-through oracle.
fn assert_round_trip(design: DesignKind, seed: u64, prefix: u64, suffix: u64, shards: usize) {
    let key = PrefixKey(seed ^ 0xA5A5);
    let total = prefix + suffix;

    let mut oracle = build(design, seed, total, shards);
    oracle.run(total);
    oracle.sync_stats();

    let mut warm = build(design, seed, total, shards);
    warm.run(prefix);
    let bytes = warm.encode_snapshot(key);

    let mut resumed = build(design, seed, total, shards);
    resumed
        .restore_snapshot(&bytes, key)
        .expect("round-tripped snapshot restores");
    resumed.run(suffix);
    resumed.sync_stats();

    assert_eq!(
        oracle.stats(),
        resumed.stats(),
        "{design} seed={seed} shards={shards}: restore→run({suffix}) diverged from run({total})"
    );
    // Byte-level witness: the *entire machine state*, not just the
    // counters, is identical (both endpoints are epoch-safe by choice of
    // prefix/suffix).
    assert_eq!(
        oracle.encode_snapshot(key),
        resumed.encode_snapshot(key),
        "{design} seed={seed} shards={shards}: final machine states differ"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The core property, across every design preset, at the serial and a
    /// sharded frontend, with the obs hooks' runtime gate off and on
    /// (tracing reads simulation state but must never influence it; in
    /// builds without the `obs` feature the gate is inert).
    #[test]
    fn restore_then_run_is_byte_identical(seed in 0u64..1_000) {
        for obs in [false, true] {
            mask_obs::set_runtime(Some(obs));
            for design in DesignKind::ALL {
                for shards in [1usize, 4] {
                    // prefix = one epoch, suffix to the next boundary:
                    // both snapshot points are epoch-safe.
                    assert_round_trip(design, seed, EPOCH, EPOCH, shards);
                }
            }
        }
        mask_obs::set_runtime(Some(false));
    }

    /// Pre-first-epoch snapshot points (every cycle before the first
    /// boundary is epoch-safe): the restore contract does not depend on
    /// epoch alignment of the cut.
    #[test]
    fn early_cuts_round_trip(cut in 1u64..EPOCH) {
        assert_round_trip(DesignKind::Mask, 11, cut, 2 * EPOCH - cut, 1);
    }
}

#[test]
fn damaged_envelopes_are_rejected() {
    let key = PrefixKey(99);
    let mut sim = build(DesignKind::Mask, 5, 2 * EPOCH, 1);
    sim.run(EPOCH);
    let bytes = sim.encode_snapshot(key);

    // Wrong key: sealed under `key`, opened expecting another.
    let mut fresh = build(DesignKind::Mask, 5, 2 * EPOCH, 1);
    assert!(matches!(
        fresh.restore_snapshot(&bytes, PrefixKey(100)),
        Err(SnapshotError::KeyMismatch { .. })
    ));

    // Truncation, anywhere: header-only and mid-payload cuts.
    for cut in [bytes.len() / 2, 16, 0] {
        let mut fresh = build(DesignKind::Mask, 5, 2 * EPOCH, 1);
        assert!(
            fresh.restore_snapshot(&bytes[..cut], key).is_err(),
            "truncation to {cut} bytes must be rejected"
        );
    }

    // A flipped payload byte fails the checksum.
    let mut corrupt = bytes.clone();
    let mid = 32 + (corrupt.len() - 32) / 2;
    corrupt[mid] ^= 0x01;
    let mut fresh = build(DesignKind::Mask, 5, 2 * EPOCH, 1);
    assert!(matches!(
        fresh.restore_snapshot(&corrupt, key),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));

    // A future format version is rejected up front (bytes 4..8 hold the
    // little-endian codec version).
    let mut vbump = bytes.clone();
    vbump[4] = vbump[4].wrapping_add(1);
    let mut fresh = build(DesignKind::Mask, 5, 2 * EPOCH, 1);
    assert!(matches!(
        fresh.restore_snapshot(&vbump, key),
        Err(SnapshotError::BadVersion { .. })
    ));

    // A scribbled magic is not a snapshot at all.
    let mut garbage = bytes;
    garbage[0] = b'X';
    let mut fresh = build(DesignKind::Mask, 5, 2 * EPOCH, 1);
    assert!(matches!(
        fresh.restore_snapshot(&garbage, key),
        Err(SnapshotError::BadMagic(_))
    ));
}

/// The sampled-run mode reports an error band that brackets (or at least
/// stays close to) the serial oracle — a smoke check at workspace level;
/// the tight accuracy property lives in `mask-gpu`'s unit tests.
#[test]
fn sampled_mode_reports_plausible_bands() {
    let mut sampled = build(DesignKind::Mask, 21, 40_000, 1);
    let out = sampled.run_sampled(40_000, 2_000, 2_000);
    assert_eq!(out.detailed_cycles + out.skipped_cycles, 40_000);
    assert!(out.windows >= 10);
    let mut oracle = build(DesignKind::Mask, 21, 40_000, 1);
    oracle.run(40_000);
    oracle.sync_stats();
    for app in 0..oracle.n_apps() {
        let exact = oracle.instructions(app) as f64;
        let est = out.est_instructions[app];
        let band = out.error_band[app].max(exact * 0.05);
        assert!(
            (est - exact).abs() <= band.max(exact * 0.25),
            "app {app}: estimate {est:.0} ± {band:.0} too far from oracle {exact:.0}"
        );
    }
}
