//! Machine-readable output for mask-lint: `--format json` and
//! `--format sarif`.
//!
//! The SARIF document follows the 2.1.0 shape GitHub code scanning
//! consumes: one run, a `tool.driver` carrying the full rule table (ids,
//! short/full descriptions, default level), and one `result` per violation
//! with a `physicalLocation` whose `artifactLocation.uri` is
//! repo-relative (`uriBaseId: %SRCROOT%`), so CI can upload the file
//! directly and GitHub renders inline annotations. Everything is emitted
//! by hand — the linter stays zero-dependency.

use super::passes::RULES;
use super::Violation;
use std::path::Path;

/// Escapes `s` for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `path` relative to `root`, with forward slashes (a SARIF/JSON URI).
fn rel_uri(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Index of a rule id in [`RULES`] (the SARIF `ruleIndex`).
fn rule_index(id: &str) -> usize {
    RULES
        .iter()
        .position(|r| r.id == id)
        .expect("every violation carries a registered rule id")
}

/// The mask-lint native JSON report.
pub(crate) fn json(root: &Path, violations: &[Violation]) -> String {
    let mut out = String::from(
        "{\n  \"tool\": \"mask-lint\",\n  \"version\": \"2.0.0\",\n  \"violations\": [",
    );
    for (n, v) in violations.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\", \"fixable\": {}}}",
            esc(&rel_uri(root, &v.path)),
            v.line,
            v.col,
            esc(v.rule),
            esc(&v.message),
            v.fix.is_some()
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// A SARIF 2.1.0 report suitable for GitHub code-scanning upload.
pub(crate) fn sarif(root: &Path, violations: &[Violation]) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \"name\": \"mask-lint\",\n          \"version\": \"2.0.0\",\n          \"informationUri\": \"https://github.com/mask-repro/mask\",\n          \"rules\": [",
    );
    for (n, r) in RULES.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"fullDescription\": {{\"text\": \"{}\"}}, \
             \"defaultConfiguration\": {{\"level\": \"error\"}}}}",
            esc(r.id),
            esc(r.short),
            esc(r.help)
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (n, v) in violations.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\"ruleId\": \"{}\", \"ruleIndex\": {}, \"level\": \"error\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\", \"uriBaseId\": \"%SRCROOT%\"}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}",
            esc(v.rule),
            rule_index(v.rule),
            esc(&v.message),
            esc(&rel_uri(root, &v.path)),
            v.line,
            v.col
        ));
    }
    out.push_str("\n      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    /// A minimal JSON syntax checker: consumes one value, panicking on any
    /// malformed construct. Enough to prove the hand-rolled emitters
    /// produce well-formed documents without pulling in a JSON dependency.
    fn check_json(s: &str) {
        let b = s.as_bytes();
        let end = value(b, skip_ws(b, 0));
        assert_eq!(
            skip_ws(b, end),
            b.len(),
            "trailing garbage after JSON value"
        );
    }

    fn skip_ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && (b[i] as char).is_ascii_whitespace() {
            i += 1;
        }
        i
    }

    fn value(b: &[u8], i: usize) -> usize {
        match b.get(i) {
            Some(b'{') => object(b, i),
            Some(b'[') => array(b, i),
            Some(b'"') => string(b, i),
            Some(b't') => lit(b, i, "true"),
            Some(b'f') => lit(b, i, "false"),
            Some(b'n') => lit(b, i, "null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
            other => panic!("unexpected token {other:?} at byte {i}"),
        }
    }

    fn lit(b: &[u8], i: usize, word: &str) -> usize {
        assert_eq!(&b[i..i + word.len()], word.as_bytes());
        i + word.len()
    }

    fn number(b: &[u8], mut i: usize) -> usize {
        if b[i] == b'-' {
            i += 1;
        }
        let start = i;
        while i < b.len()
            && (b[i].is_ascii_digit() || matches!(b[i], b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            i += 1;
        }
        assert!(i > start, "empty number at byte {i}");
        i
    }

    fn string(b: &[u8], mut i: usize) -> usize {
        assert_eq!(b[i], b'"');
        i += 1;
        while i < b.len() {
            match b[i] {
                b'"' => return i + 1,
                b'\\' => i += 2,
                c => {
                    assert!(c >= 0x20, "unescaped control char in string");
                    i += 1;
                }
            }
        }
        panic!("unterminated string");
    }

    fn object(b: &[u8], mut i: usize) -> usize {
        assert_eq!(b[i], b'{');
        i = skip_ws(b, i + 1);
        if b[i] == b'}' {
            return i + 1;
        }
        loop {
            i = string(b, skip_ws(b, i));
            i = skip_ws(b, i);
            assert_eq!(b[i], b':');
            i = skip_ws(b, value(b, skip_ws(b, i + 1)));
            match b[i] {
                b',' => i = skip_ws(b, i + 1),
                b'}' => return i + 1,
                c => panic!("unexpected {:?} in object", c as char),
            }
        }
    }

    fn array(b: &[u8], mut i: usize) -> usize {
        assert_eq!(b[i], b'[');
        i = skip_ws(b, i + 1);
        if b[i] == b']' {
            return i + 1;
        }
        loop {
            i = skip_ws(b, value(b, i));
            match b[i] {
                b',' => i = skip_ws(b, i + 1),
                b']' => return i + 1,
                c => panic!("unexpected {:?} in array", c as char),
            }
        }
    }

    fn sample() -> (PathBuf, Vec<Violation>) {
        let root = PathBuf::from("/repo");
        let violations = vec![
            Violation {
                path: PathBuf::from("/repo/crates/tlb/src/l1.rs"),
                line: 3,
                col: 7,
                rule: "collections",
                message: "a \"quoted\" message with a\nnewline and a \\ backslash".into(),
                fix: None,
            },
            Violation {
                path: PathBuf::from("/repo/crates/common/src/req.rs"),
                line: 10,
                col: 1,
                rule: "debug-derive",
                message: "missing Debug".into(),
                fix: Some(super::super::Fix::InsertAbove("#[derive(Debug)]".into())),
            },
        ];
        (root, violations)
    }

    #[test]
    fn json_report_is_well_formed_and_repo_relative() {
        let (root, v) = sample();
        let doc = json(&root, &v);
        check_json(&doc);
        assert!(
            doc.contains("\"crates/tlb/src/l1.rs\""),
            "repo-relative path"
        );
        assert!(doc.contains("\"fixable\": true"));
        assert!(doc.contains("\\\"quoted\\\""), "escaped quotes: {doc}");
    }

    #[test]
    fn sarif_report_has_the_code_scanning_shape() {
        let (root, v) = sample();
        let doc = sarif(&root, &v);
        check_json(&doc);
        // The SARIF 2.1.0 envelope.
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert!(doc.contains("sarif-schema-2.1.0"));
        // Driver carries the full rule table.
        assert!(doc.contains("\"name\": \"mask-lint\""));
        for r in RULES {
            assert!(
                doc.contains(&format!("\"id\": \"{}\"", r.id)),
                "rule {}",
                r.id
            );
        }
        // Results reference rules by id + index and locate the violation.
        assert!(doc.contains("\"ruleId\": \"collections\""));
        assert!(doc.contains(&format!(
            "\"ruleIndex\": {}",
            super::rule_index("collections")
        )));
        assert!(doc.contains("\"uri\": \"crates/tlb/src/l1.rs\""));
        assert!(doc.contains("\"uriBaseId\": \"%SRCROOT%\""));
        assert!(doc.contains("\"startLine\": 3"));
        assert!(doc.contains("\"startColumn\": 7"));
        assert!(doc.contains("\"level\": \"error\""));
    }

    #[test]
    fn empty_reports_are_still_valid_json() {
        let root = PathBuf::from("/repo");
        check_json(&json(&root, &[]));
        check_json(&sarif(&root, &[]));
    }

    #[test]
    fn sarif_rule_index_is_stable_for_every_rule() {
        for (n, r) in RULES.iter().enumerate() {
            assert_eq!(rule_index(r.id), n);
        }
    }
}
