//! Per-thread ring buffers, the process-wide collection sink, and the
//! `MASK_TRACE` runtime gate.
//!
//! This module is the **only** place in `mask-obs` (and, outside the job
//! engine / shard pool / bench crate, the only place in the workspace) that
//! may hold thread primitives — the `parallelism` rule of `cargo xtask
//! lint` allowlists exactly this file. The hook functions in
//! [`crate::hooks`] stay lock-free on the recording path: each thread
//! writes into its own fixed-capacity ring (overwrite-oldest, with a
//! dropped-record counter) and only [`flush_events`] — called at coarse
//! points such as the end of a shard's cycle slice — takes the sink lock.
//!
//! Capacity defaults to [`DEFAULT_CAPACITY`] records per thread and can be
//! overridden with the `MASK_TRACE_BUF` environment variable.

/// Default per-thread ring capacity in records (`MASK_TRACE_BUF` overrides).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

#[cfg(feature = "enabled")]
pub(crate) use active::{
    add_merge_wait, add_stage, flush_events, push_frame, push_span, record, record_depth, reset,
    runtime_enabled, set_cycle, set_runtime, take_frames, take_snapshot,
};

#[cfg(feature = "enabled")]
mod active {
    use crate::event::{Event, QueueKind, Record, N_QUEUE_KINDS};
    use crate::export::TraceData;
    use crate::profile::Span;
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU8, Ordering};
    use std::sync::Mutex;

    /// Runtime gate: 0 = consult `MASK_TRACE`, 1 = forced off, 2 = forced
    /// on, 3 = env said off (cached), 4 = env said on (cached).
    static RUNTIME: AtomicU8 = AtomicU8::new(0);

    #[inline(always)]
    pub(crate) fn runtime_enabled() -> bool {
        // Relaxed ordering: the gate is a single flag with no associated
        // data to publish; a racing thread at worst re-reads the env once.
        match RUNTIME.load(Ordering::Relaxed) {
            2 | 4 => true,
            1 | 3 => false,
            _ => {
                let on = std::env::var("MASK_TRACE").is_ok_and(|v| !v.is_empty() && v != "0");
                // Relaxed ordering: caching an idempotent env probe; every
                // thread that races here computes the same value.
                RUNTIME.store(if on { 4 } else { 3 }, Ordering::Relaxed);
                on
            }
        }
    }

    pub(crate) fn set_runtime(on: Option<bool>) {
        let state = match on {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        };
        // Relaxed ordering: the gate synchronizes nothing — rings observe
        // the new state on their next probe, which is all callers need.
        RUNTIME.store(state, Ordering::Relaxed);
    }

    fn ring_capacity() -> usize {
        std::env::var("MASK_TRACE_BUF")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(super::DEFAULT_CAPACITY)
    }

    /// One thread's fixed-capacity event buffer plus its per-thread trace
    /// state (current cycle stamp, queue-depth dedup table).
    struct Ring {
        buf: Vec<Record>,
        /// Fixed record capacity (`Vec::with_capacity` only promises "at
        /// least", so the wrap point is tracked explicitly).
        cap: usize,
        /// Index of the oldest record once the buffer has wrapped.
        start: usize,
        dropped: u64,
        cycle: u64,
        /// Last emitted depth per [`QueueKind`]; `-1` = none yet.
        last_depth: [i64; N_QUEUE_KINDS],
    }

    impl Ring {
        fn new() -> Self {
            let cap = ring_capacity();
            Ring {
                buf: Vec::with_capacity(cap),
                cap,
                start: 0,
                dropped: 0,
                cycle: 0,
                last_depth: [-1; N_QUEUE_KINDS],
            }
        }

        #[inline]
        fn push(&mut self, r: Record) {
            if self.buf.len() < self.cap {
                self.buf.push(r);
            } else {
                // Overwrite the oldest record; never reallocate.
                self.buf[self.start] = r;
                self.start = (self.start + 1) % self.cap;
                self.dropped += 1;
            }
        }

        fn drain_into(&mut self, lane: u32, out: &mut Vec<(u32, Record)>) {
            for r in &self.buf[self.start..] {
                out.push((lane, *r));
            }
            for r in &self.buf[..self.start] {
                out.push((lane, *r));
            }
            self.buf.clear();
            self.start = 0;
        }
    }

    thread_local! {
        static RING: RefCell<Ring> = RefCell::new(Ring::new());
    }

    /// Stamps subsequent records on this thread with simulation cycle `now`.
    #[inline]
    pub(crate) fn set_cycle(now: u64) {
        if !runtime_enabled() {
            return;
        }
        RING.with(|r| r.borrow_mut().cycle = now);
    }

    /// Records one event into this thread's ring.
    #[inline]
    pub(crate) fn record(event: Event) {
        if !runtime_enabled() {
            return;
        }
        RING.with(|r| {
            let mut ring = r.borrow_mut();
            let cycle = ring.cycle;
            ring.push(Record { cycle, event });
        });
    }

    /// Records a queue-depth sample, deduplicated against the last sample
    /// for the same queue on this thread (depths are polled every cycle but
    /// only changes are interesting).
    #[inline]
    pub(crate) fn record_depth(queue: QueueKind, depth: u32) {
        if !runtime_enabled() {
            return;
        }
        RING.with(|r| {
            let mut ring = r.borrow_mut();
            let idx = queue as usize;
            if ring.last_depth[idx] == i64::from(depth) {
                return;
            }
            ring.last_depth[idx] = i64::from(depth);
            let cycle = ring.cycle;
            ring.push(Record {
                cycle,
                event: Event::QueueDepth { queue, depth },
            });
        });
    }

    /// The process-wide collection sink. Locked only at flush points and by
    /// the engine-side (already off the per-cycle path) recorders.
    struct Sink {
        events: Vec<(u32, Record)>,
        frames: Vec<String>,
        spans: Vec<Span>,
        /// (stage name, cycle bucket) → (total nanoseconds, samples).
        stages: BTreeMap<(&'static str, u64), (u64, u64)>,
        merge_waits: u64,
        merge_wait_nanos: u64,
        dropped: u64,
    }

    static SINK: Mutex<Sink> = Mutex::new(Sink {
        events: Vec::new(),
        frames: Vec::new(),
        spans: Vec::new(),
        stages: BTreeMap::new(),
        merge_waits: 0,
        merge_wait_nanos: 0,
        dropped: 0,
    });

    fn sink() -> std::sync::MutexGuard<'static, Sink> {
        // A panic while holding the sink lock can only poison trace data,
        // never simulation results; keep collecting what we can.
        match SINK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Drains this thread's ring into the sink, tagging records with `lane`
    /// (shard index for worker threads, 0 for the main thread).
    pub(crate) fn flush_events(lane: u32) {
        if !runtime_enabled() {
            return;
        }
        RING.with(|r| {
            let mut ring = r.borrow_mut();
            if ring.buf.is_empty() && ring.dropped == 0 {
                return;
            }
            let mut sink = sink();
            sink.dropped += ring.dropped;
            ring.dropped = 0;
            ring.drain_into(lane, &mut sink.events);
        });
    }

    /// Appends one prebuilt JSONL metrics frame.
    pub(crate) fn push_frame(frame: String) {
        sink().frames.push(frame);
    }

    /// Drains only the collected JSONL metrics frames, leaving events,
    /// spans, and stage timings in place for a later full snapshot
    /// (`maskd` streams frames to job watchers between batches).
    pub(crate) fn take_frames() -> Vec<String> {
        std::mem::take(&mut sink().frames)
    }

    /// Appends one completed wall-clock span (engine timeline).
    pub(crate) fn push_span(span: Span) {
        sink().spans.push(span);
    }

    /// Accumulates a stage timing into its (stage, cycle-bucket) cell.
    pub(crate) fn add_stage(stage: &'static str, bucket: u64, nanos: u64) {
        let mut s = sink();
        let cell = s.stages.entry((stage, bucket)).or_insert((0, 0));
        cell.0 += nanos;
        cell.1 += 1;
    }

    /// Accumulates one shard merge-tail wait.
    pub(crate) fn add_merge_wait(nanos: u64) {
        let mut s = sink();
        s.merge_waits += 1;
        s.merge_wait_nanos += nanos;
    }

    /// Flushes the calling thread's ring and drains the whole sink.
    pub(crate) fn take_snapshot() -> TraceData {
        flush_events(0);
        let mut s = sink();
        TraceData {
            events: std::mem::take(&mut s.events),
            frames: std::mem::take(&mut s.frames),
            spans: std::mem::take(&mut s.spans),
            stages: std::mem::take(&mut s.stages),
            merge_waits: std::mem::replace(&mut s.merge_waits, 0),
            merge_wait_nanos: std::mem::replace(&mut s.merge_wait_nanos, 0),
            dropped: std::mem::replace(&mut s.dropped, 0),
        }
    }

    /// Discards everything collected so far (tests and repeated example
    /// runs within one process).
    pub(crate) fn reset() {
        let _ = take_snapshot();
        RING.with(|r| {
            let mut ring = r.borrow_mut();
            ring.last_depth = [-1; N_QUEUE_KINDS];
            ring.cycle = 0;
        });
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::event::TlbLevel;

        fn probe(n: u64) -> Event {
            Event::TlbProbe {
                level: TlbLevel::L1,
                asid: n as u16,
                hit: n.is_multiple_of(2),
            }
        }

        #[test]
        fn ring_overwrites_oldest_and_counts_drops() {
            let mut ring = Ring {
                buf: Vec::with_capacity(4),
                cap: 4,
                start: 0,
                dropped: 0,
                cycle: 0,
                last_depth: [-1; N_QUEUE_KINDS],
            };
            for n in 0..6 {
                ring.push(Record {
                    cycle: n,
                    event: probe(n),
                });
            }
            assert_eq!(ring.dropped, 2);
            let mut out = Vec::new();
            ring.drain_into(3, &mut out);
            let cycles: Vec<u64> = out.iter().map(|(_, r)| r.cycle).collect();
            assert_eq!(cycles, [2, 3, 4, 5], "oldest two overwritten, order kept");
            assert!(out.iter().all(|&(lane, _)| lane == 3));
            assert!(ring.buf.is_empty());
        }

        #[test]
        fn runtime_override_wins_over_env() {
            set_runtime(Some(true));
            assert!(runtime_enabled());
            set_runtime(Some(false));
            assert!(!runtime_enabled());
            set_runtime(Some(true));
            reset();
            record(probe(1));
            record_depth(QueueKind::L2, 5);
            record_depth(QueueKind::L2, 5); // deduplicated
            record_depth(QueueKind::L2, 6);
            let snap = take_snapshot();
            assert_eq!(snap.events.len(), 3);
            set_runtime(Some(false));
        }
    }
}
