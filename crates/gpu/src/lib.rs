//! The cycle-driven GPU simulator: cores, warps, and the assembled memory
//! hierarchy.
//!
//! This crate wires every substrate together into the machine of Table 1:
//!
//! * [`core_model`] — shader cores with 64 warp contexts, a GTO
//!   (greedy-then-oldest) issue stage, per-core L1 TLBs and L1 data caches
//!   with MSHRs, and per-warp synthetic instruction streams;
//! * [`translation`] — the address-translation subsystem: shared L2 TLB or
//!   page-walk cache (per design), the 64-slot page-table walker, the
//!   translation MSHRs that merge duplicate walks and count stalled warps,
//!   TLB-Fill Tokens;
//! * [`shard`] — the sharded SM frontend: a persistent worker pool that
//!   splits the per-cycle issue stage across threads (`MASK_SM_SHARDS`)
//!   with a serial merge tail, bit-identical to the serial loop;
//! * [`sim`] — the top-level [`sim::GpuSim`] cycle loop connecting cores,
//!   translation, the banked shared L2, and DRAM, with epoch handling and
//!   statistics collection;
//! * [`functional`] — the timing-free functional fast-forward mode that
//!   produces cheap *predicted* states for speculation;
//! * [`spec`] — speculative epoch parallelism (`MASK_SPEC_SEGMENTS`): a
//!   run's time axis is cut at epoch-safe snapshot points and the segments
//!   execute concurrently from predicted start states, verified by
//!   byte-exact snapshot comparison and replayed on mismatch, so results
//!   stay bit-identical to the serial run at any segment count.
//!
//! The simulator models *one clock domain* and advances all components one
//! cycle at a time; every latency figure of Table 1 (1-cycle L1s, 10-cycle
//! shared structures, GDDR5 timing) appears here or in the component
//! crates.

pub mod core_model;
pub mod functional;
pub mod shard;
pub mod sim;
pub mod spec;
pub mod translation;

pub use core_model::{DirectIssue, GpuCore, IssueSink};
pub use functional::FunctionalReport;
pub use shard::{run_shard, DeferredIssue, DeferredMiss, DeferredXlat, ShardOutput, ShardPool};
pub use sim::{AppSpec, GpuSim, SampledRun};
pub use spec::{run_speculative, SpecPlan, SpecReport};
pub use translation::TranslationUnit;
