//! Table 2: workload categorization by measured L1/L2 TLB miss rates.

use mask_bench::emit;
use mask_core::experiments::single_app;

fn main() {
    println!("=== Table 2: workload classification ===\n");
    let t0 = std::time::Instant::now();
    emit(&single_app::tab02());
    println!("[tab02 done in {:?}]", t0.elapsed());
}
