//! Figures 8 and 9: DRAM behaviour of translation vs data requests (§4.3).
//!
//! * Fig. 8 — "DRAM bandwidth utilization of address translation requests
//!   and data demand requests", normalized to the maximum available
//!   bandwidth;
//! * Fig. 9 — "Latency of address translation requests and data demand
//!   requests".
//!
//! Both on the `SharedTLB` baseline over the two-application workloads. The
//! paper's headline observations: translation consumes a small fraction of
//! bandwidth (13.8% of *utilized* bandwidth) yet sees *higher* average
//! latency than data — the FR-FCFS row-hit-first policy de-prioritizes the
//! low-row-locality translation stream.

use super::ExpOptions;
use crate::table::Table;
use mask_common::config::DesignKind;
use mask_common::stats::SimStats;

/// Per-pair DRAM characterization.
#[derive(Clone, Debug)]
pub struct DramRow {
    /// Workload name.
    pub name: String,
    /// Translation share of the *maximum* DRAM bandwidth.
    pub xlat_bw: f64,
    /// Data share of the maximum DRAM bandwidth.
    pub data_bw: f64,
    /// Average DRAM latency of translation requests (cycles).
    pub xlat_latency: f64,
    /// Average DRAM latency of data requests (cycles).
    pub data_latency: f64,
}

fn characterize(name: String, stats: &SimStats) -> DramRow {
    let denom = (stats.cycles as f64) * stats.dram_channels as f64;
    let (mut xb, mut db) = (0u64, 0u64);
    let mut xl = mask_common::stats::DramClassStats::default();
    let mut dl = mask_common::stats::DramClassStats::default();
    for a in &stats.apps {
        xb += a.dram_translation.bus_busy_cycles;
        db += a.dram_data.bus_busy_cycles;
        xl.merge(&a.dram_translation);
        dl.merge(&a.dram_data);
    }
    DramRow {
        name,
        xlat_bw: xb as f64 / denom,
        data_bw: db as f64 / denom,
        xlat_latency: xl.avg_latency(),
        data_latency: dl.avg_latency(),
    }
}

/// Runs the Fig. 8/9 sweep on the `SharedTLB` baseline as one job batch.
pub fn measure(opts: &ExpOptions) -> Vec<DramRow> {
    let runner = opts.runner();
    runner
        .run_pairs(&opts.pairs(), &[DesignKind::SharedTlb])
        .into_iter()
        .map(|o| characterize(o.name.clone(), &o.stats))
        .collect()
}

/// Fig. 8 table: normalized DRAM bandwidth by request class.
pub fn fig08(rows: &[DramRow]) -> Table {
    let mut t = Table::new(
        "Figure 8: DRAM bandwidth utilization (fraction of max) by request class",
        &["workload", "translation", "data"],
    );
    for r in rows {
        t.row_f64(r.name.clone(), &[r.xlat_bw, r.data_bw]);
    }
    let n = rows.len().max(1) as f64;
    t.row_f64(
        "Average",
        &[
            rows.iter().map(|r| r.xlat_bw).sum::<f64>() / n,
            rows.iter().map(|r| r.data_bw).sum::<f64>() / n,
        ],
    );
    t
}

/// Fig. 9 table: average DRAM latency by request class.
pub fn fig09(rows: &[DramRow]) -> Table {
    let mut t = Table::new(
        "Figure 9: DRAM latency (cycles) by request class",
        &["workload", "translation", "data"],
    );
    for r in rows {
        t.row(
            r.name.clone(),
            vec![
                format!("{:.0}", r.xlat_latency),
                format!("{:.0}", r.data_latency),
            ],
        );
    }
    let n = rows.len().max(1) as f64;
    t.row(
        "Average",
        vec![
            format!(
                "{:.0}",
                rows.iter().map(|r| r.xlat_latency).sum::<f64>() / n
            ),
            format!(
                "{:.0}",
                rows.iter().map(|r| r.data_latency).sum::<f64>() / n
            ),
        ],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_uses_less_bandwidth_than_data() {
        let opts = ExpOptions {
            cycles: 10_000,
            ..ExpOptions::quick()
        };
        let rows = measure(&opts);
        assert_eq!(rows.len(), opts.pairs().len());
        let xb: f64 = rows.iter().map(|r| r.xlat_bw).sum();
        let db: f64 = rows.iter().map(|r| r.data_bw).sum();
        assert!(
            xb < db,
            "translation ({xb:.3}) must consume less bandwidth than data ({db:.3}) (Fig. 8 shape)"
        );
        let f8 = fig08(&rows);
        let f9 = fig09(&rows);
        assert_eq!(f8.len(), rows.len() + 1);
        assert_eq!(f9.len(), rows.len() + 1);
    }
}
