//! Speculative epoch parallelism must be invisible in the results.
//!
//! `mask_gpu::spec::run_speculative` cuts a run's time axis into segments
//! at epoch-safe snapshot points, executes them concurrently from
//! predicted start states, and commits or replays each segment by
//! byte-exact snapshot comparison. These properties pin the contract: a
//! speculative run produces **byte-identical** machine state to the plain
//! serial loop at any segment count — across seeds, every design preset,
//! shard counts, tracing on or off, arbitrary run lengths, and even when
//! predictions are deliberately corrupted so the replay path must run.

use mask_common::snapshot::PrefixKey;
use mask_core::prelude::*;
use proptest::prelude::*;

/// Segment counts exercised everywhere: minimal split, odd split, and more
/// segments than the span has epoch cuts (clamped internally).
const SEGMENTS: [usize; 3] = [2, 3, 8];

/// Builds a small two-app simulation (4 cores, 16 warps/core) with a short
/// token epoch so a few thousand cycles cross several epoch boundaries.
fn build(design: DesignKind, seed: u64, cycles: u64, shards: usize) -> GpuSim {
    let mut cfg = SimConfig::new(design)
        .with_max_cycles(cycles)
        .with_sm_shards(shards);
    cfg.seed = seed;
    cfg.gpu.n_cores = 4;
    cfg.gpu.warps_per_core = 16;
    cfg.gpu.mask.epoch_cycles = 2_000;
    let specs: Vec<AppSpec> = [("HISTO", 2), ("GUP", 2)]
        .iter()
        .map(|&(name, c)| AppSpec {
            profile: app_by_name(name).expect("known app"),
            n_cores: c,
        })
        .collect();
    GpuSim::new(&cfg, &specs)
}

/// The complete machine state as sealed snapshot bytes — the strongest
/// equality available (covers caches, queues, PRNG streams, and stats).
/// Stats are synced first: the derived lifetime counters are pure
/// functions of state that live tracing refreshes at every epoch, so
/// comparing unsynced bytes across tracing regimes would be ill-defined.
fn state(sim: &mut GpuSim) -> Vec<u8> {
    sim.sync_stats();
    sim.encode_snapshot(PrefixKey(0xE0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The core property: on every design preset, speculative execution
    /// ends in byte-identical machine state at any segment count.
    #[test]
    fn speculation_is_byte_identical_across_presets(seed in 0u64..500) {
        let cycles = 8_000; // 4 epochs: 3 internal cuts
        for design in DesignKind::ALL {
            let mut oracle = build(design, seed, cycles, 1);
            oracle.run(cycles);
            let want = state(&mut oracle);
            for segments in SEGMENTS {
                let (mut sim, report) = run_speculative(
                    build(design, seed, cycles, 1),
                    cycles,
                    &SpecPlan::new(segments),
                    || build(design, seed, cycles, 1),
                );
                prop_assert_eq!(report.segments, segments.min(4));
                prop_assert_eq!(
                    report.commits + report.replays,
                    report.segments as u64 - 1
                );
                prop_assert_eq!(
                    &want,
                    &state(&mut sim),
                    "design {} diverged at {} segments",
                    design,
                    segments
                );
            }
        }
    }

    /// Speculation composes with the sharded SM frontend: segments of a
    /// sharded simulation replay/commit identically.
    #[test]
    fn speculation_composes_with_sm_shards(seed in 0u64..200) {
        let cycles = 8_000;
        let mut oracle = build(DesignKind::Mask, seed, cycles, 1);
        oracle.run(cycles);
        let want = state(&mut oracle);
        for shards in [1usize, 4] {
            let (mut sim, _) = run_speculative(
                build(DesignKind::Mask, seed, cycles, shards),
                cycles,
                &SpecPlan::new(3),
                || build(DesignKind::Mask, seed, cycles, shards),
            );
            prop_assert_eq!(&want, &state(&mut sim), "diverged at {} shards", shards);
        }
    }

    /// Arbitrary run lengths, including spans that end mid-epoch (the
    /// final segment boundary is not snapshot-safe) and spans too short
    /// to contain any cut at all.
    #[test]
    fn speculation_handles_arbitrary_run_lengths(extra in 0u64..6_000) {
        let cycles = 1_000 + extra;
        let mut oracle = build(DesignKind::Mask, 11, cycles, 1);
        oracle.run(cycles);
        oracle.sync_stats();
        for segments in SEGMENTS {
            let (mut sim, _) = run_speculative(
                build(DesignKind::Mask, 11, cycles, 1),
                cycles,
                &SpecPlan::new(segments),
                || build(DesignKind::Mask, 11, cycles, 1),
            );
            sim.sync_stats();
            prop_assert_eq!(
                oracle.stats(),
                sim.stats(),
                "diverged at {} segments over {} cycles",
                segments,
                cycles
            );
        }
    }

    /// The replay path under fire: a deliberately corrupted prediction
    /// (the perturbation hook) must force at least one replay — and the
    /// final state must still be byte-identical to serial, because
    /// correctness never depends on prediction quality.
    #[test]
    fn perturbed_predictions_replay_and_converge(seed in 0u64..200) {
        let cycles = 10_000; // 5 epochs: enough cuts for 4 real segments
        let mut oracle = build(DesignKind::Mask, seed, cycles, 1);
        oracle.run(cycles);
        let want = state(&mut oracle);
        for victim in [1usize, 2] {
            let plan = SpecPlan::new(4).with_perturbation(victim);
            let (mut sim, report) = run_speculative(
                build(DesignKind::Mask, seed, cycles, 1),
                cycles,
                &plan,
                || build(DesignKind::Mask, seed, cycles, 1),
            );
            prop_assert!(
                report.replays > 0,
                "perturbing segment {} must force a replay",
                victim
            );
            prop_assert_eq!(&want, &state(&mut sim), "victim {} diverged", victim);
        }
    }
}

/// Tracing must not interact with speculation: hooks never feed back into
/// simulation state, so speculative runs are identical with the trace
/// collector on or off (and to the serial oracle either way).
#[test]
fn speculation_is_identical_with_tracing_on_and_off() {
    let cycles = 8_000;
    let mut oracle = build(DesignKind::Mask, 17, cycles, 1);
    oracle.run(cycles);
    let want = state(&mut oracle);
    for on in [false, true] {
        mask_obs::set_runtime(Some(on));
        let (mut sim, report) = run_speculative(
            build(DesignKind::Mask, 17, cycles, 1),
            cycles,
            &SpecPlan::new(3),
            || build(DesignKind::Mask, 17, cycles, 1),
        );
        assert_eq!(report.segments, 3);
        assert_eq!(
            want,
            state(&mut sim),
            "tracing={on} changed speculation results"
        );
    }
    mask_obs::set_runtime(None);
}

/// Seeded re-runs: the boundaries recorded by one speculative run are
/// true states, so feeding them back as predictions for an identical run
/// commits every segment — the case where speculation actually pays.
#[test]
fn recorded_boundaries_seed_a_fully_committing_rerun() {
    let cycles = 8_000;
    let mk = || build(DesignKind::Mask, 9, cycles, 1);
    let (_, first) = run_speculative(mk(), cycles, &SpecPlan::new(4), mk);
    assert_eq!(first.boundaries.len(), first.segments - 1);
    let plan = SpecPlan::new(4).with_seeds(first.boundaries);
    let (mut sim, second) = run_speculative(mk(), cycles, &plan, mk);
    assert!(second.seeded, "matching recorded boundaries must be used");
    assert_eq!(second.replays, 0, "true start states always verify");
    assert_eq!(second.commits, second.segments as u64 - 1);
    let mut oracle = mk();
    oracle.run(cycles);
    assert_eq!(state(&mut oracle), state(&mut sim));
}

/// Cycle-skipping composes with speculation: the skip flag propagates to
/// every replica, and the skip machinery itself is deterministic.
#[test]
fn speculation_composes_with_cycle_skip() {
    let cycles = 12_000;
    for skip in [true, false] {
        let mut oracle = build(DesignKind::Mask, 3, cycles, 1);
        oracle.set_cycle_skip(skip);
        oracle.run(cycles);
        let want = state(&mut oracle);
        let mut seed0 = build(DesignKind::Mask, 3, cycles, 1);
        seed0.set_cycle_skip(skip);
        let (mut sim, _) = run_speculative(seed0, cycles, &SpecPlan::new(4), || {
            build(DesignKind::Mask, 3, cycles, 1)
        });
        assert_eq!(want, state(&mut sim), "skip={skip} diverged");
    }
}
