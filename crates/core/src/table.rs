//! Plain-text experiment tables.
//!
//! Every experiment harness produces a [`Table`]; `cargo bench` prints them
//! in the paper's row/column layout and EXPERIMENTS.md archives them.

use std::fmt;

/// A labelled table of numeric or textual cells.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table {
    /// Table title (e.g. `"Figure 11: multiprogrammed performance"`).
    pub title: String,
    /// Column headers; the first column holds row labels.
    pub headers: Vec<String>,
    /// Rows: label plus one cell per remaining header.
    pub rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of preformatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, label: impl Into<String>, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len() + 1,
            self.headers.len(),
            "cell count must match headers"
        );
        self.rows.push((label.into(), cells));
        self
    }

    /// Appends a row of `f64` cells formatted with 3 decimals.
    pub fn row_f64(&mut self, label: impl Into<String>, cells: &[f64]) -> &mut Self {
        self.row(label, cells.iter().map(|v| format!("{v:.3}")).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (for downstream plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for (label, cells) in &self.rows {
            out.push_str(label);
            for c in cells {
                out.push(',');
                out.push_str(c);
            }
            out.push('\n');
        }
        out
    }

    /// Renders as a machine-readable JSON object: the title plus one object
    /// per row keyed by the row label, with cells keyed by column header.
    /// Numeric-looking cells are emitted as JSON numbers, everything else
    /// as strings.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn cell_json(s: &str) -> String {
            // A cell parseable as a finite f64 round-trips as a number.
            match s.parse::<f64>() {
                Ok(v) if v.is_finite() => s.to_string(),
                _ => format!("\"{}\"", esc(s)),
            }
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"title\": \"{}\",\n", esc(&self.title)));
        out.push_str("  \"rows\": {\n");
        for (r, (label, cells)) in self.rows.iter().enumerate() {
            out.push_str(&format!("    \"{}\": {{ ", esc(label)));
            for (i, (header, cell)) in self.headers[1..].iter().zip(cells).enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", esc(header), cell_json(cell)));
            }
            out.push_str(if r + 1 == self.rows.len() {
                " }\n"
            } else {
                " },\n"
            });
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Writes the CSV rendering to `path`, creating any missing parent
    /// directories first.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the file write.
    pub fn write_csv(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        write_with_parents(path.as_ref(), &self.to_csv())
    }

    /// Writes the JSON rendering to `path`, creating any missing parent
    /// directories first.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the file write.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        write_with_parents(path.as_ref(), &self.to_json())
    }

    /// Looks up a cell by row label and column header.
    pub fn cell(&self, row: &str, col: &str) -> Option<&str> {
        let col_idx = self.headers.iter().position(|h| h == col)?;
        if col_idx == 0 {
            return None;
        }
        let (_, cells) = self.rows.iter().find(|(label, _)| label == row)?;
        cells.get(col_idx - 1).map(String::as_str)
    }

    /// Parses a cell as `f64`.
    pub fn value(&self, row: &str, col: &str) -> Option<f64> {
        self.cell(row, col)?.parse().ok()
    }
}

/// Creates `path`'s parent directories (if any) and writes `contents`.
fn write_with_parents(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        // Column widths.
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for (label, cells) in &self.rows {
            widths[0] = widths[0].max(label.len());
            for (i, c) in cells.iter().enumerate() {
                widths[i + 1] = widths[i + 1].max(c.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[&str]| -> fmt::Result {
            for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
                if i == 0 {
                    write!(f, "{c:<w$}")?;
                } else {
                    write!(f, "  {c:>w$}")?;
                }
            }
            writeln!(f)
        };
        let headers: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        write_row(f, &headers)?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        )?;
        for (label, cells) in &self.rows {
            let mut row: Vec<&str> = vec![label];
            row.extend(cells.iter().map(String::as_str));
            write_row(f, &row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Sample", &["workload", "a", "b"]);
        t.row_f64("W1", &[1.0, 2.5]);
        t.row("W2", vec!["x".into(), "y".into()]);
        t
    }

    #[test]
    fn roundtrip_cells() {
        let t = sample();
        assert_eq!(t.cell("W1", "a"), Some("1.000"));
        assert_eq!(t.value("W1", "b"), Some(2.5));
        assert_eq!(t.cell("W2", "b"), Some("y"));
        assert_eq!(t.cell("W3", "a"), None);
        assert_eq!(t.cell("W1", "nope"), None);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("workload,a,b\n"));
        assert!(csv.contains("W1,1.000,2.500\n"));
    }

    #[test]
    fn json_rendering() {
        let j = sample().to_json();
        assert!(j.contains("\"title\": \"Sample\""));
        // Numeric cells become numbers, textual cells stay strings.
        assert!(j.contains("\"W1\": { \"a\": 1.000, \"b\": 2.500 }"));
        assert!(j.contains("\"W2\": { \"a\": \"x\", \"b\": \"y\" }"));
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut t = Table::new("Quote \" and \\ slash", &["r", "v"]);
        t.row("a\nb", vec!["x\"y".into()]);
        let j = t.to_json();
        assert!(j.contains("Quote \\\" and \\\\ slash"));
        assert!(j.contains("\"a\\nb\""));
        assert!(j.contains("x\\\"y"));
    }

    #[test]
    fn display_aligns_columns() {
        let s = sample().to_string();
        assert!(s.contains("## Sample"));
        assert!(s.contains("workload"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn writers_create_missing_parent_directories() {
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp")
            .join(format!("table_writers_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let csv = dir.join("deep/nested/out.csv");
        let json = dir.join("other/branch/out.json");
        let t = sample();
        t.write_csv(&csv).expect("csv write creates parents");
        t.write_json(&json).expect("json write creates parents");
        assert_eq!(std::fs::read_to_string(&csv).expect("readable"), t.to_csv());
        assert_eq!(
            std::fs::read_to_string(&json).expect("readable"),
            t.to_json()
        );
        // Bare file names (no parent component) also work.
        let cwd_relative = dir.join("flat.csv");
        t.write_csv(&cwd_relative).expect("existing dir is fine");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "cell count must match headers")]
    fn wrong_cell_count_panics() {
        let mut t = Table::new("T", &["r", "a"]);
        t.row("x", vec!["1".into(), "2".into()]);
    }
}
