//! Shared helpers for the MASK paper-reproduction bench harnesses.
//!
//! Every `benches/*.rs` target is a plain binary (`harness = false`) that
//! regenerates one of the paper's tables or figures and prints it. Two
//! environment variables scale the whole suite:
//!
//! * `MASK_SIM_CYCLES` — cycles per simulation run (default 300 000:
//!   100 000 warm-up + 200 000 measured, i.e. two full MASK epochs);
//! * `MASK_PAIR_LIMIT` — number of two-application workloads (default 35).

use mask_core::experiments::ExpOptions;
use mask_core::table::Table;

/// Builds experiment options, applying an experiment-specific cap on the
/// number of pairs (heavy sweeps default to fewer pairs; `MASK_PAIR_LIMIT`
/// always wins when set).
pub fn options(default_pair_cap: usize) -> ExpOptions {
    let mut opts = ExpOptions::default();
    if std::env::var("MASK_PAIR_LIMIT").is_err() {
        opts.pair_limit = opts.pair_limit.min(default_pair_cap);
    }
    opts
}

/// Prints a table and archives it as CSV under `target/mask-results/`.
pub fn emit(table: &Table) {
    println!("{table}");
    println!();
    let dir = std::path::Path::new("target/mask-results");
    if std::fs::create_dir_all(dir).is_ok() {
        let slug: String = table
            .title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_");
        let _ = std::fs::write(dir.join(format!("{slug}.csv")), table.to_csv());
    }
}

/// Prints the standard harness banner.
pub fn banner(name: &str, opts: &ExpOptions) {
    println!(
        "=== {name} — cycles/run={} cores={} warps/core={} pairs={} ===\n",
        opts.cycles, opts.n_cores, opts.warps_per_core, opts.pair_limit
    );
}
