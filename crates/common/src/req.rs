//! Memory-request representation shared across the hierarchy.
//!
//! MASK's overarching idea is to make *the entire memory hierarchy aware of
//! TLB requests* (§1). Concretely, every memory request carries a
//! [`RequestClass`]: either a data demand request or an address-translation
//! request tagged with its page-walk depth ("Each memory request is tagged
//! with a three-bit value that indicates its page walk depth", §5.3). The
//! shared L2 cache uses the tag for translation-aware bypassing and the DRAM
//! scheduler uses it to route requests into the Golden queue.

use crate::addr::LineAddr;
use crate::ids::{Asid, CoreId};
use crate::Cycle;
use core::fmt;

/// Page-walk depth, 1 (root) through 4 (leaf).
///
/// The paper observes data-cache hit rates of 99.8% / 98.8% / 68.7% / 1.0%
/// for levels 1–4 (§4.3): levels near the root are shared across warps and
/// cache well, leaf levels do not.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WalkLevel(u8);

impl WalkLevel {
    /// The root level of the page table.
    pub const ROOT: WalkLevel = WalkLevel(1);

    /// Creates a walk level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `1..=4`.
    #[inline]
    pub fn new(level: u8) -> Self {
        assert!(
            (1..=crate::addr::PAGE_TABLE_LEVELS).contains(&level),
            "walk level out of range"
        );
        WalkLevel(level)
    }

    /// The raw level (1..=4).
    #[inline]
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// Zero-based index (for per-level stat arrays).
    #[inline]
    pub const fn index(self) -> usize {
        (self.0 - 1) as usize
    }

    /// The next (deeper) level, or `None` at the given depth limit.
    #[inline]
    pub fn next(self, max_levels: u8) -> Option<WalkLevel> {
        if self.0 < max_levels {
            Some(WalkLevel(self.0 + 1))
        } else {
            None
        }
    }
}

impl fmt::Display for WalkLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Classifies a memory request as data demand vs. address translation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RequestClass {
    /// An ordinary data demand request issued on behalf of warp loads/stores.
    Data,
    /// An address-translation request: one step of a page-table walk at the
    /// given depth.
    Translation(WalkLevel),
}

impl RequestClass {
    /// Whether this is an address-translation request.
    #[inline]
    pub const fn is_translation(self) -> bool {
        matches!(self, RequestClass::Translation(_))
    }

    /// The 3-bit page-walk-depth tag attached to each memory request (§5.3).
    ///
    /// Zero for data demand requests; the walk level (1–4) for translation
    /// requests. (The paper reserves 7 for depths above 6; our tables have
    /// at most 4 levels so the value always fits.)
    #[inline]
    pub const fn depth_tag(self) -> u8 {
        match self {
            RequestClass::Data => 0,
            RequestClass::Translation(l) => l.raw(),
        }
    }
}

impl fmt::Display for RequestClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestClass::Data => write!(f, "data"),
            RequestClass::Translation(l) => write!(f, "xlat-{l}"),
        }
    }
}

/// A unique, monotonically increasing request identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ReqId(pub u64);

/// A single line-granularity memory request travelling through the shared L2
/// cache and DRAM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRequest {
    /// Unique id, used to match completions to waiters.
    pub id: ReqId,
    /// The physical line being accessed.
    pub line: LineAddr,
    /// The address space that generated the request.
    pub asid: Asid,
    /// The core that generated the request.
    pub core: CoreId,
    /// Data vs. translation (with walk depth).
    pub class: RequestClass,
    /// Cycle at which the request entered the current component (updated at
    /// each hierarchy level so per-level latency can be measured).
    pub issued_at: Cycle,
}

impl MemRequest {
    /// Creates a new request entering the hierarchy at `now`.
    pub fn new(
        id: ReqId,
        line: LineAddr,
        asid: Asid,
        core: CoreId,
        class: RequestClass,
        now: Cycle,
    ) -> Self {
        MemRequest {
            id,
            line,
            asid,
            core,
            class,
            issued_at: now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_level_progression() {
        let mut level = WalkLevel::ROOT;
        let mut seen = vec![level.raw()];
        while let Some(next) = level.next(4) {
            level = next;
            seen.push(level.raw());
        }
        assert_eq!(seen, vec![1, 2, 3, 4]);
        assert_eq!(level.next(4), None);
    }

    #[test]
    fn three_level_walk_stops_early() {
        let level = WalkLevel::new(3);
        assert_eq!(level.next(3), None);
    }

    #[test]
    #[should_panic(expected = "walk level out of range")]
    fn walk_level_rejects_zero() {
        let _ = WalkLevel::new(0);
    }

    #[test]
    fn depth_tag_matches_paper_encoding() {
        assert_eq!(RequestClass::Data.depth_tag(), 0);
        assert_eq!(RequestClass::Translation(WalkLevel::new(4)).depth_tag(), 4);
        assert!(RequestClass::Translation(WalkLevel::ROOT).is_translation());
        assert!(!RequestClass::Data.is_translation());
    }
}
