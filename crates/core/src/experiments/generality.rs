//! Table 4: generality across GPU architectures (§7.3).
//!
//! "we evaluate our two baseline variants (`PWCache` and `SharedTLB`) and MASK
//! on two additional GPU architectures: the GTX480 (Fermi architecture),
//! and an integrated GPU architecture" — average performance normalized to
//! Ideal.

use super::ExpOptions;
use crate::metrics::mean;
use crate::runner::{PairRunner, RunOptions};
use crate::table::Table;
use mask_common::config::{DesignKind, GpuConfig};

/// The architectures of Table 4 plus the main (Maxwell) configuration.
pub fn architectures() -> Vec<(&'static str, GpuConfig)> {
    vec![
        ("Maxwell", GpuConfig::maxwell()),
        ("Fermi", GpuConfig::fermi()),
        ("Integrated", GpuConfig::integrated()),
    ]
}

/// Runs Table 4; each architecture's pair × design grid goes out as one
/// job batch.
pub fn run(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Table 4: average performance normalized to Ideal, per architecture",
        &["architecture", "PWCache", "SharedTLB", "MASK"],
    );
    let designs = [
        DesignKind::Ideal,
        DesignKind::PwCache,
        DesignKind::SharedTlb,
        DesignKind::Mask,
    ];
    for (name, mut gpu) in architectures() {
        gpu.warps_per_core = gpu.warps_per_core.min(opts.warps_per_core.max(8));
        let n_cores = gpu.n_cores.min(opts.n_cores.max(2));
        gpu.n_cores = n_cores;
        let runner = PairRunner::new(RunOptions {
            n_cores,
            max_cycles: opts.cycles,
            seed: opts.seed,
            warmup_cycles: 100_000,
            gpu,
            jobs: opts.jobs,
        });
        let pairs = opts.pressured_pairs();
        let outcomes = runner.run_pairs(&pairs, &designs);
        let mut norm = [Vec::new(), Vec::new(), Vec::new()];
        for chunk in outcomes.chunks(designs.len()) {
            let ideal = chunk[0].weighted_speedup;
            if ideal <= 0.0 {
                continue;
            }
            for i in 0..3 {
                norm[i].push(chunk[i + 1].weighted_speedup / ideal);
            }
        }
        t.row_f64(
            name,
            &[
                mean(norm[0].iter().copied()),
                mean(norm[1].iter().copied()),
                mean(norm[2].iter().copied()),
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_three_architectures() {
        let opts = ExpOptions {
            cycles: 6_000,
            pair_limit: 1,
            ..ExpOptions::quick()
        };
        let t = run(&opts);
        assert_eq!(t.len(), 3);
        for (_, cells) in &t.rows {
            for c in cells {
                let v: f64 = c.parse().expect("numeric");
                assert!((0.0..=1.5).contains(&v), "normalized perf {v} out of range");
            }
        }
    }

    #[test]
    fn architecture_presets_differ() {
        let archs = architectures();
        assert_eq!(archs.len(), 3);
        assert!(
            archs[1].1.n_cores < archs[0].1.n_cores,
            "Fermi has fewer cores"
        );
        assert!(
            archs[2].1.dram.channels < archs[0].1.dram.channels,
            "integrated is narrower"
        );
    }
}
