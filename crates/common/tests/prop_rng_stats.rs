//! Property tests for the PRNG and statistics foundations.

use mask_common::rng::Pcg32;
use mask_common::stats::{DramClassStats, HitStats};
use proptest::prelude::*;

proptest! {
    /// `below(bound)` is always strictly below its bound.
    #[test]
    fn below_is_bounded(seed: u64, stream: u64, bound in 1u64..u64::MAX) {
        let mut rng = Pcg32::new(seed, stream);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// The generator is a pure function of its seed pair.
    #[test]
    fn rng_is_deterministic(seed: u64, stream: u64) {
        let mut a = Pcg32::new(seed, stream);
        let mut b = Pcg32::new(seed, stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// `unit()` stays in [0, 1).
    #[test]
    fn unit_in_range(seed: u64) {
        let mut rng = Pcg32::new(seed, 1);
        for _ in 0..64 {
            let u = rng.unit();
            prop_assert!((0.0..1.0).contains(&u));
        }
    }

    /// Hit-rate bookkeeping: hits + misses == accesses and rates in [0,1].
    #[test]
    fn hit_stats_invariants(outcomes in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut h = HitStats::default();
        for o in &outcomes {
            h.record(*o);
        }
        prop_assert_eq!(h.accesses, outcomes.len() as u64);
        prop_assert_eq!(h.hits + h.misses(), h.accesses);
        prop_assert!((0.0..=1.0).contains(&h.hit_rate()));
        prop_assert!((h.hit_rate() + h.miss_rate() - 1.0).abs() < 1e-9 || h.accesses == 0);
    }

    /// Merging DRAM class stats is associative on the counted fields.
    #[test]
    fn dram_stats_merge_adds(r1 in 0u64..1000, r2 in 0u64..1000, l1 in 0u64..100_000, l2 in 0u64..100_000) {
        let a = DramClassStats { requests: r1, latency_sum: l1, ..Default::default() };
        let b = DramClassStats { requests: r2, latency_sum: l2, ..Default::default() };
        let mut m = a.clone();
        m.merge(&b);
        prop_assert_eq!(m.requests, r1 + r2);
        prop_assert_eq!(m.latency_sum, l1 + l2);
    }
}
