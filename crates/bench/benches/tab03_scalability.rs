//! Table 3: scalability from 1 to 5 concurrent applications.

use mask_bench::{banner, emit, options};
use mask_core::experiments::scalability;

fn main() {
    let opts = options(35);
    banner("Table 3: scalability", &opts);
    let t0 = std::time::Instant::now();
    let t = scalability::run(&opts);
    emit(&t);
    println!(
        "MASK/SharedTLB average advantage: {:.3}x",
        scalability::mask_advantage(&t)
    );
    println!("[tab03 done in {:?}]", t0.elapsed());
}
