//! A minimal stand-in for the `criterion` benchmarking crate.
//!
//! The real `criterion` pulls dozens of transitive dependencies that cannot
//! be fetched in this offline build environment, so the workspace vendors
//! this stub and points the `criterion` workspace dependency at it. It
//! implements the subset `crates/bench/benches/micro_components.rs` uses —
//! [`Criterion::bench_function`], [`Bencher::iter`], [`criterion_group!`],
//! and [`criterion_main!`] — with plain wall-clock timing and a one-line
//! median/mean report per benchmark. No statistics engine, no HTML reports.

use std::time::{Duration, Instant};

/// Benchmark driver (mirror of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total time spent measuring one benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Times `routine` and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let started = Instant::now();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            routine(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
            }
            if started.elapsed() > self.measurement_time {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        let mean = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<f64>() / samples.len() as f64
        };
        println!(
            "{name:<40} median {median:>12.1} ns/iter  mean {mean:>12.1} ns/iter  ({} samples)",
            samples.len()
        );
        self
    }
}

/// Per-sample timing context (mirror of `criterion::Bencher`).
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated executions of `routine` for this sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        const ITERS_PER_SAMPLE: u64 = 16;
        let start = Instant::now();
        for _ in 0..ITERS_PER_SAMPLE {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS_PER_SAMPLE;
    }
}

/// Prevents the optimizer from discarding a value (re-export for
/// compatibility with `criterion::black_box` users).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group (mirror of `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point (mirror of `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(50));
        let mut calls = 0u64;
        c.bench_function("stub_smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }
}
