//! End-to-end smoke of every experiment harness at miniature scale: each
//! must produce a structurally-complete table.

use mask_common::config::DesignKind;
use mask_core::experiments::{
    baseline, components, dram_char, generality, interference, multiprog, scalability, sensitivity,
    single_app, timemux, ExpOptions,
};

fn tiny() -> ExpOptions {
    ExpOptions {
        cycles: 4_000,
        pair_limit: 1,
        ..ExpOptions::quick()
    }
}

#[test]
fn fig01_runs() {
    assert_eq!(timemux::run(&tiny()).len(), 9);
}

#[test]
fn fig03_runs() {
    let t = baseline::run(&tiny());
    assert_eq!(t.len(), 2); // 1 pair + average
}

#[test]
fn fig05_06_run() {
    let rows = single_app::measure(&tiny());
    assert_eq!(single_app::fig05(&rows).len(), 30);
    assert_eq!(single_app::fig06(&rows).len(), 30);
}

#[test]
fn fig07_runs() {
    assert_eq!(interference::run(&tiny()).len(), 8);
}

#[test]
fn fig08_09_run() {
    let rows = dram_char::measure(&tiny());
    assert_eq!(dram_char::fig08(&rows).len(), 2);
    assert_eq!(dram_char::fig09(&rows).len(), 2);
}

#[test]
fn fig11_15_run() {
    let s = multiprog::sweep(&tiny(), &[DesignKind::SharedTlb, DesignKind::Ideal]);
    assert!(!s.fig11_weighted_speedup().is_empty());
    assert!(!s.fig15_unfairness().is_empty());
}

/// The presets PR 7 introduced go through the full multiprog harness —
/// and, in the CI `--features sanitize` leg, under the runtime sanitizer,
/// so their coloring invariants are audited on every fill and enqueue.
#[test]
fn new_presets_run_through_multiprog() {
    let s = multiprog::sweep(&tiny(), &[DesignKind::Partitioned, DesignKind::NoIsolation]);
    assert!(!s.fig11_weighted_speedup().is_empty());
    assert!(!s.fig15_unfairness().is_empty());
}

#[test]
fn sec72_runs() {
    assert!(components::run(&tiny()).len() >= 10);
}

#[test]
fn sec73_runs() {
    assert_eq!(sensitivity::large_pages(&tiny()).len(), 2);
}

#[test]
fn tab03_tab04_run() {
    assert!(!scalability::run(&tiny()).is_empty());
    assert_eq!(generality::run(&tiny()).len(), 3);
}
