//! Multi-level page tables and the shared page-table walker.
//!
//! The paper assumes CUDA Unified Virtual Addressing backed by x86-64-style
//! four-level page tables (§3): each address space has its own radix tree
//! rooted at a per-core page-table-root register (the CR3 analogue, §5.1),
//! and a *shared, highly-threaded page table walker* that "admits up to 64
//! concurrent threads for walks" (§6) services L1/L2 TLB misses.
//!
//! The crucial modelling decision in this crate is that page tables are
//! *materialized in simulated physical memory*: every walk step produces a
//! real [`mask_common::LineAddr`] that the GPU crate sends through the
//! shared L2 cache and DRAM. This is what makes the paper's per-level
//! cache-hit-rate observation (§4.3: 99.8% / 98.8% / 68.7% / 1.0% for
//! levels 1–4) *emerge* from the simulation instead of being baked in:
//! root-level PTE lines are shared by all pages of an application,
//! leaf-level lines are not.

pub mod frame;
pub mod table;
pub mod walker;

pub use frame::FrameAllocator;
pub use table::{PageTable, PageTables};
pub use walker::{PageWalker, WalkAccess, WalkId, WalkOutcome};
