//! Data caches, MSHRs, and MASK's Address-Translation-Aware L2 Bypass.
//!
//! This crate models the data-cache side of the GPU memory hierarchy:
//!
//! * a line-granularity set-associative [`data::DataCache`] with optional
//!   per-ASID way partitioning (used by the `Static` baseline),
//! * miss-status holding registers ([`mshr::MshrTable`]) that merge
//!   concurrent misses to the same line,
//! * the banked, timed **shared L2 cache** ([`l2::SharedL2Cache`]) whose
//!   queueing latency is a first-order effect in the paper (§4.3, §5.3),
//! * the **Address-Translation-Aware L2 Bypass** monitor
//!   ([`bypass::BypassMonitor`]) — mechanism ❷ of Fig. 10 (§5.3): per
//!   walk-level hit-rate tracking that lets low-locality translation
//!   requests skip the L2 entirely.
//!
//! Simplification: all accesses are modelled as reads. GPU L1/L2 caches in
//! this class of study are effectively read caches (GPGPU-Sim models
//! write-evict L1s); stores contribute negligibly to the translation
//! interference the paper studies.

pub mod bypass;
pub mod data;
pub mod l2;
pub mod mshr;

pub use bypass::BypassMonitor;
pub use data::DataCache;
pub use l2::{L2Response, SharedL2Cache};
pub use mshr::{MshrAlloc, MshrEntry, MshrTable};
