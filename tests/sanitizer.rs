//! Fault-injection tests for the runtime invariant sanitizer.
//!
//! Each test plants one specific accounting bug through the public hook API
//! and asserts the sanitizer kills the process with the right diagnostic —
//! proving the checks actually detect the failure modes they claim to.
//! Sanitizer state is thread-local and every `#[test]` runs on its own
//! thread, so the injected corruption cannot leak between tests.
//!
//! The whole file only exists under `--features sanitize`; without it the
//! hooks are no-ops and none of these panics would fire.
#![cfg(feature = "sanitize")]

use mask_core::prelude::*;
use mask_sanitizer as san;

// ---- request conservation -------------------------------------------------

#[test]
fn balanced_traffic_is_quiescent() {
    for id in 0..8 {
        san::issue("fi-domain", id);
    }
    for id in (0..8).rev() {
        san::retire("fi-domain", id);
    }
    san::assert_quiescent();
}

#[test]
#[should_panic(expected = "issued but never retired")]
fn leaked_request_detected_at_quiescence() {
    san::issue("fi-domain", 7);
    san::retire("fi-domain", 7);
    san::issue("fi-domain", 8); // dropped response: never retires
    san::assert_quiescent();
}

#[test]
#[should_panic(expected = "without a matching issue")]
fn duplicated_response_detected() {
    san::issue("fi-domain", 3);
    san::retire("fi-domain", 3);
    san::retire("fi-domain", 3); // response consumed twice
}

// ---- MSHR accounting ------------------------------------------------------

#[test]
#[should_panic(expected = "outlived its fill")]
fn leaked_mshr_waiter_detected() {
    let table = san::register_table("fi-mshr", 4);
    san::mshr_alloc(table, 0x80, san::MshrOutcome::Primary, 1, 4);
    // The table claims the fill found no entry, yet the mirror still holds
    // the waiter registered above — a leaked waiter.
    san::mshr_fill(table, 0x80, 0, false);
}

#[test]
#[should_panic(expected = "not genuinely full")]
fn premature_full_detected() {
    let table = san::register_table("fi-mshr", 4);
    san::mshr_alloc(table, 0x40, san::MshrOutcome::Primary, 1, 4);
    // Rejecting a miss while 3 of 4 entries are free is a lost request.
    san::mshr_alloc(table, 0xC0, san::MshrOutcome::Full, 1, 4);
}

#[test]
#[should_panic(expected = "misses were not merged")]
fn unmerged_secondary_miss_detected() {
    let table = san::register_table("fi-mshr", 4);
    san::mshr_alloc(table, 0x40, san::MshrOutcome::Primary, 1, 4);
    // A second Primary for the same line means the table failed to merge.
    san::mshr_alloc(table, 0x40, san::MshrOutcome::Primary, 2, 4);
}

// ---- walker-slot lifecycle ------------------------------------------------

#[test]
fn full_walk_lifecycle_is_clean() {
    san::walk_activate(5, 1);
    for level in 2..=4 {
        san::walk_advance(5, level);
    }
    san::walk_retire(5);
    san::assert_quiescent();
}

#[test]
#[should_panic(expected = "double free")]
fn double_freed_walker_slot_detected() {
    san::walk_activate(0, 1);
    san::walk_retire(0);
    san::walk_retire(0); // slot freed twice
}

#[test]
#[should_panic(expected = "single-use until freed")]
fn reused_active_walker_slot_detected() {
    san::walk_activate(9, 1);
    san::walk_activate(9, 1); // slot handed out twice without a free
}

#[test]
#[should_panic(expected = "strictly increase")]
fn skipped_walk_level_detected() {
    san::walk_activate(2, 1);
    san::walk_advance(2, 3); // level 2 skipped
}

// ---- token conservation ---------------------------------------------------

#[test]
#[should_panic(expected = "token conservation violated")]
fn token_overgrant_detected() {
    san::token_epoch(0, 65, 64); // more tokens than warps
}

// ---- whole-simulator property under the sanitizer -------------------------

fn run_pair(seed: u64) -> SimStats {
    let mut gpu = GpuConfig::maxwell();
    gpu.warps_per_core = 16;
    let runner = PairRunner::new(RunOptions {
        n_cores: 4,
        max_cycles: 8_000,
        seed,
        warmup_cycles: 2_000,
        gpu,
        jobs: JobOptions::serial(),
    });
    runner.run_apps(
        DesignKind::Mask,
        &[
            AppSpec {
                profile: app_by_name("MUM").expect("known"),
                n_cores: 2,
            },
            AppSpec {
                profile: app_by_name("HISTO").expect("known"),
                n_cores: 2,
            },
        ],
    )
}

/// A full two-app multiprogrammed run completes under the sanitizer with
/// zero violations, and per seed the sanitized run is byte-identical to a
/// repeat of itself — instrumentation must not perturb simulation state.
#[test]
fn sanitized_multiprog_is_deterministic_per_seed() {
    for seed in [0xA55A_2018u64, 0x1234_5678] {
        let a = run_pair(seed);
        let b = run_pair(seed);
        assert_eq!(a, b, "sanitized run not reproducible for seed {seed:#x}");
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "stats differ textually for seed {seed:#x}"
        );
    }
}
