//! TLB structures and MASK's TLB-Fill Tokens mechanism.
//!
//! This crate implements every address-translation caching structure of the
//! paper's two baseline designs (Fig. 2) and of MASK (Fig. 10):
//!
//! * per-core, fully-associative **L1 TLBs** ([`l1::L1Tlb`]),
//! * the **shared L2 TLB** with ASID-tagged entries ([`l2::SharedL2Tlb`]),
//! * the **page-walk cache** of the `PWCache` baseline variant
//!   ([`pwc::PageWalkCache`]),
//! * MASK's **TLB bypass cache** ([`bypass::TlbBypassCache`]) and the
//!   epoch-based **TLB-Fill Tokens** controller ([`tokens::TokenAllocator`])
//!   — mechanism ❶ of Fig. 10 (§5.2).
//!
//! All replacement is LRU, matching Table 1 ("L1 and L2 TLBs use the LRU
//! replacement policy").

pub mod assoc;
pub mod bypass;
pub mod l1;
pub mod l2;
pub mod pwc;
pub mod tokens;

pub use assoc::AssocArray;
pub use bypass::TlbBypassCache;
pub use l1::L1Tlb;
pub use l2::{L2TlbProbe, SharedL2Tlb};
pub use pwc::PageWalkCache;
pub use tokens::{TokenAllocator, TokenPolicy};

/// A TLB entry key: (address space, virtual page).
///
/// The shared structures are ASID-tagged (§5.1: "We extend each L2 TLB
/// entry with an address space identifier"); private L1 TLBs carry the tag
/// too so that core reassignment flushes work uniformly.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TlbKey {
    /// The address space identifier.
    pub asid: mask_common::Asid,
    /// The virtual page number.
    pub vpn: mask_common::Vpn,
}

impl TlbKey {
    /// Creates a key.
    pub const fn new(asid: mask_common::Asid, vpn: mask_common::Vpn) -> Self {
        TlbKey { asid, vpn }
    }
}

use mask_common::snapshot::SnapField;

impl SnapField for TlbKey {
    fn write(&self, w: &mut mask_common::snapshot::SnapshotWriter) {
        self.asid.write(w);
        self.vpn.write(w);
    }

    fn read(
        r: &mut mask_common::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, mask_common::snapshot::SnapshotError> {
        Ok(TlbKey {
            asid: mask_common::Asid::read(r)?,
            vpn: mask_common::Vpn::read(r)?,
        })
    }
}
