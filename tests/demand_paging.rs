//! End-to-end demand-paging behaviour (the §5.5 extension).

use mask_core::prelude::*;

fn stats_with_fault_latency(latency: u64) -> SimStats {
    let mut gpu = GpuConfig::maxwell();
    gpu.warps_per_core = 16;
    gpu.page_fault_latency = latency;
    let runner = PairRunner::new(RunOptions {
        n_cores: 4,
        max_cycles: 20_000,
        seed: 5,
        warmup_cycles: 0,
        gpu,
        jobs: JobOptions::serial(),
    });
    runner.run_apps(
        DesignKind::SharedTlb,
        &[AppSpec {
            profile: app_by_name("SCAN").expect("known"),
            n_cores: 4,
        }],
    )
}

#[test]
fn faults_are_counted_only_when_enabled() {
    let without = stats_with_fault_latency(0);
    let with = stats_with_fault_latency(5_000);
    assert_eq!(
        without.apps[0].page_faults, 0,
        "fault-free mode takes no faults"
    );
    assert!(with.apps[0].page_faults > 0, "first touches must fault");
}

#[test]
fn fault_latency_costs_throughput() {
    let without = stats_with_fault_latency(0);
    let with = stats_with_fault_latency(5_000);
    assert!(
        with.apps[0].instructions < without.apps[0].instructions,
        "5K-cycle faults must slow a streaming app ({} vs {})",
        with.apps[0].instructions,
        without.apps[0].instructions
    );
}

#[test]
fn each_page_faults_at_most_once() {
    let with = stats_with_fault_latency(2_000);
    // Every fault stems from a primary L1-TLB-miss translation request,
    // so faults can never exceed L1 TLB misses; and re-touches of a
    // faulted page never fault again (faults are first-touch only).
    assert!(
        with.apps[0].page_faults <= with.apps[0].l1_tlb.misses(),
        "faults ({}) cannot exceed L1 TLB misses ({})",
        with.apps[0].page_faults,
        with.apps[0].l1_tlb.misses()
    );
    assert!(with.apps[0].page_faults > 0);
}
