//! Physical frame allocation for data pages and page-table nodes.
//!
//! The simulator never stores page *contents* — only addresses matter — but
//! the *placement* of physical frames determines DRAM row/bank/channel
//! behaviour, so the allocator is deliberate about layout:
//!
//! * **Data frames** are allocated per address space from disjoint regions,
//!   mostly contiguously (matching a first-touch allocator on a fresh GPU),
//!   so that streaming applications see high row-buffer locality — the
//!   property FR-FCFS exploits and that Fig. 9 shows starves translation
//!   requests.
//! * **Page-table node frames** come from a separate region and are strided
//!   across channels, giving translation requests the low row locality the
//!   paper observes ("address translation requests have low row buffer
//!   locality", §5.4 footnote 7).

use mask_common::addr::Ppn;
use mask_common::ids::Asid;

/// Size of the per-ASID data region in frames (supports up to 16 GB worth
/// of 4 KB pages per address space, far beyond any workload here).
const DATA_REGION_FRAMES: u64 = 1 << 22;
/// Frame number where page-table-node frames begin (above all data regions
/// for up to 64 address spaces).
const NODE_REGION_BASE: u64 = DATA_REGION_FRAMES * 64;

/// Allocates physical frames for data pages and page-table nodes.
///
/// Frames are identified by [`Ppn`]s relative to the configured page size;
/// page-table nodes are always 4 KB regardless of the data page size, so
/// node allocation tracks raw byte addresses internally.
#[derive(Clone, Debug)]
pub struct FrameAllocator {
    page_size_log2: u32,
    /// Next free data frame per ASID (index = ASID).
    data_next: Vec<u64>,
    /// Next free page-table-node index (nodes are 4 KB each).
    node_next: u64,
    /// Page-coloring stripe count (≤ 1 = plain contiguous allocation).
    /// With `n` colors, ASID `a`'s data frames all satisfy
    /// `frame % n == a % n`, so an application's color rides in the low
    /// frame bits that feed cache-set and DRAM-bank indexing.
    n_colors: u64,
}

impl FrameAllocator {
    /// Creates an allocator for the given data-page size.
    pub fn new(page_size_log2: u32) -> Self {
        FrameAllocator {
            page_size_log2,
            data_next: Vec::new(),
            node_next: 0,
            n_colors: 1,
        }
    }

    /// Creates a color-aware allocator striping data frames over
    /// `n_colors` page colors (the FGPU-style `Partitioned` design;
    /// `n_colors <= 1` degenerates to [`FrameAllocator::new`]).
    pub fn with_colors(page_size_log2: u32, n_colors: u64) -> Self {
        FrameAllocator {
            n_colors: n_colors.max(1),
            ..FrameAllocator::new(page_size_log2)
        }
    }

    /// The data-page size this allocator serves.
    pub fn page_size_log2(&self) -> u32 {
        self.page_size_log2
    }

    /// Allocates the next data frame for `asid`.
    ///
    /// Frames for one address space are contiguous within its region with a
    /// light per-allocation scramble of the low bits every few frames, which
    /// keeps row locality high without making every app's stream perfectly
    /// sequential.
    pub fn alloc_data(&mut self, asid: Asid) -> Ppn {
        let idx = asid.index();
        if self.data_next.len() <= idx {
            self.data_next.resize(idx + 1, 0);
        }
        let n = self.data_next[idx];
        assert!(
            n < DATA_REGION_FRAMES / self.n_colors,
            "data region exhausted for {asid:?}"
        );
        self.data_next[idx] = n + 1;
        // Region base in *4 KB-equivalent* frames, converted to this page size.
        let region_base_bytes = (idx as u64 * DATA_REGION_FRAMES) << 12;
        let base = region_base_bytes >> self.page_size_log2;
        if self.n_colors <= 1 {
            return Ppn(base + n);
        }
        // Color-aware striping: every frame of this ASID carries its color
        // in the low bits (`frame % n_colors == color`), still walking the
        // region front to back so contiguity within a color is preserved.
        let color = idx as u64 % self.n_colors;
        let align = (color + self.n_colors - base % self.n_colors) % self.n_colors;
        Ppn(base + align + n * self.n_colors)
    }

    /// Allocates a 4 KB page-table node, returning its base *byte* address
    /// shifted to a 4 KB frame number.
    ///
    /// Consecutive nodes are strided by a large odd step so that node lines
    /// scatter across DRAM channels, banks and rows.
    pub fn alloc_node(&mut self) -> u64 {
        let n = self.node_next;
        self.node_next += 1;
        // Golden-ratio stride within a 2^22-frame node region: visits every
        // frame exactly once (stride is odd => coprime with the power of 2).
        const NODE_REGION_FRAMES: u64 = 1 << 22;
        const STRIDE: u64 = (2654435761 % NODE_REGION_FRAMES) | 1;
        assert!(n < NODE_REGION_FRAMES, "page-table node region exhausted");
        NODE_REGION_BASE + (n.wrapping_mul(STRIDE) % NODE_REGION_FRAMES)
    }

    /// Number of data frames handed out to `asid` so far.
    pub fn data_frames(&self, asid: Asid) -> u64 {
        self.data_next.get(asid.index()).copied().unwrap_or(0)
    }

    /// Number of page-table nodes handed out so far.
    pub fn node_frames(&self) -> u64 {
        self.node_next
    }
}

impl mask_common::snapshot::Snapshot for FrameAllocator {
    /// Serializes the allocation cursors (`data_next` grows on demand, so
    /// its length is state too); page size and color count are
    /// config-derived.
    fn snapshot(&self, w: &mut mask_common::snapshot::SnapshotWriter) {
        w.seq(self.data_next.len());
        for &n in &self.data_next {
            w.u64(n);
        }
        w.u64(self.node_next);
    }

    fn restore(
        &mut self,
        r: &mut mask_common::snapshot::SnapshotReader<'_>,
    ) -> Result<(), mask_common::snapshot::SnapshotError> {
        let n = r.seq()?;
        self.data_next.clear();
        for _ in 0..n {
            self.data_next.push(r.u64()?);
        }
        self.node_next = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn data_frames_are_unique_within_and_across_asids() {
        let mut a = FrameAllocator::new(12);
        let mut seen = HashSet::new();
        for asid in 0..4u16 {
            for _ in 0..1000 {
                let ppn = a.alloc_data(Asid::new(asid));
                assert!(seen.insert(ppn), "duplicate frame {ppn:?}");
            }
        }
    }

    #[test]
    fn data_frames_are_mostly_contiguous() {
        let mut a = FrameAllocator::new(12);
        let f0 = a.alloc_data(Asid::new(0));
        let f1 = a.alloc_data(Asid::new(0));
        assert_eq!(f1.0, f0.0 + 1);
    }

    #[test]
    fn node_frames_unique_and_above_data_regions() {
        let mut a = FrameAllocator::new(12);
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            let f = a.alloc_node();
            assert!(f >= NODE_REGION_BASE);
            assert!(seen.insert(f), "duplicate node frame {f}");
        }
    }

    #[test]
    fn node_frames_scatter() {
        let mut a = FrameAllocator::new(12);
        let f0 = a.alloc_node();
        let f1 = a.alloc_node();
        assert!(
            f0.abs_diff(f1) > 1,
            "consecutive nodes should not be adjacent"
        );
    }

    #[test]
    fn colored_frames_carry_the_asid_color() {
        let mut a = FrameAllocator::with_colors(12, 3);
        for asid in 0..3u16 {
            for _ in 0..100 {
                let ppn = a.alloc_data(Asid::new(asid));
                assert_eq!(ppn.0 % 3, u64::from(asid) % 3, "frame {ppn:?}");
            }
        }
    }

    #[test]
    fn colored_frames_are_unique_and_stride_by_color_count() {
        let mut a = FrameAllocator::with_colors(12, 4);
        let mut seen = HashSet::new();
        for asid in 0..4u16 {
            let f0 = a.alloc_data(Asid::new(asid));
            let f1 = a.alloc_data(Asid::new(asid));
            assert_eq!(f1.0, f0.0 + 4, "stripe stride is the color count");
            assert!(seen.insert(f0) && seen.insert(f1));
        }
    }

    #[test]
    fn one_color_degenerates_to_linear() {
        let mut lin = FrameAllocator::new(12);
        let mut col = FrameAllocator::with_colors(12, 1);
        for asid in 0..2u16 {
            for _ in 0..50 {
                assert_eq!(
                    lin.alloc_data(Asid::new(asid)),
                    col.alloc_data(Asid::new(asid))
                );
            }
        }
    }

    #[test]
    fn large_page_frames_scale() {
        let mut a = FrameAllocator::new(21);
        let f0 = a.alloc_data(Asid::new(1));
        let f1 = a.alloc_data(Asid::new(1));
        assert_eq!(f1.0, f0.0 + 1);
        // 2 MB frames: byte addresses differ by 2 MB.
        assert_eq!(f1.base(21).raw() - f0.base(21).raw(), 1 << 21);
    }
}
