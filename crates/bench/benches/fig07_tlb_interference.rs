//! Figure 7: inter-address-space interference at the shared L2 TLB.

use mask_bench::{banner, emit, options};
use mask_core::experiments::interference;

fn main() {
    let opts = options(35);
    banner("Figure 7: shared L2 TLB interference", &opts);
    let t0 = std::time::Instant::now();
    emit(&interference::run(&opts));
    println!("[fig07 done in {:?}]", t0.elapsed());
}
