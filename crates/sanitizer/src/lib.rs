//! Runtime simulation-invariant sanitizer.
//!
//! MASK's results rest on cycle-accurate accounting of in-flight state:
//! translation MSHR merging (§5.4), the 64-slot shared page-table walker
//! (§4.1), and epoch-based TLB-fill tokens (§5.2). A single leaked MSHR
//! waiter or reused walker slot silently corrupts every downstream figure
//! while the simulation still "runs fine". This crate is the machinery that
//! makes such bugs loud:
//!
//! - **Request conservation** — every issued request retires exactly once
//!   per accounting domain (no loss, no duplication).
//! - **MSHR accounting** — an independent mirror of every MSHR table checks
//!   that occupancy never exceeds capacity, that [`MshrOutcome::Full`] is
//!   only reported when the table is genuinely full, and that no entry
//!   outlives its fill.
//! - **Walker-slot lifecycle** — a walk slot is single-use until freed,
//!   freed exactly once, and its walk levels strictly increase 1→4.
//! - **TLB-fill token conservation** — per-epoch token grants stay within
//!   `1..=total_warps`.
//! - **Cycle monotonicity** — no component ever observes time running
//!   backwards.
//!
//! The hook functions ([`issue`], [`retire`], [`mshr_alloc`], [`cycle`], …)
//! are called by the cache, TLB, page-table-walker, DRAM, and GPU crates at
//! their state transitions. Without the `enabled` feature every hook is an
//! empty `#[inline(always)]` function, so the instrumented simulator is
//! byte-for-byte as fast as an uninstrumented one. Simulation crates expose
//! the feature as `sanitize`; turning it on anywhere in the workspace turns
//! it on everywhere (cargo feature unification), which is exactly the
//! intended "sanitized build" semantics.
//!
//! Violations panic immediately with a `[mask-sanitizer]` diagnostic naming
//! the component, the object, and the state transition that broke the
//! invariant.
//!
//! The same hook-point pattern — inline functions compiled to nothing
//! unless a feature is on — carries the observability subsystem: `mask-obs`
//! (workspace feature `obs`) places its tracing hooks alongside this
//! crate's at the simulator's state transitions, but *records* events
//! instead of checking them, and adds a second, runtime gate
//! (`MASK_TRACE`). The two are independent and compose: a sanitized traced
//! run checks invariants and collects the trace in one pass.
//!
//! # Sessions
//!
//! State is tracked per thread and, within a thread, per *session* so that
//! two simulations built side by side (as the determinism tests do) don't
//! see each other's requests. [`GpuSim`](../mask_gpu/struct.GpuSim.html)
//! allocates a session with [`new_session`] and re-enters it with
//! [`enter_session`] at the top of every cycle; component unit tests that
//! never create a session run in the ambient session `0`.
//!
//! ## Worker threads
//!
//! Because all sanitizer state lives in a `thread_local!`, isolation under
//! the `mask-core` job engine comes for free: each engine worker thread
//! builds and runs its `GpuSim` entirely on that thread, so a sanitized
//! parallel batch gets one independent session space per worker — no
//! cross-thread sharing, no locks, and identical diagnostics at any
//! `MASK_JOBS` value. The one rule this imposes: a `GpuSim` must be
//! stepped on the thread that created it (moving one across threads
//! mid-run would leave its session behind). The engine guarantees this by
//! construction — every job is created, run, and dropped inside a single
//! worker closure — and violations in a job panic the worker, which the
//! engine re-raises on the caller with the original `[mask-sanitizer]`
//! message intact.
//!
//! ## Capture and replay (sharded SM frontend)
//!
//! `mask-gpu`'s sharded issue stage (`MASK_SM_SHARDS`) runs slices of one
//! simulation's cores on shard worker threads *within* a cycle. Hooks
//! fired there must not dispatch into the worker's (empty) thread-local
//! session, and must be observed in the same order as a serial run. The
//! capture API provides exactly that: a shard calls [`capture_begin`]
//! before issuing, every hook fired on that thread is appended to the
//! buffer instead of dispatched, and [`capture_end`] hands the buffer
//! back. The simulation's owning thread then calls [`replay`] on each
//! shard's buffer in ascending shard order, dispatching the events into
//! the live session as if the cores had issued serially. Violations
//! therefore panic on the owning thread, deterministically, with the same
//! diagnostics at any shard count.

mod invariant;

pub use invariant::InvariantSanitizer;

/// Outcome of an MSHR allocation, as reported by the instrumented table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MshrOutcome {
    /// First miss on the line: a new entry was created.
    Primary,
    /// Merged into an existing entry.
    Secondary,
    /// Rejected: table claimed to be full.
    Full,
}

/// A request entered an accounting domain (e.g. was sent downstream).
#[derive(Clone, Copy, Debug)]
pub struct IssueEvent {
    /// Conservation domain, e.g. `"l2-cache"` or `"dram"`.
    pub domain: &'static str,
    /// Request id, unique while in flight within the domain.
    pub id: u64,
}

/// A request left an accounting domain (response/completion consumed).
#[derive(Clone, Copy, Debug)]
pub struct RetireEvent {
    /// Conservation domain the request was issued into.
    pub domain: &'static str,
    /// Request id.
    pub id: u64,
}

/// A fill: an MSHR entry completing, or a TLB/cache array accepting a line.
#[derive(Clone, Copy, Debug)]
pub enum FillEvent {
    /// An MSHR table completed `line`, releasing `waiters` waiters.
    Mshr {
        /// Table id from [`register_table`].
        table: u64,
        /// The filled line address.
        line: u64,
        /// Waiters the table reported releasing.
        waiters: usize,
        /// Whether the table held an entry for the line.
        found: bool,
    },
    /// An associative structure (TLB level, bypass cache) filled an entry.
    Array {
        /// Component name, e.g. `"l1-tlb"`.
        component: &'static str,
        /// Occupancy after the fill.
        len: usize,
        /// Structure capacity.
        capacity: usize,
    },
}

/// A component observed the clock.
#[derive(Clone, Copy, Debug)]
pub struct CycleEvent {
    /// Instance id from [`register_component`] (0 = anonymous).
    pub instance: u64,
    /// Component name, e.g. `"gpu"` or `"dram"`.
    pub component: &'static str,
    /// The cycle the component was ticked with.
    pub now: u64,
}

/// An MSHR allocation attempt and the table's reported outcome/occupancy.
#[derive(Clone, Copy, Debug)]
pub struct MshrAllocEvent {
    /// Table id from [`register_table`].
    pub table: u64,
    /// Line allocated against.
    pub line: u64,
    /// Reported outcome.
    pub outcome: MshrOutcome,
    /// Reported occupancy after the attempt.
    pub len: usize,
    /// Table capacity.
    pub capacity: usize,
}

/// A page-walker slot state transition.
#[derive(Clone, Copy, Debug)]
pub enum WalkEvent {
    /// A free slot began a walk at `level` (must be 1).
    Activate {
        /// Slot index (the `WalkId`).
        slot: u32,
        /// Starting level.
        level: u8,
    },
    /// An active walk advanced to `level` (must be previous + 1, ≤ 4).
    Advance {
        /// Slot index.
        slot: u32,
        /// New level.
        level: u8,
    },
    /// An active walk finished and its slot was freed.
    Retire {
        /// Slot index.
        slot: u32,
    },
}

/// An epoch-boundary token reallocation for one address space.
#[derive(Clone, Copy, Debug)]
pub struct TokenEpochEvent {
    /// Address space the tokens belong to.
    pub asid: u16,
    /// Tokens granted for the next epoch.
    pub tokens: u64,
    /// Total warps of that address space (upper bound on tokens).
    pub total_warps: u64,
}

/// Observer of simulation state transitions.
///
/// The default implementation, [`InvariantSanitizer`], enforces the
/// invariants in the crate docs by panicking. Custom sanitizers (tracing,
/// statistics, fuzz oracles) can be swapped in with [`install`].
pub trait SimSanitizer {
    /// A request entered a conservation domain.
    fn on_issue(&mut self, ev: IssueEvent);
    /// An MSHR or associative array filled.
    fn on_fill(&mut self, ev: FillEvent);
    /// A request left a conservation domain.
    fn on_retire(&mut self, ev: RetireEvent);
    /// A component observed the clock.
    fn on_cycle(&mut self, ev: CycleEvent);
    /// An MSHR allocation attempt was reported.
    fn on_mshr_alloc(&mut self, ev: MshrAllocEvent) {
        let _ = ev;
    }
    /// A walker slot changed state.
    fn on_walk(&mut self, ev: WalkEvent) {
        let _ = ev;
    }
    /// An epoch boundary reallocated TLB-fill tokens.
    fn on_token_epoch(&mut self, ev: TokenEpochEvent) {
        let _ = ev;
    }
    /// A component reported a structural self-check result.
    fn on_check(&mut self, component: &'static str, ok: bool, what: &'static str) {
        let _ = (component, ok, what);
    }
    /// A new MSHR table came into existence.
    fn on_register_table(&mut self, table: u64, component: &'static str, capacity: usize) {
        let _ = (table, component, capacity);
    }
    /// The current session changed.
    fn on_session(&mut self, session: u64) {
        let _ = session;
    }
    /// Asserts nothing is in flight (end-of-drain check; may panic).
    fn check_quiescent(&self) {}
}

/// One hook invocation, recorded verbatim for later replay.
#[cfg(feature = "enabled")]
#[derive(Clone, Copy, Debug)]
pub(crate) enum CapturedEvent {
    /// [`issue`]
    Issue(IssueEvent),
    /// [`retire`]
    Retire(RetireEvent),
    /// [`mshr_fill`] / [`array_fill`]
    Fill(FillEvent),
    /// [`cycle`]
    Cycle(CycleEvent),
    /// [`mshr_alloc`]
    MshrAlloc(MshrAllocEvent),
    /// [`walk_activate`] / [`walk_advance`] / [`walk_retire`]
    Walk(WalkEvent),
    /// [`token_epoch`]
    TokenEpoch(TokenEpochEvent),
    /// [`check`]
    Check {
        /// Reporting component.
        component: &'static str,
        /// Whether the self-check passed.
        ok: bool,
        /// What was checked.
        what: &'static str,
    },
}

/// A buffer of hook events captured on one thread, replayable on another.
///
/// Without the `enabled` feature this is an empty type and every capture
/// operation is a no-op, so the sharded frontend pays nothing in
/// unsanitized builds.
#[derive(Debug, Default)]
pub struct EventBuffer {
    #[cfg(feature = "enabled")]
    events: Vec<CapturedEvent>,
}

impl EventBuffer {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(feature = "enabled")]
mod active {
    use super::{CapturedEvent, EventBuffer, InvariantSanitizer, SimSanitizer};
    use std::cell::RefCell;

    struct Ctx {
        session: u64,
        next_session: u64,
        next_table: u64,
        sanitizer: Option<Box<dyn SimSanitizer>>,
    }

    thread_local! {
        static CTX: RefCell<Ctx> =
            const { RefCell::new(Ctx { session: 0, next_session: 1, next_table: 1, sanitizer: None }) };
        static CAPTURE: RefCell<Option<Vec<CapturedEvent>>> = const { RefCell::new(None) };
    }

    pub(super) fn dispatch(f: impl FnOnce(&mut dyn SimSanitizer)) {
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            let san = ctx
                .sanitizer
                .get_or_insert_with(|| Box::new(InvariantSanitizer::new()));
            f(san.as_mut());
        });
    }

    fn apply(s: &mut dyn SimSanitizer, ev: CapturedEvent) {
        match ev {
            CapturedEvent::Issue(e) => s.on_issue(e),
            CapturedEvent::Retire(e) => s.on_retire(e),
            CapturedEvent::Fill(e) => s.on_fill(e),
            CapturedEvent::Cycle(e) => s.on_cycle(e),
            CapturedEvent::MshrAlloc(e) => s.on_mshr_alloc(e),
            CapturedEvent::Walk(e) => s.on_walk(e),
            CapturedEvent::TokenEpoch(e) => s.on_token_epoch(e),
            CapturedEvent::Check {
                component,
                ok,
                what,
            } => s.on_check(component, ok, what),
        }
    }

    /// Routes `ev`: appended to the active capture buffer (if any) or
    /// dispatched into the thread's sanitizer immediately.
    pub(super) fn emit(ev: CapturedEvent) {
        let captured = CAPTURE.with(|cap| {
            if let Some(buf) = cap.borrow_mut().as_mut() {
                buf.push(ev);
                true
            } else {
                false
            }
        });
        if !captured {
            dispatch(|s| apply(s, ev));
        }
    }

    pub(super) fn capture_begin(buf: EventBuffer) {
        CAPTURE.with(|cap| {
            let mut cap = cap.borrow_mut();
            assert!(
                cap.is_none(),
                "[mask-sanitizer] capture_begin while a capture is already active"
            );
            *cap = Some(buf.events);
        });
    }

    pub(super) fn capture_end() -> EventBuffer {
        let events = CAPTURE.with(|cap| {
            cap.borrow_mut()
                .take()
                .expect("[mask-sanitizer] capture_end without a matching capture_begin")
        });
        EventBuffer { events }
    }

    pub(super) fn replay(buf: &mut EventBuffer) {
        for ev in buf.events.drain(..) {
            emit(ev);
        }
    }

    pub(super) fn new_session() -> u64 {
        let id = CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            let id = ctx.next_session;
            ctx.next_session += 1;
            id
        });
        id
    }

    pub(super) fn enter_session(id: u64) {
        CTX.with(|ctx| ctx.borrow_mut().session = id);
        dispatch(|s| s.on_session(id));
    }

    pub(super) fn register_table(component: &'static str, capacity: usize) -> u64 {
        let id = CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            let id = ctx.next_table;
            ctx.next_table += 1;
            id
        });
        dispatch(|s| s.on_register_table(id, component, capacity));
        id
    }

    pub(super) fn register_component() -> u64 {
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            let id = ctx.next_table;
            ctx.next_table += 1;
            id
        })
    }

    pub(super) fn install(sanitizer: Box<dyn SimSanitizer>) {
        CTX.with(|ctx| ctx.borrow_mut().sanitizer = Some(sanitizer));
    }

    pub(super) fn reset() {
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            ctx.sanitizer = None;
            ctx.session = 0;
        });
    }
}

/// Whether sanitizer hooks are compiled in (the `enabled` feature).
#[must_use]
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Allocates a fresh accounting session (returns 0 when disabled).
#[inline(always)]
#[must_use]
pub fn new_session() -> u64 {
    #[cfg(feature = "enabled")]
    {
        active::new_session()
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

/// Makes `id` the current session for subsequent events on this thread.
#[inline(always)]
pub fn enter_session(id: u64) {
    #[cfg(feature = "enabled")]
    active::enter_session(id);
    #[cfg(not(feature = "enabled"))]
    let _ = id;
}

/// Registers an MSHR table and returns its sanitizer id (0 when disabled).
#[inline(always)]
#[must_use]
pub fn register_table(component: &'static str, capacity: usize) -> u64 {
    #[cfg(feature = "enabled")]
    {
        active::register_table(component, capacity)
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (component, capacity);
        0
    }
}

/// Replaces the thread's sanitizer (e.g. with a tracing implementation).
#[inline(always)]
// By-value is the real API contract: the box is stored when `enabled` is on.
#[cfg_attr(not(feature = "enabled"), allow(clippy::needless_pass_by_value))]
pub fn install(sanitizer: Box<dyn SimSanitizer>) {
    #[cfg(feature = "enabled")]
    active::install(sanitizer);
    #[cfg(not(feature = "enabled"))]
    let _ = sanitizer;
}

/// Clears all sanitizer state on this thread (test helper).
#[inline(always)]
pub fn reset() {
    #[cfg(feature = "enabled")]
    active::reset();
}

/// Records a request entering conservation domain `domain`.
#[inline(always)]
pub fn issue(domain: &'static str, id: u64) {
    #[cfg(feature = "enabled")]
    active::emit(CapturedEvent::Issue(IssueEvent { domain, id }));
    #[cfg(not(feature = "enabled"))]
    let _ = (domain, id);
}

/// Records a request leaving conservation domain `domain`.
#[inline(always)]
pub fn retire(domain: &'static str, id: u64) {
    #[cfg(feature = "enabled")]
    active::emit(CapturedEvent::Retire(RetireEvent { domain, id }));
    #[cfg(not(feature = "enabled"))]
    let _ = (domain, id);
}

/// Records an MSHR allocation attempt (call after the table updated).
#[inline(always)]
pub fn mshr_alloc(table: u64, line: u64, outcome: MshrOutcome, len: usize, capacity: usize) {
    #[cfg(feature = "enabled")]
    active::emit(CapturedEvent::MshrAlloc(MshrAllocEvent {
        table,
        line,
        outcome,
        len,
        capacity,
    }));
    #[cfg(not(feature = "enabled"))]
    let _ = (table, line, outcome, len, capacity);
}

/// Records an MSHR fill (completion) releasing `waiters` waiters.
#[inline(always)]
pub fn mshr_fill(table: u64, line: u64, waiters: usize, found: bool) {
    #[cfg(feature = "enabled")]
    active::emit(CapturedEvent::Fill(FillEvent::Mshr {
        table,
        line,
        waiters,
        found,
    }));
    #[cfg(not(feature = "enabled"))]
    let _ = (table, line, waiters, found);
}

/// Records an associative-array fill (TLB level, bypass cache, cache array).
#[inline(always)]
pub fn array_fill(component: &'static str, len: usize, capacity: usize) {
    #[cfg(feature = "enabled")]
    active::emit(CapturedEvent::Fill(FillEvent::Array {
        component,
        len,
        capacity,
    }));
    #[cfg(not(feature = "enabled"))]
    let _ = (component, len, capacity);
}

/// Registers a ticking component instance for per-instance cycle tracking.
/// Returns its instance id (0 when disabled).
#[inline(always)]
#[must_use]
pub fn register_component(component: &'static str) -> u64 {
    #[cfg(feature = "enabled")]
    {
        let _ = component;
        active::register_component()
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = component;
        0
    }
}

/// Records a component instance observing cycle `now`.
#[inline(always)]
pub fn cycle(instance: u64, component: &'static str, now: u64) {
    #[cfg(feature = "enabled")]
    active::emit(CapturedEvent::Cycle(CycleEvent {
        instance,
        component,
        now,
    }));
    #[cfg(not(feature = "enabled"))]
    let _ = (instance, component, now);
}

/// Records a walker slot starting a walk at `level`.
#[inline(always)]
pub fn walk_activate(slot: u32, level: u8) {
    #[cfg(feature = "enabled")]
    active::emit(CapturedEvent::Walk(WalkEvent::Activate { slot, level }));
    #[cfg(not(feature = "enabled"))]
    let _ = (slot, level);
}

/// Records a walker slot advancing to `level`.
#[inline(always)]
pub fn walk_advance(slot: u32, level: u8) {
    #[cfg(feature = "enabled")]
    active::emit(CapturedEvent::Walk(WalkEvent::Advance { slot, level }));
    #[cfg(not(feature = "enabled"))]
    let _ = (slot, level);
}

/// Records a walker slot finishing its walk and being freed.
#[inline(always)]
pub fn walk_retire(slot: u32) {
    #[cfg(feature = "enabled")]
    active::emit(CapturedEvent::Walk(WalkEvent::Retire { slot }));
    #[cfg(not(feature = "enabled"))]
    let _ = slot;
}

/// Reports a structural self-check: `ok == false` is a violation described
/// by `what`.
#[inline(always)]
pub fn check(ok: bool, component: &'static str, what: &'static str) {
    #[cfg(feature = "enabled")]
    active::emit(CapturedEvent::Check {
        component,
        ok,
        what,
    });
    #[cfg(not(feature = "enabled"))]
    let _ = (ok, component, what);
}

/// Records an epoch-boundary token grant for one address space.
#[inline(always)]
pub fn token_epoch(asid: u16, tokens: u64, total_warps: u64) {
    #[cfg(feature = "enabled")]
    active::emit(CapturedEvent::TokenEpoch(TokenEpochEvent {
        asid,
        tokens,
        total_warps,
    }));
    #[cfg(not(feature = "enabled"))]
    let _ = (asid, tokens, total_warps);
}

/// Begins capturing hook events on this thread into `buf`.
///
/// Until the matching [`capture_end`], every event-firing hook on this
/// thread ([`issue`], [`retire`], [`mshr_alloc`], [`mshr_fill`],
/// [`array_fill`], [`cycle`], [`walk_activate`], [`walk_advance`],
/// [`walk_retire`], [`check`], [`token_epoch`]) is appended to the buffer
/// instead of dispatched. Panics if a capture is already active. Passing a
/// previously drained buffer reuses its allocation.
#[inline(always)]
// By-value is the real API contract: the buffer is stored when `enabled` is on.
#[cfg_attr(not(feature = "enabled"), allow(clippy::needless_pass_by_value))]
pub fn capture_begin(buf: EventBuffer) {
    #[cfg(feature = "enabled")]
    active::capture_begin(buf);
    #[cfg(not(feature = "enabled"))]
    let _ = buf;
}

/// Ends the active capture on this thread and returns the filled buffer.
///
/// Panics if no capture is active.
#[inline(always)]
#[must_use]
pub fn capture_end() -> EventBuffer {
    #[cfg(feature = "enabled")]
    {
        active::capture_end()
    }
    #[cfg(not(feature = "enabled"))]
    {
        EventBuffer::new()
    }
}

/// Dispatches every event in `buf` into this thread's current session, in
/// capture order, draining the buffer (its allocation is kept for reuse via
/// [`capture_begin`]).
#[inline(always)]
pub fn replay(buf: &mut EventBuffer) {
    #[cfg(feature = "enabled")]
    active::replay(buf);
    #[cfg(not(feature = "enabled"))]
    let _ = buf;
}

/// Panics if anything is still in flight in the current session: un-retired
/// requests, pending MSHR entries, or active walker slots. Call after a
/// test has drained the simulated hierarchy.
#[inline(always)]
pub fn assert_quiescent() {
    #[cfg(feature = "enabled")]
    active::dispatch(|s| s.check_quiescent());
}

#[cfg(all(test, feature = "enabled"))]
mod capture_tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Records the order of observed events as compact tags.
    struct Recorder(Rc<RefCell<Vec<String>>>);

    impl SimSanitizer for Recorder {
        fn on_issue(&mut self, ev: IssueEvent) {
            self.0
                .borrow_mut()
                .push(format!("issue:{}:{}", ev.domain, ev.id));
        }
        fn on_fill(&mut self, ev: FillEvent) {
            let tag = match ev {
                FillEvent::Mshr { line, waiters, .. } => format!("mshr-fill:{line}:{waiters}"),
                FillEvent::Array { component, len, .. } => format!("array-fill:{component}:{len}"),
            };
            self.0.borrow_mut().push(tag);
        }
        fn on_retire(&mut self, ev: RetireEvent) {
            self.0
                .borrow_mut()
                .push(format!("retire:{}:{}", ev.domain, ev.id));
        }
        fn on_cycle(&mut self, ev: CycleEvent) {
            self.0
                .borrow_mut()
                .push(format!("cycle:{}:{}", ev.component, ev.now));
        }
        fn on_mshr_alloc(&mut self, ev: MshrAllocEvent) {
            self.0
                .borrow_mut()
                .push(format!("mshr-alloc:{}:{}", ev.table, ev.line));
        }
        fn on_check(&mut self, component: &'static str, ok: bool, what: &'static str) {
            self.0
                .borrow_mut()
                .push(format!("check:{component}:{ok}:{what}"));
        }
    }

    #[test]
    fn capture_defers_and_replay_dispatches_in_order() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        install(Box::new(Recorder(Rc::clone(&seen))));

        issue("t-live", 1);
        capture_begin(EventBuffer::new());
        issue("t-cap", 2);
        mshr_alloc(7, 0x40, MshrOutcome::Primary, 1, 4);
        check(true, "t-comp", "probe");
        let mut buf = capture_end();
        // Nothing beyond the live event reached the sanitizer yet.
        assert_eq!(seen.borrow().as_slice(), ["issue:t-live:1"]);

        retire("t-live", 1);
        replay(&mut buf);
        assert_eq!(
            seen.borrow().as_slice(),
            [
                "issue:t-live:1",
                "retire:t-live:1",
                "issue:t-cap:2",
                "mshr-alloc:7:64",
                "check:t-comp:true:probe",
            ]
        );

        // The drained buffer is reusable and empty.
        replay(&mut buf);
        assert_eq!(seen.borrow().len(), 5);
        reset();
    }
}
