//! Sections 7.4 and 7.5: storage cost, chip area and power consumption.

use mask_bench::emit;
use mask_common::config::GpuConfig;
use mask_core::overhead::{AreaPower, StorageCost};
use mask_core::table::Table;

fn main() {
    println!("=== Sec. 7.4/7.5: hardware overheads ===\n");
    let cfg = GpuConfig::maxwell();
    let storage = StorageCost::compute(&cfg);
    emit(&storage.to_table(&cfg));
    let ap = AreaPower::compute(&cfg);
    let mut t = Table::new(
        "Sec. 7.5: area and power (CACTI-style model)",
        &["metric", "value"],
    );
    t.row(
        "baseline translation-structure area (mm^2)",
        vec![format!("{:.4}", ap.baseline_mm2)],
    );
    t.row(
        "MASK added area (mm^2)",
        vec![format!("{:.4}", ap.mask_added_mm2)],
    );
    t.row(
        "MASK added area (fraction of ~400mm^2 die)",
        vec![format!("{:.6}", ap.area_fraction_of_die())],
    );
    t.row(
        "baseline translation-structure power (mW)",
        vec![format!("{:.3}", ap.baseline_mw)],
    );
    t.row(
        "MASK added power (mW)",
        vec![format!("{:.3}", ap.mask_added_mw)],
    );
    t.row(
        "MASK added power (fraction of ~150W board)",
        vec![format!("{:.8}", ap.power_fraction_of_board())],
    );
    emit(&t);
    println!(
        "ASID overhead is {:.1}% of the shared L2 TLB (paper: 7%)",
        storage.asid_fraction_of_l2_tlb(&cfg) * 100.0
    );
}
