//! Cloud multi-tenancy scenario: four tenants with heterogeneous demands
//! spatially share one GPU (the paper's motivating large-scale-computing
//! use case, §1).
//!
//! Tenants: a graph-analytics job (MUM), a reduction kernel (RED), a
//! physics stencil (HS), and a streaming histogram (HISTO). Compares
//! static hardware partitioning (NVIDIA GRID / AMD FirePro style) against
//! the SharedTLB baseline and MASK, reporting both throughput and
//! fairness — the two properties a cloud operator has to balance.
//!
//! ```text
//! cargo run --release --example cloud_multitenant
//! ```

use mask_core::prelude::*;

fn main() {
    let tenants = ["MUM", "RED", "HS", "HISTO"];
    let profiles: Vec<_> = tenants
        .iter()
        .map(|n| app_by_name(n).expect("known benchmark"))
        .collect();
    let opts = RunOptions {
        max_cycles: 250_000,
        n_cores: 28,
        ..Default::default()
    };
    let runner = PairRunner::new(opts);

    println!("Four tenants sharing a 28-core GPU (7 cores each)\n");
    println!(
        "{:<10} {:>8} {:>9} {:>9}   per-tenant slowdown vs alone",
        "design", "WS", "IPC(sum)", "unfair"
    );
    for design in [
        DesignKind::Static,
        DesignKind::SharedTlb,
        DesignKind::Mask,
        DesignKind::Ideal,
    ] {
        let o = runner.run_multi(&profiles, design);
        let slowdowns: Vec<String> = o
            .shared_ipc
            .iter()
            .zip(&o.alone_ipc)
            .zip(&tenants)
            .map(|((s, a), n)| format!("{n}:{:.2}x", if *s > 0.0 { a / s } else { f64::INFINITY }))
            .collect();
        println!(
            "{:<10} {:>8.3} {:>9.2} {:>9.2}   {}",
            design.label(),
            o.weighted_speedup,
            o.ipc_throughput,
            o.unfairness,
            slowdowns.join("  ")
        );
    }
    println!("\nStatic partitioning wastes resources tenants are not using;");
    println!("MASK shares everything while keeping slowdowns balanced.");
}
