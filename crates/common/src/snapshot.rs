//! Checkpoint/restore plumbing: a versioned, checksummed binary codec and
//! the [`Snapshot`] capability implemented by every stateful simulator
//! structure.
//!
//! # Model
//!
//! A snapshot captures the *dynamic* state of a structure — queues, cache
//! arrays, RNG streams, counters — and deliberately excludes anything
//! derivable from the configuration (capacities, latencies, policy
//! objects). Restoring therefore always happens into a freshly constructed,
//! configuration-identical instance: `restore` overwrites the dynamic
//! fields and leaves the configured skeleton alone. This keeps `'static`
//! workload profiles, scratch buffers, and worker pools out of the encoded
//! bytes entirely.
//!
//! Snapshots are only taken at *epoch-safe* points: a cycle that is a
//! multiple of `epoch_cycles`, or any between-step cycle before the first
//! epoch boundary. At such points every per-step scratch vector is empty,
//! the sharded SM frontend has merged, and the cycle-skip machinery (which
//! never skips past an epoch boundary) cannot straddle the cut.
//!
//! # Wire format
//!
//! ```text
//! magic "MSNP" | version u32 | prefix key u64 | payload len u64 |
//! FNV-1a(payload) u64 | payload bytes
//! ```
//!
//! All integers are little-endian. The payload is a flat stream of
//! primitive fields interleaved with 64-bit section tags (FNV-1a of a
//! static name) so a reader that drifts out of sync fails loudly at the
//! next section boundary instead of silently reinterpreting bytes.
//! Corruption, truncation, and version skew are all hard errors: a
//! snapshot either restores exactly or not at all.

use std::fmt;

/// First four bytes of every encoded snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"MSNP";

/// Bumped whenever the payload layout of any `Snapshot` impl changes.
/// Readers reject every version other than their own — there is no
/// migration path, because a stale prefix is always recomputable.
pub const SNAPSHOT_VERSION: u32 = 1;

const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a over arbitrary bytes; used for both the payload
/// checksum and [`PrefixKey`] derivation.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Absorbs a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Why a snapshot could not be decoded or restored. Every variant is a
/// hard failure: the caller must fall back to simulating from cycle zero.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Fewer bytes than the reader needed.
    Truncated {
        /// Bytes the read required.
        need: usize,
        /// Bytes remaining.
        have: usize,
    },
    /// The leading magic was not [`SNAPSHOT_MAGIC`].
    BadMagic([u8; 4]),
    /// Encoded with a different codec version.
    BadVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// Payload bytes do not hash to the header checksum.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum of the actual payload.
        computed: u64,
    },
    /// The snapshot was taken under a different [`PrefixKey`].
    KeyMismatch {
        /// Key recorded in the header.
        stored: u64,
        /// Key the restoring job computed.
        expected: u64,
    },
    /// A section tag did not match the structure the reader expected.
    BadSection {
        /// Section the reader expected next.
        expected: &'static str,
    },
    /// A field decoded to a value the target structure cannot hold.
    Malformed(&'static str),
    /// Payload bytes were left over after a full restore.
    TrailingBytes(usize),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { need, have } => {
                write!(f, "snapshot truncated: needed {need} bytes, {have} left")
            }
            SnapshotError::BadMagic(m) => write!(f, "not a snapshot (magic {m:02x?})"),
            SnapshotError::BadVersion { found, expected } => {
                write!(f, "snapshot version {found}, this build reads {expected}")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: header {stored:#018x}, payload {computed:#018x}"
            ),
            SnapshotError::KeyMismatch { stored, expected } => write!(
                f,
                "snapshot prefix key {stored:#018x} does not match job key {expected:#018x}"
            ),
            SnapshotError::BadSection { expected } => {
                write!(f, "snapshot section mismatch: expected `{expected}`")
            }
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot field: {what}"),
            SnapshotError::TrailingBytes(n) => {
                write!(f, "snapshot has {n} unconsumed payload bytes")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serializes dynamic state into a flat little-endian byte stream.
///
/// Allocation here is deliberate and fine: snapshots are taken at epoch
/// boundaries, far off the per-cycle hot path.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes of payload written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Starts a named section; the matching [`SnapshotReader::section`]
    /// call re-synchronizes or fails loudly.
    pub fn section(&mut self, tag: &'static str) {
        self.u64(fnv1a(tag.as_bytes()));
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (platform-independent layout).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `i8` as its two's-complement byte.
    pub fn i8(&mut self, v: i8) {
        self.u8(v as u8);
    }

    /// Writes an `f64` by exact bit pattern — restore must be bit-exact,
    /// so floats never round-trip through decimal.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a collection length (`u64`) ahead of its elements.
    pub fn seq(&mut self, len: usize) {
        self.usize(len);
    }

    /// Seals the payload into a self-describing envelope carrying `key`.
    #[must_use]
    pub fn seal(self, key: PrefixKey) -> Vec<u8> {
        let checksum = fnv1a(&self.buf);
        let mut out = Vec::with_capacity(HEADER_LEN + self.buf.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&key.0.to_le_bytes());
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&checksum.to_le_bytes());
        out.extend_from_slice(&self.buf);
        out
    }
}

/// Reads the payload checksum out of a sealed envelope without validating
/// or hashing the payload.
///
/// This is the cheap first tier of [`snapshots_equal`]: two well-formed
/// envelopes with different checksums cannot carry the same payload, so a
/// speculation verifier can reject most mispredictions by comparing 8
/// bytes instead of megabytes. Returns `None` when `bytes` is too short
/// to even hold a header.
#[must_use]
pub fn envelope_checksum(bytes: &[u8]) -> Option<u64> {
    let field = bytes.get(24..32)?;
    Some(u64::from_le_bytes(field.try_into().expect("8 bytes")))
}

/// Reads the stored [`PrefixKey`] out of a sealed envelope without
/// validating the payload. Returns `None` when `bytes` is shorter than a
/// header.
#[must_use]
pub fn envelope_key(bytes: &[u8]) -> Option<PrefixKey> {
    let field = bytes.get(8..16)?;
    Some(PrefixKey(u64::from_le_bytes(
        field.try_into().expect("8 bytes"),
    )))
}

/// Validates an envelope end to end — magic, version, length, checksum —
/// without decoding any payload field.
///
/// The disk-store startup sweep uses this to drop stale or truncated
/// `.msnp` files cheaply; it accepts exactly the byte strings
/// [`SnapshotReader::open`] would accept.
pub fn validate_envelope(bytes: &[u8]) -> Result<PrefixKey, SnapshotError> {
    SnapshotReader::open(bytes).map(|(_, key)| key)
}

/// Whether two sealed snapshots are byte-identical, checksum first.
///
/// The speculation commit check: a predicted segment start state matches
/// the true end state of its predecessor iff the sealed bytes agree
/// exactly. The stored FNV-1a checksums are compared before the payloads
/// so the common misprediction case costs one 8-byte read per side.
#[must_use]
pub fn snapshots_equal(a: &[u8], b: &[u8]) -> bool {
    if envelope_checksum(a) != envelope_checksum(b) {
        return false;
    }
    a == b
}

/// Byte offset of the first difference between two sealed snapshots, with
/// the differing bytes, or `None` when they are identical.
///
/// Purely diagnostic: replay decisions key off [`snapshots_equal`]; this
/// pinpoints *where* a speculated state diverged (offsets below the
/// 32-byte header mean the envelopes themselves disagree — different key
/// or payload length — rather than the state).
#[must_use]
pub fn first_divergence(a: &[u8], b: &[u8]) -> Option<(usize, Option<u8>, Option<u8>)> {
    let common = a.len().min(b.len());
    for i in 0..common {
        if a[i] != b[i] {
            return Some((i, Some(a[i]), Some(b[i])));
        }
    }
    if a.len() != b.len() {
        return Some((common, a.get(common).copied(), b.get(common).copied()));
    }
    None
}

/// Decodes the byte stream produced by [`SnapshotWriter`], validating the
/// envelope before any field is interpreted.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Validates magic, version, length, and checksum, and returns a
    /// reader over the payload plus the stored [`PrefixKey`].
    pub fn open(bytes: &'a [u8]) -> Result<(Self, PrefixKey), SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated {
                need: HEADER_LEN,
                have: bytes.len(),
            });
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic(magic));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let key = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")) as usize;
        let stored = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
        let payload = &bytes[HEADER_LEN..];
        if payload.len() != len {
            return Err(SnapshotError::Truncated {
                need: len,
                have: payload.len(),
            });
        }
        let computed = fnv1a(payload);
        if computed != stored {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        Ok((
            SnapshotReader {
                buf: payload,
                pos: 0,
            },
            PrefixKey(key),
        ))
    }

    /// Like [`SnapshotReader::open`], additionally rejecting a snapshot
    /// whose stored key differs from `expected`.
    pub fn open_keyed(bytes: &'a [u8], expected: PrefixKey) -> Result<Self, SnapshotError> {
        let (reader, stored) = Self::open(bytes)?;
        if stored != expected {
            return Err(SnapshotError::KeyMismatch {
                stored: stored.0,
                expected: expected.0,
            });
        }
        Ok(reader)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(SnapshotError::Truncated { need: n, have });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consumes and checks a section tag written by
    /// [`SnapshotWriter::section`].
    pub fn section(&mut self, tag: &'static str) -> Result<(), SnapshotError> {
        if self.u64()? != fnv1a(tag.as_bytes()) {
            return Err(SnapshotError::BadSection { expected: tag });
        }
        Ok(())
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("bool out of range")),
        }
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16")))
    }

    /// Reads a `usize` stored as `u64`.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::Malformed("usize overflow"))
    }

    /// Reads an `i8`.
    pub fn i8(&mut self) -> Result<i8, SnapshotError> {
        Ok(self.u8()? as i8)
    }

    /// Reads an `f64` by exact bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a collection length, bounded to keep a corrupt length from
    /// driving a pathological allocation.
    pub fn seq(&mut self) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        // An element is at least one byte, so a valid length can never
        // exceed the bytes remaining.
        if n > self.buf.len() - self.pos {
            return Err(SnapshotError::Malformed("sequence longer than payload"));
        }
        Ok(n)
    }

    /// Reads a collection length that must equal `expected` (used when the
    /// target structure's shape is fixed by configuration).
    pub fn seq_exact(&mut self, expected: usize) -> Result<(), SnapshotError> {
        if self.usize()? != expected {
            return Err(SnapshotError::Malformed("sequence length mismatch"));
        }
        Ok(())
    }

    /// Checks that every payload byte was consumed.
    pub fn finish(self) -> Result<(), SnapshotError> {
        let left = self.buf.len() - self.pos;
        if left != 0 {
            return Err(SnapshotError::TrailingBytes(left));
        }
        Ok(())
    }
}

/// State capture and exact re-injection for one simulator structure.
///
/// `restore` always targets a freshly constructed instance built from the
/// *same configuration*: it overwrites dynamic state only. Implementations
/// that participate in sanitizer accounting (MSHR tables, conservation
/// domains, walker slots) must also replay their structural events into
/// the current sanitizer session during `restore`, mirroring what
/// `MshrTable::clone` already does.
pub trait Snapshot {
    /// Appends this structure's dynamic state to `w`.
    fn snapshot(&self, w: &mut SnapshotWriter);

    /// Overwrites this structure's dynamic state from `r`.
    ///
    /// # Errors
    ///
    /// Any decode failure leaves the structure unusable for simulation;
    /// callers must discard it and fall back to a cold start.
    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError>;
}

impl Snapshot for crate::rng::Pcg32 {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        let (state, inc) = self.raw_parts();
        w.u64(state);
        w.u64(inc);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let state = r.u64()?;
        let inc = r.u64()?;
        *self = crate::rng::Pcg32::from_raw_parts(state, inc)
            .ok_or(SnapshotError::Malformed("Pcg32 increment must be odd"))?;
        Ok(())
    }
}

impl Snapshot for crate::stats::HitStats {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.u64(self.accesses);
        w.u64(self.hits);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.accesses = r.u64()?;
        self.hits = r.u64()?;
        if self.hits > self.accesses {
            return Err(SnapshotError::Malformed("hits exceed accesses"));
        }
        Ok(())
    }
}

impl Snapshot for crate::stats::DramClassStats {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.u64(self.requests);
        w.u64(self.latency_sum);
        w.u64(self.bus_busy_cycles);
        w.u64(self.row_hits);
        w.u64(self.row_misses);
        w.u64(self.row_conflicts);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.requests = r.u64()?;
        self.latency_sum = r.u64()?;
        self.bus_busy_cycles = r.u64()?;
        self.row_hits = r.u64()?;
        self.row_misses = r.u64()?;
        self.row_conflicts = r.u64()?;
        Ok(())
    }
}

impl Snapshot for crate::stats::AppStats {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.u64(self.instructions);
        w.u64(self.mem_instructions);
        w.u64(self.cycles);
        w.u64(self.stall_cycles);
        self.l1_tlb.snapshot(w);
        self.l2_tlb.snapshot(w);
        self.tlb_bypass_cache.snapshot(w);
        self.pwc.snapshot(w);
        w.u64(self.page_faults);
        w.u64(self.walks_started);
        w.u64(self.walks_completed);
        w.u64(self.walk_latency_sum);
        w.u64(self.walk_cycles_integral);
        w.u64(self.walk_concurrency_max);
        w.u64(self.stalled_warps_sum);
        w.u64(self.stalled_warps_events);
        w.u64(self.stalled_warps_max);
        self.l1_data.snapshot(w);
        self.l2_data.snapshot(w);
        for h in &self.l2_translation {
            h.snapshot(w);
        }
        w.u64(self.l2_translation_bypassed);
        self.dram_data.snapshot(w);
        self.dram_translation.snapshot(w);
        w.u64(self.tokens_final);
        w.u64(self.fills_diverted);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.instructions = r.u64()?;
        self.mem_instructions = r.u64()?;
        self.cycles = r.u64()?;
        self.stall_cycles = r.u64()?;
        self.l1_tlb.restore(r)?;
        self.l2_tlb.restore(r)?;
        self.tlb_bypass_cache.restore(r)?;
        self.pwc.restore(r)?;
        self.page_faults = r.u64()?;
        self.walks_started = r.u64()?;
        self.walks_completed = r.u64()?;
        self.walk_latency_sum = r.u64()?;
        self.walk_cycles_integral = r.u64()?;
        self.walk_concurrency_max = r.u64()?;
        self.stalled_warps_sum = r.u64()?;
        self.stalled_warps_events = r.u64()?;
        self.stalled_warps_max = r.u64()?;
        self.l1_data.restore(r)?;
        self.l2_data.restore(r)?;
        for h in &mut self.l2_translation {
            h.restore(r)?;
        }
        self.l2_translation_bypassed = r.u64()?;
        self.dram_data.restore(r)?;
        self.dram_translation.restore(r)?;
        self.tokens_final = r.u64()?;
        self.fills_diverted = r.u64()?;
        Ok(())
    }
}

impl Snapshot for crate::stats::SimStats {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.section("stats");
        w.seq(self.apps.len());
        for app in &self.apps {
            app.snapshot(w);
        }
        w.u64(self.cycles);
        w.u64(self.dram_bus_busy);
        w.usize(self.dram_channels);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.section("stats")?;
        r.seq_exact(self.apps.len())?;
        for app in &mut self.apps {
            app.restore(r)?;
        }
        self.cycles = r.u64()?;
        self.dram_bus_busy = r.u64()?;
        self.dram_channels = r.usize()?;
        Ok(())
    }
}

/// A plain-data field that can be written to and re-read from a snapshot
/// stream. Unlike [`Snapshot`] (which overwrites an existing structure in
/// place), a `SnapField` is reconstructed by value — the right shape for
/// keys and entries inside generic containers.
pub trait SnapField: Sized {
    /// Appends this value to the stream.
    fn write(&self, w: &mut SnapshotWriter);

    /// Reads a value back from the stream.
    ///
    /// # Errors
    ///
    /// Propagates stream truncation and rejects encodings that do not
    /// correspond to a constructible value.
    fn read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError>;
}

impl SnapField for () {
    fn write(&self, _w: &mut SnapshotWriter) {}

    fn read(_r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(())
    }
}

impl SnapField for u64 {
    fn write(&self, w: &mut SnapshotWriter) {
        w.u64(*self);
    }

    fn read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.u64()
    }
}

impl SnapField for usize {
    fn write(&self, w: &mut SnapshotWriter) {
        w.usize(*self);
    }

    fn read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.usize()
    }
}

impl SnapField for crate::addr::LineAddr {
    fn write(&self, w: &mut SnapshotWriter) {
        w.u64(self.0);
    }

    fn read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(crate::addr::LineAddr(r.u64()?))
    }
}

impl SnapField for crate::addr::VirtAddr {
    fn write(&self, w: &mut SnapshotWriter) {
        w.u64(self.raw());
    }

    fn read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let raw = r.u64()?;
        let va = crate::addr::VirtAddr::new(raw);
        if va.raw() != raw {
            return Err(SnapshotError::Malformed("non-canonical virtual address"));
        }
        Ok(va)
    }
}

impl SnapField for crate::addr::Vpn {
    fn write(&self, w: &mut SnapshotWriter) {
        w.u64(self.0);
    }

    fn read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(crate::addr::Vpn(r.u64()?))
    }
}

impl SnapField for crate::addr::Ppn {
    fn write(&self, w: &mut SnapshotWriter) {
        w.u64(self.0);
    }

    fn read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(crate::addr::Ppn(r.u64()?))
    }
}

impl SnapField for crate::ids::Asid {
    fn write(&self, w: &mut SnapshotWriter) {
        w.u16(self.raw());
    }

    fn read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(crate::ids::Asid::new(r.u16()?))
    }
}

impl SnapField for crate::ids::CoreId {
    fn write(&self, w: &mut SnapshotWriter) {
        w.u16(self.raw());
    }

    fn read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(crate::ids::CoreId::new(r.u16()?))
    }
}

impl SnapField for crate::ids::WarpId {
    fn write(&self, w: &mut SnapshotWriter) {
        w.u16(self.raw());
    }

    fn read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(crate::ids::WarpId::new(r.u16()?))
    }
}

impl SnapField for crate::ids::GlobalWarpId {
    fn write(&self, w: &mut SnapshotWriter) {
        self.core.write(w);
        self.warp.write(w);
    }

    fn read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(crate::ids::GlobalWarpId::new(
            crate::ids::CoreId::read(r)?,
            crate::ids::WarpId::read(r)?,
        ))
    }
}

impl SnapField for crate::req::ReqId {
    fn write(&self, w: &mut SnapshotWriter) {
        w.u64(self.0);
    }

    fn read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(crate::req::ReqId(r.u64()?))
    }
}

impl SnapField for crate::req::RequestClass {
    fn write(&self, w: &mut SnapshotWriter) {
        // depth_tag is a faithful encoding: 0 = data, 1..=4 = walk level.
        w.u8(self.depth_tag());
    }

    fn read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(crate::req::RequestClass::Data),
            l @ 1..=4 => Ok(crate::req::RequestClass::Translation(
                crate::req::WalkLevel::new(l),
            )),
            _ => Err(SnapshotError::Malformed("walk depth tag out of range")),
        }
    }
}

impl SnapField for crate::req::MemRequest {
    fn write(&self, w: &mut SnapshotWriter) {
        self.id.write(w);
        self.line.write(w);
        self.asid.write(w);
        self.core.write(w);
        self.class.write(w);
        w.u64(self.issued_at);
    }

    fn read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(crate::req::MemRequest {
            id: crate::req::ReqId::read(r)?,
            line: crate::addr::LineAddr::read(r)?,
            asid: crate::ids::Asid::read(r)?,
            core: crate::ids::CoreId::read(r)?,
            class: crate::req::RequestClass::read(r)?,
            issued_at: r.u64()?,
        })
    }
}

/// Content-addressed identity of a warm-up prefix.
///
/// Two jobs share a key exactly when running their first `warm-up` cycles
/// is guaranteed to produce bit-identical simulator state. The key is an
/// FNV-1a digest over the canonicalized inputs that can influence the
/// prefix: the design axes, workload specification, seed, GPU
/// configuration fingerprint, and the warm-up length in cycles. Knobs
/// that provably cannot affect the prefix — `max_cycles`, shard and job
/// counts, and (for warm-ups shorter than one epoch) the
/// epoch-end-only MASK parameters — are deliberately excluded; every
/// other knob is conservatively included.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PrefixKey(pub u64);

impl fmt::Display for PrefixKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Canonicalizing hasher that [`PrefixKey`]s are built with. Every field
/// is length- or tag-delimited so distinct input sequences cannot collide
/// by concatenation.
#[derive(Clone, Debug, Default)]
pub struct PrefixHasher {
    inner: Fnv1a,
}

impl PrefixHasher {
    /// A fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs a domain-separating tag.
    pub fn tag(&mut self, tag: &'static str) {
        self.inner.write_u64(tag.len() as u64);
        self.inner.write(tag.as_bytes());
    }

    /// Absorbs a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.inner.write_u64(v);
    }

    /// Absorbs a `usize`.
    pub fn usize(&mut self, v: usize) {
        self.inner.write_u64(v as u64);
    }

    /// Absorbs a `bool`.
    pub fn bool(&mut self, v: bool) {
        self.inner.write(&[u8::from(v)]);
    }

    /// Absorbs an `f64` by bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.inner.write_u64(v.to_bits());
    }

    /// Absorbs a string with length framing.
    pub fn str(&mut self, s: &str) {
        self.inner.write_u64(s.len() as u64);
        self.inner.write(s.as_bytes());
    }

    /// The finished key.
    #[must_use]
    pub fn finish(&self) -> PrefixKey {
        PrefixKey(self.inner.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{AppStats, SimStats};

    fn sample_stats() -> SimStats {
        let mut s = SimStats::new(2, 8);
        s.cycles = 123_456;
        s.dram_bus_busy = 777;
        s.apps[0].instructions = 42;
        s.apps[0].l1_tlb.record(true);
        s.apps[0].l1_tlb.record(false);
        s.apps[1].dram_data.requests = 9;
        s.apps[1].l2_translation[2].record(true);
        s
    }

    #[test]
    fn envelope_round_trip() {
        let stats = sample_stats();
        let mut w = SnapshotWriter::new();
        stats.snapshot(&mut w);
        let bytes = w.seal(PrefixKey(0xdead_beef));

        let mut r = SnapshotReader::open_keyed(&bytes, PrefixKey(0xdead_beef)).unwrap();
        let mut out = SimStats::new(2, 8);
        out.restore(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(out, stats);
    }

    #[test]
    fn pcg32_round_trip_preserves_stream() {
        let mut rng = crate::rng::Pcg32::new(7, 3);
        for _ in 0..13 {
            rng.next_u32();
        }
        let mut w = SnapshotWriter::new();
        rng.snapshot(&mut w);
        let bytes = w.seal(PrefixKey(1));
        let (mut r, _) = SnapshotReader::open(&bytes).unwrap();
        let mut other = crate::rng::Pcg32::new(0, 0);
        other.restore(&mut r).unwrap();
        assert_eq!(rng.next_u64(), other.next_u64());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = SnapshotWriter::new().seal(PrefixKey(0));
        bytes[0] = b'X';
        assert!(matches!(
            SnapshotReader::open(&bytes),
            Err(SnapshotError::BadMagic(_))
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = SnapshotWriter::new().seal(PrefixKey(0));
        bytes[4] = SNAPSHOT_VERSION as u8 + 1;
        assert!(matches!(
            SnapshotReader::open(&bytes),
            Err(SnapshotError::BadVersion { .. })
        ));
    }

    #[test]
    fn rejects_flipped_payload_bit() {
        let mut w = SnapshotWriter::new();
        sample_stats().snapshot(&mut w);
        let mut bytes = w.seal(PrefixKey(0));
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(
            SnapshotReader::open(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_truncation() {
        let mut w = SnapshotWriter::new();
        sample_stats().snapshot(&mut w);
        let bytes = w.seal(PrefixKey(0));
        for cut in [0, 10, HEADER_LEN, bytes.len() - 1] {
            assert!(
                SnapshotReader::open(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_key_mismatch() {
        let bytes = SnapshotWriter::new().seal(PrefixKey(5));
        assert!(matches!(
            SnapshotReader::open_keyed(&bytes, PrefixKey(6)),
            Err(SnapshotError::KeyMismatch { .. })
        ));
    }

    #[test]
    fn section_mismatch_is_loud() {
        let mut w = SnapshotWriter::new();
        w.section("alpha");
        let bytes = w.seal(PrefixKey(0));
        let (mut r, _) = SnapshotReader::open(&bytes).unwrap();
        assert_eq!(
            r.section("beta"),
            Err(SnapshotError::BadSection { expected: "beta" })
        );
    }

    #[test]
    fn finish_flags_trailing_bytes() {
        let mut w = SnapshotWriter::new();
        w.u64(1);
        w.u64(2);
        let bytes = w.seal(PrefixKey(0));
        let (mut r, _) = SnapshotReader::open(&bytes).unwrap();
        let _ = r.u64().unwrap();
        assert_eq!(r.finish(), Err(SnapshotError::TrailingBytes(8)));
    }

    #[test]
    fn malformed_fields_rejected() {
        // hits > accesses
        let mut w = SnapshotWriter::new();
        w.u64(1);
        w.u64(2);
        let bytes = w.seal(PrefixKey(0));
        let (mut r, _) = SnapshotReader::open(&bytes).unwrap();
        let mut h = crate::stats::HitStats::default();
        assert!(h.restore(&mut r).is_err());

        // even PCG increment
        let mut w = SnapshotWriter::new();
        w.u64(3);
        w.u64(4);
        let bytes = w.seal(PrefixKey(0));
        let (mut r, _) = SnapshotReader::open(&bytes).unwrap();
        let mut rng = crate::rng::Pcg32::new(1, 1);
        assert!(rng.restore(&mut r).is_err());
    }

    #[test]
    fn prefix_hasher_is_order_and_framing_sensitive() {
        let mut a = PrefixHasher::new();
        a.str("ab");
        a.str("c");
        let mut b = PrefixHasher::new();
        b.str("a");
        b.str("bc");
        assert_ne!(a.finish(), b.finish());

        let mut c = PrefixHasher::new();
        c.tag("design");
        c.u64(1);
        let mut d = PrefixHasher::new();
        d.tag("design");
        d.u64(2);
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn envelope_peeks_match_open() {
        let mut w = SnapshotWriter::new();
        sample_stats().snapshot(&mut w);
        let bytes = w.seal(PrefixKey(0xBEEF));
        assert_eq!(envelope_key(&bytes), Some(PrefixKey(0xBEEF)));
        assert_eq!(envelope_checksum(&bytes), Some(fnv1a(&bytes[HEADER_LEN..])));
        assert_eq!(validate_envelope(&bytes), Ok(PrefixKey(0xBEEF)));
        // Peeks refuse sub-header inputs instead of panicking.
        assert_eq!(envelope_key(&bytes[..10]), None);
        assert_eq!(envelope_checksum(&bytes[..31]), None);
        assert!(validate_envelope(&bytes[..31]).is_err());
        // validate_envelope rejects exactly what open rejects.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(matches!(
            validate_envelope(&bad),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn snapshot_equality_is_byte_exact() {
        let mut w = SnapshotWriter::new();
        sample_stats().snapshot(&mut w);
        let a = w.seal(PrefixKey(7));
        let mut w = SnapshotWriter::new();
        sample_stats().snapshot(&mut w);
        let b = w.seal(PrefixKey(7));
        assert!(snapshots_equal(&a, &b));
        assert_eq!(first_divergence(&a, &b), None);

        // Same checksum field but different key: the byte comparison
        // still catches it (divergence inside the header).
        let mut keyed = a.clone();
        keyed[8] ^= 1;
        assert!(!snapshots_equal(&a, &keyed));
        assert_eq!(first_divergence(&a, &keyed).map(|d| d.0), Some(8));

        // Different payloads short-circuit on the checksum.
        let mut w = SnapshotWriter::new();
        w.u64(123);
        let c = w.seal(PrefixKey(7));
        assert_ne!(envelope_checksum(&a), envelope_checksum(&c));
        assert!(!snapshots_equal(&a, &c));

        // Prefix relationship: divergence reports the length mismatch.
        let short = &a[..a.len() - 2];
        assert_eq!(
            first_divergence(&a, short),
            Some((a.len() - 2, Some(a[a.len() - 2]), None))
        );
    }

    #[test]
    fn app_stats_default_round_trips() {
        let mut w = SnapshotWriter::new();
        AppStats::default().snapshot(&mut w);
        let bytes = w.seal(PrefixKey(0));
        let (mut r, _) = SnapshotReader::open(&bytes).unwrap();
        let mut out = AppStats {
            instructions: 99,
            ..AppStats::default()
        };
        out.restore(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(out, AppStats::default());
    }
}
