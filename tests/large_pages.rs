//! End-to-end 2 MB large-page behaviour (§7.3 sensitivity).

use mask_common::addr::PAGE_SIZE_2M_LOG2;
use mask_core::prelude::*;

fn run(page_size_log2: u32) -> SimStats {
    let mut gpu = GpuConfig::maxwell();
    gpu.warps_per_core = 16;
    gpu.page_size_log2 = page_size_log2;
    let runner = PairRunner::new(RunOptions {
        n_cores: 4,
        max_cycles: 20_000,
        seed: 9,
        warmup_cycles: 5_000,
        gpu,
        jobs: JobOptions::serial(),
    });
    runner.run_apps(
        DesignKind::SharedTlb,
        &[AppSpec {
            profile: app_by_name("CONS").expect("known"),
            n_cores: 4,
        }],
    )
}

#[test]
fn large_pages_walk_three_levels() {
    let stats = run(PAGE_SIZE_2M_LOG2);
    assert_eq!(
        stats.apps[0].l2_translation[3].accesses, 0,
        "2MB pages must never touch a level-4 PTE"
    );
    let shallow: u64 = (0..3)
        .map(|i| stats.apps[0].l2_translation[i].accesses)
        .sum();
    assert!(shallow > 0, "walks still traverse the upper levels");
}

#[test]
fn large_pages_increase_tlb_reach() {
    let small = run(mask_common::addr::PAGE_SIZE_4K_LOG2);
    let large = run(PAGE_SIZE_2M_LOG2);
    // CONS's footprint in pages shrinks 512x: L1 TLB misses must drop.
    assert!(
        large.apps[0].l1_tlb.miss_rate() < small.apps[0].l1_tlb.miss_rate(),
        "2MB pages must raise TLB reach (miss {:.3} -> {:.3})",
        small.apps[0].l1_tlb.miss_rate(),
        large.apps[0].l1_tlb.miss_rate()
    );
}

#[test]
fn large_pages_improve_translation_bound_throughput() {
    let small = run(mask_common::addr::PAGE_SIZE_4K_LOG2);
    let large = run(PAGE_SIZE_2M_LOG2);
    assert!(
        large.apps[0].instructions >= small.apps[0].instructions,
        "large pages must not hurt a TLB-thrashing app ({} vs {})",
        small.apps[0].instructions,
        large.apps[0].instructions
    );
}
