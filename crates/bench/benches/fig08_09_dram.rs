//! Figures 8 and 9: DRAM bandwidth and latency by request class.

use mask_bench::{banner, emit, options};
use mask_core::experiments::dram_char;

fn main() {
    let opts = options(35);
    banner("Figures 8-9: DRAM characterization", &opts);
    let t0 = std::time::Instant::now();
    let rows = dram_char::measure(&opts);
    emit(&dram_char::fig08(&rows));
    emit(&dram_char::fig09(&rows));
    println!("[fig08/09 done in {:?}]", t0.elapsed());
}
