//! Trace viewer: run a short traced workload and export it for Perfetto.
//!
//! Runs two two-application workloads through the job engine with tracing
//! forced on, then writes `trace.json` (open it at <https://ui.perfetto.dev>
//! or `chrome://tracing`) and `metrics.jsonl` (one counter frame per line)
//! to `MASK_TRACE_OUT` (default `target/mask-trace/`) and prints a summary.
//!
//! ```text
//! cargo run --release --features obs --example trace_viewer
//! ```
//!
//! Without `--features obs` the hooks are compiled out and this example
//! only explains how to rebuild.

fn main() {
    #[cfg(feature = "obs")]
    traced::run();
    #[cfg(not(feature = "obs"))]
    {
        eprintln!("mask-obs is compiled out in this build.");
        eprintln!("Rebuild with: cargo run --release --features obs --example trace_viewer");
        std::process::exit(2);
    }
}

#[cfg(feature = "obs")]
mod traced {
    use mask_core::prelude::*;

    pub fn run() {
        // Force the runtime gate on so the example works without MASK_TRACE
        // in the environment (setting it is still honoured for real runs).
        mask_obs::set_runtime(Some(true));

        // Short epochs so a few thousand cycles cross several epoch
        // boundaries and the per-epoch metrics stream has content.
        let mut gpu = GpuConfig::maxwell();
        gpu.warps_per_core = 16;
        gpu.mask.epoch_cycles = 2_000;
        let job = |seed: u64, a: &str, b: &str| SimJob {
            design: DesignKind::Mask,
            specs: [a, b]
                .iter()
                .map(|name| AppSpec {
                    profile: app_by_name(name).expect("known app"),
                    n_cores: 2,
                })
                .collect(),
            max_cycles: 10_000,
            warmup_cycles: 2_000,
            seed,
            gpu: gpu.clone(),
        };

        println!("tracing two 4-core MASK workloads (CONS+LPS, HISTO+GUP)...");
        let pool = JobPool::with_workers(2).with_cache(BaselineCache::new());
        let stats = pool.run_batch(&[job(1, "CONS", "LPS"), job(2, "HISTO", "GUP")]);
        for (s, name) in stats.iter().zip(["CONS_LPS", "HISTO_GUP"]) {
            let ipc: f64 = s.apps.iter().map(mask_common::AppStats::ipc).sum();
            println!("  {name}: aggregate IPC {ipc:.2}");
        }

        let summary = mask_obs::export::write_all().expect("trace export");
        println!();
        println!("trace   : {}", summary.trace_path.display());
        println!("metrics : {}", summary.metrics_path.display());
        println!(
            "{} events, {} frames, {} engine spans, {} merge waits, {} dropped",
            summary.events, summary.frames, summary.spans, summary.merge_waits, summary.dropped
        );
        println!("counter families: {}", summary.families.join(", "));
        println!();
        println!("open the trace at https://ui.perfetto.dev (process 1 is the");
        println!("simulated timeline at 1us = 1 cycle; process 2 is engine wall");
        println!("clock); each metrics.jsonl line is one counter frame.");
        if summary.dropped > 0 {
            println!(
                "note: {} records overwritten; raise MASK_TRACE_BUF",
                summary.dropped
            );
        }
    }
}
