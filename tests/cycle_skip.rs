//! Idle cycle-skipping must be invisible in the results.
//!
//! `GpuSim::run` fast-forwards over spans where every core and component is
//! provably idle (see `idle_horizon` in `mask-gpu`). These properties pin
//! the contract: a run with skipping enabled produces **byte-identical**
//! `SimStats` to the same run forced cycle-by-cycle, across seeds, designs,
//! workload mixes, and run lengths — including lengths that straddle epoch
//! boundaries.

use mask_core::prelude::*;
use proptest::prelude::*;

/// Builds a small two-app simulation (4 cores, 16 warps/core) so idle spans
/// actually occur within a short run.
fn build(design: DesignKind, seed: u64, apps: &[(&str, usize)], cycles: u64) -> GpuSim {
    let mut cfg = SimConfig::new(design).with_max_cycles(cycles);
    cfg.seed = seed;
    cfg.gpu.n_cores = apps.iter().map(|(_, c)| c).sum();
    cfg.gpu.warps_per_core = 16;
    let specs: Vec<AppSpec> = apps
        .iter()
        .map(|(name, c)| AppSpec {
            profile: app_by_name(name).expect("known app"),
            n_cores: *c,
        })
        .collect();
    GpuSim::new(&cfg, &specs)
}

/// Runs the same simulation twice — skipping enabled vs. forced
/// cycle-by-cycle — and returns both stats blocks.
fn run_both(
    design: DesignKind,
    seed: u64,
    apps: &[(&str, usize)],
    cycles: u64,
) -> (SimStats, SimStats) {
    let mut fast = build(design, seed, apps, cycles);
    fast.set_cycle_skip(true);
    fast.run_to_completion();
    fast.sync_stats();

    let mut slow = build(design, seed, apps, cycles);
    slow.set_cycle_skip(false);
    slow.run_to_completion();
    slow.sync_stats();

    (fast.stats().clone(), slow.stats().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The core property: cycle-skipping never changes any statistic.
    #[test]
    fn skip_is_byte_identical_across_seeds(seed in 0u64..1_000) {
        for design in [DesignKind::SharedTlb, DesignKind::Mask] {
            let (fast, slow) = run_both(design, seed, &[("HISTO", 2), ("GUP", 2)], 6_000);
            prop_assert_eq!(&fast, &slow, "design {} diverged", design);
        }
    }

    /// Run lengths around epoch boundaries: the skip is capped at each
    /// boundary, so epoch-end work (tokens, bypass, Silver quotas) must
    /// fire on exactly the same cycles either way.
    #[test]
    fn skip_is_identical_across_run_lengths(extra in 0u64..4_000) {
        let cycles = 4_000 + extra;
        let (fast, slow) = run_both(DesignKind::Mask, 7, &[("CONS", 2), ("LPS", 2)], cycles);
        prop_assert_eq!(&fast, &slow);
    }
}

/// A single-app run drains completely once the cycle budget outlives the
/// trace; the tail is pure idle time, which exercises long skips.
#[test]
fn skip_identical_with_idle_tail() {
    for design in [DesignKind::SharedTlb, DesignKind::PwCache, DesignKind::Mask] {
        let (fast, slow) = run_both(design, 3, &[("RED", 4)], 20_000);
        assert_eq!(fast, slow, "{design} diverged on an idle-heavy run");
    }
}

/// Sanity: both modes simulate the same number of cycles and skipping is
/// the default.
#[test]
fn both_modes_reach_the_cycle_budget() {
    let mut sim = build(DesignKind::Mask, 1, &[("HISTO", 2), ("GUP", 2)], 5_000);
    sim.run_to_completion();
    assert_eq!(sim.now(), 5_000);
    let mut slow = build(DesignKind::Mask, 1, &[("HISTO", 2), ("GUP", 2)], 5_000);
    slow.set_cycle_skip(false);
    slow.run_to_completion();
    assert_eq!(slow.now(), 5_000);
}
