//! Per-core private L1 TLBs.
//!
//! Table 1: "64 entries per core, fully associative, LRU, 1-cycle latency".

use crate::assoc::AssocArray;
use crate::TlbKey;
use mask_common::addr::{Ppn, Vpn};
use mask_common::ids::Asid;

/// A private, fully-associative L1 TLB.
#[derive(Clone, Debug)]
pub struct L1Tlb {
    entries: AssocArray<TlbKey, Ppn>,
}

impl L1Tlb {
    /// Creates an L1 TLB with `entries` fully-associative entries.
    pub fn new(entries: usize) -> Self {
        L1Tlb {
            entries: AssocArray::new(entries, entries),
        }
    }

    /// Probes for a translation (updates LRU on hit).
    pub fn probe(&mut self, asid: Asid, vpn: Vpn) -> Option<Ppn> {
        self.entries.probe(&TlbKey::new(asid, vpn))
    }

    /// Inserts a translation, evicting LRU if full.
    pub fn fill(&mut self, asid: Asid, vpn: Vpn, ppn: Ppn) {
        self.entries.fill(TlbKey::new(asid, vpn), ppn);
        mask_sanitizer::array_fill("l1-tlb", self.entries.len(), self.entries.capacity());
    }

    /// Flushes all entries of one address space (per-core TLB flush, §5.1:
    /// "TLB flush operations target a single GPU core, flushing the core's
    /// L1 TLB").
    pub fn flush_asid(&mut self, asid: Asid) {
        self.entries.retain(|k, _| k.asid != asid);
    }

    /// Flushes everything (page-table-root register change, §5.1).
    pub fn flush(&mut self) {
        self.entries.flush();
    }

    /// Number of resident translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB holds no translations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl mask_common::snapshot::Snapshot for L1Tlb {
    fn snapshot(&self, w: &mut mask_common::snapshot::SnapshotWriter) {
        self.entries.snapshot(w);
    }

    fn restore(
        &mut self,
        r: &mut mask_common::snapshot::SnapshotReader<'_>,
    ) -> Result<(), mask_common::snapshot::SnapshotError> {
        self.entries.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_probe_roundtrip() {
        let mut tlb = L1Tlb::new(4);
        let (a, v, p) = (Asid::new(0), Vpn(5), Ppn(9));
        assert_eq!(tlb.probe(a, v), None);
        tlb.fill(a, v, p);
        assert_eq!(tlb.probe(a, v), Some(p));
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut tlb = L1Tlb::new(2);
        let a = Asid::new(0);
        tlb.fill(a, Vpn(1), Ppn(1));
        tlb.fill(a, Vpn(2), Ppn(2));
        tlb.probe(a, Vpn(1)); // make Vpn(2) the LRU entry
        tlb.fill(a, Vpn(3), Ppn(3));
        assert_eq!(tlb.probe(a, Vpn(2)), None);
        assert_eq!(tlb.probe(a, Vpn(1)), Some(Ppn(1)));
    }

    #[test]
    fn asid_mismatch_misses() {
        let mut tlb = L1Tlb::new(4);
        tlb.fill(Asid::new(0), Vpn(5), Ppn(9));
        assert_eq!(
            tlb.probe(Asid::new(1), Vpn(5)),
            None,
            "translations are per-address-space"
        );
    }

    #[test]
    fn flush_asid_is_selective() {
        let mut tlb = L1Tlb::new(8);
        tlb.fill(Asid::new(0), Vpn(1), Ppn(1));
        tlb.fill(Asid::new(1), Vpn(2), Ppn(2));
        tlb.flush_asid(Asid::new(0));
        assert_eq!(tlb.probe(Asid::new(0), Vpn(1)), None);
        assert_eq!(tlb.probe(Asid::new(1), Vpn(2)), Some(Ppn(2)));
        tlb.flush();
        assert!(tlb.is_empty());
    }
}
