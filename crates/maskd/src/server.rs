//! The daemon: acceptor, router, job registry, and dispatcher.
//!
//! ```text
//! TcpListener ── thread per connection ──▶ route()
//!                    POST /jobs ─▶ admission (store lookup → DRR queue)
//!                    GET  /jobs/{id} ─▶ registry snapshot
//!                    GET  /jobs/{id}/events ─▶ chunked JSONL stream
//!                    GET  /store/stats, /healthz
//!
//! dispatcher thread: DRR batch ─▶ JobPool::run_batch ─▶ ResultStore
//!                                        │
//!                             mask-obs epoch frames ─▶ job events
//! ```
//!
//! Threading model: one acceptor, one dispatcher, one short-lived thread
//! per connection. All of them share one [`Shared`] behind `Arc`; mutable
//! state lives in a single `Mutex<DaemonState>` (simulations run *outside*
//! the lock), with two condvars — `work` wakes the dispatcher on
//! admissions, `events` wakes event-stream watchers on job progress. This
//! file is part of the `maskd` parallelism island declared to `cargo
//! xtask lint`.
//!
//! Determinism: the dispatcher is the only place jobs enter the
//! [`JobPool`], in DRR order, and every result is stored and served by
//! content address — so *when* a job runs (queue order, batch packing,
//! restarts) can never change *what* it returns (DESIGN.md §15).

use crate::config::DaemonConfig;
use crate::http::{self, Request};
use crate::json::{self, Value};
use crate::queue::{FairQueue, QueuedJob, Rejection};
use crate::store::{result_checksum, result_key, ResultStore};
use crate::wire::{self, JobSpec};
use mask_common::stats::SimStats;
use mask_core::JobPool;
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Lifecycle of one submitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobStatus {
    Queued,
    Running,
    Done,
}

impl JobStatus {
    fn label(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
        }
    }
}

/// Registry entry for one submission.
struct JobEntry {
    tenant: String,
    key: u64,
    cost: u64,
    status: JobStatus,
    store_hit: bool,
    dispatch_seq: Option<u64>,
    /// JSONL event lines: lifecycle records plus attached epoch-metrics
    /// frames from `mask-obs` (batch granularity; see DESIGN.md §15).
    events: Vec<String>,
    result: Option<SimStats>,
    spec: JobSpec,
}

/// Everything behind the `state` mutex.
struct DaemonState {
    jobs: BTreeMap<u64, JobEntry>,
    queue: FairQueue,
    next_id: u64,
    /// Monotonic dispatch counter; each dispatched job records its
    /// position, which is what the fairness test asserts on.
    dispatch_seq: u64,
    /// Jobs actually handed to the pool (store hits never count).
    simulated_jobs: u64,
    /// Sum of dispatched jobs' `max_cycles`.
    simulated_cycles: u64,
    /// Submissions answered from the store without simulating.
    store_hits: u64,
}

struct Shared {
    cfg: DaemonConfig,
    store: ResultStore,
    pool: JobPool,
    state: Mutex<DaemonState>,
    /// Wakes the dispatcher (new work, resume, shutdown).
    work: Condvar,
    /// Wakes event-stream watchers (job progress, shutdown).
    events: Condvar,
    shutdown: AtomicBool,
    paused: AtomicBool,
}

impl Shared {
    fn lock_state(&self) -> MutexGuard<'_, DaemonState> {
        // A poisoned lock means a handler panicked mid-update; the maps
        // are still structurally valid and jobs are content-addressed,
        // so serving beats refusing every later request.
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn stopping(&self) -> bool {
        // Relaxed ordering: the flag is a lone shutdown latch with no
        // dependent data; threads observing it late only loop once more.
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// The daemon. Construct with [`Daemon::spawn`] (or
/// [`Daemon::spawn_with_pool`] to control workers and caches in tests).
pub struct Daemon;

/// A running daemon: the bound address plus shutdown control.
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Boots a daemon for `cfg` with a default [`JobPool`] (honoring
    /// `MASK_JOBS` and the process-wide caches).
    pub fn spawn(cfg: DaemonConfig) -> std::io::Result<DaemonHandle> {
        Self::spawn_with_pool(cfg, JobPool::from_env())
    }

    /// Boots a daemon serving jobs through the given pool.
    pub fn spawn_with_pool(cfg: DaemonConfig, pool: JobPool) -> std::io::Result<DaemonHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let store = ResultStore::from_config(&cfg);
        let shared = Arc::new(Shared {
            state: Mutex::new(DaemonState {
                jobs: BTreeMap::new(),
                queue: FairQueue::new(cfg.queue_depth, cfg.tenant_depth, cfg.quantum),
                next_id: 1,
                dispatch_seq: 0,
                simulated_jobs: 0,
                simulated_cycles: 0,
                store_hits: 0,
            }),
            work: Condvar::new(),
            events: Condvar::new(),
            shutdown: AtomicBool::new(false),
            paused: AtomicBool::new(cfg.start_paused),
            cfg,
            store,
            pool,
        });

        let mut threads = Vec::new();
        let accept_shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            accept_loop(&listener, &accept_shared);
        }));
        let dispatch_shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            dispatch_loop(&dispatch_shared);
        }));

        Ok(DaemonHandle {
            addr,
            shared,
            threads,
        })
    }
}

impl DaemonHandle {
    /// The bound listen address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Unpauses dispatch (see `DaemonConfig::start_paused`): queued jobs
    /// start flowing into the pool.
    pub fn resume_dispatch(&self) {
        // Relaxed ordering: the pause gate carries no data; the condvar
        // notification below provides the dispatcher wakeup.
        self.shared.paused.store(false, Ordering::Relaxed);
        self.shared.work.notify_all();
    }

    /// Stops accepting, drains nothing (queued jobs stay queued), and
    /// joins the acceptor and dispatcher. Idempotent.
    pub fn shutdown(mut self) {
        // Relaxed ordering: lone shutdown latch; the dummy connection and
        // condvar broadcasts below deliver the actual wakeups.
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.work.notify_all();
        self.shared.events.notify_all();
        // Unblock the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.stopping() {
            break;
        }
        let Ok(stream) = conn else { continue };
        let conn_shared = Arc::clone(shared);
        // Connection threads are short-lived and detached; an event
        // stream held across shutdown exits via the condvar broadcast.
        std::thread::spawn(move || {
            handle_connection(stream, &conn_shared);
        });
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let req = match http::read_request(&mut reader, shared.cfg.max_body) {
        Ok(req) => req,
        Err(e) => {
            let body = error_body(e.message());
            let _ = http::write_response(&mut stream, e.status(), &[], &body);
            return;
        }
    };
    route(&req, &mut stream, shared);
}

fn error_body(msg: &str) -> String {
    Value::obj([("error", Value::Str(msg.to_owned()))]).serialize()
}

fn route(req: &Request, stream: &mut TcpStream, shared: &Arc<Shared>) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let reply = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (200, Value::obj([("ok", Value::Bool(true))]).serialize()),
        ("GET", ["store", "stats"]) => (200, store_stats(shared).serialize()),
        ("POST", ["jobs"]) => match submit(req, shared) {
            Ok((status, body)) => (status, body),
            Err((status, body)) => (status, body),
        },
        ("GET", ["jobs", id]) => match id.parse::<u64>() {
            Ok(id) => job_status(id, shared),
            Err(_) => (400, error_body("job id must be an integer")),
        },
        ("GET", ["jobs", id, "events"]) => match id.parse::<u64>() {
            Ok(id) => {
                stream_events(id, stream, shared);
                return;
            }
            Err(_) => (400, error_body("job id must be an integer")),
        },
        (_, ["jobs"] | ["jobs", ..] | ["store", "stats"] | ["healthz"]) => {
            (405, error_body("method not allowed"))
        }
        _ => (404, error_body("no such route")),
    };
    let (status, body) = reply;
    let retry: &[(&str, &str)] = if status == 503 || status == 429 {
        &[("Retry-After", "1")]
    } else {
        &[]
    };
    let _ = http::write_response(stream, status, retry, &body);
}

fn store_stats(shared: &Arc<Shared>) -> Value {
    let s = shared.store.stats();
    let state = shared.lock_state();
    let scheduler = Value::obj([
        ("queued", Value::Num(state.queue.len() as u64)),
        ("dispatch_seq", Value::Num(state.dispatch_seq)),
        ("simulated_jobs", Value::Num(state.simulated_jobs)),
        ("simulated_cycles", Value::Num(state.simulated_cycles)),
        ("store_hits", Value::Num(state.store_hits)),
    ]);
    drop(state);
    Value::obj([
        (
            "store",
            Value::obj([
                ("entries", Value::Num(s.entries as u64)),
                ("hits", Value::Num(s.hits)),
                ("misses", Value::Num(s.misses)),
                ("inserts", Value::Num(s.inserts)),
                ("disk_loads", Value::Num(s.disk_loads)),
                (
                    "disk_entries",
                    Value::Num(shared.store.disk_entries() as u64),
                ),
            ]),
        ),
        ("scheduler", scheduler),
        ("pool_workers", Value::Num(shared.pool.workers() as u64)),
        ("pool_summary", Value::Str(shared.pool.completion_summary())),
    ])
}

type Reply = (u16, String);

fn submit(req: &Request, shared: &Arc<Shared>) -> Result<Reply, Reply> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| (400, error_body("body must be UTF-8 JSON")))?;
    let doc = json::parse(text).map_err(|e| (400, error_body(&e.to_string())))?;
    let spec = JobSpec::from_value(&doc).map_err(|e| (400, error_body(&e.msg)))?;
    let job = spec.to_sim_job();
    let key = result_key(&job);

    let mut state = shared.lock_state();
    let id = state.next_id;
    state.next_id += 1;

    // Content-address lookup first: a known result never touches the
    // queue, the pool, or the per-tenant budgets.
    if let Some(stats) = shared.store.get(key) {
        state.store_hits += 1;
        let checksum = result_checksum(key, &stats);
        let mut entry = JobEntry {
            tenant: spec.tenant.clone(),
            key,
            cost: job.max_cycles,
            status: JobStatus::Done,
            store_hit: true,
            dispatch_seq: None,
            events: Vec::new(),
            result: Some(stats),
            spec,
        };
        entry.events.push(event_line(id, "queued", &[]));
        entry.events.push(event_line(
            id,
            "completed",
            &[
                ("store_hit", Value::Bool(true)),
                ("checksum", Value::Num(checksum)),
            ],
        ));
        state.jobs.insert(id, entry);
        drop(state);
        shared.events.notify_all();
        return Ok((
            200,
            Value::obj([
                ("id", Value::Num(id)),
                ("status", Value::Str("done".into())),
                ("store_hit", Value::Bool(true)),
            ])
            .serialize(),
        ));
    }

    match state.queue.admit(
        &spec.tenant,
        QueuedJob {
            id,
            cost: job.max_cycles,
        },
    ) {
        Ok(()) => {}
        Err(Rejection::QueueFull) => {
            return Err((
                503,
                error_body("queue full (MASKD_QUEUE_DEPTH); retry later"),
            ));
        }
        Err(Rejection::TenantFull) => {
            return Err((
                429,
                error_body("tenant queue full (MASKD_TENANT_DEPTH); retry later"),
            ));
        }
    }
    let mut entry = JobEntry {
        tenant: spec.tenant.clone(),
        key,
        cost: job.max_cycles,
        status: JobStatus::Queued,
        store_hit: false,
        dispatch_seq: None,
        events: Vec::new(),
        result: None,
        spec,
    };
    entry.events.push(event_line(id, "queued", &[]));
    state.jobs.insert(id, entry);
    drop(state);
    shared.work.notify_all();
    shared.events.notify_all();
    Ok((
        201,
        Value::obj([
            ("id", Value::Num(id)),
            ("status", Value::Str("queued".into())),
            ("store_hit", Value::Bool(false)),
        ])
        .serialize(),
    ))
}

fn event_line(id: u64, event: &str, extra: &[(&str, Value)]) -> String {
    let mut map = std::collections::BTreeMap::new();
    map.insert("event".to_owned(), Value::Str(event.to_owned()));
    map.insert("id".to_owned(), Value::Num(id));
    for (k, v) in extra {
        map.insert((*k).to_owned(), v.clone());
    }
    Value::Object(map).serialize()
}

fn job_status(id: u64, shared: &Arc<Shared>) -> Reply {
    let state = shared.lock_state();
    let Some(entry) = state.jobs.get(&id) else {
        return (404, error_body("no such job"));
    };
    let mut map = std::collections::BTreeMap::new();
    map.insert("id".to_owned(), Value::Num(id));
    map.insert("tenant".to_owned(), Value::Str(entry.tenant.clone()));
    map.insert(
        "status".to_owned(),
        Value::Str(entry.status.label().to_owned()),
    );
    map.insert("store_hit".to_owned(), Value::Bool(entry.store_hit));
    map.insert("key".to_owned(), Value::Num(entry.key));
    if let Some(seq) = entry.dispatch_seq {
        map.insert("dispatch_seq".to_owned(), Value::Num(seq));
    }
    if let Some(result) = &entry.result {
        map.insert("result".to_owned(), wire::stats_to_value(result));
    }
    (200, Value::Object(map).serialize())
}

/// Streams a job's JSONL events as chunks: everything recorded so far,
/// then live appends until the job completes.
fn stream_events(id: u64, stream: &mut TcpStream, shared: &Arc<Shared>) {
    {
        let state = shared.lock_state();
        if !state.jobs.contains_key(&id) {
            drop(state);
            let _ = http::write_response(stream, 404, &[], &error_body("no such job"));
            return;
        }
    }
    if http::start_chunked(stream, 200, "application/jsonl").is_err() {
        return;
    }
    let mut seen = 0usize;
    loop {
        let mut state = shared.lock_state();
        let (pending, done) = match state.jobs.get(&id) {
            Some(entry) => (
                entry.events[seen.min(entry.events.len())..].to_vec(),
                entry.status == JobStatus::Done,
            ),
            None => (Vec::new(), true),
        };
        if pending.is_empty() && !done && !shared.stopping() {
            // Wait for progress; loop re-checks under the lock.
            state = match shared.events.wait(state) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            drop(state);
            continue;
        }
        drop(state);
        seen += pending.len();
        for line in &pending {
            let mut framed = line.clone();
            framed.push('\n');
            if http::write_chunk(stream, framed.as_bytes()).is_err() {
                return;
            }
        }
        if done || shared.stopping() {
            let _ = http::finish_chunked(stream);
            return;
        }
    }
}

/// The dispatcher: assembles DRR batches and runs them through the pool.
fn dispatch_loop(shared: &Arc<Shared>) {
    loop {
        let batch = {
            let mut state = shared.lock_state();
            loop {
                if shared.stopping() {
                    return;
                }
                // Relaxed ordering: pause is a lone gate re-checked on
                // every condvar wakeup; no data depends on it.
                let paused = shared.paused.load(Ordering::Relaxed);
                if !paused && !state.queue.is_empty() {
                    let selected = state
                        .queue
                        .select_batch(shared.pool.workers(), shared.cfg.inflight);
                    if !selected.is_empty() {
                        break prepare_batch(&mut state, selected);
                    }
                    // Deficits accrue per sweep; keep sweeping without
                    // waiting until some tenant can afford its head job.
                    continue;
                }
                state = match shared.work.wait(state) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        run_batch(shared, &batch);
    }
}

struct Dispatched {
    id: u64,
    tenant: String,
    key: u64,
    job: mask_core::SimJob,
}

fn prepare_batch(state: &mut DaemonState, selected: Vec<(String, u64)>) -> Vec<Dispatched> {
    let mut batch = Vec::with_capacity(selected.len());
    for (tenant, id) in selected {
        let Some(entry) = state.jobs.get_mut(&id) else {
            continue;
        };
        let seq = state.dispatch_seq;
        state.dispatch_seq += 1;
        entry.status = JobStatus::Running;
        entry.dispatch_seq = Some(seq);
        entry
            .events
            .push(event_line(id, "dispatched", &[("seq", Value::Num(seq))]));
        state.simulated_jobs += 1;
        state.simulated_cycles += entry.cost;
        batch.push(Dispatched {
            id,
            tenant,
            key: entry.key,
            job: entry.spec.to_sim_job(),
        });
    }
    batch
}

fn run_batch(shared: &Arc<Shared>, batch: &[Dispatched]) {
    if batch.is_empty() {
        return;
    }
    let jobs: Vec<mask_core::SimJob> = batch.iter().map(|d| d.job.clone()).collect();
    // The simulation runs outside the state lock: submissions and status
    // queries stay responsive during a long batch.
    let results = shared.pool.run_batch(&jobs);
    // Epoch-metrics frames collected during this batch (empty unless the
    // obs feature is compiled in and MASK_TRACE is live). Attached at
    // batch granularity — every job in the batch sees the batch's frames.
    let frames = mask_obs::drain_frames();

    let mut state = shared.lock_state();
    for (d, stats) in batch.iter().zip(results) {
        shared.store.insert(d.key, &stats);
        let checksum = result_checksum(d.key, &stats);
        state.queue.job_done(&d.tenant);
        if let Some(entry) = state.jobs.get_mut(&d.id) {
            for frame in &frames {
                entry.events.push(event_line(
                    d.id,
                    "epoch_frame",
                    &[("frame", Value::Str(frame.clone()))],
                ));
            }
            entry.events.push(event_line(
                d.id,
                "completed",
                &[
                    ("store_hit", Value::Bool(false)),
                    ("checksum", Value::Num(checksum)),
                    ("cycles", Value::Num(stats.cycles)),
                ],
            ));
            entry.status = JobStatus::Done;
            entry.result = Some(stats);
        }
    }
    drop(state);
    shared.events.notify_all();
    // More work may have queued up while simulating.
    shared.work.notify_all();
}
