//! Umbrella package for the MASK reproduction workspace.
//!
//! This package exists to host the repository-level `examples/` and `tests/`
//! targets; the implementation lives in the `crates/` workspace members. It
//! re-exports the top-level [`mask_core`] API for convenience.

pub use mask_core as mask;
