//! Workspace automation tasks (`cargo xtask <task>`).
//!
//! The only task today is `lint`, the mask-lint v2 static-analysis engine
//! described in [`lint`]. It exits non-zero when any rule fires, so CI can
//! gate on it:
//!
//! ```text
//! cargo xtask lint                   # scan crates/*/src, human-readable
//! cargo xtask lint --format json     # machine-readable report on stdout
//! cargo xtask lint --format sarif    # SARIF 2.1.0 for code-scanning upload
//! cargo xtask lint --fix             # apply mechanical fixes, then re-lint
//! ```

mod lint;

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask <task>

tasks:
  lint [--format text|json|sarif] [--fix]
        scan crates/*/src for simulator hygiene violations
        --format json|sarif   machine-readable report on stdout
        --fix                 apply mechanical fixes (stale allows,
                              missing #[derive(Debug)]), then re-lint";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => run_lint(args),
        Some("--help" | "-h" | "help") | None => {
            eprintln!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown task `{other}` (try `cargo xtask help`)");
            ExitCode::FAILURE
        }
    }
}

/// Locates the workspace root: the manifest dir's parent when run via
/// cargo, else the current directory.
fn workspace_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR").map_or_else(
        || PathBuf::from("."),
        |d| {
            PathBuf::from(d)
                .parent()
                .map_or_else(|| PathBuf::from("."), PathBuf::from)
        },
    )
}

fn run_lint(args: impl Iterator<Item = String>) -> ExitCode {
    let mut format = Format::Text;
    let mut fix = false;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fix" => fix = true,
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!("xtask lint: --format takes text|json|sarif, got {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask lint: unknown flag `{other}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = workspace_root();
    let mut violations = match lint::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if fix {
        match lint::apply_fixes(&violations) {
            Ok(log) => {
                for line in &log {
                    eprintln!("fixed: {line}");
                }
                if !log.is_empty() {
                    // Re-lint: fixes shift line numbers and may clear
                    // violations; report the post-fix state.
                    violations = match lint::lint_workspace(&root) {
                        Ok(v) => v,
                        Err(e) => {
                            eprintln!("xtask lint: re-scan failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                }
            }
            Err(e) => {
                eprintln!("xtask lint: cannot apply fixes: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    match format {
        Format::Json => print!("{}", lint::output::json(&root, &violations)),
        Format::Sarif => print!("{}", lint::output::sarif(&root, &violations)),
        Format::Text => {}
    }
    if violations.is_empty() {
        eprintln!("xtask lint: clean");
        ExitCode::SUCCESS
    } else {
        if format == Format::Text {
            for v in &violations {
                eprintln!("{v}");
            }
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
