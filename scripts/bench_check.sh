#!/usr/bin/env bash
# Consolidated benchmark regression gate: every `--check`-gated bench in
# one invocation, with the reduced cycle counts CI uses on shared runners.
#
#   scripts/bench_check.sh            # run all gates
#   MASK_BENCH_FULL=1 scripts/bench_check.sh   # full-size measurements
#
# Gates, in order:
#   1. throughput        — serial + sharded cycles/sec vs BENCH_pr7/pr5,
#                          shard-sweep checksum equality
#   2. throughput (obs)  — tracing-disabled hook overhead vs BENCH_pr7
#   3. prefix_reuse      — warm-up reuse speedup vs BENCH_pr8, reuse-mode
#                          checksum equality
#   4. speculation       — serial/cold/seeded final-state identity, seeded
#                          commit completeness, seeded speedup vs BENCH_pr9
#                          (speedup gate auto-skips on 1-CPU hosts with an
#                          honest note)
#
# Every gate exits non-zero on regression; the script stops at the first
# failure (set -e) so CI logs point straight at the broken gate.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${MASK_BENCH_FULL:-0}" != "1" ]]; then
  # Shared runners are slow and noisy: reduced measurements, gated on
  # large relative drops only. The committed BENCH_*.json references are
  # scale-invariant (speedups) or re-derived at this size by the benches.
  export MASK_BENCH_CYCLES="${MASK_BENCH_CYCLES:-50000}"
  export MASK_BENCH_PREFIX_CYCLES="${MASK_BENCH_PREFIX_CYCLES:-60000}"
  export MASK_BENCH_SPEC_CYCLES="${MASK_BENCH_SPEC_CYCLES:-200000}"
  export MASK_BENCH_REPS="${MASK_BENCH_REPS:-2}"
fi

echo "== gate 1/4: throughput (regression + shard determinism) =="
cargo bench -p mask-bench --bench throughput -- --check

echo "== gate 2/4: throughput with obs hooks compiled (tracing-off overhead) =="
cargo bench -p mask-bench --features obs --bench throughput -- --check

echo "== gate 3/4: prefix reuse (speedup + reuse-mode checksums) =="
cargo bench -p mask-bench --bench prefix_reuse -- --check

echo "== gate 4/4: speculation (serial/cold/seeded identity + seeded speedup) =="
cargo bench -p mask-bench --bench speculation -- --check

echo "bench_check: all gates passed"
