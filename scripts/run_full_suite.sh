#!/bin/bash
cd /root/repo
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt
echo "TESTS_DONE rc=$?" >> /root/repo/final_status.txt
MASK_SIM_CYCLES=200000 cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt
echo "BENCH_DONE rc=$?" >> /root/repo/final_status.txt
