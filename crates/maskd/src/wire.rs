//! Wire representation of jobs and results.
//!
//! This module is the daemon's single source of truth for how a
//! [`SimJob`](mask_core::SimJob) and a [`SimStats`] cross the network. Two
//! properties carry the determinism contract (DESIGN.md §15):
//!
//! * **Exactness.** Every statistic the engine produces is an integer
//!   (`u64`/`usize`/nested counter structs), and the [`crate::json`] layer
//!   only ships integers — so `stats_from_value(stats_to_value(s)) == s`
//!   holds bit for bit, and a served result can be compared with `==`
//!   against a local [`JobPool`](mask_core::JobPool) run.
//! * **Closed job vocabulary.** A job spec names a design by its preset
//!   label, applications by their workload names, and the machine by a
//!   preset (`maxwell`/`fermi`/`integrated`) plus a small set of *integer*
//!   overrides. Knobs that are floats in [`GpuConfig`] (e.g.
//!   `initial_tokens_frac`) are deliberately not wire-addressable: they
//!   cannot ride an integer-only format exactly, and an inexact knob would
//!   silently break content addressing in the result store.
//!
//! A job spec document looks like:
//!
//! ```json
//! {"tenant":"alice","design":"MASK",
//!  "apps":[{"app":"HS","cores":8},{"app":"MUM","cores":8}],
//!  "max_cycles":4000,"warmup_cycles":1000,"seed":7,"gpu":"maxwell",
//!  "overrides":{"epoch_cycles":500}}
//! ```

use crate::json::Value;
use mask_common::config::{DesignKind, GpuConfig};
use mask_common::stats::{AppStats, DramClassStats, HitStats, SimStats};
use mask_core::SimJob;
use mask_workloads::app_by_name;
use std::fmt;

/// Upper bound on applications in one job (the engine takes arbitrary
/// placements, but the daemon refuses absurd requests at admission).
pub const MAX_APPS: usize = 16;

/// Upper bound on cores one application may request.
pub const MAX_CORES: usize = 1024;

/// A malformed or out-of-vocabulary wire document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable description, echoed in the 400 response body.
    pub msg: String,
}

impl WireError {
    fn new(msg: impl Into<String>) -> Self {
        WireError { msg: msg.into() }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for WireError {}

fn req<'a>(v: &'a Value, key: &str) -> Result<&'a Value, WireError> {
    v.get(key)
        .ok_or_else(|| WireError::new(format!("missing field `{key}`")))
}

fn req_u64(v: &Value, key: &str) -> Result<u64, WireError> {
    req(v, key)?
        .as_u64()
        .ok_or_else(|| WireError::new(format!("field `{key}` must be an unsigned integer")))
}

fn req_usize(v: &Value, key: &str) -> Result<usize, WireError> {
    usize::try_from(req_u64(v, key)?)
        .map_err(|_| WireError::new(format!("field `{key}` out of range")))
}

fn req_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, WireError> {
    req(v, key)?
        .as_str()
        .ok_or_else(|| WireError::new(format!("field `{key}` must be a string")))
}

/// Resolves a design preset by its display label (`"MASK"`, `"Static"`,
/// ...), the same names `DesignKind::label` prints in reports.
#[must_use]
pub fn design_by_label(label: &str) -> Option<DesignKind> {
    DesignKind::ALL.into_iter().find(|d| d.label() == label)
}

/// Resolves a machine preset by name.
#[must_use]
pub fn gpu_by_name(name: &str) -> Option<GpuConfig> {
    match name {
        "maxwell" => Some(GpuConfig::maxwell()),
        "fermi" => Some(GpuConfig::fermi()),
        "integrated" => Some(GpuConfig::integrated()),
        _ => None,
    }
}

/// Integer `GpuConfig` overrides addressable from the wire. Each one feeds
/// a knob that is exactly representable as a `u64`, keeping content
/// addressing exact (see the module docs for why floats are excluded).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GpuOverrides {
    /// `gpu.mask.epoch_cycles` — MASK token-redistribution epoch length.
    pub epoch_cycles: Option<u64>,
    /// `gpu.warps_per_core` — warps per SM.
    pub warps_per_core: Option<usize>,
    /// `gpu.tlb.l2_entries` — shared L2 TLB capacity.
    pub l2_tlb_entries: Option<usize>,
}

impl GpuOverrides {
    fn apply(self, gpu: &mut GpuConfig) {
        if let Some(v) = self.epoch_cycles {
            gpu.mask.epoch_cycles = v;
        }
        if let Some(v) = self.warps_per_core {
            gpu.warps_per_core = v;
        }
        if let Some(v) = self.l2_tlb_entries {
            gpu.tlb.l2_entries = v;
        }
    }

    fn is_empty(self) -> bool {
        self == GpuOverrides::default()
    }
}

/// A validated job submission: everything needed to build the
/// [`SimJob`](mask_core::SimJob), plus the tenant id used for fair
/// queueing (the tenant is *not* part of the job's content address — two
/// tenants submitting the same job share one stored result).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Fair-queueing principal; non-empty.
    pub tenant: String,
    /// Design preset label.
    pub design: DesignKind,
    /// `(workload name, cores)` placement, in submission order.
    pub apps: Vec<(String, usize)>,
    /// Total cycles to simulate.
    pub max_cycles: u64,
    /// Warm-up cycles excluded from measurement.
    pub warmup_cycles: u64,
    /// Base PRNG seed.
    pub seed: u64,
    /// Machine preset name (`maxwell`/`fermi`/`integrated`).
    pub gpu: String,
    /// Integer machine overrides.
    pub overrides: GpuOverrides,
}

impl JobSpec {
    /// Parses and validates a submission document.
    pub fn from_value(v: &Value) -> Result<JobSpec, WireError> {
        let tenant = req_str(v, "tenant")?;
        if tenant.is_empty() || tenant.len() > 64 {
            return Err(WireError::new("field `tenant` must be 1..=64 characters"));
        }
        let design_label = req_str(v, "design")?;
        let design = design_by_label(design_label).ok_or_else(|| {
            WireError::new(format!(
                "unknown design `{design_label}` (use a preset label)"
            ))
        })?;
        let apps_v = req(v, "apps")?
            .as_array()
            .ok_or_else(|| WireError::new("field `apps` must be an array"))?;
        if apps_v.is_empty() || apps_v.len() > MAX_APPS {
            return Err(WireError::new(format!(
                "field `apps` must list 1..={MAX_APPS} applications"
            )));
        }
        let mut apps = Vec::with_capacity(apps_v.len());
        for entry in apps_v {
            let name = req_str(entry, "app")?;
            if app_by_name(name).is_none() {
                return Err(WireError::new(format!("unknown application `{name}`")));
            }
            let cores = req_usize(entry, "cores")?;
            if cores == 0 || cores > MAX_CORES {
                return Err(WireError::new(format!(
                    "field `cores` must be 1..={MAX_CORES}"
                )));
            }
            apps.push((name.to_owned(), cores));
        }
        let max_cycles = req_u64(v, "max_cycles")?;
        if max_cycles == 0 {
            return Err(WireError::new("field `max_cycles` must be positive"));
        }
        let warmup_cycles = req_u64(v, "warmup_cycles")?;
        let seed = req_u64(v, "seed")?;
        let gpu = req_str(v, "gpu")?;
        if gpu_by_name(gpu).is_none() {
            return Err(WireError::new(format!(
                "unknown gpu preset `{gpu}` (maxwell, fermi, integrated)"
            )));
        }
        let mut overrides = GpuOverrides::default();
        if let Some(o) = v.get("overrides") {
            let map = match o {
                Value::Object(m) => m,
                _ => return Err(WireError::new("field `overrides` must be an object")),
            };
            for (key, val) in map {
                let n = val.as_u64().ok_or_else(|| {
                    WireError::new(format!("override `{key}` must be an unsigned integer"))
                })?;
                match key.as_str() {
                    "epoch_cycles" => overrides.epoch_cycles = Some(n.max(1)),
                    "warps_per_core" => {
                        let w = usize::try_from(n).map_err(|_| {
                            WireError::new("override `warps_per_core` out of range")
                        })?;
                        if w == 0 || w > 256 {
                            return Err(WireError::new(
                                "override `warps_per_core` must be 1..=256",
                            ));
                        }
                        overrides.warps_per_core = Some(w);
                    }
                    "l2_tlb_entries" => {
                        let e = usize::try_from(n).map_err(|_| {
                            WireError::new("override `l2_tlb_entries` out of range")
                        })?;
                        if e == 0 {
                            return Err(WireError::new(
                                "override `l2_tlb_entries` must be positive",
                            ));
                        }
                        overrides.l2_tlb_entries = Some(e);
                    }
                    other => {
                        return Err(WireError::new(format!("unknown override `{other}`")));
                    }
                }
            }
        }
        Ok(JobSpec {
            tenant: tenant.to_owned(),
            design,
            apps,
            max_cycles,
            warmup_cycles,
            seed,
            gpu: gpu.to_owned(),
            overrides,
        })
    }

    /// Serializes the spec back into its submission document (inverse of
    /// [`JobSpec::from_value`]; used by the client and the proptests).
    #[must_use]
    pub fn to_value(&self) -> Value {
        let apps = Value::Array(
            self.apps
                .iter()
                .map(|(name, cores)| {
                    Value::obj([
                        ("app", Value::Str(name.clone())),
                        ("cores", Value::Num(*cores as u64)),
                    ])
                })
                .collect(),
        );
        let mut doc = Value::obj([
            ("tenant", Value::Str(self.tenant.clone())),
            ("design", Value::Str(self.design.label().to_owned())),
            ("apps", apps),
            ("max_cycles", Value::Num(self.max_cycles)),
            ("warmup_cycles", Value::Num(self.warmup_cycles)),
            ("seed", Value::Num(self.seed)),
            ("gpu", Value::Str(self.gpu.clone())),
        ]);
        if !self.overrides.is_empty() {
            let mut o = std::collections::BTreeMap::new();
            if let Some(v) = self.overrides.epoch_cycles {
                o.insert("epoch_cycles".to_owned(), Value::Num(v));
            }
            if let Some(v) = self.overrides.warps_per_core {
                o.insert("warps_per_core".to_owned(), Value::Num(v as u64));
            }
            if let Some(v) = self.overrides.l2_tlb_entries {
                o.insert("l2_tlb_entries".to_owned(), Value::Num(v as u64));
            }
            if let Value::Object(m) = &mut doc {
                m.insert("overrides".to_owned(), Value::Object(o));
            }
        }
        doc
    }

    /// Builds the engine job this spec describes. The daemon and the
    /// client's local oracle both go through this one function, so the
    /// byte-identity comparison in `examples/sweep_client.rs` exercises
    /// the wire codec, not a second interpretation of it.
    #[must_use]
    pub fn to_sim_job(&self) -> SimJob {
        let mut gpu = gpu_by_name(&self.gpu).unwrap_or_else(GpuConfig::maxwell);
        self.overrides.apply(&mut gpu);
        let specs = self
            .apps
            .iter()
            .filter_map(|(name, cores)| {
                app_by_name(name).map(|profile| mask_gpu::AppSpec {
                    profile,
                    n_cores: *cores,
                })
            })
            .collect();
        SimJob {
            design: self.design,
            specs,
            max_cycles: self.max_cycles,
            warmup_cycles: self.warmup_cycles,
            seed: self.seed,
            gpu,
        }
    }
}

fn hit_to_value(h: &HitStats) -> Value {
    Value::obj([
        ("accesses", Value::Num(h.accesses)),
        ("hits", Value::Num(h.hits)),
    ])
}

fn hit_from_value(v: &Value) -> Result<HitStats, WireError> {
    Ok(HitStats {
        accesses: req_u64(v, "accesses")?,
        hits: req_u64(v, "hits")?,
    })
}

fn dram_to_value(d: &DramClassStats) -> Value {
    Value::obj([
        ("requests", Value::Num(d.requests)),
        ("latency_sum", Value::Num(d.latency_sum)),
        ("bus_busy_cycles", Value::Num(d.bus_busy_cycles)),
        ("row_hits", Value::Num(d.row_hits)),
        ("row_misses", Value::Num(d.row_misses)),
        ("row_conflicts", Value::Num(d.row_conflicts)),
    ])
}

fn dram_from_value(v: &Value) -> Result<DramClassStats, WireError> {
    Ok(DramClassStats {
        requests: req_u64(v, "requests")?,
        latency_sum: req_u64(v, "latency_sum")?,
        bus_busy_cycles: req_u64(v, "bus_busy_cycles")?,
        row_hits: req_u64(v, "row_hits")?,
        row_misses: req_u64(v, "row_misses")?,
        row_conflicts: req_u64(v, "row_conflicts")?,
    })
}

fn app_to_value(a: &AppStats) -> Value {
    Value::obj([
        ("instructions", Value::Num(a.instructions)),
        ("mem_instructions", Value::Num(a.mem_instructions)),
        ("cycles", Value::Num(a.cycles)),
        ("stall_cycles", Value::Num(a.stall_cycles)),
        ("l1_tlb", hit_to_value(&a.l1_tlb)),
        ("l2_tlb", hit_to_value(&a.l2_tlb)),
        ("tlb_bypass_cache", hit_to_value(&a.tlb_bypass_cache)),
        ("pwc", hit_to_value(&a.pwc)),
        ("page_faults", Value::Num(a.page_faults)),
        ("walks_started", Value::Num(a.walks_started)),
        ("walks_completed", Value::Num(a.walks_completed)),
        ("walk_latency_sum", Value::Num(a.walk_latency_sum)),
        ("walk_cycles_integral", Value::Num(a.walk_cycles_integral)),
        ("walk_concurrency_max", Value::Num(a.walk_concurrency_max)),
        ("stalled_warps_sum", Value::Num(a.stalled_warps_sum)),
        ("stalled_warps_events", Value::Num(a.stalled_warps_events)),
        ("stalled_warps_max", Value::Num(a.stalled_warps_max)),
        ("l1_data", hit_to_value(&a.l1_data)),
        ("l2_data", hit_to_value(&a.l2_data)),
        (
            "l2_translation",
            Value::Array(a.l2_translation.iter().map(hit_to_value).collect()),
        ),
        (
            "l2_translation_bypassed",
            Value::Num(a.l2_translation_bypassed),
        ),
        ("dram_data", dram_to_value(&a.dram_data)),
        ("dram_translation", dram_to_value(&a.dram_translation)),
        ("tokens_final", Value::Num(a.tokens_final)),
        ("fills_diverted", Value::Num(a.fills_diverted)),
    ])
}

fn app_from_value(v: &Value) -> Result<AppStats, WireError> {
    let levels = req(v, "l2_translation")?
        .as_array()
        .ok_or_else(|| WireError::new("field `l2_translation` must be an array"))?;
    if levels.len() != 4 {
        return Err(WireError::new("field `l2_translation` must have 4 levels"));
    }
    let mut l2_translation = [HitStats::default(); 4];
    for (slot, lv) in l2_translation.iter_mut().zip(levels) {
        *slot = hit_from_value(lv)?;
    }
    Ok(AppStats {
        instructions: req_u64(v, "instructions")?,
        mem_instructions: req_u64(v, "mem_instructions")?,
        cycles: req_u64(v, "cycles")?,
        stall_cycles: req_u64(v, "stall_cycles")?,
        l1_tlb: hit_from_value(req(v, "l1_tlb")?)?,
        l2_tlb: hit_from_value(req(v, "l2_tlb")?)?,
        tlb_bypass_cache: hit_from_value(req(v, "tlb_bypass_cache")?)?,
        pwc: hit_from_value(req(v, "pwc")?)?,
        page_faults: req_u64(v, "page_faults")?,
        walks_started: req_u64(v, "walks_started")?,
        walks_completed: req_u64(v, "walks_completed")?,
        walk_latency_sum: req_u64(v, "walk_latency_sum")?,
        walk_cycles_integral: req_u64(v, "walk_cycles_integral")?,
        walk_concurrency_max: req_u64(v, "walk_concurrency_max")?,
        stalled_warps_sum: req_u64(v, "stalled_warps_sum")?,
        stalled_warps_events: req_u64(v, "stalled_warps_events")?,
        stalled_warps_max: req_u64(v, "stalled_warps_max")?,
        l1_data: hit_from_value(req(v, "l1_data")?)?,
        l2_data: hit_from_value(req(v, "l2_data")?)?,
        l2_translation,
        l2_translation_bypassed: req_u64(v, "l2_translation_bypassed")?,
        dram_data: dram_from_value(req(v, "dram_data")?)?,
        dram_translation: dram_from_value(req(v, "dram_translation")?)?,
        tokens_final: req_u64(v, "tokens_final")?,
        fills_diverted: req_u64(v, "fills_diverted")?,
    })
}

/// Serializes a complete result. Exact: every counter is an integer.
#[must_use]
pub fn stats_to_value(s: &SimStats) -> Value {
    Value::obj([
        (
            "apps",
            Value::Array(s.apps.iter().map(app_to_value).collect()),
        ),
        ("cycles", Value::Num(s.cycles)),
        ("dram_bus_busy", Value::Num(s.dram_bus_busy)),
        ("dram_channels", Value::Num(s.dram_channels as u64)),
    ])
}

/// Parses a complete result (inverse of [`stats_to_value`]).
pub fn stats_from_value(v: &Value) -> Result<SimStats, WireError> {
    let apps_v = req(v, "apps")?
        .as_array()
        .ok_or_else(|| WireError::new("field `apps` must be an array"))?;
    let mut apps = Vec::with_capacity(apps_v.len());
    for a in apps_v {
        apps.push(app_from_value(a)?);
    }
    Ok(SimStats {
        apps,
        cycles: req_u64(v, "cycles")?,
        dram_bus_busy: req_u64(v, "dram_bus_busy")?,
        dram_channels: req_usize(v, "dram_channels")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn spec() -> JobSpec {
        JobSpec {
            tenant: "t0".to_owned(),
            design: DesignKind::Mask,
            apps: vec![("HS".to_owned(), 4), ("MUM".to_owned(), 4)],
            max_cycles: 4000,
            warmup_cycles: 1000,
            seed: 7,
            gpu: "maxwell".to_owned(),
            overrides: GpuOverrides {
                epoch_cycles: Some(500),
                warps_per_core: None,
                l2_tlb_entries: Some(256),
            },
        }
    }

    #[test]
    fn job_spec_round_trips_through_json() {
        let s = spec();
        let doc = s.to_value().serialize();
        let parsed = JobSpec::from_value(&json::parse(&doc).expect("valid json")).expect("valid");
        assert_eq!(parsed, s);
        // And the document itself is canonical.
        assert_eq!(parsed.to_value().serialize(), doc);
    }

    #[test]
    fn to_sim_job_applies_overrides() {
        let job = spec().to_sim_job();
        assert_eq!(job.gpu.mask.epoch_cycles, 500);
        assert_eq!(job.gpu.tlb.l2_entries, 256);
        assert_eq!(job.specs.len(), 2);
        assert_eq!(job.specs[0].n_cores, 4);
        // Same spec → same dedup key; tenant is not part of it.
        let mut other = spec();
        other.tenant = "t1".to_owned();
        assert_eq!(other.to_sim_job().key(), job.key());
    }

    #[test]
    fn rejects_out_of_vocabulary_specs() {
        type Mutator = fn(&mut Value);
        let cases: [(&str, Mutator); 5] = [
            ("design", |v| {
                if let Value::Object(m) = v {
                    m.insert("design".into(), Value::Str("Warp9".into()));
                }
            }),
            ("app", |v| {
                if let Value::Object(m) = v {
                    m.insert(
                        "apps".into(),
                        Value::Array(vec![Value::obj([
                            ("app", Value::Str("nope".into())),
                            ("cores", Value::Num(1)),
                        ])]),
                    );
                }
            }),
            ("gpu", |v| {
                if let Value::Object(m) = v {
                    m.insert("gpu".into(), Value::Str("cray".into()));
                }
            }),
            ("override", |v| {
                if let Value::Object(m) = v {
                    m.insert(
                        "overrides".into(),
                        Value::obj([("clock_ghz", Value::Num(3))]),
                    );
                }
            }),
            ("tenant", |v| {
                if let Value::Object(m) = v {
                    m.insert("tenant".into(), Value::Str(String::new()));
                }
            }),
        ];
        for (what, mutate) in cases {
            let mut doc = spec().to_value();
            mutate(&mut doc);
            assert!(
                JobSpec::from_value(&doc).is_err(),
                "bad `{what}` must be rejected"
            );
        }
    }

    #[test]
    fn stats_round_trip_is_exact() {
        let mut s = SimStats::new(2, 8);
        s.cycles = 123_456;
        s.dram_bus_busy = 987;
        s.apps[0].instructions = u64::MAX;
        s.apps[0].l1_tlb.record(true);
        s.apps[0].l2_translation[2].record(false);
        s.apps[1].dram_translation.row_conflicts = 42;
        s.apps[1].tokens_final = 17;
        let doc = stats_to_value(&s).serialize();
        let back = stats_from_value(&json::parse(&doc).expect("valid json")).expect("valid stats");
        assert_eq!(back, s);
    }
}
