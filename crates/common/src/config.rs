//! Configuration of the simulated GPU system.
//!
//! [`GpuConfig::maxwell`] reproduces Table 1 of the paper (the NVIDIA
//! Maxwell-like baseline); [`GpuConfig::fermi`] and
//! [`GpuConfig::integrated`] reproduce the two extra architectures of the
//! generality study (§7.3, Table 4). [`DesignSpec`] composes the orthogonal
//! per-layer policies of a design point; [`DesignKind`] names the evaluated
//! presets — the paper's eight designs (§7) plus the FGPU-style
//! `Partitioned` and MPS-style `NoIsolation` brackets.

use crate::addr::PAGE_SIZE_4K_LOG2;
use crate::snapshot::PrefixHasher;

/// Declared influence of a tuning knob or design axis on a warm-up prefix
/// (the canonicalization input of `PrefixKey`, see `mask-common::snapshot`).
///
/// The conservative default for every knob is [`AffectsPrefix`]: it is
/// hashed into the prefix key, so jobs differing in it never share a
/// checkpoint. A knob may be declared [`EpochEndOnly`] only when it is
/// provably read *exclusively* by end-of-epoch bookkeeping — such a knob
/// cannot influence any state produced before the first epoch boundary,
/// so it is excluded from the key of prefixes shorter than one epoch.
///
/// [`AffectsPrefix`]: WarmupInfluence::AffectsPrefix
/// [`EpochEndOnly`]: WarmupInfluence::EpochEndOnly
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WarmupInfluence {
    /// Varying the knob can change simulator state from cycle 0.
    AffectsPrefix,
    /// The knob is only consumed by end-of-epoch bookkeeping; it cannot
    /// affect state before the first epoch boundary.
    EpochEndOnly,
}

/// How L1-TLB misses reach a translation (the Fig. 2 / Fig. 10 choice).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TranslationPath {
    /// Every L1 TLB access hits; no translation traffic exists at all
    /// (the `Ideal` design of §7).
    Ideal,
    /// L1 miss → page-table walker, whose per-level accesses probe a
    /// shared page-walk cache (Power et al. \[106\]; Fig. 2a).
    PageWalkCache,
    /// L1 miss → shared L2 TLB → page-table walker (Fig. 2b and all MASK
    /// designs).
    SharedL2Tlb,
}

/// Whether TLB-Fill Tokens (and the token-holder bypass cache) gate
/// shared-L2-TLB fills (§5.2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TokenPolicy {
    /// Every completed walk fills the shared TLB.
    Disabled,
    /// Only token-holding warps fill; the rest go to the bypass cache.
    FillTokens,
}

/// How the shared L2 data cache arbitrates between address spaces.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum L2Policy {
    /// Fully shared: all sets and ways visible to every application.
    Shared,
    /// Cache ways split between applications (the `Static` baseline).
    WayPartitioned,
    /// Cache sets split between applications by page color (FGPU-style
    /// spatial partitioning; the `Partitioned` design).
    SetColored,
    /// Shared, plus Address-Translation-Aware L2 Bypass (§5.3).
    SharedBypass,
}

/// How DRAM channels/banks are mapped and requests scheduled.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DramPolicy {
    /// All channels and banks shared; baseline FR-FCFS/batch scheduler.
    Shared,
    /// Memory channels split between applications (the `Static` baseline).
    ChannelPartitioned,
    /// All channels visible, but banks within each channel split between
    /// applications by color (FGPU-style; the `Partitioned` design).
    BankColored,
    /// Shared channels with MASK's Golden/Silver/Normal queues (§5.4).
    MaskQueues,
}

/// How shader cores (SMs) are assigned to concurrent applications.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ComputePolicy {
    /// Each application owns a contiguous, disjoint set of SMs.
    SmSets,
    /// Applications interleave across all SMs round-robin (MPS-style
    /// share-everything placement).
    AllSms,
}

/// How the physical frame allocator places application pages.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AllocPolicy {
    /// Contiguous per-application frame regions (bump allocation).
    Linear,
    /// Frames striped so each application's pages carry its color in the
    /// low frame bits (the cache-set / DRAM-bank index inputs), in the
    /// spirit of Mosaic's contiguity-conserving allocator.
    ColorAware,
}

/// A design point in the multi-application GPU memory-hierarchy space: one
/// independent policy choice per hardware layer.
///
/// Every simulated layer consumes exactly one axis of this struct — the
/// translation unit reads [`TranslationPath`]/[`TokenPolicy`]/
/// [`AllocPolicy`], the shared L2 reads [`L2Policy`], the DRAM model reads
/// [`DramPolicy`], and core placement reads [`ComputePolicy`]. The paper's
/// named designs are presets over these axes ([`DesignKind::spec`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DesignSpec {
    /// Translation path after an L1 TLB miss.
    pub translation: TranslationPath,
    /// TLB-Fill Token gating of shared-TLB fills.
    pub tokens: TokenPolicy,
    /// Shared L2 data-cache policy.
    pub l2: L2Policy,
    /// DRAM mapping/scheduling policy.
    pub dram: DramPolicy,
    /// SM-to-application placement.
    pub compute: ComputePolicy,
    /// Physical frame allocation policy.
    pub alloc: AllocPolicy,
}

impl DesignSpec {
    /// Warm-up-influence declaration for each policy axis, consulted by
    /// the prefix-key canonicalization. Every axis is a structural choice
    /// consumed by its layer at construction time, so all six
    /// conservatively (and correctly) affect the prefix.
    pub const AXIS_INFLUENCE: [(&'static str, WarmupInfluence); 6] = [
        ("translation", WarmupInfluence::AffectsPrefix),
        ("tokens", WarmupInfluence::AffectsPrefix),
        ("l2", WarmupInfluence::AffectsPrefix),
        ("dram", WarmupInfluence::AffectsPrefix),
        ("compute", WarmupInfluence::AffectsPrefix),
        ("alloc", WarmupInfluence::AffectsPrefix),
    ];

    /// Absorbs the prefix-relevant content of this design point into a
    /// prefix-key hasher. All six axes are [`WarmupInfluence::AffectsPrefix`]
    /// (see [`DesignSpec::AXIS_INFLUENCE`]), so all six are hashed
    /// unconditionally.
    pub fn prefix_hash(&self, h: &mut PrefixHasher) {
        h.tag("design");
        h.u64(self.translation as u64);
        h.u64(self.tokens as u64);
        h.u64(self.l2 as u64);
        h.u64(self.dram as u64);
        h.u64(self.compute as u64);
        h.u64(self.alloc as u64);
    }
}

/// The `SharedTlb` baseline: everything shared, no MASK mechanisms.
const SHARED_BASE: DesignSpec = DesignSpec {
    translation: TranslationPath::SharedL2Tlb,
    tokens: TokenPolicy::Disabled,
    l2: L2Policy::Shared,
    dram: DramPolicy::Shared,
    compute: ComputePolicy::SmSets,
    alloc: AllocPolicy::Linear,
};

/// Which of the evaluated designs to simulate (§7 plus the two
/// design-space brackets): a named preset over [`DesignSpec`] axes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DesignKind {
    /// Static spatial partitioning: cores *and* L2 cache ways *and* DRAM
    /// channels are split equally between applications (models NVIDIA GRID /
    /// AMD `FirePro`; the `Static` baseline of §7).
    Static,
    /// FGPU-style page-colored partitioning: disjoint SM sets, color-aware
    /// frame allocation, and disjoint L2 sets + DRAM banks per application.
    Partitioned,
    /// MPS-style share-everything: applications interleave across all SMs
    /// and contend freely for every shared resource.
    NoIsolation,
    /// Baseline variant with a shared page-walk cache after the L1 TLBs
    /// (Power et al. \[106\]; Fig. 2a).
    PwCache,
    /// Baseline variant with a shared L2 TLB after the L1 TLBs (Fig. 2b).
    SharedTlb,
    /// `SharedTlb` plus TLB-Fill Tokens and the TLB bypass cache only
    /// (the `MASK-TLB` component study of §7.2).
    MaskTlb,
    /// `SharedTlb` plus Address-Translation-Aware L2 Bypass only
    /// (`MASK-Cache`).
    MaskCache,
    /// `SharedTlb` plus the Address-Space-Aware DRAM Scheduler only
    /// (`MASK-DRAM`).
    MaskDram,
    /// The full MASK design: all three mechanisms together (§5).
    Mask,
    /// A hypothetical GPU where every L1 TLB access hits (`Ideal` in §7).
    Ideal,
}

impl DesignKind {
    /// All designs compared in the Figure 11–15 grids, in plotting order:
    /// the paper's eight designs plus the two design-space brackets
    /// (`Partitioned` below `Static`, `NoIsolation` above the baselines).
    pub const ALL: [DesignKind; 10] = [
        DesignKind::Static,
        DesignKind::Partitioned,
        DesignKind::NoIsolation,
        DesignKind::PwCache,
        DesignKind::SharedTlb,
        DesignKind::MaskTlb,
        DesignKind::MaskCache,
        DesignKind::MaskDram,
        DesignKind::Mask,
        DesignKind::Ideal,
    ];

    /// The preset's policy axes. This is the *only* place a named design
    /// is interpreted — simulated layers never see `DesignKind`, they each
    /// consume one axis of the returned [`DesignSpec`].
    pub const fn spec(self) -> DesignSpec {
        match self {
            DesignKind::Static => DesignSpec {
                l2: L2Policy::WayPartitioned,
                dram: DramPolicy::ChannelPartitioned,
                ..SHARED_BASE
            },
            DesignKind::Partitioned => DesignSpec {
                l2: L2Policy::SetColored,
                dram: DramPolicy::BankColored,
                alloc: AllocPolicy::ColorAware,
                ..SHARED_BASE
            },
            DesignKind::NoIsolation => DesignSpec {
                compute: ComputePolicy::AllSms,
                ..SHARED_BASE
            },
            DesignKind::PwCache => DesignSpec {
                translation: TranslationPath::PageWalkCache,
                ..SHARED_BASE
            },
            DesignKind::SharedTlb => SHARED_BASE,
            DesignKind::MaskTlb => DesignSpec {
                tokens: TokenPolicy::FillTokens,
                ..SHARED_BASE
            },
            DesignKind::MaskCache => DesignSpec {
                l2: L2Policy::SharedBypass,
                ..SHARED_BASE
            },
            DesignKind::MaskDram => DesignSpec {
                dram: DramPolicy::MaskQueues,
                ..SHARED_BASE
            },
            DesignKind::Mask => DesignSpec {
                tokens: TokenPolicy::FillTokens,
                l2: L2Policy::SharedBypass,
                dram: DramPolicy::MaskQueues,
                ..SHARED_BASE
            },
            DesignKind::Ideal => DesignSpec {
                translation: TranslationPath::Ideal,
                ..SHARED_BASE
            },
        }
    }

    /// Short label used in experiment tables.
    pub const fn label(self) -> &'static str {
        match self {
            DesignKind::Static => "Static",
            DesignKind::Partitioned => "Partitioned",
            DesignKind::NoIsolation => "NoIsolation",
            DesignKind::PwCache => "PWCache",
            DesignKind::SharedTlb => "SharedTLB",
            DesignKind::MaskTlb => "MASK-TLB",
            DesignKind::MaskCache => "MASK-Cache",
            DesignKind::MaskDram => "MASK-DRAM",
            DesignKind::Mask => "MASK",
            DesignKind::Ideal => "Ideal",
        }
    }
}

impl From<DesignKind> for DesignSpec {
    fn from(kind: DesignKind) -> Self {
        kind.spec()
    }
}

impl core::fmt::Display for DesignKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// TLB hierarchy parameters (Table 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Entries in each per-core, fully-associative L1 TLB.
    pub l1_entries: usize,
    /// L1 TLB lookup latency in cycles.
    pub l1_latency: u64,
    /// Total entries in the shared L2 TLB.
    pub l2_entries: usize,
    /// Associativity of the shared L2 TLB.
    pub l2_assoc: usize,
    /// Shared L2 TLB access latency in cycles.
    pub l2_latency: u64,
    /// Probe ports on the shared L2 TLB (requests accepted per cycle).
    pub l2_ports: usize,
    /// Entries in MASK's fully-associative TLB bypass cache (§5.2).
    pub bypass_cache_entries: usize,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            l1_entries: 64,
            l1_latency: 1,
            l2_entries: 512,
            l2_assoc: 16,
            l2_latency: 10,
            l2_ports: 2,
            bypass_cache_entries: 32,
        }
    }
}

/// Page-walk-cache parameters (the `PWCache` baseline variant, Fig. 2a).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PwcConfig {
    /// Capacity in bytes (the paper uses an 8 KB page walk cache).
    pub bytes: usize,
    /// Associativity (16-way per Table 1).
    pub assoc: usize,
    /// Access latency in cycles.
    pub latency: u64,
}

impl Default for PwcConfig {
    fn default() -> Self {
        PwcConfig {
            bytes: 8 * 1024,
            assoc: 16,
            latency: 10,
        }
    }
}

/// Data-cache parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: usize,
    /// Associativity.
    pub assoc: usize,
    /// Access latency in cycles (pipeline depth, excluding queueing).
    pub latency: u64,
    /// Number of banks (1 for private L1s).
    pub banks: usize,
    /// Ports per bank (requests each bank accepts per cycle).
    pub ports_per_bank: usize,
    /// MSHR entries per bank.
    pub mshrs: usize,
}

impl CacheConfig {
    /// Table 1 private L1 data cache: 16 KB, 4-way, 1-cycle.
    pub fn maxwell_l1() -> Self {
        CacheConfig {
            bytes: 16 * 1024,
            assoc: 4,
            latency: 1,
            banks: 1,
            ports_per_bank: 2,
            mshrs: 32,
        }
    }

    /// Table 1 shared L2: 2 MB, 16-way, 16 banks, 2 ports/bank, 10-cycle.
    /// MSHR depth follows GPGPU-Sim's default of 32 per bank.
    pub fn maxwell_l2() -> Self {
        CacheConfig {
            bytes: 2 * 1024 * 1024,
            assoc: 16,
            latency: 10,
            banks: 16,
            ports_per_bank: 2,
            mshrs: 32,
        }
    }
}

/// DRAM row-buffer management policy (§7.3 sensitivity study).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RowPolicy {
    /// Keep rows open after access (baseline; best for row-locality).
    #[default]
    Open,
    /// Precharge after every access (used by various CPUs; §7.3).
    Closed,
}

/// Which memory scheduling algorithm the controller runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MemSchedKind {
    /// First-ready, first-come-first-served [110, 152] (baseline, Table 1).
    #[default]
    FrFcfs,
    /// A batch-oriented GPU scheduler in the spirit of Jog et al. \[60\]:
    /// forms application-aware batches and drains them oldest-first,
    /// preserving intra-batch row locality (§7.3 "another state-of-the-art
    /// GPU memory scheduler").
    GpuBatch,
}

/// DRAM timing and organization (GDDR5-like, Table 1), in core cycles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of memory channels.
    pub channels: usize,
    /// Banks per channel (one rank).
    pub banks_per_channel: usize,
    /// log2 of the row-buffer size in bytes (2 KB rows -> 11).
    pub row_size_log2: u32,
    /// Column access latency for a row-buffer hit.
    pub t_cas: u64,
    /// Activate-to-read latency (added on a closed row).
    pub t_rcd: u64,
    /// Precharge latency (added on a row conflict).
    pub t_rp: u64,
    /// Cycles the channel data bus is occupied per line transfer (burst 8).
    pub burst_cycles: u64,
    /// Capacity of the per-channel request buffer (baseline FR-FCFS).
    pub queue_capacity: usize,
    /// Row-buffer management policy.
    pub row_policy: RowPolicy,
    /// Scheduling algorithm for the non-MASK queues.
    pub sched: MemSchedKind,
    /// MASK Golden queue capacity (address-translation FIFO, §5.4).
    pub golden_capacity: usize,
    /// MASK Silver queue capacity (§5.4).
    pub silver_capacity: usize,
    /// MASK Normal queue capacity (§5.4).
    pub normal_capacity: usize,
    /// `thresh_max` of Eq. 1 (set to 500 empirically, §6).
    pub thresh_max: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 8,
            banks_per_channel: 8,
            row_size_log2: 11,
            t_cas: 12,
            t_rcd: 12,
            t_rp: 12,
            burst_cycles: 4,
            queue_capacity: 64,
            row_policy: RowPolicy::Open,
            sched: MemSchedKind::FrFcfs,
            golden_capacity: 16,
            silver_capacity: 64,
            normal_capacity: 192,
            thresh_max: 500,
        }
    }
}

/// Token-count adjustment policy (see `mask-tlb::tokens` for semantics).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TokenPolicyKind {
    /// §5.2's literal ±2% delta rule (static in steady state).
    Literal,
    /// Direction-register hill climbing implied by §7.4 (default).
    #[default]
    HillClimb,
}

/// MASK mechanism tuning knobs (§5, §6 "Design Parameters").
#[derive(Clone, Debug, PartialEq)]
pub struct MaskParams {
    /// Epoch length in cycles (100K cycles, §5.2).
    pub epoch_cycles: u64,
    /// `InitialTokens`: fraction of each app's total warps receiving tokens
    /// after the first epoch (80%, §6).
    pub initial_tokens_frac: f64,
    /// Miss-rate change that triggers a token-count adjustment (±2%, §5.2).
    pub miss_rate_delta: f64,
    /// Step (fraction of total warps) by which the token count is adjusted
    /// each epoch when contention changes. The paper does not specify its
    /// step size; 25% converges to the steady-state token count within a
    /// few epochs, matching the paper's observation that the mechanism is
    /// "effective at reconfiguring the total number of tokens to a
    /// steady-state value" (§6).
    pub token_step_frac: f64,
    /// Token-count adjustment policy.
    pub token_policy: TokenPolicyKind,
    /// Hysteresis margin for the L2-bypass decision (see
    /// `mask-cache::bypass`): a walk level bypasses only when its hit rate
    /// is at least this far below the data hit rate. 0.0 gives the paper's
    /// literal comparison.
    pub bypass_margin: f64,
}

impl MaskParams {
    /// Warm-up-influence declaration for each MASK knob, consulted by the
    /// prefix-key canonicalization. `epoch_cycles` shapes the prefix
    /// itself (it places the epoch boundaries), so it always affects the
    /// key. The other five knobs are consumed exclusively by
    /// end-of-epoch bookkeeping — `TokenAllocator::end_epoch` and
    /// `BypassMonitor::end_epoch` — and therefore cannot influence any
    /// state produced before the first epoch boundary.
    pub const KNOB_INFLUENCE: [(&'static str, WarmupInfluence); 6] = [
        ("epoch_cycles", WarmupInfluence::AffectsPrefix),
        ("initial_tokens_frac", WarmupInfluence::EpochEndOnly),
        ("miss_rate_delta", WarmupInfluence::EpochEndOnly),
        ("token_step_frac", WarmupInfluence::EpochEndOnly),
        ("token_policy", WarmupInfluence::EpochEndOnly),
        ("bypass_margin", WarmupInfluence::EpochEndOnly),
    ];

    /// Absorbs the prefix-relevant MASK knobs into a prefix-key hasher.
    ///
    /// `crosses_epoch` says whether the warm-up prefix reaches the first
    /// epoch boundary. When it does, the epoch-end-only knobs have been
    /// applied inside the prefix and must be part of its identity; when
    /// it does not, they are excluded per [`MaskParams::KNOB_INFLUENCE`],
    /// which is what lets a single-axis sweep over them share one warm
    /// checkpoint.
    pub fn prefix_hash(&self, h: &mut PrefixHasher, crosses_epoch: bool) {
        h.tag("mask");
        h.u64(self.epoch_cycles);
        h.bool(crosses_epoch);
        if crosses_epoch {
            h.f64(self.initial_tokens_frac);
            h.f64(self.miss_rate_delta);
            h.f64(self.token_step_frac);
            h.u64(self.token_policy as u64);
            h.f64(self.bypass_margin);
        }
    }
}

impl Default for MaskParams {
    fn default() -> Self {
        MaskParams {
            epoch_cycles: 100_000,
            initial_tokens_frac: 0.8,
            miss_rate_delta: 0.02,
            token_step_frac: 0.25,
            token_policy: TokenPolicyKind::default(),
            bypass_margin: 0.05,
        }
    }
}

/// Full configuration of the simulated GPU (Table 1 by default).
#[derive(Clone, Debug, PartialEq)]
pub struct GpuConfig {
    /// Number of shader cores (SMs).
    pub n_cores: usize,
    /// Warp contexts per core.
    pub warps_per_core: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// log2 of the page size (12 for 4 KB, 21 for the §7.3 2 MB study).
    pub page_size_log2: u32,
    /// TLB hierarchy parameters.
    pub tlb: TlbConfig,
    /// Page-walk-cache parameters (used only by [`DesignKind::PwCache`]).
    pub pwc: PwcConfig,
    /// Private L1 data cache parameters.
    pub l1_cache: CacheConfig,
    /// Shared L2 cache parameters.
    pub l2_cache: CacheConfig,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// Concurrent page-table walks supported by the shared walker (§6).
    pub walker_slots: usize,
    /// Latency charged when a walk targets a page that has never been
    /// touched (demand paging / far fault service time). The paper's
    /// evaluation runs fault-free (§5.5 leaves fault handling to future
    /// work), so the default is 0; the demand-paging sensitivity study
    /// raises it.
    pub page_fault_latency: u64,
    /// MASK mechanism parameters.
    pub mask: MaskParams,
}

impl GpuConfig {
    /// The Maxwell-like baseline of Table 1: 30 cores, 64 warp contexts per
    /// core, 64-entry L1 TLBs, 512-entry shared L2 TLB, 2 MB shared L2,
    /// 8-channel GDDR5.
    pub fn maxwell() -> Self {
        GpuConfig {
            n_cores: 30,
            warps_per_core: 64,
            warp_size: 64,
            page_size_log2: PAGE_SIZE_4K_LOG2,
            tlb: TlbConfig::default(),
            pwc: PwcConfig::default(),
            l1_cache: CacheConfig::maxwell_l1(),
            l2_cache: CacheConfig::maxwell_l2(),
            dram: DramConfig::default(),
            walker_slots: 64,
            page_fault_latency: 0,
            mask: MaskParams::default(),
        }
    }

    /// A Fermi-like GTX480 configuration (§7.3 generality study): 15 cores,
    /// smaller L2, 6 memory channels. The shared walker scales with the
    /// core count (the paper sizes its 64-thread walker for the 30-core
    /// Maxwell baseline; a half-size chip carries a half-size walker).
    pub fn fermi() -> Self {
        let mut cfg = GpuConfig::maxwell();
        cfg.n_cores = 15;
        cfg.warps_per_core = 48;
        cfg.l2_cache.bytes = 768 * 1024;
        cfg.l2_cache.banks = 6;
        cfg.dram.channels = 6;
        cfg.walker_slots = 32;
        cfg
    }

    /// An integrated-GPU configuration in the spirit of Power et al. \[106\]
    /// (§7.3): fewer cores sharing a narrow CPU-style memory system.
    pub fn integrated() -> Self {
        let mut cfg = GpuConfig::maxwell();
        cfg.n_cores = 8;
        cfg.warps_per_core = 48;
        cfg.l2_cache.bytes = 1024 * 1024;
        cfg.l2_cache.banks = 4;
        cfg.dram.channels = 2;
        cfg.dram.banks_per_channel = 8;
        cfg.dram.burst_cycles = 8; // narrower DDR-style bus
        cfg.walker_slots = 16; // walker scales with the core count
        cfg
    }

    /// Maximum number of radix levels a page walk traverses for this config.
    pub fn walk_levels(&self) -> u8 {
        crate::addr::levels_for_page_size(self.page_size_log2)
    }

    /// Absorbs the full machine configuration into a prefix-key hasher.
    /// Every structural parameter affects simulation from cycle 0, so
    /// everything is hashed except the MASK knobs, which delegate to
    /// [`MaskParams::prefix_hash`] for their per-knob declarations.
    pub fn prefix_hash(&self, h: &mut PrefixHasher, crosses_epoch: bool) {
        h.tag("gpu");
        h.usize(self.n_cores);
        h.usize(self.warps_per_core);
        h.usize(self.warp_size);
        h.u64(u64::from(self.page_size_log2));
        h.tag("tlb");
        h.usize(self.tlb.l1_entries);
        h.u64(self.tlb.l1_latency);
        h.usize(self.tlb.l2_entries);
        h.usize(self.tlb.l2_assoc);
        h.u64(self.tlb.l2_latency);
        h.usize(self.tlb.l2_ports);
        h.usize(self.tlb.bypass_cache_entries);
        h.tag("pwc");
        h.usize(self.pwc.bytes);
        h.usize(self.pwc.assoc);
        h.u64(self.pwc.latency);
        for (tag, c) in [("l1c", &self.l1_cache), ("l2c", &self.l2_cache)] {
            h.tag(tag);
            h.usize(c.bytes);
            h.usize(c.assoc);
            h.u64(c.latency);
            h.usize(c.banks);
            h.usize(c.ports_per_bank);
            h.usize(c.mshrs);
        }
        h.tag("dram");
        h.usize(self.dram.channels);
        h.usize(self.dram.banks_per_channel);
        h.u64(u64::from(self.dram.row_size_log2));
        h.u64(self.dram.t_cas);
        h.u64(self.dram.t_rcd);
        h.u64(self.dram.t_rp);
        h.u64(self.dram.burst_cycles);
        h.usize(self.dram.queue_capacity);
        h.u64(self.dram.row_policy as u64);
        h.u64(self.dram.sched as u64);
        h.usize(self.dram.golden_capacity);
        h.usize(self.dram.silver_capacity);
        h.usize(self.dram.normal_capacity);
        h.u64(self.dram.thresh_max);
        h.tag("walker");
        h.usize(self.walker_slots);
        h.u64(self.page_fault_latency);
        self.mask.prefix_hash(h, crosses_epoch);
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::maxwell()
    }
}

/// A complete simulation configuration: machine + design + run length.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// The simulated machine.
    pub gpu: GpuConfig,
    /// The design point to model (named presets convert via
    /// [`DesignKind::spec`] / `Into<DesignSpec>`).
    pub design: DesignSpec,
    /// Number of cycles to simulate.
    pub max_cycles: u64,
    /// Base PRNG seed (combined with app/core/warp ids).
    pub seed: u64,
    /// How many shards the per-cycle SM frontend is split across.
    pub sm_shards: ShardOptions,
}

impl SimConfig {
    /// A configuration for `design` (a [`DesignKind`] preset or an
    /// explicit [`DesignSpec`]) on the Table 1 machine.
    pub fn new(design: impl Into<DesignSpec>) -> Self {
        SimConfig {
            gpu: GpuConfig::maxwell(),
            design: design.into(),
            max_cycles: default_max_cycles(),
            seed: 0xA55A_2018,
            sm_shards: ShardOptions::default(),
        }
    }

    /// Replaces the machine configuration.
    pub fn with_gpu(mut self, gpu: GpuConfig) -> Self {
        self.gpu = gpu;
        self
    }

    /// Replaces the simulated cycle budget.
    pub fn with_max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = cycles;
        self
    }

    /// Replaces the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Requests exactly `n` SM-frontend shards.
    pub fn with_sm_shards(mut self, n: usize) -> Self {
        self.sm_shards = ShardOptions::with_shards(n);
        self
    }
}

/// Worker-count request for `mask-core`'s job engine.
///
/// Pure configuration data: every simulation batch is fanned out over this
/// many worker threads by the engine (`mask_core::engine::JobPool`). This
/// type only *carries the request* — resolution of `None` to an actual
/// thread count (the machine's available parallelism) happens inside the
/// engine, the one module allowed to touch `std::thread`.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct JobOptions {
    /// Explicit worker count (`Some(1)` = strictly serial, on the calling
    /// thread). `None` defers to the `MASK_JOBS` environment variable and,
    /// when that is unset too, to the machine's available parallelism.
    pub workers: Option<usize>,
}

impl JobOptions {
    /// Run every job serially on the calling thread.
    #[must_use]
    pub const fn serial() -> Self {
        JobOptions { workers: Some(1) }
    }

    /// Request exactly `n` worker threads.
    #[must_use]
    pub const fn with_workers(n: usize) -> Self {
        JobOptions { workers: Some(n) }
    }

    /// The requested worker count: the explicit setting when present, else
    /// `MASK_JOBS`. `None` means "let the engine pick" (available
    /// parallelism); any request is clamped to at least 1.
    #[must_use]
    pub fn requested(self) -> Option<usize> {
        self.workers
            .or_else(|| std::env::var("MASK_JOBS").ok().and_then(|v| v.parse().ok()))
            .map(|n: usize| n.max(1))
    }
}

/// SM-frontend shard request for `mask-gpu`'s sharded issue stage.
///
/// Pure configuration data, mirroring [`JobOptions`]: this type only
/// *carries the request*. `GpuSim` resolves it at construction time
/// (clamping to the core count; the `Ideal` design always runs serial),
/// and stat results are bit-identical at every shard count by design.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ShardOptions {
    /// Explicit shard count (`Some(1)` = the serial issue loop). `None`
    /// defers to the `MASK_SM_SHARDS` environment variable and, when that
    /// is unset too, to 1 (serial).
    pub shards: Option<usize>,
}

impl ShardOptions {
    /// Run the issue stage serially (the PR 3 hot path).
    #[must_use]
    pub const fn serial() -> Self {
        ShardOptions { shards: Some(1) }
    }

    /// Request exactly `n` shards.
    #[must_use]
    pub const fn with_shards(n: usize) -> Self {
        ShardOptions { shards: Some(n) }
    }

    /// The requested shard count: the explicit setting when present, else
    /// `MASK_SM_SHARDS`, else 1. Any request is clamped to at least 1.
    #[must_use]
    pub fn requested(self) -> usize {
        self.shards
            .or_else(|| {
                std::env::var("MASK_SM_SHARDS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or(1)
            .max(1)
    }
}

/// Speculative time-segment request for `mask-core`'s job engine.
///
/// Pure configuration data, mirroring [`ShardOptions`]: this type only
/// *carries the request*. The engine resolves it when running a job's
/// measured phase — a run of `E` epochs is cut into up to this many
/// segments at epoch-safe snapshot points, segments 1.. start from
/// *predicted* states, and every misprediction replays from the true
/// state. Like worker and shard counts, the segment count is
/// results-invariant: stats are bit-identical at every segment count, so
/// it never participates in job dedup or prefix keys (the same reason
/// `WarmupInfluence` declarations exclude it).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SpecOptions {
    /// Explicit segment count (`Some(1)` = the plain serial run). `None`
    /// defers to the `MASK_SPEC_SEGMENTS` environment variable and, when
    /// that is unset too, to 1 (no speculation).
    pub segments: Option<usize>,
}

impl SpecOptions {
    /// Run the measured phase serially (no speculation).
    #[must_use]
    pub const fn serial() -> Self {
        SpecOptions { segments: Some(1) }
    }

    /// Request exactly `n` time segments.
    #[must_use]
    pub const fn with_segments(n: usize) -> Self {
        SpecOptions { segments: Some(n) }
    }

    /// The requested segment count: the explicit setting when present,
    /// else `MASK_SPEC_SEGMENTS`, else 1. Any request is clamped to at
    /// least 1.
    #[must_use]
    pub fn requested(self) -> usize {
        self.segments
            .or_else(|| {
                std::env::var("MASK_SPEC_SEGMENTS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or(1)
            .max(1)
    }
}

/// Default per-run cycle budget.
///
/// Honors the `MASK_SIM_CYCLES` environment variable so the full experiment
/// suite can be scaled up for higher-fidelity runs (the paper simulates
/// full benchmarks; we default to 300K cycles = 3 MASK epochs, which is
/// enough for the epoch-based mechanisms to reach steady state).
pub fn default_max_cycles() -> u64 {
    std::env::var("MASK_SIM_CYCLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300_000)
}

/// Default number of paper workload pairs an experiment simulates.
///
/// Honors the `MASK_PAIR_LIMIT` environment variable (the paper evaluates
/// all 35 two-app pairs; capping the count keeps smoke runs fast). This is
/// the designated entry point for that variable — experiment code takes
/// the resolved value, never the environment.
pub fn default_pair_limit() -> usize {
    std::env::var("MASK_PAIR_LIMIT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(35)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_job_options_win_over_environment() {
        assert_eq!(JobOptions::serial().requested(), Some(1));
        assert_eq!(JobOptions::with_workers(6).requested(), Some(6));
        // A nonsensical explicit request clamps to the serial minimum.
        assert_eq!(JobOptions::with_workers(0).requested(), Some(1));
    }

    #[test]
    fn explicit_spec_options_win_over_environment() {
        assert_eq!(SpecOptions::serial().requested(), 1);
        assert_eq!(SpecOptions::with_segments(4).requested(), 4);
        // A nonsensical explicit request clamps to the serial minimum.
        assert_eq!(SpecOptions::with_segments(0).requested(), 1);
    }

    #[test]
    fn design_feature_matrix_matches_paper() {
        use DesignKind::*;
        // Fig. 2: PWCache has a page-walk cache, no shared L2 TLB.
        assert_eq!(PwCache.spec().translation, TranslationPath::PageWalkCache);
        // Fig. 2b / Fig. 10: SharedTLB and every MASK variant share an L2 TLB.
        for d in [SharedTlb, MaskTlb, MaskCache, MaskDram, Mask] {
            assert_eq!(
                d.spec().translation,
                TranslationPath::SharedL2Tlb,
                "{d} should have a shared L2 TLB"
            );
        }
        // Fig. 10: full MASK enables all three mechanisms.
        let mask = Mask.spec();
        assert_eq!(mask.tokens, TokenPolicy::FillTokens);
        assert_eq!(mask.l2, L2Policy::SharedBypass);
        assert_eq!(mask.dram, DramPolicy::MaskQueues);
        // Component studies enable exactly one mechanism each.
        let tlb = MaskTlb.spec();
        assert_eq!(
            (tlb.tokens, tlb.l2, tlb.dram),
            (
                TokenPolicy::FillTokens,
                L2Policy::Shared,
                DramPolicy::Shared
            )
        );
        let cache = MaskCache.spec();
        assert_eq!(
            (cache.tokens, cache.l2, cache.dram),
            (
                TokenPolicy::Disabled,
                L2Policy::SharedBypass,
                DramPolicy::Shared
            )
        );
        let dram = MaskDram.spec();
        assert_eq!(
            (dram.tokens, dram.l2, dram.dram),
            (
                TokenPolicy::Disabled,
                L2Policy::Shared,
                DramPolicy::MaskQueues
            )
        );
        // Ideal has no translation overhead at all.
        assert_eq!(Ideal.spec().translation, TranslationPath::Ideal);
        // Static splits ways and channels; Partitioned colors sets/banks
        // and allocates color-aware frames; both pin SM sets.
        let st = Static.spec();
        assert_eq!(
            (st.l2, st.dram),
            (L2Policy::WayPartitioned, DramPolicy::ChannelPartitioned)
        );
        let part = Partitioned.spec();
        assert_eq!(
            (part.l2, part.dram, part.alloc, part.compute),
            (
                L2Policy::SetColored,
                DramPolicy::BankColored,
                AllocPolicy::ColorAware,
                ComputePolicy::SmSets
            )
        );
        // NoIsolation shares everything and interleaves across all SMs —
        // it differs from SharedTlb only in compute placement.
        let noiso = NoIsolation.spec();
        assert_eq!(noiso.compute, ComputePolicy::AllSms);
        assert_eq!(
            DesignSpec {
                compute: ComputePolicy::SmSets,
                ..noiso
            },
            SharedTlb.spec()
        );
    }

    #[test]
    fn presets_are_distinct_design_points() {
        // The engine dedup key hashes the spec, so no two named presets may
        // collapse onto the same axes.
        for (i, a) in DesignKind::ALL.iter().enumerate() {
            for b in &DesignKind::ALL[i + 1..] {
                assert_ne!(a.spec(), b.spec(), "{a} and {b} share a spec");
            }
        }
        assert_eq!(DesignKind::ALL.len(), 10);
    }

    #[test]
    fn maxwell_matches_table_1() {
        let cfg = GpuConfig::maxwell();
        assert_eq!(cfg.n_cores, 30);
        assert_eq!(cfg.warps_per_core, 64);
        assert_eq!(cfg.tlb.l1_entries, 64);
        assert_eq!(cfg.tlb.l2_entries, 512);
        assert_eq!(cfg.tlb.l2_assoc, 16);
        assert_eq!(cfg.l2_cache.bytes, 2 * 1024 * 1024);
        assert_eq!(cfg.l2_cache.banks, 16);
        assert_eq!(cfg.dram.channels, 8);
        assert_eq!(cfg.dram.banks_per_channel, 8);
        assert_eq!(cfg.walker_slots, 64);
        assert_eq!(cfg.walk_levels(), 4);
    }

    #[test]
    fn large_pages_reduce_walk_depth() {
        let mut cfg = GpuConfig::maxwell();
        cfg.page_size_log2 = crate::addr::PAGE_SIZE_2M_LOG2;
        assert_eq!(cfg.walk_levels(), 3);
    }

    #[test]
    fn sim_config_builders() {
        let cfg = SimConfig::new(DesignKind::Mask)
            .with_max_cycles(1234)
            .with_seed(7);
        assert_eq!(cfg.max_cycles, 1234);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.design, DesignKind::Mask.spec());
        // Default is "defer to MASK_SM_SHARDS / serial".
        assert_eq!(cfg.sm_shards, ShardOptions::default());
        let cfg = cfg.with_sm_shards(4);
        assert_eq!(cfg.sm_shards.shards, Some(4));
    }

    #[test]
    fn epoch_end_knobs_excluded_from_short_prefix_keys() {
        let base = GpuConfig::maxwell();
        let mut tweaked = base.clone();
        tweaked.mask.initial_tokens_frac = 0.5;
        tweaked.mask.bypass_margin = 0.2;
        let key = |cfg: &GpuConfig, crosses: bool| {
            let mut h = PrefixHasher::new();
            cfg.prefix_hash(&mut h, crosses);
            h.finish()
        };
        // Short warm-up (no epoch boundary): epoch-end-only knobs are
        // declared invariant and must not split the key.
        assert_eq!(key(&base, false), key(&tweaked, false));
        // Once the prefix crosses an epoch boundary they apply.
        assert_ne!(key(&base, true), key(&tweaked, true));
        // Structural knobs always split the key.
        let mut other = base.clone();
        other.mask.epoch_cycles = 50_000;
        assert_ne!(key(&base, false), key(&other, false));
        let mut other = base.clone();
        other.walker_slots = 32;
        assert_ne!(key(&base, false), key(&other, false));
        // The declaration tables match the hashing behaviour: exactly the
        // EpochEndOnly knobs are conditional.
        let conditional = MaskParams::KNOB_INFLUENCE
            .iter()
            .filter(|(_, i)| *i == WarmupInfluence::EpochEndOnly)
            .count();
        assert_eq!(conditional, 5);
        assert!(DesignSpec::AXIS_INFLUENCE
            .iter()
            .all(|(_, i)| *i == WarmupInfluence::AffectsPrefix));
    }

    #[test]
    fn design_axes_split_prefix_keys() {
        let mut keys: Vec<u64> = DesignKind::ALL
            .iter()
            .map(|d| {
                let mut h = PrefixHasher::new();
                d.spec().prefix_hash(&mut h);
                h.finish().0
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), DesignKind::ALL.len());
    }

    #[test]
    fn explicit_shard_options_win_over_environment() {
        assert_eq!(ShardOptions::serial().requested(), 1);
        assert_eq!(ShardOptions::with_shards(8).requested(), 8);
        // A nonsensical explicit request clamps to the serial minimum.
        assert_eq!(ShardOptions::with_shards(0).requested(), 1);
    }
}
