//! The `cargo xtask lint` source scanner.
//!
//! A zero-dependency, line-oriented static-analysis pass over every
//! `crates/*/src/**/*.rs` file. It enforces simulator-wide hygiene rules
//! that rustc and clippy cannot express:
//!
//! | rule id          | what it forbids                                              |
//! |------------------|--------------------------------------------------------------|
//! | `collections`    | `HashMap`/`HashSet` in simulator crates (iteration order is  |
//! |                  | seeded by `RandomState`, which breaks run-to-run determinism |
//! |                  | of anything that iterates; use `BTreeMap`/`BTreeSet`)        |
//! | `nondeterminism` | wall-clock / OS entropy (`Instant::now`, `SystemTime`,       |
//! |                  | `thread_rng`) outside `crates/bench`                         |
//! | `float-accum`    | naive `f32`/`f64` accumulation in `stats.rs` files — sums    |
//! |                  | must go through `CompensatedSum`                             |
//! | `debug-derive`   | a `pub struct` in `mask-common`'s `req.rs` without           |
//! |                  | `#[derive(Debug)]` (sanitizer diagnostics format requests)   |
//! | `unwrap`         | `.unwrap()` / bare `panic!` in library code — use `expect`   |
//! |                  | with an invariant message, a typed error, or annotate        |
//! | `parallelism`    | thread primitives (`std::thread`, `Mutex`/`RwLock`,          |
//! |                  | `Condvar`, `mpsc`, atomics) outside `crates/core/src/engine*`|
//! |                  | , `crates/gpu/src/shard.rs` (the SM-frontend shard pool),    |
//! |                  | `crates/obs/src/ring.rs` (the tracer's lock-free ring buffer |
//! |                  | and its runtime gate) and `crates/bench` — parallelism stays |
//! |                  | centralized in those islands so the rest of the simulator    |
//! |                  | remains single-threaded                                      |
//! | `hotpath`        | heap traffic (`vec![`, `Vec::new()`, `.clone()`, `.collect`) |
//! |                  | in the per-cycle hot files (`gpu/src/sim.rs`,                |
//! |                  | `gpu/src/shard.rs`, `gpu/src/translation.rs`,                |
//! |                  | `cache/src/l2.rs`, `dram/src/queues.rs`,                     |
//! |                  | `obs/src/hooks.rs` — the tracing hooks the cycle loop calls  |
//! |                  | even when tracing is disabled) outside constructors — the    |
//! |                  | cycle loop must stay allocation-free in steady state         |
//!
//! Test code is exempt: the scanner skips items guarded by `#[cfg(test)]`
//! (tracking the brace span of a guarded `mod`). Any line can opt out of
//! rule `R` with a trailing `// lint: allow(R)` on the same line or the
//! line directly above.
//!
//! The scanner is deliberately textual. It does not parse Rust; it assumes
//! the repo's rustfmt style (attributes on their own lines, `mod tests` at
//! item depth). That keeps `cargo xtask lint` instant and dependency-free,
//! at the cost of being fooled by braces inside string literals — accepted
//! for a repo-internal tool.

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Violation {
    /// File the violation is in.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (usable in `// lint: allow(<rule>)`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Integer type names whose presence marks an accumulation as exact.
const INT_TYPES: [&str; 11] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
];

/// Returns true if `line` (or `prev`, the line above) carries a
/// `lint: allow(rule)` annotation.
fn allowed(rule: &str, line: &str, prev: Option<&str>) -> bool {
    let tag = format!("lint: allow({rule})");
    line.contains(&tag) || prev.is_some_and(|p| p.contains(&tag))
}

/// Strips `//` line comments so commented-out code is not flagged.
/// (Doc comments and strings containing `//` are stripped too — fine for
/// a forbid-list scanner: it can only under-report inside strings.)
fn code_of(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Lines of `contents` that are test-only: anything covered by a
/// `#[cfg(test)]` attribute — the guarded `mod { .. }` span, or the single
/// guarded item for non-mod items.
fn test_mask(contents: &str) -> Vec<bool> {
    let lines: Vec<&str> = contents.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim() == "#[cfg(test)]" {
            mask[i] = true;
            // Skip any further attributes, then cover the guarded item.
            let mut j = i + 1;
            while j < lines.len() && lines[j].trim_start().starts_with("#[") {
                mask[j] = true;
                j += 1;
            }
            if j < lines.len() {
                mask[j] = true;
                // A braced item (mod/fn/impl): cover its whole brace span.
                let mut depth: i64 = 0;
                let mut saw_open = false;
                loop {
                    for c in code_of(lines[j]).chars() {
                        match c {
                            '{' => {
                                depth += 1;
                                saw_open = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    mask[j] = true;
                    j += 1;
                    if (saw_open && depth <= 0) || j >= lines.len() {
                        break;
                    }
                    // Single-line guarded item (e.g. `use`): stop at `;`.
                    if !saw_open && code_of(lines[j - 1]).contains(';') {
                        break;
                    }
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    mask
}

/// Files whose per-cycle code must stay allocation-free (the `hotpath`
/// rule). Matched as path suffixes.
const HOTPATH_FILES: [&str; 6] = [
    "crates/gpu/src/sim.rs",
    "crates/gpu/src/shard.rs",
    "crates/gpu/src/translation.rs",
    "crates/cache/src/l2.rs",
    "crates/dram/src/queues.rs",
    "crates/obs/src/hooks.rs",
];

/// Allocation/copy tokens forbidden on the hot path. `.collect` (no paren)
/// also catches turbofish `.collect::<T>()`.
const HOTPATH_TOKENS: [&str; 4] = ["vec![", "Vec::new()", ".clone()", ".collect"];

/// Lines of `contents` inside constructor functions (`fn new*`, `fn with_*`,
/// `fn default`), where one-time allocation is expected and allowed. Spans
/// are tracked the same way `test_mask` tracks `#[cfg(test)]` items: from
/// the declaration line to the function's closing brace.
fn ctor_mask(contents: &str) -> Vec<bool> {
    let lines: Vec<&str> = contents.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let code = code_of(lines[i]);
        let is_ctor = ["fn new", "fn with_", "fn default"]
            .iter()
            .any(|p| code.contains(p));
        if !is_ctor {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut saw_open = false;
        let mut j = i;
        loop {
            for c in code_of(lines[j]).chars() {
                match c {
                    '{' => {
                        depth += 1;
                        saw_open = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            mask[j] = true;
            j += 1;
            if (saw_open && depth <= 0) || j >= lines.len() {
                break;
            }
        }
        i = j;
    }
    mask
}

/// Which crate (the `crates/<name>` component) a path belongs to, if any.
fn crate_of(path: &Path) -> Option<String> {
    let mut comps = path.components().map(|c| c.as_os_str().to_string_lossy());
    while let Some(c) = comps.next() {
        if c == "crates" {
            return comps.next().map(std::borrow::Cow::into_owned);
        }
    }
    None
}

/// Scans one source file and returns every violation in it.
///
/// `path` is used for reporting and for path-scoped rules (which crate the
/// file is in, whether it is `stats.rs` or `req.rs`); `contents` is the
/// full source text.
pub(crate) fn lint_source(path: &Path, contents: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let lines: Vec<&str> = contents.lines().collect();
    let mask = test_mask(contents);
    let krate = crate_of(path).unwrap_or_default();
    let file_name = path
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_default();

    // The only places allowed to hold thread primitives: the job engine
    // (crates/core/src/engine*.rs), the SM-frontend shard pool
    // (crates/gpu/src/shard.rs), the tracer's ring-buffer/gate module
    // (crates/obs/src/ring.rs), and the wall-clock-facing bench crate.
    let norm_path = path.to_string_lossy().replace('\\', "/");
    let engine_file = krate == "core" && norm_path.contains("src/engine");
    let shard_file = norm_path.ends_with("crates/gpu/src/shard.rs");
    let ring_file = norm_path.ends_with("crates/obs/src/ring.rs");
    let hotpath_file = HOTPATH_FILES.iter().any(|f| norm_path.ends_with(f));
    let ctors = if hotpath_file {
        ctor_mask(contents)
    } else {
        Vec::new()
    };

    let mut push = |lineno: usize, rule: &'static str, message: String| {
        out.push(Violation {
            path: path.to_path_buf(),
            line: lineno + 1,
            rule,
            message,
        });
    };

    for (i, raw) in lines.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let code = code_of(raw);
        let prev = i.checked_sub(1).map(|p| lines[p]);

        // collections: randomized-iteration-order containers in sim crates.
        if (code.contains("HashMap") || code.contains("HashSet"))
            && !allowed("collections", raw, prev)
        {
            push(
                i,
                "collections",
                "HashMap/HashSet iteration order is randomized per process; \
                 use BTreeMap/BTreeSet so simulation results are reproducible"
                    .into(),
            );
        }

        // nondeterminism: wall clock and OS entropy outside crates/bench.
        if krate != "bench" {
            for src in ["Instant::now", "SystemTime", "thread_rng"] {
                if code.contains(src) && !allowed("nondeterminism", raw, prev) {
                    push(
                        i,
                        "nondeterminism",
                        format!(
                            "`{src}` injects wall-clock/OS state into the simulation; \
                             only crates/bench may measure real time"
                        ),
                    );
                }
            }
        }

        // parallelism: thread primitives stay centralized in the engine
        // and the SM-frontend shard pool.
        if krate != "bench" && !engine_file && !shard_file && !ring_file {
            for prim in [
                "std::thread",
                "Mutex",
                "RwLock",
                "Condvar",
                "mpsc",
                "Atomic",
            ] {
                if code.contains(prim) && !allowed("parallelism", raw, prev) {
                    push(
                        i,
                        "parallelism",
                        format!(
                            "`{prim}` outside the job engine; only \
                             crates/core/src/engine*, crates/gpu/src/shard.rs, \
                             crates/obs/src/ring.rs (and crates/bench) may spawn \
                             threads or share mutable state across them"
                        ),
                    );
                }
            }
        }

        // hotpath: no steady-state heap traffic in the per-cycle files.
        if hotpath_file && !ctors[i] {
            for tok in HOTPATH_TOKENS {
                if code.contains(tok) && !allowed("hotpath", raw, prev) {
                    push(
                        i,
                        "hotpath",
                        format!(
                            "`{tok}` in a per-cycle hot file; the cycle loop must be \
                             allocation-free — reuse a scratch buffer, drain into an \
                             out-parameter, or move the allocation into a constructor"
                        ),
                    );
                }
            }
        }

        // float-accum: naive float summation in statistics code.
        if file_name == "stats.rs" {
            let exact = INT_TYPES
                .iter()
                .any(|t| code.contains(&format!(": {t}")) || code.contains(&format!("::<{t}>")));
            let compensated = code.contains("CompensatedSum") || code.contains("compensation");
            let float_sum = code.contains(".sum()")
                || (code.contains("+=") && (code.contains("f64") || code.contains("f32")));
            if float_sum && !exact && !compensated && !allowed("float-accum", raw, prev) {
                push(
                    i,
                    "float-accum",
                    "float accumulation in statistics code must use CompensatedSum \
                     (or annotate an integer sum with its type)"
                        .into(),
                );
            }
        }

        // unwrap: panicking shortcuts in library code.
        if (code.contains(".unwrap()") || code.contains("panic!")) && !allowed("unwrap", raw, prev)
        {
            push(
                i,
                "unwrap",
                "library code must not `.unwrap()`/`panic!`; use `expect` with an \
                 invariant message, return an error, or annotate why it cannot fire"
                    .into(),
            );
        }
    }

    // debug-derive: pub structs in the shared request vocabulary must be
    // Debug so sanitizer/test diagnostics can format them.
    if krate == "common" && file_name == "req.rs" {
        for (i, raw) in lines.iter().enumerate() {
            if mask[i] || !code_of(raw).trim_start().starts_with("pub struct ") {
                continue;
            }
            // Walk the contiguous attribute block above the struct.
            let mut has_debug = false;
            let mut j = i;
            while j > 0 {
                j -= 1;
                let above = lines[j].trim_start();
                if above.starts_with("#[") || above.starts_with("#!") {
                    if above.contains("derive") && above.contains("Debug") {
                        has_debug = true;
                    }
                } else if !above.is_empty() && !above.starts_with("///") {
                    break;
                }
            }
            if !has_debug && !allowed("debug-derive", raw, i.checked_sub(1).map(|p| lines[p])) {
                push(
                    i,
                    "debug-derive",
                    "pub structs in mask-common::req must #[derive(Debug)] so \
                     diagnostics can print requests"
                        .into(),
                );
            }
        }
    }

    out
}

/// Recursively lints every `.rs` file under `crates/*/src` in `root`.
///
/// # Errors
///
/// Returns an error when the workspace layout cannot be read.
pub(crate) fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            lint_tree(&src, &mut out)?;
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(out)
}

fn lint_tree(dir: &Path, out: &mut Vec<Violation>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            lint_tree(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let contents = std::fs::read_to_string(&path)?;
            out.extend(lint_source(&path, &contents));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Violation> {
        lint_source(Path::new(path), src)
    }

    fn rules(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    // One red test per rule: each proves the rule actually fires.

    #[test]
    fn red_collections_flags_hashmap() {
        let v = lint(
            "crates/tlb/src/l1.rs",
            "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\n",
        );
        assert_eq!(rules(&v), ["collections", "collections"]);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn red_nondeterminism_flags_wall_clock() {
        let v = lint(
            "crates/gpu/src/sim.rs",
            "let t = std::time::Instant::now();\n",
        );
        assert_eq!(rules(&v), ["nondeterminism"]);
        let v = lint("crates/dram/src/device.rs", "let r = rand::thread_rng();\n");
        assert_eq!(rules(&v), ["nondeterminism"]);
    }

    #[test]
    fn red_float_accum_flags_naive_sum() {
        let v = lint(
            "crates/common/src/stats.rs",
            "pub fn total(&self) -> f64 {\n    self.apps.iter().map(A::ipc).sum()\n}\n",
        );
        assert_eq!(rules(&v), ["float-accum"]);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn red_debug_derive_flags_missing_debug() {
        let v = lint(
            "crates/common/src/req.rs",
            "#[derive(Clone, Copy)]\npub struct Raw {\n    pub bits: u64,\n}\n",
        );
        assert_eq!(rules(&v), ["debug-derive"]);
    }

    #[test]
    fn red_parallelism_flags_thread_primitives_outside_engine() {
        let v = lint(
            "crates/gpu/src/sim.rs",
            "let h = std::thread::spawn(f);\nlet m = std::sync::Mutex::new(0);\n",
        );
        assert_eq!(rules(&v), ["parallelism", "parallelism"]);
        let v = lint(
            "crates/core/src/runner.rs",
            "use std::sync::atomic::AtomicUsize;\n",
        );
        assert_eq!(rules(&v), ["parallelism"]);
    }

    #[test]
    fn red_unwrap_flags_unwrap_and_panic() {
        let v = lint(
            "crates/cache/src/l2.rs",
            "let x = m.get(&k).unwrap();\npanic!(\"boom\");\n",
        );
        assert_eq!(rules(&v), ["unwrap", "unwrap"]);
    }

    #[test]
    fn red_hotpath_flags_allocation_in_cycle_code() {
        let src = "\
pub fn tick(&mut self) {
    let xs = vec![1, 2];
    let mut out = Vec::new();
    let c = self.reqs.clone();
    let v: Vec<u32> = self.reqs.iter().map(f).collect();
}
";
        for file in super::HOTPATH_FILES {
            let v = lint(&format!("/repo/{file}"), src);
            assert_eq!(
                rules(&v),
                ["hotpath", "hotpath", "hotpath", "hotpath"],
                "in {file}: {v:?}"
            );
        }
    }

    #[test]
    fn red_hotpath_catches_turbofish_collect() {
        let v = lint(
            "crates/cache/src/l2.rs",
            "pub fn tick(&mut self) {\n    let v = xs.iter().collect::<Vec<_>>();\n}\n",
        );
        assert_eq!(rules(&v), ["hotpath"]);
    }

    #[test]
    fn hotpath_constructors_may_allocate() {
        let src = "\
pub fn new(n: usize) -> Self {
    Self { banks: vec![Bank::new(); n], scratch: Vec::new() }
}

pub fn with_bypass(n: usize) -> Self {
    let banks: Vec<Bank> = (0..n).map(|_| Bank::new()).collect();
    Self { banks, scratch: Vec::new() }
}
";
        assert!(lint("crates/cache/src/l2.rs", src).is_empty());
    }

    #[test]
    fn hotpath_rule_is_scoped_to_hot_files() {
        let src = "pub fn tick(&mut self) {\n    let v = Vec::new();\n}\n";
        assert!(lint("crates/cache/src/mshr.rs", src).is_empty());
        assert!(lint("crates/gpu/src/core_model.rs", src).is_empty());
    }

    #[test]
    fn hotpath_allow_annotation_works() {
        let v = lint(
            "crates/gpu/src/sim.rs",
            "pub fn snapshot(&self) -> Vec<u32> {\n    \
             self.xs.clone() // lint: allow(hotpath) -- debug API, off-cycle\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    // Exemptions.

    #[test]
    fn allow_annotation_suppresses_same_line_and_next_line() {
        let v = lint(
            "crates/cache/src/l2.rs",
            "let x = m.get(&k).unwrap(); // lint: allow(unwrap)\n\
             // lint: allow(unwrap) -- checked above\n\
             let y = m.get(&k).unwrap();\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allow_annotation_is_rule_specific() {
        let v = lint(
            "crates/cache/src/l2.rs",
            "let x = m.get(&k).unwrap(); // lint: allow(collections)\n",
        );
        assert_eq!(rules(&v), ["unwrap"]);
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "\
pub fn lib() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn t() {
        let m: HashMap<u8, u8> = HashMap::new();
        assert!(m.is_empty() || panic!(\"x\"));
    }
}
";
        assert!(lint("crates/tlb/src/l1.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_single_item_is_exempt_but_rest_is_not() {
        let src = "\
#[cfg(test)]
use std::collections::HashMap;

pub fn f() {
    let x = Some(1).unwrap();
}
";
        let v = lint("crates/tlb/src/l1.rs", src);
        assert_eq!(rules(&v), ["unwrap"]);
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn commented_out_code_is_exempt() {
        let v = lint("crates/tlb/src/l1.rs", "// let m = HashMap::new();\n");
        assert!(v.is_empty());
    }

    #[test]
    fn engine_and_bench_may_use_thread_primitives() {
        let src = "use std::sync::Mutex;\nstd::thread::scope(|s| {});\n";
        assert!(lint("crates/core/src/engine.rs", src).is_empty());
        assert!(lint("crates/bench/src/lib.rs", src).is_empty());
        // The exemption is for engine files only, not all of mask-core.
        assert!(!lint("crates/core/src/metrics.rs", src).is_empty());
    }

    #[test]
    fn shard_pool_may_use_thread_primitives_but_stays_hotpath_clean() {
        // The SM-frontend shard pool is the second parallelism island…
        let threads = "use std::sync::Mutex;\nstd::thread::scope(|s| {});\n";
        assert!(lint("crates/gpu/src/shard.rs", threads).is_empty());
        // …but only shard.rs: the rest of mask-gpu stays single-threaded.
        assert!(!lint("crates/gpu/src/sim.rs", threads).is_empty());
        // And the hotpath rule still fires inside shard.rs — the per-cycle
        // shard/merge code must not allocate in steady state.
        let alloc = "pub fn run_shard(&mut self) {\n    let v = Vec::new();\n}\n";
        let v = lint("crates/gpu/src/shard.rs", alloc);
        assert_eq!(rules(&v), ["hotpath"]);
    }

    #[test]
    fn obs_ring_may_use_thread_primitives_but_hooks_stay_hotpath_clean() {
        // The tracer's ring-buffer module is the third parallelism island…
        let threads = "use std::sync::Mutex;\nstatic GATE: AtomicU8 = AtomicU8::new(0);\n";
        assert!(lint("crates/obs/src/ring.rs", threads).is_empty());
        // …and only ring.rs: the rest of mask-obs stays primitive-free.
        assert_eq!(
            rules(&lint("crates/obs/src/metrics.rs", threads)),
            ["parallelism", "parallelism"]
        );
        assert!(!lint("crates/obs/src/hooks.rs", threads).is_empty());
        // The hooks the cycle loop calls unconditionally are a hot file:
        // the disabled-tracing path must not allocate.
        let alloc = "pub fn tlb_probe(level: TlbLevel) {\n    let v = Vec::new();\n}\n";
        assert_eq!(rules(&lint("crates/obs/src/hooks.rs", alloc)), ["hotpath"]);
        // The hotpath rule is scoped to hooks.rs, not the whole crate —
        // the exporter may allocate freely.
        assert!(lint("crates/obs/src/export.rs", alloc).is_empty());
    }

    #[test]
    fn bench_crate_may_use_wall_clock() {
        let v = lint(
            "crates/bench/src/lib.rs",
            "let t = std::time::Instant::now();\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn integer_and_compensated_sums_are_exempt_in_stats() {
        let src = "\
let n: u64 = xs.iter().sum();
let t = CompensatedSum::total(ys.iter().map(f));
";
        assert!(lint("crates/common/src/stats.rs", src).is_empty());
    }

    #[test]
    fn float_sum_outside_stats_rs_is_not_this_rules_business() {
        let v = lint(
            "crates/core/src/metrics.rs",
            "let t: f64 = xs.iter().sum::<f64>();\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn debug_derive_accepts_derive_with_doc_comments_between() {
        let src = "\
#[derive(Clone, Copy, Debug)]
pub struct Tagged {
    pub bits: u64,
}
";
        assert!(lint("crates/common/src/req.rs", src).is_empty());
    }

    #[test]
    fn expect_with_message_is_allowed() {
        let v = lint(
            "crates/cache/src/l2.rs",
            "let x = m.get(&k).expect(\"present\");\n",
        );
        assert!(v.is_empty());
    }
}
