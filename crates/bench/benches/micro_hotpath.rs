//! Criterion micro-benchmarks for the per-cycle hot path.
//!
//! Complements `throughput.rs` (whole-engine cycles/sec) with component
//! timings: `AssocArray` probe/fill and the shared-L2 enqueue/tick/drain
//! path. Run with:
//!
//! ```text
//! cargo bench -p mask-bench --features bench-harness --bench micro_hotpath
//! ```

#![allow(missing_docs)] // criterion_group! expands to undocumented items

use criterion::{criterion_group, criterion_main, Criterion};
use mask_cache::SharedL2Cache;
use mask_common::addr::LineAddr;
use mask_common::config::{CacheConfig, DesignKind, GpuConfig};
use mask_common::ids::{Asid, CoreId};
use mask_common::req::{MemRequest, ReqId, RequestClass};
use mask_common::stats::AppStats;
use mask_gpu::{
    run_shard, DirectIssue, GpuCore, IssueSink, ShardOutput, ShardPool, TranslationUnit,
};
use mask_tlb::AssocArray;
use mask_workloads::app_by_name;

fn bench_assoc_probe(c: &mut Criterion) {
    // Shared-L2-TLB shape: 512 entries, 16-way.
    let mut arr: AssocArray<u64, u64> = AssocArray::new(512, 16);
    for k in 0..512u64 {
        arr.fill(k, k);
    }
    let mut k = 0u64;
    c.bench_function("assoc_probe_hit_512x16", |b| {
        b.iter(|| {
            k = (k + 7) % 512;
            arr.probe(&k)
        });
    });
    let mut miss = 1_000_000u64;
    c.bench_function("assoc_probe_miss_512x16", |b| {
        b.iter(|| {
            miss += 1;
            arr.probe(&miss)
        });
    });
    let mut fk = 0u64;
    c.bench_function("assoc_fill_evict_512x16", |b| {
        b.iter(|| {
            fk += 1;
            arr.fill(fk, fk)
        });
    });
}

fn l2() -> SharedL2Cache {
    let cfg = CacheConfig {
        bytes: 2 * 1024 * 1024,
        assoc: 16,
        latency: 10,
        banks: 16,
        ports_per_bank: 2,
        mshrs: 64,
    };
    SharedL2Cache::new(&cfg, false, 2)
}

fn bench_l2_path(c: &mut Criterion) {
    // Steady-state enqueue + tick + drain: the exact per-cycle sequence
    // `GpuSim::step` drives, with a rotating working set so both hits and
    // misses occur.
    let mut cache = l2();
    let mut now = 0u64;
    let mut id = 0u64;
    let mut dram = Vec::new();
    let mut resps = Vec::new();
    c.bench_function("l2_enqueue_tick_drain", |b| {
        b.iter(|| {
            for i in 0..4u64 {
                let line = LineAddr((id + i * 64) % 4096);
                cache.enqueue(
                    MemRequest::new(
                        ReqId(id),
                        line,
                        Asid::new((id % 2) as u16),
                        CoreId::new(0),
                        RequestClass::Data,
                        now,
                    ),
                    now,
                );
                id += 1;
            }
            cache.tick(now);
            dram.clear();
            cache.drain_dram_requests_into(&mut dram);
            for r in &dram {
                cache.dram_fill(r.line, now);
            }
            resps.clear();
            cache.drain_responses_into(&mut resps);
            now += 1;
        });
    });

    let mut idle = l2();
    let mut inow = 1_000_000u64;
    c.bench_function("l2_idle_tick", |b| {
        b.iter(|| {
            idle.tick(inow);
            inow += 1;
        });
    });
}

/// Builds the pieces of a sharded stage 1: `n` cores split across two
/// apps, a matching translation unit, and per-shard output queues.
fn frontend(n: usize, shards: usize) -> (Vec<GpuCore>, TranslationUnit, Vec<ShardOutput>) {
    let mut cfg = GpuConfig::maxwell();
    cfg.n_cores = n;
    cfg.warps_per_core = 16;
    let cons = app_by_name("CONS").expect("known app");
    let lps = app_by_name("LPS").expect("known app");
    let cores: Vec<GpuCore> = (0..n)
        .map(|i| {
            let app = u16::from(i >= n / 2);
            GpuCore::new(
                &cfg,
                CoreId::new(i as u16),
                Asid::new(app),
                i % (n / 2),
                if app == 0 { cons } else { lps },
                7 ^ (u64::from(app)) << 32,
                false,
            )
        })
        .collect();
    let xlat = TranslationUnit::new(&cfg, DesignKind::Mask.spec(), &[n / 2, n - n / 2]);
    let outs = (0..shards).map(|_| ShardOutput::new(2)).collect();
    (cores, xlat, outs)
}

/// Drains one shard's deferred output queues in merge order — the serial
/// tail `GpuSim::issue_sharded` runs per shard.
fn merge_tail(
    out: &mut ShardOutput,
    xlat: &mut TranslationUnit,
    out_l2: &mut Vec<MemRequest>,
    next_req_id: &mut u64,
    stats: &mut [AppStats],
    now: u64,
) {
    for x in out.xlat.drain(..) {
        xlat.request(x.asid, x.vpn, x.requester, x.core_rank, now);
    }
    let mut sink = DirectIssue {
        xlat,
        out_l2,
        next_req_id,
    };
    for m in out.misses.drain(..) {
        sink.data_miss(m.core, m.asid, m.line, now);
    }
    for (app, delta) in out.stats.iter_mut().enumerate() {
        stats[app].absorb(delta);
        delta.reset();
    }
}

fn bench_shard_merge(c: &mut Criterion) {
    // Deferred issue + merge on one thread: the pure cost of routing
    // stage 1 through ShardOutput queues instead of DirectIssue.
    let (mut cores, mut xlat, mut outs) = frontend(8, 1);
    let mut stats = vec![AppStats::default(); 2];
    let mut out_l2 = Vec::new();
    let mut next_req_id = 0u64;
    let mut now = 0u64;
    c.bench_function("shard_issue_merge_inline_8c", |b| {
        b.iter(|| {
            run_shard(&mut cores, now, &mut outs[0]);
            merge_tail(
                &mut outs[0],
                &mut xlat,
                &mut out_l2,
                &mut next_req_id,
                &mut stats,
                now,
            );
            out_l2.clear();
            now += 1;
        });
    });

    // The same stage through a two-worker pool: adds the cross-thread
    // handoff (publish job, wake, await, merge in shard order).
    let (mut cores, mut xlat, mut outs) = frontend(8, 2);
    let pool = ShardPool::new(2);
    let mut stats = vec![AppStats::default(); 2];
    let mut out_l2 = Vec::new();
    let mut next_req_id = 0u64;
    let mut pnow = 0u64;
    c.bench_function("shard_issue_merge_pool2_8c", |b| {
        b.iter(|| {
            pool.run_issue(&mut cores, &mut outs, pnow);
            for out in &mut outs {
                merge_tail(
                    out,
                    &mut xlat,
                    &mut out_l2,
                    &mut next_req_id,
                    &mut stats,
                    pnow,
                );
            }
            out_l2.clear();
            pnow += 1;
        });
    });

    // Serial reference: the unsharded stage-1 loop over the same cores.
    let (mut cores, mut xlat, _) = frontend(8, 1);
    let mut stats = vec![AppStats::default(); 2];
    let mut out_l2 = Vec::new();
    let mut next_req_id = 0u64;
    let mut snow = 0u64;
    c.bench_function("shard_issue_serial_8c", |b| {
        b.iter(|| {
            let mut sink = DirectIssue {
                xlat: &mut xlat,
                out_l2: &mut out_l2,
                next_req_id: &mut next_req_id,
            };
            for core in &mut cores {
                let app = core.asid.index();
                core.issue(snow, &mut sink, &mut stats[app]);
            }
            out_l2.clear();
            snow += 1;
        });
    });
}

criterion_group!(hotpath, bench_assoc_probe, bench_l2_path, bench_shard_merge);
criterion_main!(hotpath);
