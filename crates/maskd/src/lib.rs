//! `maskd`: simulation-as-a-service for the MASK engine.
//!
//! The job engine (PR 2), warm-up prefix cache (PR 8), and speculative
//! segment runner (PR 9) made thousands of deterministic simulations cheap
//! — but the [`JobPool`](mask_core::JobPool) and its caches still live and
//! die with one process. `maskd` is the long-running farm around them: a
//! daemon that serves simulation jobs to many concurrent tenants over a
//! hand-rolled HTTP/1.1 + JSON API (zero new dependencies; the repo is
//! offline-vendored), fairly multiplexing one warm [`JobPool`] the way
//! MASK itself fairly multiplexes a shared TLB across address spaces.
//!
//! ```text
//! client ──POST /jobs──▶ acceptor ─▶ admission ─▶ DRR fair queue
//!                            │           │              │ batches
//!                            │       ResultStore ◀── JobPool (MASK_JOBS ×
//!                            │        (hit: no sim)     SM shards × spec segs)
//!                            ▼                            │
//!                  GET /jobs/{id}/events ◀─ lifecycle + epoch frames
//! ```
//!
//! The layers, one module each:
//!
//! * [`json`] — the integer-only JSON value type of the wire protocol,
//!   with canonical (sorted-key, no-whitespace) serialization.
//! * [`wire`] — job specs and [`SimStats`](mask_common::stats::SimStats)
//!   as JSON documents. Every statistic counter is an integer, so the
//!   mapping is *exact* and a served result can be compared bit-for-bit
//!   against a local run.
//! * [`http`] — a minimal HTTP/1.1 request parser and response writer
//!   (`Content-Length` and chunked bodies) over `std::net`.
//! * [`store`] — the persistent content-addressed [`ResultStore`]:
//!   final statistics keyed by the job's canonical dedup key, sealed in
//!   the versioned MSNP snapshot codec with the same atomic-rename +
//!   `.lru` sidecar + startup-cleanup hygiene as `MASK_SNAPSHOT_DIR`.
//! * [`queue`] — the admission controller's deficit-round-robin fair
//!   queue across tenant ids.
//! * [`server`] — the daemon itself: thread-per-connection acceptor,
//!   request router, job registry, and the dispatcher thread that feeds
//!   DRR-ordered batches into the shared [`JobPool`](mask_core::JobPool).
//! * [`client`] — a small blocking client library (used by
//!   `examples/sweep_client.rs` and the end-to-end tests).
//! * [`config`] — every `MASKD_*` environment knob, resolved once at
//!   startup (the only module of this crate allowed to read the
//!   environment, enforced by `cargo xtask lint`).
//!
//! # Determinism contract
//!
//! A result served by the daemon — freshly simulated, deduplicated within
//! a batch, or answered from the [`ResultStore`] of a previous process —
//! is **bit-identical** to running the same [`SimJob`](mask_core::SimJob)
//! directly through a local [`JobPool`](mask_core::JobPool)
//! (`tests/daemon_e2e.rs` proves it end to end). Scheduling, fair
//! queueing, and persistence can reorder *when* a job runs, never what it
//! produces. See DESIGN.md §15.
//!
//! This crate is a declared parallelism island of `cargo xtask lint`
//! (acceptor/dispatcher/connection threads), like the job engine it
//! wraps.

pub mod client;
pub mod config;
pub mod http;
pub mod json;
pub mod queue;
pub mod server;
pub mod store;
pub mod wire;

pub use client::{Client, ClientError, JobReply, SubmitReply};
pub use config::DaemonConfig;
pub use server::{Daemon, DaemonHandle};
pub use store::{result_key, ResultStore, StoreStats};
