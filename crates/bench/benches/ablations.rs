//! Design-choice ablations (DESIGN.md experiment index).

use mask_bench::{banner, emit, options};
use mask_core::experiments::ablation;

fn main() {
    let opts = options(2);
    banner("Ablations: MASK design choices", &opts);
    let t0 = std::time::Instant::now();
    emit(&ablation::token_policy(&opts));
    emit(&ablation::bypass_margin(&opts));
    emit(&ablation::golden_capacity(&opts));
    emit(&ablation::epoch_length(&opts));
    println!("[ablations done in {:?}]", t0.elapsed());
}
