//! A generic set-associative array with true-LRU replacement.
//!
//! Shared by the L1 TLB (one fully-associative set), the shared L2 TLB
//! (16-way), the TLB bypass cache (fully associative), and the page-walk
//! cache. Data caches live in `mask-cache` and add MSHRs and banking on
//! top of the same structure.

use mask_common::snapshot::{SnapField, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use std::hash::{Hash, Hasher};

/// A set-associative, true-LRU lookup structure.
///
/// Keys are hashed to pick a set; within a set, lookup is a linear scan
/// (associativities here are ≤ 64, so this is both simple and fast).
#[derive(Clone, Debug)]
pub struct AssocArray<K, V> {
    sets: Vec<Vec<Entry<K, V>>>,
    assoc: usize,
    stamp: u64,
}

#[derive(Clone, Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    last_used: u64,
}

impl<K: Eq + Hash + Copy, V: Copy> AssocArray<K, V> {
    /// Creates an array with `entries` total capacity and `assoc` ways.
    ///
    /// When `entries` is not a multiple of `assoc`, the set count is rounded
    /// **up**, so the array never holds less than the requested capacity
    /// (a structure sized "100 entries, 16-way" gets 7 sets / 112 slots,
    /// not 6 sets / 96 — capacity requests must not be silently shrunk).
    /// For a fully-associative structure pass `assoc == entries`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `assoc` is zero.
    pub fn new(entries: usize, assoc: usize) -> Self {
        assert!(
            entries > 0 && assoc > 0,
            "capacity and associativity must be positive"
        );
        let assoc = assoc.min(entries);
        let n_sets = entries.div_ceil(assoc);
        AssocArray {
            sets: (0..n_sets).map(|_| Vec::with_capacity(assoc)).collect(),
            assoc,
            stamp: 0,
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.assoc
    }

    /// Number of ways per set.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Number of sets.
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// Number of valid entries currently resident.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the array holds no entries.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    fn set_index(&self, key: &K) -> usize {
        if self.sets.len() == 1 {
            return 0;
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        // Same residue as `%` for the power-of-two set counts every shipped
        // geometry uses, without the 64-bit divide on each probe.
        let n = self.sets.len();
        if n.is_power_of_two() {
            (h.finish() as usize) & (n - 1)
        } else {
            (h.finish() as usize) % n
        }
    }

    /// Looks up `key`, updating LRU state on a hit.
    pub fn probe(&mut self, key: &K) -> Option<V> {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_index(key);
        let entry = self.sets[set].iter_mut().find(|e| e.key == *key)?;
        entry.last_used = stamp;
        Some(entry.value)
    }

    /// Looks up `key` without perturbing LRU state (for monitors/tests).
    pub fn peek(&self, key: &K) -> Option<V> {
        let set = self.set_index(key);
        self.sets[set]
            .iter()
            .find(|e| e.key == *key)
            .map(|e| e.value)
    }

    /// Inserts `key -> value`, evicting the set's LRU entry if full.
    ///
    /// Returns the evicted `(key, value)` pair, if any. Filling an existing
    /// key updates its value and LRU position.
    pub fn fill(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.stamp += 1;
        let stamp = self.stamp;
        let set_idx = self.set_index(&key);
        let assoc = self.assoc;
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|e| e.key == key) {
            entry.value = value;
            entry.last_used = stamp;
            return None;
        }
        let mut evicted = None;
        if set.len() >= assoc {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("set is non-empty");
            let e = set.swap_remove(victim);
            evicted = Some((e.key, e.value));
        }
        set.push(Entry {
            key,
            value,
            last_used: stamp,
        });
        evicted
    }

    /// Removes `key` if present, returning its value.
    pub fn invalidate(&mut self, key: &K) -> Option<V> {
        let set = self.set_index(key);
        let pos = self.sets[set].iter().position(|e| e.key == *key)?;
        Some(self.sets[set].swap_remove(pos).value)
    }

    /// Removes all entries matching a predicate (e.g. per-ASID flush).
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &V) -> bool) {
        for set in &mut self.sets {
            set.retain(|e| keep(&e.key, &e.value));
        }
    }

    /// Removes every entry.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Iterates over resident `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|e| (&e.key, &e.value)))
    }
}

impl<K: SnapField + Eq + Hash + Copy, V: SnapField + Copy> Snapshot for AssocArray<K, V> {
    /// Captures the stamp and every set's entries *in stored order*:
    /// eviction picks the positionally-first minimum `last_used` and
    /// removal uses `swap_remove`, so both the order and the exact LRU
    /// stamps are behaviorally significant.
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.u64(self.stamp);
        w.seq(self.sets.len());
        for set in &self.sets {
            w.seq(set.len());
            for e in set {
                e.key.write(w);
                e.value.write(w);
                w.u64(e.last_used);
            }
        }
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.stamp = r.u64()?;
        r.seq_exact(self.sets.len())?;
        for set in &mut self.sets {
            set.clear();
            let n = r.seq()?;
            if n > self.assoc {
                return Err(SnapshotError::Malformed("set holds more than assoc"));
            }
            for _ in 0..n {
                set.push(Entry {
                    key: K::read(r)?,
                    value: V::read(r)?,
                    last_used: r.u64()?,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_then_probe_hits() {
        let mut a = AssocArray::new(8, 8);
        assert_eq!(a.probe(&1u64), None);
        a.fill(1u64, 100u64);
        assert_eq!(a.probe(&1), Some(100));
        assert_eq!(a.peek(&1), Some(100));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut a = AssocArray::new(2, 2);
        a.fill(1u64, 1u64);
        a.fill(2, 2);
        // Touch 1 so that 2 becomes LRU.
        assert_eq!(a.probe(&1), Some(1));
        let evicted = a.fill(3, 3);
        assert_eq!(evicted, Some((2, 2)));
        assert_eq!(a.peek(&1), Some(1));
        assert_eq!(a.peek(&3), Some(3));
    }

    #[test]
    fn refill_updates_value_without_eviction() {
        let mut a = AssocArray::new(2, 2);
        a.fill(1u64, 1u64);
        a.fill(2, 2);
        assert_eq!(a.fill(1, 42), None);
        assert_eq!(a.peek(&1), Some(42));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn set_mapping_partitions_keys() {
        let mut a = AssocArray::new(64, 4);
        assert_eq!(a.n_sets(), 16);
        for k in 0..64u64 {
            a.fill(k, k);
        }
        assert!(a.len() <= 64);
        // Fully-assoc array never misses below capacity.
        let mut fa = AssocArray::new(64, 64);
        for k in 0..64u64 {
            fa.fill(k, k);
        }
        assert_eq!((0..64u64).filter(|k| fa.peek(k).is_some()).count(), 64);
    }

    #[test]
    fn retain_flushes_selectively() {
        let mut a = AssocArray::new(16, 4);
        for k in 0..16u64 {
            a.fill(k, k % 2);
        }
        let before = a.len();
        a.retain(|_, v| *v == 0);
        assert!(a.len() < before);
        assert!(a.iter().all(|(_, v)| *v == 0));
        a.flush();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn invalidate_removes_single_key() {
        let mut a = AssocArray::new(4, 4);
        a.fill(7u64, 7u64);
        assert_eq!(a.invalidate(&7), Some(7));
        assert_eq!(a.invalidate(&7), None);
        assert_eq!(a.probe(&7), None);
    }

    #[test]
    fn capacity_respects_rounding() {
        let a: AssocArray<u64, u64> = AssocArray::new(100, 16);
        // Set count rounds UP: 7 sets of 16 ways — never below the
        // requested 100 entries.
        assert_eq!(a.n_sets(), 7);
        assert_eq!(a.capacity(), 112);
        // Exact multiples are untouched.
        let b: AssocArray<u64, u64> = AssocArray::new(128, 16);
        assert_eq!(b.n_sets(), 8);
        assert_eq!(b.capacity(), 128);
    }
}
