//! Identifier newtypes for cores, warps, applications, and address spaces.
//!
//! The paper's key abstraction is the *address space* (§1, footnote 1): a
//! distinct memory-protection domain. Each concurrently-executing application
//! owns one address space; MASK tags every shared TLB entry with an address
//! space identifier ([`Asid`]) so that entries from different applications
//! are isolated (§5.1).

use core::fmt;

/// An address-space identifier (the paper uses 9-bit ASIDs, §7.4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asid(u16);

impl Asid {
    /// Creates an ASID.
    #[inline]
    pub const fn new(id: u16) -> Self {
        Asid(id)
    }

    /// The raw identifier value.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// The identifier as a `usize` index (for per-app stat arrays).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Asid({})", self.0)
    }
}

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An application index within one simulated workload (0-based).
///
/// In this reproduction applications map 1:1 onto address spaces, so
/// `AppId(i)` always corresponds to `Asid(i)`; the two types are kept
/// distinct because the hardware structures only ever see ASIDs while the
/// workload/metrics layers reason about applications.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AppId(u8);

impl AppId {
    /// Creates an application id.
    #[inline]
    pub const fn new(id: u8) -> Self {
        AppId(id)
    }

    /// The raw id.
    #[inline]
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// The id as a `usize` index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The address space this application runs in.
    #[inline]
    pub const fn asid(self) -> Asid {
        Asid(self.0 as u16)
    }
}

impl fmt::Debug for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "App({})", self.0)
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A GPU core (streaming multiprocessor) index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core id.
    #[inline]
    pub const fn new(id: u16) -> Self {
        CoreId(id)
    }

    /// The raw id.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// The id as a `usize` index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Core({})", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A warp slot index within one core.
///
/// TLB-Fill Tokens are handed out in warp-ID order (§5.2): "if there are
/// `n` tokens, the `n` warps with the lowest warp ID values receive tokens".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WarpId(u16);

impl WarpId {
    /// Creates a warp id.
    #[inline]
    pub const fn new(id: u16) -> Self {
        WarpId(id)
    }

    /// The raw id.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// The id as a `usize` index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for WarpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Warp({})", self.0)
    }
}

impl fmt::Display for WarpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A globally-unique warp reference: (core, warp slot).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct GlobalWarpId {
    /// The core the warp executes on.
    pub core: CoreId,
    /// The warp slot within that core.
    pub warp: WarpId,
}

impl GlobalWarpId {
    /// Creates a global warp reference.
    #[inline]
    pub const fn new(core: CoreId, warp: WarpId) -> Self {
        GlobalWarpId { core, warp }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_maps_to_matching_asid() {
        for i in 0..5u8 {
            assert_eq!(AppId::new(i).asid(), Asid::new(u16::from(i)));
        }
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(WarpId::new(3) < WarpId::new(7));
        assert!(CoreId::new(0) < CoreId::new(29));
        assert!(Asid::new(1) < Asid::new(2));
    }

    #[test]
    fn display_is_raw_number() {
        assert_eq!(CoreId::new(12).to_string(), "12");
        assert_eq!(AppId::new(1).to_string(), "1");
    }
}
