//! Functional TLB-miss-rate measurement (regenerates Table 2).
//!
//! Runs an application's warp traces through a latency-free model of the
//! TLB hierarchy (per-core 64-entry L1 TLBs, one shared 512-entry 16-way
//! L2 TLB) and reports the observed miss rates. This is how the paper's
//! Table 2 classifies benchmarks; the full timed simulator in `mask-gpu`
//! reproduces the same behaviour with latencies attached.

use crate::profile::AppProfile;
use crate::trace::WarpTrace;
use mask_common::addr::{Ppn, PAGE_SIZE_4K_LOG2};
use mask_common::ids::Asid;
use mask_tlb::{L1Tlb, L2TlbProbe, SharedL2Tlb};

/// A measured or expected TLB behaviour class (Table 2 quadrant).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TlbClass {
    /// L1 TLB miss rate is "High" (≥ 20%).
    pub l1_high: bool,
    /// L2 TLB miss rate is "High" (≥ 20%).
    pub l2_high: bool,
}

/// The paper's Low/High boundary: workload pairs are excluded when both
/// apps have "low L1 TLB miss rate (i.e., <20%) and low L2 TLB miss rate
/// (i.e., <20%)" (§6).
pub const HIGH_THRESHOLD: f64 = 0.20;

impl TlbClass {
    /// Classifies a measured `(l1_miss_rate, l2_miss_rate)` pair.
    pub fn from_rates(l1: f64, l2: f64) -> Self {
        TlbClass {
            l1_high: l1 >= HIGH_THRESHOLD,
            l2_high: l2 >= HIGH_THRESHOLD,
        }
    }
}

/// Configuration for the functional measurement.
#[derive(Clone, Debug)]
pub struct ClassifyConfig {
    /// Cores running the application.
    pub n_cores: usize,
    /// Warp contexts per core.
    pub warps_per_core: usize,
    /// L1 TLB entries per core.
    pub l1_entries: usize,
    /// Shared L2 TLB entries.
    pub l2_entries: usize,
    /// Shared L2 TLB associativity.
    pub l2_assoc: usize,
    /// Memory instructions per warp to simulate.
    pub ops_per_warp: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for ClassifyConfig {
    fn default() -> Self {
        ClassifyConfig {
            n_cores: 4,
            warps_per_core: 64,
            l1_entries: 64,
            l2_entries: 512,
            l2_assoc: 16,
            ops_per_warp: 200,
            seed: 0x7ab1e2,
        }
    }
}

/// Measures `(l1_miss_rate, l2_miss_rate)` for one application running
/// alone on `cfg.n_cores` cores.
pub fn measure_tlb_rates(profile: &AppProfile, cfg: &ClassifyConfig) -> (f64, f64) {
    let asid = Asid::new(0);
    let mut l1s: Vec<L1Tlb> = (0..cfg.n_cores)
        .map(|_| L1Tlb::new(cfg.l1_entries))
        .collect();
    let mut l2 = SharedL2Tlb::new(cfg.l2_entries, cfg.l2_assoc, 1, 0);
    let mut traces: Vec<WarpTrace> = (0..cfg.n_cores)
        .flat_map(|c| (0..cfg.warps_per_core).map(move |w| (c as u64, w as u64)))
        .map(|(c, w)| WarpTrace::new(profile, cfg.seed, c, w, PAGE_SIZE_4K_LOG2))
        .collect();
    let (mut l1_acc, mut l1_miss) = (0u64, 0u64);
    // Round-robin across warps approximates concurrent execution.
    for _ in 0..cfg.ops_per_warp {
        for (i, t) in traces.iter_mut().enumerate() {
            let core = i / cfg.warps_per_core;
            let op = t.next_op();
            let mut pages: Vec<u64> = op
                .lines
                .iter()
                .map(|va| va.vpn(PAGE_SIZE_4K_LOG2).0)
                .collect();
            pages.sort_unstable();
            pages.dedup();
            for page in pages {
                let vpn = mask_common::addr::Vpn(page);
                l1_acc += 1;
                if l1s[core].probe(asid, vpn).is_some() {
                    continue;
                }
                l1_miss += 1;
                let ppn = match l2.probe(asid, vpn) {
                    L2TlbProbe::Miss => {
                        // Walk "succeeds" instantly; invent a stable frame.
                        let ppn = Ppn(page + 1);
                        l2.fill(asid, vpn, ppn, true);
                        ppn
                    }
                    hit => hit.ppn().expect("hit carries a translation"),
                };
                l1s[core].fill(asid, vpn, ppn);
            }
        }
    }
    let l1_rate = if l1_acc == 0 {
        0.0
    } else {
        l1_miss as f64 / l1_acc as f64
    };
    (l1_rate, l2.lifetime_stats(asid).miss_rate())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{all_apps, expected_class};

    #[test]
    fn class_threshold_boundaries() {
        assert_eq!(
            TlbClass::from_rates(0.19, 0.19),
            TlbClass {
                l1_high: false,
                l2_high: false
            }
        );
        assert_eq!(
            TlbClass::from_rates(0.20, 0.19),
            TlbClass {
                l1_high: true,
                l2_high: false
            }
        );
        assert_eq!(
            TlbClass::from_rates(0.05, 0.9),
            TlbClass {
                l1_high: false,
                l2_high: true
            }
        );
    }

    /// The headline property: every synthetic profile lands in its paper
    /// quadrant (regenerates Table 2).
    #[test]
    fn all_apps_match_table_2() {
        // Long enough that compulsory (cold) misses do not dominate the
        // low-miss-rate apps' L2 statistics.
        let cfg = ClassifyConfig {
            ops_per_warp: 250,
            ..ClassifyConfig::default()
        };
        let mut failures = Vec::new();
        for app in all_apps() {
            let (l1, l2) = measure_tlb_rates(app, &cfg);
            let got = TlbClass::from_rates(l1, l2);
            let want = expected_class(app.name).expect("classified");
            if got != want {
                failures.push(format!(
                    "{}: measured l1={l1:.3} l2={l2:.3} -> {got:?}, expected {want:?}",
                    app.name
                ));
            }
        }
        assert!(
            failures.is_empty(),
            "misclassified apps:\n{}",
            failures.join("\n")
        );
    }

    #[test]
    fn low_low_apps_barely_miss() {
        let cfg = ClassifyConfig::default();
        let lud = crate::apps::app_by_name("LUD").expect("exists");
        let (l1, _) = measure_tlb_rates(lud, &cfg);
        assert!(
            l1 < 0.10,
            "LUD should have a very low L1 TLB miss rate, got {l1:.3}"
        );
    }

    #[test]
    fn gup_thrashes_l1_but_fits_l2() {
        let cfg = ClassifyConfig::default();
        let gup = crate::apps::app_by_name("GUP").expect("exists");
        let (l1, l2) = measure_tlb_rates(gup, &cfg);
        assert!(
            l1 > 0.5,
            "GUP random scatter thrashes the L1 TLB, got {l1:.3}"
        );
        assert!(
            l2 < 0.2,
            "GUP's 400-page set fits the 512-entry L2 TLB, got {l2:.3}"
        );
    }
}
