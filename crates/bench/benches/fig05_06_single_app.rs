//! Figures 5 and 6: single-application page-walk pressure.

use mask_bench::{banner, emit, options};
use mask_core::experiments::single_app;

fn main() {
    let opts = options(35);
    banner("Figures 5-6: single-app translation pressure", &opts);
    let t0 = std::time::Instant::now();
    let rows = single_app::measure(&opts);
    emit(&single_app::fig05(&rows));
    emit(&single_app::fig06(&rows));
    println!("[fig05/06 done in {:?}]", t0.elapsed());
}
