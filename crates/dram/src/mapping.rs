//! Physical-address to (channel, bank, row, column) mapping.
//!
//! Bit layout (from least significant): line offset (7 b) | column within
//! row | channel | bank | row. Mapping the channel/bank bits *above* the
//! column bits keeps every line of a 2 KB row in the same bank, so
//! streaming accesses produce row hits; the row bits are XOR-folded into
//! the bank index to spread pathological strides across banks.

use mask_common::addr::LineAddr;
use mask_common::config::DramConfig;
use mask_common::ids::Asid;

/// A decoded DRAM coordinate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Decoded {
    /// Memory channel index.
    pub channel: usize,
    /// Bank index within the channel.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
}

/// Restricts address spaces to channel subsets (the `Static` baseline
/// partitions "memory channels ... equally across applications", §7) or to
/// bank subsets within every channel (the FGPU-style `Partitioned` design,
/// which colors DRAM banks instead of reserving whole channels).
#[derive(Clone, Debug, Default)]
pub struct ChannelPartition {
    /// `ranges[asid] = (first_channel, n_channels)`; empty = no partition.
    ranges: Vec<(usize, usize)>,
    /// `bank_ranges[asid] = (first_bank, n_banks)` within every channel;
    /// empty = banks shared.
    bank_ranges: Vec<(usize, usize)>,
}

/// Splits `total` resources among `n_apps`: everyone gets `total / n_apps`
/// and the *last* app absorbs the remainder, so an uneven split such as
/// 8 ÷ 3 yields 2, 2, 4 deterministically.
fn split_ranges(total: usize, n_apps: usize, what: &str) -> Vec<(usize, usize)> {
    assert!(
        n_apps > 0 && n_apps <= total,
        "cannot split {total} {what} {n_apps} ways"
    );
    let per = total / n_apps;
    (0..n_apps)
        .map(|i| {
            let start = i * per;
            let n = if i == n_apps - 1 { total - start } else { per };
            (start, n)
        })
        .collect()
}

impl ChannelPartition {
    /// No partitioning: all apps use all channels and banks.
    pub fn shared() -> Self {
        ChannelPartition::default()
    }

    /// Splits `channels` equally among `n_apps` (remainder to the last app).
    ///
    /// # Panics
    ///
    /// Panics if `n_apps` is 0 or exceeds the channel count.
    pub fn split(channels: usize, n_apps: usize) -> Self {
        ChannelPartition {
            ranges: split_ranges(channels, n_apps, "channels"),
            bank_ranges: Vec::new(),
        }
    }

    /// Colors the `banks` of every channel among `n_apps` (remainder to the
    /// last app); channels stay fully shared so per-app bus bandwidth is
    /// not reserved, only bank conflicts are isolated.
    ///
    /// # Panics
    ///
    /// Panics if `n_apps` is 0 or exceeds the per-channel bank count.
    pub fn bank_colored(banks: usize, n_apps: usize) -> Self {
        ChannelPartition {
            ranges: Vec::new(),
            bank_ranges: split_ranges(banks, n_apps, "banks"),
        }
    }

    /// Maps a nominal channel index to the app's allowed subset.
    pub fn restrict(&self, nominal: usize, asid: Asid) -> usize {
        match self.ranges.get(asid.index()) {
            Some(&(start, n)) if n > 0 => start + nominal % n,
            _ => nominal,
        }
    }

    /// Maps a nominal bank index to the app's allowed subset.
    pub fn restrict_bank(&self, nominal: usize, asid: Asid) -> usize {
        match self.bank_ranges.get(asid.index()) {
            Some(&(start, n)) if n > 0 => start + nominal % n,
            _ => nominal,
        }
    }

    /// The `(first_bank, n_banks)` range `asid` is colored into, if bank
    /// coloring is active (sanitizer hooks and tests).
    pub fn bank_range(&self, asid: Asid) -> Option<(usize, usize)> {
        self.bank_ranges.get(asid.index()).copied()
    }
}

/// Decodes `line` for the given geometry, honoring the partition.
pub fn decode(line: LineAddr, cfg: &DramConfig, part: &ChannelPartition, asid: Asid) -> Decoded {
    let lines_per_row = 1u64 << (cfg.row_size_log2 - mask_common::addr::LINE_SIZE_LOG2);
    let col_bits = lines_per_row.trailing_zeros();
    let after_col = line.0 >> col_bits;
    let nominal_channel = (after_col % cfg.channels as u64) as usize;
    let after_chan = after_col / cfg.channels as u64;
    let bank_raw = after_chan % cfg.banks_per_channel as u64;
    let row = after_chan / cfg.banks_per_channel as u64;
    // XOR-fold the row into the bank index to spread strided streams.
    let bank = ((bank_raw ^ (row & (cfg.banks_per_channel as u64 - 1)))
        % cfg.banks_per_channel as u64) as usize;
    Decoded {
        channel: part.restrict(nominal_channel, asid),
        bank: part.restrict_bank(bank, asid),
        row,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mask_common::config::DramConfig;

    fn cfg() -> DramConfig {
        DramConfig::default()
    }

    #[test]
    fn lines_within_a_row_share_coordinates() {
        let cfg = cfg();
        let part = ChannelPartition::shared();
        // 2 KB row / 128 B line = 16 lines per row.
        let base = 0x123u64 * 16;
        let d0 = decode(LineAddr(base), &cfg, &part, Asid::new(0));
        for i in 1..16 {
            let d = decode(LineAddr(base + i), &cfg, &part, Asid::new(0));
            assert_eq!(d, d0, "line {i} of a row must stay in one bank/row");
        }
        // The next row moves somewhere else.
        let d16 = decode(LineAddr(base + 16), &cfg, &part, Asid::new(0));
        assert_ne!(d16, d0);
    }

    #[test]
    fn streams_cover_all_channels() {
        let cfg = cfg();
        let part = ChannelPartition::shared();
        let mut seen = std::collections::HashSet::new();
        for i in 0..(16 * 64) {
            seen.insert(decode(LineAddr(i), &cfg, &part, Asid::new(0)).channel);
        }
        assert_eq!(seen.len(), cfg.channels);
    }

    #[test]
    fn partition_confines_apps_to_their_channels() {
        let cfg = cfg();
        let part = ChannelPartition::split(8, 2);
        for i in 0..4096u64 {
            let d0 = decode(LineAddr(i * 17), &cfg, &part, Asid::new(0));
            let d1 = decode(LineAddr(i * 17), &cfg, &part, Asid::new(1));
            assert!(d0.channel < 4, "app 0 confined to channels 0-3");
            assert!(
                (4..8).contains(&d1.channel),
                "app 1 confined to channels 4-7"
            );
        }
    }

    #[test]
    fn uneven_split_gives_remainder_to_last_app() {
        let part = ChannelPartition::split(8, 3);
        // Apps get 2, 2, and 4 channels.
        assert_eq!(part.restrict(0, Asid::new(0)), 0);
        assert_eq!(part.restrict(5, Asid::new(0)), 1);
        assert_eq!(part.restrict(0, Asid::new(2)), 4);
        assert_eq!(part.restrict(3, Asid::new(2)), 7);
    }

    #[test]
    fn bank_coloring_confines_apps_to_their_banks() {
        let cfg = cfg();
        let part = ChannelPartition::bank_colored(cfg.banks_per_channel, 2);
        let mut ch0 = std::collections::HashSet::new();
        for i in 0..4096u64 {
            let d0 = decode(LineAddr(i * 17), &cfg, &part, Asid::new(0));
            let d1 = decode(LineAddr(i * 17), &cfg, &part, Asid::new(1));
            assert!(d0.bank < 4, "app 0 confined to banks 0-3");
            assert!((4..8).contains(&d1.bank), "app 1 confined to banks 4-7");
            ch0.insert(d0.channel);
        }
        // Channels are *not* reserved under bank coloring.
        assert_eq!(ch0.len(), cfg.channels);
    }

    #[test]
    fn uneven_bank_coloring_gives_remainder_to_last_app() {
        // 8 banks ÷ 3 apps: 2, 2, 4.
        let part = ChannelPartition::bank_colored(8, 3);
        assert_eq!(part.bank_range(Asid::new(0)), Some((0, 2)));
        assert_eq!(part.bank_range(Asid::new(1)), Some((2, 2)));
        assert_eq!(part.bank_range(Asid::new(2)), Some((4, 4)));
        assert_eq!(part.restrict_bank(0, Asid::new(2)), 4);
        assert_eq!(part.restrict_bank(5, Asid::new(2)), 5);
        assert_eq!(part.restrict_bank(5, Asid::new(0)), 1);
        // Channel splits obey the same rule: 8 ÷ 3 → 2, 2, 4.
        let chans = ChannelPartition::split(8, 3);
        assert_eq!(chans.restrict(0, Asid::new(1)), 2);
        assert_eq!(chans.restrict(3, Asid::new(2)), 7);
    }

    #[test]
    fn banks_spread_strided_rows() {
        let cfg = cfg();
        let part = ChannelPartition::shared();
        let mut banks = std::collections::HashSet::new();
        // Stride of exactly one row within one channel.
        for r in 0..64u64 {
            let line = r * 16 * cfg.channels as u64;
            banks.insert(decode(LineAddr(line), &cfg, &part, Asid::new(0)).bank);
        }
        assert!(
            banks.len() >= 4,
            "row-strided stream should touch many banks"
        );
    }
}
