//! Property tests for the data cache, MSHRs, and the timed L2.

use mask_cache::{DataCache, MshrAlloc, MshrTable, SharedL2Cache};
use mask_common::addr::LineAddr;
use mask_common::config::{CacheConfig, L2Policy};
use mask_common::ids::{Asid, CoreId};
use mask_common::req::{MemRequest, ReqId, RequestClass};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Probe-after-fill always hits until capacity pressure can evict.
    #[test]
    fn fill_then_probe_hits(lines in proptest::collection::vec(0u64..1000, 1..100)) {
        let mut c = DataCache::new(1 << 20, 16); // huge: no evictions
        for &l in &lines {
            c.fill(LineAddr(l), Asid::new(0));
            prop_assert!(c.probe(LineAddr(l), Asid::new(0)));
        }
        for &l in &lines {
            prop_assert!(c.peek(LineAddr(l), Asid::new(0)), "line {l} lost without pressure");
        }
    }

    /// Valid-line count never exceeds capacity.
    #[test]
    fn occupancy_bounded(lines in proptest::collection::vec(any::<u32>(), 0..400)) {
        let mut c = DataCache::new(16 * 1024, 4); // 128 lines
        for &l in &lines {
            c.fill(LineAddr(u64::from(l)), Asid::new(0));
        }
        prop_assert!(c.len() <= c.capacity_lines());
    }

    /// Every MSHR waiter is returned exactly once across completes.
    #[test]
    fn mshr_conserves_waiters(reqs in proptest::collection::vec((0u64..16, any::<u32>()), 0..100)) {
        let mut m: MshrTable<u32> = MshrTable::new(64);
        let mut expected: Vec<(u64, u32)> = Vec::new();
        for &(line, w) in &reqs {
            match m.allocate(LineAddr(line), w) {
                MshrAlloc::Primary | MshrAlloc::Secondary => expected.push((line, w)),
                MshrAlloc::Full => {}
            }
        }
        let mut returned: Vec<(u64, u32)> = Vec::new();
        for line in 0u64..16 {
            for w in m.complete(LineAddr(line)) {
                returned.push((line, w));
            }
        }
        expected.sort_unstable();
        returned.sort_unstable();
        prop_assert_eq!(expected, returned);
        prop_assert!(m.is_empty());
    }

    /// Conservation through the timed L2: every enqueued request produces
    /// exactly one response once DRAM fills return.
    #[test]
    fn l2_conserves_requests(lines in proptest::collection::vec(0u64..64, 1..80), translation_mask: u8) {
        let cfg = CacheConfig { bytes: 32 * 1024, assoc: 4, latency: 5, banks: 4, ports_per_bank: 2, mshrs: 8 };
        let mut l2 = SharedL2Cache::new(&cfg, if translation_mask.is_multiple_of(2) { L2Policy::SharedBypass } else { L2Policy::Shared }, 1);
        let mut ids = HashSet::new();
        for (i, &l) in lines.iter().enumerate() {
            let class = if i % 3 == 0 {
                RequestClass::Translation(mask_common::req::WalkLevel::new((i % 4 + 1) as u8))
            } else {
                RequestClass::Data
            };
            l2.enqueue(
                MemRequest::new(ReqId(i as u64), LineAddr(l), Asid::new(0), CoreId::new(0), class, 0),
                0,
            );
            ids.insert(ReqId(i as u64));
        }
        let mut seen = HashSet::new();
        for now in 0..10_000u64 {
            l2.tick(now);
            for r in l2.take_dram_requests() {
                // Instant DRAM.
                l2.dram_fill(r.line, now);
            }
            for resp in l2.take_responses() {
                prop_assert!(seen.insert(resp.req.id), "duplicate response {:?}", resp.req.id);
            }
            if seen.len() == ids.len() {
                break;
            }
        }
        prop_assert_eq!(seen.len(), ids.len(), "lost responses");
    }
}
