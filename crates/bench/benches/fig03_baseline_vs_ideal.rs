//! Figure 3: baseline designs (`PWCache`, `SharedTLB`) vs ideal performance.

use mask_bench::{banner, emit, options};
use mask_core::experiments::baseline;

fn main() {
    let opts = options(35);
    banner("Figure 3: baselines vs ideal", &opts);
    let t0 = std::time::Instant::now();
    emit(&baseline::run(&opts));
    println!("[fig03 done in {:?}]", t0.elapsed());
}
