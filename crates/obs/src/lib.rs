//! `mask-obs`: zero-cost observability for the MASK simulator.
//!
//! Three layers, all built on the hook-point pattern established by
//! `mask-sanitizer` (inline functions that compile to nothing unless a
//! feature is on):
//!
//! 1. **Event tracing** ([`hooks`], [`event`], [`ring`]) — the simulator
//!    crates call tiny `#[inline(always)]` hook functions at interesting
//!    micro-architectural moments (warp stall transitions, TLB probes and
//!    MSHR merges, walker slot lifecycle, L2/DRAM queue depths, bypass
//!    decisions, token grants). Records land in a fixed-capacity
//!    **per-thread ring buffer** (overwrite-oldest, drop-counted), so the
//!    sharded SM frontend traces without any cross-thread synchronization
//!    on the per-cycle path; rings are drained into a process-wide sink at
//!    coarse flush points only.
//! 2. **Metrics stream** ([`metrics`]) — per-epoch snapshots of the
//!    `AppStats` counters, diffed against the previous epoch and emitted as
//!    JSONL frames (counter families: `tlb`, `walker`, `l2`, `dram`, plus
//!    engine-side `shard_merge` and `job_pool` frames).
//! 3. **Self-profiling** ([`profile`]) — cycle-bucketed wall-clock timings
//!    of the `GpuSim::step` stages, shard merge-tail wait time, and job
//!    engine spans, so jobs×shards tuning is data-driven.
//!
//! [`export`] turns the collected data into Chrome/Perfetto `trace_event`
//! JSON plus the metrics JSONL (see `cargo run --example trace_viewer`).
//!
//! # Zero-cost contract
//!
//! * Without the `enabled` feature every hook has an empty body and every
//!   tracker is a zero-sized no-op; the `hotpath` and `parallelism` rules
//!   of `cargo xtask lint` verify the disabled path allocates nothing and
//!   uses no thread primitives (see `crates/obs/src/hooks.rs` and
//!   `crates/obs/src/ring.rs` in `xtask/src/lint.rs`).
//! * With the feature compiled in, hooks are still inert until tracing is
//!   switched on at runtime via the `MASK_TRACE` environment variable (any
//!   non-empty value other than `0`) or [`set_runtime`].
//! * Hooks never mutate simulator state, so traced runs are bit-identical
//!   to untraced runs (proven by `tests/obs_trace.rs`).

pub mod event;
pub mod export;
pub mod hooks;
pub mod metrics;
pub mod profile;
pub mod ring;

pub use event::{Event, QueueKind, Record, SpecPhase, StallKind, TlbLevel};

/// Whether trace hooks are compiled in (the `enabled` feature).
#[must_use]
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Whether tracing is live right now: compiled in **and** runtime-enabled.
///
/// Call sites that need to compute a hook argument (e.g. scan a queue for
/// its depth) guard the computation with this; it is a constant `false`
/// when the feature is off, so the guarded block is dead code.
#[inline(always)]
#[must_use]
pub fn tracing_active() -> bool {
    #[cfg(feature = "enabled")]
    {
        ring::runtime_enabled()
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Discards everything collected so far (events, frames, spans, profile
/// aggregates) without exporting it. Lets tests and examples run several
/// configurations in one process without mixing their traces; a no-op
/// unless the feature is compiled in.
pub fn reset_collected() {
    #[cfg(feature = "enabled")]
    ring::reset();
}

/// Drains the per-epoch JSONL metrics frames collected so far, leaving
/// events, spans, and profile aggregates in place for a later full
/// export. `maskd` calls this after each dispatched batch to stream
/// epoch-metrics frames to job watchers; always empty unless the feature
/// is compiled in and tracing is live.
#[must_use]
pub fn drain_frames() -> Vec<String> {
    #[cfg(feature = "enabled")]
    {
        ring::take_frames()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

/// Programmatically overrides the `MASK_TRACE` runtime gate.
///
/// `Some(true)` forces tracing on, `Some(false)` forces it off, and `None`
/// re-arms the environment-variable check. Used by the bit-identity tests
/// and the `trace_viewer` example; a no-op unless the feature is compiled
/// in.
pub fn set_runtime(on: Option<bool>) {
    #[cfg(feature = "enabled")]
    ring::set_runtime(on);
    #[cfg(not(feature = "enabled"))]
    let _ = on;
}
