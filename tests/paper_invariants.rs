//! Quantitative invariants from the paper's analysis sections that must
//! emerge from the simulation (not be baked in).

use mask_core::prelude::*;

fn runner() -> PairRunner {
    let mut gpu = GpuConfig::maxwell();
    gpu.warps_per_core = 32;
    PairRunner::new(RunOptions {
        n_cores: 8,
        max_cycles: 40_000,
        seed: 11,
        warmup_cycles: 10_000,
        gpu,
        jobs: JobOptions::serial(),
    })
}

#[test]
fn walk_levels_hit_monotonically_less_toward_leaves() {
    // §4.3: "data cache hit rates of address translation requests ...
    // 99.8%, 98.8%, 68.7%, and 1.0% for the first (root), second, third,
    // and fourth levels".
    let r = runner();
    let stats = r.run_apps(
        DesignKind::SharedTlb,
        &[AppSpec {
            profile: app_by_name("CONS").expect("known"),
            n_cores: 8,
        }],
    );
    let a = &stats.apps[0];
    let rates: Vec<f64> = (0..4).map(|i| a.l2_translation[i].hit_rate()).collect();
    assert!(
        rates[0] >= rates[2] && rates[0] >= rates[3],
        "root must cache best: {rates:?}"
    );
    assert!(
        rates[3] < rates[0],
        "leaf level must cache strictly worse than root: {rates:?}"
    );
}

#[test]
fn interference_raises_shared_tlb_miss_rate() {
    // §4.2 / Fig. 7.
    let r = runner();
    let gup = app_by_name("GUP").expect("known");
    let cons = app_by_name("CONS").expect("known");
    let alone = r.run_apps(
        DesignKind::SharedTlb,
        &[AppSpec {
            profile: gup,
            n_cores: 4,
        }],
    );
    let shared = r.run_apps(
        DesignKind::SharedTlb,
        &[
            AppSpec {
                profile: gup,
                n_cores: 4,
            },
            AppSpec {
                profile: cons,
                n_cores: 4,
            },
        ],
    );
    let miss_alone = alone.apps[0].l2_tlb.miss_rate();
    let miss_shared = shared.apps[0].l2_tlb.miss_rate();
    assert!(
        miss_shared > miss_alone + 0.05,
        "co-running CONS must thrash GUP's shared L2 TLB entries \
         (alone {miss_alone:.3} vs shared {miss_shared:.3})"
    );
}

#[test]
fn translation_bandwidth_is_the_minority_share() {
    // Fig. 8: translation is a small fraction of utilized bandwidth.
    let r = runner();
    let o = r
        .run_named("CONS", "LPS", DesignKind::SharedTlb)
        .expect("known");
    let share = o.stats.translation_bandwidth_share();
    assert!(
        share < 0.5,
        "translation bandwidth share {share:.3} should be the minority"
    );
    assert!(share > 0.0, "translation must reach DRAM at all");
}

#[test]
fn tlb_misses_stall_multiple_warps_for_sharing_workloads() {
    // §4.1 / Fig. 6: spatial locality makes one translation stall several
    // warps. GUP's small shared page set merges concurrent misses even at
    // this scaled-down test size; full-scale runs show several warps
    // stalled per miss (see the fig06 bench).
    let r = runner();
    let stats = r.run_apps(
        DesignKind::SharedTlb,
        &[AppSpec {
            profile: app_by_name("GUP").expect("known"),
            n_cores: 8,
        }],
    );
    assert!(
        stats.apps[0].avg_warps_stalled_per_miss() >= 1.0,
        "every miss stalls at least its requester"
    );
    assert!(
        stats.apps[0].stalled_warps_max >= 2,
        "page-sharing workloads must occasionally stall several warps on one miss"
    );
}

#[test]
fn mask_reduces_translation_dram_latency() {
    // §7.2: the Golden queue cuts DRAM latency for translations.
    let r = runner();
    let base = r
        .run_named("CONS", "RED", DesignKind::SharedTlb)
        .expect("known");
    let mask = r
        .run_named("CONS", "RED", DesignKind::MaskDram)
        .expect("known");
    let lat = |o: &PairOutcome| {
        let mut t = mask_common::stats::DramClassStats::default();
        for a in &o.stats.apps {
            t.merge(&a.dram_translation);
        }
        t.avg_latency()
    };
    assert!(
        lat(&mask) < lat(&base),
        "MASK-DRAM must cut translation DRAM latency ({:.0} -> {:.0})",
        lat(&base),
        lat(&mask)
    );
}
