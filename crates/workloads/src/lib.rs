//! Synthetic GPGPU workloads mirroring the paper's benchmark suite.
//!
//! The paper evaluates 27+ applications from CUDA SDK, Rodinia, Parboil,
//! LULESH and SHOC (§6), classified in Table 2 by their L1/L2 TLB miss
//! rates. The actual CUDA kernels are irrelevant to the phenomena under
//! study — what matters is each application's *memory access signature*:
//! page working-set size, page-reuse burstiness, cross-warp sharing,
//! coalescing degree, and compute intensity. This crate provides, for each
//! named benchmark, a deterministic trace generator whose signature places
//! it in the same Table 2 quadrant as the original.
//!
//! * [`profile`] — the parameter space ([`AppProfile`], [`Pattern`]).
//! * [`apps`] — the 30 named application profiles plus Table 2's expected
//!   classification.
//! * [`trace`] — per-warp stateful generators producing [`trace::WarpOp`]s.
//! * [`pairs`] — the 35 two-application workloads of Figs. 8–15 with their
//!   n-HMR categories.
//! * [`classify`] — a fast functional TLB simulation that *measures* L1/L2
//!   TLB miss rates (regenerates Table 2).

pub mod apps;
pub mod classify;
pub mod pairs;
pub mod profile;
pub mod trace;

pub use apps::{all_apps, app_by_name, expected_class};
pub use classify::{measure_tlb_rates, ClassifyConfig, TlbClass};
pub use pairs::{paper_pairs, AppPair, HmrCategory};
pub use profile::{AppProfile, Pattern};
pub use trace::{WarpOp, WarpTrace};
