//! Sharding the SM frontend must be invisible in the results.
//!
//! `GpuSim` can split its per-cycle issue stage across `MASK_SM_SHARDS`
//! worker threads (`mask_gpu::shard`). These properties pin the contract:
//! a sharded run produces **byte-identical** `SimStats` to the serial
//! engine at any shard count, across seeds, designs, workload mixes, and
//! run lengths — including lengths that straddle epoch boundaries, where
//! tokens and bypass decisions depend on exact per-epoch counter values.

use mask_core::prelude::*;
use proptest::prelude::*;

/// Shard counts exercised everywhere: serial, even split, ragged split
/// (4 cores / 3 shards), and more shards than one core each.
const SHARD_COUNTS: [usize; 3] = [2, 3, 8];

/// Builds a small two-app simulation (4 cores, 16 warps/core) with a short
/// token epoch so a few thousand cycles cross several epoch boundaries.
fn build(
    design: DesignKind,
    seed: u64,
    apps: &[(&str, usize)],
    cycles: u64,
    shards: usize,
) -> GpuSim {
    let mut cfg = SimConfig::new(design)
        .with_max_cycles(cycles)
        .with_sm_shards(shards);
    cfg.seed = seed;
    cfg.gpu.n_cores = apps.iter().map(|(_, c)| c).sum();
    cfg.gpu.warps_per_core = 16;
    cfg.gpu.mask.epoch_cycles = 2_000;
    let specs: Vec<AppSpec> = apps
        .iter()
        .map(|(name, c)| AppSpec {
            profile: app_by_name(name).expect("known app"),
            n_cores: *c,
        })
        .collect();
    GpuSim::new(&cfg, &specs)
}

/// Runs one configuration to completion and returns its stats.
fn run_one(
    design: DesignKind,
    seed: u64,
    apps: &[(&str, usize)],
    cycles: u64,
    shards: usize,
) -> SimStats {
    let mut sim = build(design, seed, apps, cycles, shards);
    sim.run_to_completion();
    sim.sync_stats();
    sim.stats().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The core property: sharding never changes any statistic, for any
    /// shard count, on every design with a sharded frontend.
    #[test]
    fn sharding_is_byte_identical_across_seeds(seed in 0u64..1_000) {
        for design in [DesignKind::SharedTlb, DesignKind::PwCache, DesignKind::Mask] {
            let serial = run_one(design, seed, &[("HISTO", 2), ("GUP", 2)], 6_000, 1);
            for shards in SHARD_COUNTS {
                let sharded = run_one(design, seed, &[("HISTO", 2), ("GUP", 2)], 6_000, shards);
                prop_assert_eq!(
                    &serial, &sharded,
                    "design {} diverged at {} shards", design, shards
                );
            }
        }
    }

    /// Run lengths around epoch boundaries: epoch-end work (tokens, bypass
    /// flips, Silver quotas) reads counters the shards accumulate, so it
    /// must observe exactly the same values on exactly the same cycles.
    #[test]
    fn sharding_is_identical_across_run_lengths(extra in 0u64..4_000) {
        let cycles = 4_000 + extra;
        let serial = run_one(DesignKind::Mask, 7, &[("CONS", 2), ("LPS", 2)], cycles, 1);
        for shards in SHARD_COUNTS {
            let sharded = run_one(DesignKind::Mask, 7, &[("CONS", 2), ("LPS", 2)], cycles, shards);
            prop_assert_eq!(&serial, &sharded, "diverged at {} shards", shards);
        }
    }
}

/// Sharding composes with idle cycle-skipping: a single-app run with a
/// long idle tail exercises the all-idle fast path in the sharded
/// frontend against the serial stall-counting loop.
#[test]
fn sharding_composes_with_cycle_skip() {
    for skip in [true, false] {
        let mut serial = build(DesignKind::Mask, 3, &[("RED", 4)], 20_000, 1);
        serial.set_cycle_skip(skip);
        serial.run_to_completion();
        serial.sync_stats();
        for shards in SHARD_COUNTS {
            let mut sharded = build(DesignKind::Mask, 3, &[("RED", 4)], 20_000, shards);
            sharded.set_cycle_skip(skip);
            sharded.run_to_completion();
            sharded.sync_stats();
            assert_eq!(
                serial.stats(),
                sharded.stats(),
                "skip={skip} diverged at {shards} shards"
            );
        }
    }
}

/// The Ideal design translates functionally inside the issue stage
/// (mutating shared page tables), so `GpuSim` forces it serial no matter
/// what was requested.
#[test]
fn ideal_design_is_forced_serial() {
    let sim = build(DesignKind::Ideal, 1, &[("HISTO", 2), ("GUP", 2)], 1_000, 8);
    assert_eq!(sim.sm_shards(), 1);
}

/// Shard requests are clamped to the core count (an SM is the unit of
/// work), but any count up to that sticks.
#[test]
fn shard_count_is_clamped_to_cores() {
    let sim = build(DesignKind::Mask, 1, &[("HISTO", 2), ("GUP", 2)], 1_000, 64);
    assert_eq!(sim.sm_shards(), 4);
    let sim = build(DesignKind::Mask, 1, &[("HISTO", 2), ("GUP", 2)], 1_000, 3);
    assert_eq!(sim.sm_shards(), 3);
}

/// The batch-engine surface: `SimJob::run_with_shards` is bit-identical to
/// the plain serial `run` for a two-app job.
#[test]
fn job_engine_shard_override_matches_serial() {
    let gpu = GpuConfig::maxwell();
    let job = SimJob {
        design: DesignKind::Mask,
        specs: vec![
            AppSpec {
                profile: app_by_name("CONS").expect("known app"),
                n_cores: 2,
            },
            AppSpec {
                profile: app_by_name("LPS").expect("known app"),
                n_cores: 2,
            },
        ],
        max_cycles: 5_000,
        warmup_cycles: 1_000,
        seed: 42,
        gpu,
    };
    let serial = job.run_with_shards(Some(1));
    for shards in SHARD_COUNTS {
        assert_eq!(
            serial,
            job.run_with_shards(Some(shards)),
            "job diverged at {shards} shards"
        );
    }
}
