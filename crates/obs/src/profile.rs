//! Engine self-profiling: wall-clock timings of the simulator's moving
//! parts, so jobs×shards tuning is data-driven.
//!
//! Three instruments:
//!
//! * [`stage`] — RAII guard timing one `GpuSim::step` stage, accumulated
//!   into (stage, cycle-bucket) cells of [`STAGE_BUCKET_CYCLES`] cycles.
//! * [`begin_merge_wait`] — times the serial merge tail's spin/park wait
//!   for shard workers (`ShardPool::run_issue`).
//! * [`begin_job`] — times one job execution in the `JobPool`, recorded as
//!   a named span on the worker's lane for the Perfetto engine timeline.
//!
//! This module is the only place in the workspace outside `crates/bench`
//! that reads the wall clock; every read is annotated for the
//! `nondeterminism` lint because timings are exported only — they are
//! never fed back into simulation state, so traced runs stay bit-identical.

/// Cycle-bucket width for stage timings (matches the default MASK epoch).
pub const STAGE_BUCKET_CYCLES: u64 = 100_000;

/// The `GpuSim::step` stages measured by [`stage`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimStage {
    /// Stage 1: warp issue across SMs (serial or sharded + merge tail).
    Issue,
    /// Stage 2: TLB/translation unit tick and resolution delivery.
    Translation,
    /// Stages 3/4: shared-L2 enqueue and bank service.
    CacheL2,
    /// Stage 5: DRAM tick and completion drain.
    Dram,
    /// Stage 6: response delivery back to the cores.
    Responses,
}

impl SimStage {
    /// Stable lowercase name for trace output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SimStage::Issue => "issue",
            SimStage::Translation => "translation",
            SimStage::CacheL2 => "l2",
            SimStage::Dram => "dram",
            SimStage::Responses => "responses",
        }
    }
}

/// One completed wall-clock span on the engine timeline (Perfetto pid 2).
#[derive(Clone, Debug)]
pub struct Span {
    /// Span label (e.g. the job's workload/design description).
    pub name: String,
    /// Worker lane the span ran on.
    pub lane: u32,
    /// Start offset from the first profiling event, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

#[cfg(feature = "enabled")]
fn now_us() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now); // lint: allow(nondeterminism) -- profiling only, never read by the simulation
    epoch.elapsed().as_micros() as u64
}

/// RAII guard returned by [`stage`]; records on drop.
#[must_use = "the stage is timed until the guard drops"]
pub struct StageGuard {
    #[cfg(feature = "enabled")]
    armed: Option<(SimStage, u64, std::time::Instant)>,
}

/// Starts timing `stage` for the cycle bucket containing `now`.
///
/// No-op (and no clock read) unless tracing is compiled in and
/// runtime-enabled.
#[inline(always)]
pub fn stage(stage: SimStage, now: u64) -> StageGuard {
    #[cfg(feature = "enabled")]
    {
        let armed = crate::ring::runtime_enabled()
            .then(|| (stage, now / STAGE_BUCKET_CYCLES, std::time::Instant::now())); // lint: allow(nondeterminism) -- profiling only
        StageGuard { armed }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (stage, now);
        StageGuard {}
    }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some((stage, bucket, start)) = self.armed.take() {
            let nanos = start.elapsed().as_nanos() as u64;
            crate::ring::add_stage(stage.name(), bucket, nanos);
        }
    }
}

/// One-shot timer for the shard merge-tail wait.
#[must_use = "call finish() to record the wait"]
pub struct MergeWait {
    #[cfg(feature = "enabled")]
    start: Option<std::time::Instant>,
}

/// Starts timing the merge tail's wait for shard-worker completion.
#[inline(always)]
pub fn begin_merge_wait() -> MergeWait {
    #[cfg(feature = "enabled")]
    {
        let start = crate::ring::runtime_enabled().then(std::time::Instant::now); // lint: allow(nondeterminism) -- profiling only
        MergeWait { start }
    }
    #[cfg(not(feature = "enabled"))]
    {
        MergeWait {}
    }
}

impl MergeWait {
    /// Records the elapsed wait into the merge-tail aggregate.
    #[inline(always)]
    pub fn finish(self) {
        #[cfg(feature = "enabled")]
        if let Some(start) = self.start {
            crate::ring::add_merge_wait(start.elapsed().as_nanos() as u64);
        }
    }
}

/// One-shot timer for a `JobPool` job execution.
#[must_use = "call finish() to record the span"]
pub struct JobTimer {
    #[cfg(feature = "enabled")]
    start: Option<(u64, std::time::Instant)>,
}

/// Starts timing one job.
#[inline(always)]
pub fn begin_job() -> JobTimer {
    #[cfg(feature = "enabled")]
    {
        let start = crate::ring::runtime_enabled().then(|| (now_us(), std::time::Instant::now())); // lint: allow(nondeterminism) -- profiling only
        JobTimer { start }
    }
    #[cfg(not(feature = "enabled"))]
    {
        JobTimer {}
    }
}

impl JobTimer {
    /// Records the job as a named span on worker `lane`.
    pub fn finish(self, name: &str, lane: u32) {
        #[cfg(feature = "enabled")]
        if let Some((start_us, start)) = self.start {
            crate::ring::push_span(Span {
                name: name.to_owned(),
                lane,
                start_us,
                dur_us: start.elapsed().as_micros() as u64,
            });
        }
        #[cfg(not(feature = "enabled"))]
        let _ = (name, lane);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(SimStage::Issue.name(), "issue");
        assert_eq!(SimStage::CacheL2.name(), "l2");
    }

    #[test]
    fn disabled_guards_are_inert() {
        // With tracing off (feature off, or runtime off) the guards must be
        // constructible and droppable with no side effects.
        let g = stage(SimStage::Dram, 12345);
        drop(g);
        begin_merge_wait().finish();
        begin_job().finish("noop", 0);
    }
}
