//! TLB-Fill Tokens: epoch-based fill throttling for the shared L2 TLB.
//!
//! Mechanism ❶ of MASK (§5.2). Every epoch (100K cycles) the controller
//! observes each application's shared-L2-TLB miss rate and adjusts how many
//! of its warps may *fill* the shared TLB. Tokens are assigned one per warp
//! in warp-ID order ("if there are `n` tokens, the `n` warps with the
//! lowest warp ID values receive tokens"); tokenless warps fill only the
//! bypass cache. During the first epoch no bypassing is performed.
//!
//! Two adjustment policies are provided:
//!
//! * [`TokenPolicy::Literal`] — §5.2's text verbatim: miss rate up by >2%
//!   → fewer tokens; down by >2% → more tokens; otherwise unchanged. In
//!   steady state (constant miss rate) this controller never moves.
//! * [`TokenPolicy::HillClimb`] (default) — the controller implied by
//!   §7.4's hardware budget, which includes "30 1-bit direction registers
//!   to record whether the token count increased or decreased during the
//!   previous epoch": every epoch the count takes a step in the current
//!   direction, and the direction *reverses* when the miss rate worsened
//!   by more than the 2% threshold. This searches for the token count that
//!   minimizes the app's shared-TLB miss rate and keeps searching as
//!   contention changes.

use mask_common::config::MaskParams;
use mask_common::ids::Asid;

/// Token-count adjustment policy (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TokenPolicy {
    /// §5.2's literal delta rule.
    Literal,
    /// Direction-register hill climbing (§7.4).
    #[default]
    HillClimb,
}

#[derive(Clone, Debug)]
struct AppTokens {
    /// Cores assigned to this application.
    n_cores: u64,
    /// Warp contexts per core.
    warps_per_core: u64,
    /// Current token count (warps allowed to fill the shared L2 TLB).
    tokens: u64,
    /// Miss rate observed in the previous epoch.
    prev_miss_rate: Option<f64>,
    /// §7.4 direction register: +1 = growing, -1 = shedding tokens.
    direction: i8,
    /// True until the first epoch boundary (no bypassing during warm-up).
    warmup: bool,
}

impl AppTokens {
    fn total_warps(&self) -> u64 {
        self.n_cores * self.warps_per_core
    }
}

/// The per-application token controller.
#[derive(Clone, Debug)]
pub struct TokenAllocator {
    apps: Vec<AppTokens>,
    policy: TokenPolicy,
    initial_frac: f64,
    delta: f64,
    step_frac: f64,
}

impl TokenAllocator {
    /// Creates a controller for applications with the given core counts,
    /// using the default [`TokenPolicy::HillClimb`].
    ///
    /// `cores_per_app[i]` is the number of GPU cores assigned to the
    /// application in address space `i`; every core has `warps_per_core`
    /// warp contexts.
    pub fn new(params: &MaskParams, cores_per_app: &[usize], warps_per_core: usize) -> Self {
        Self::with_policy(
            params,
            cores_per_app,
            warps_per_core,
            TokenPolicy::default(),
        )
    }

    /// Creates a controller with an explicit adjustment policy.
    pub fn with_policy(
        params: &MaskParams,
        cores_per_app: &[usize],
        warps_per_core: usize,
        policy: TokenPolicy,
    ) -> Self {
        let apps = cores_per_app
            .iter()
            .map(|&c| AppTokens {
                n_cores: c as u64,
                warps_per_core: warps_per_core as u64,
                tokens: c as u64 * warps_per_core as u64, // all warps until first epoch
                prev_miss_rate: None,
                direction: -1, // start by shedding: sharing implies contention
                warmup: true,
            })
            .collect();
        TokenAllocator {
            apps,
            policy,
            initial_frac: params.initial_tokens_frac,
            delta: params.miss_rate_delta,
            step_frac: params.token_step_frac,
        }
    }

    /// Current token count for `asid`.
    pub fn tokens(&self, asid: Asid) -> u64 {
        self.apps.get(asid.index()).map_or(0, |a| a.tokens)
    }

    /// The active adjustment policy.
    pub fn policy(&self) -> TokenPolicy {
        self.policy
    }

    /// Whether the warp in slot `warp_id` on the app's `core_rank`-th core
    /// currently holds a fill token.
    ///
    /// The app's tokens are spread evenly over its cores; within each core
    /// the lowest-numbered warp slots hold them.
    pub fn warp_has_token(&self, asid: Asid, core_rank: usize, warp_id: usize) -> bool {
        let Some(app) = self.apps.get(asid.index()) else {
            return true;
        };
        if app.warmup {
            return true;
        }
        let quota = Self::core_quota(app, core_rank as u64);
        (warp_id as u64) < quota
    }

    fn core_quota(app: &AppTokens, core_rank: u64) -> u64 {
        if app.n_cores == 0 {
            return 0;
        }
        let base = app.tokens / app.n_cores;
        let rem = app.tokens % app.n_cores;
        base + u64::from(core_rank < rem)
    }

    /// Advances one application across an epoch boundary.
    ///
    /// `miss_rate` is the app's shared-L2-TLB miss rate over the ending
    /// epoch; `accesses` its probe count (apps that did not probe the TLB
    /// keep their allocation unchanged).
    pub fn end_epoch(&mut self, asid: Asid, miss_rate: f64, accesses: u64) {
        let delta = self.delta;
        let initial_frac = self.initial_frac;
        let step_frac = self.step_frac;
        let policy = self.policy;
        let Some(app) = self.apps.get_mut(asid.index()) else {
            return;
        };
        if app.warmup {
            // "After the first epoch, the initial number of tokens for each
            // application is set to a predetermined fraction of the total
            // number of warps per application." (§5.2)
            app.warmup = false;
            app.tokens = ((app.total_warps() as f64 * initial_frac).round() as u64)
                .clamp(1, app.total_warps());
            app.prev_miss_rate = Some(miss_rate);
            mask_sanitizer::token_epoch(asid.index() as u16, app.tokens, app.total_warps());
            mask_obs::hooks::token_epoch(asid.index() as u16, app.tokens);
            return;
        }
        if accesses == 0 {
            return;
        }
        let prev = app.prev_miss_rate.unwrap_or(miss_rate);
        let step = ((app.total_warps() as f64 * step_frac).round() as u64).max(1);
        match policy {
            TokenPolicy::Literal => {
                if miss_rate > prev + delta {
                    app.tokens = app.tokens.saturating_sub(step).max(1);
                } else if miss_rate + delta < prev {
                    app.tokens = (app.tokens + step).min(app.total_warps());
                }
            }
            TokenPolicy::HillClimb => {
                // Reverse direction when the last move made things worse.
                if miss_rate > prev + delta {
                    app.direction = -app.direction;
                }
                if app.direction > 0 {
                    app.tokens = (app.tokens + step).min(app.total_warps());
                } else {
                    app.tokens = app.tokens.saturating_sub(step).max(1);
                }
            }
        }
        app.prev_miss_rate = Some(miss_rate);
        mask_sanitizer::token_epoch(asid.index() as u16, app.tokens, app.total_warps());
        mask_obs::hooks::token_epoch(asid.index() as u16, app.tokens);
    }

    /// Whether `asid` is still in its warm-up (first) epoch.
    pub fn in_warmup(&self, asid: Asid) -> bool {
        self.apps.get(asid.index()).is_none_or(|a| a.warmup)
    }

    /// Number of managed applications.
    pub fn n_apps(&self) -> usize {
        self.apps.len()
    }
}

impl mask_common::snapshot::Snapshot for TokenAllocator {
    /// Serializes only the adaptive per-app state; the policy, core/warp
    /// geometry, and tuning fractions are config-derived.
    fn snapshot(&self, w: &mut mask_common::snapshot::SnapshotWriter) {
        w.section("tokens");
        w.seq(self.apps.len());
        for app in &self.apps {
            w.u64(app.tokens);
            w.bool(app.prev_miss_rate.is_some());
            w.f64(app.prev_miss_rate.unwrap_or(0.0));
            w.i8(app.direction);
            w.bool(app.warmup);
        }
    }

    fn restore(
        &mut self,
        r: &mut mask_common::snapshot::SnapshotReader<'_>,
    ) -> Result<(), mask_common::snapshot::SnapshotError> {
        r.section("tokens")?;
        r.seq_exact(self.apps.len())?;
        for app in &mut self.apps {
            app.tokens = r.u64()?;
            let has_prev = r.bool()?;
            let prev = r.f64()?;
            app.prev_miss_rate = has_prev.then_some(prev);
            app.direction = r.i8()?;
            app.warmup = r.bool()?;
            if app.tokens > app.total_warps() {
                return Err(mask_common::snapshot::SnapshotError::Malformed(
                    "token count exceeds total warps",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MaskParams {
        MaskParams::default()
    }

    fn alloc_with(policy: TokenPolicy) -> TokenAllocator {
        // Two apps: 2 cores and 3 cores, 8 warps per core.
        TokenAllocator::with_policy(&params(), &[2, 3], 8, policy)
    }

    fn alloc() -> TokenAllocator {
        alloc_with(TokenPolicy::Literal)
    }

    #[test]
    fn warmup_grants_all_tokens() {
        let a = alloc();
        assert!(a.in_warmup(Asid::new(0)));
        for core in 0..2 {
            for w in 0..8 {
                assert!(a.warp_has_token(Asid::new(0), core, w));
            }
        }
        assert_eq!(a.tokens(Asid::new(0)), 16);
    }

    #[test]
    fn first_epoch_sets_initial_fraction() {
        let mut a = alloc();
        a.end_epoch(Asid::new(0), 0.5, 100);
        assert!(!a.in_warmup(Asid::new(0)));
        // 80% of 16 warps = 13 tokens (rounded).
        assert_eq!(a.tokens(Asid::new(0)), 13);
    }

    #[test]
    fn literal_rising_miss_rate_shrinks_tokens() {
        let mut a = alloc();
        a.end_epoch(Asid::new(0), 0.50, 100);
        let t0 = a.tokens(Asid::new(0));
        a.end_epoch(Asid::new(0), 0.60, 100); // +10% > 2% delta
        assert!(a.tokens(Asid::new(0)) < t0);
    }

    #[test]
    fn literal_falling_miss_rate_grows_tokens() {
        let mut a = alloc();
        a.end_epoch(Asid::new(0), 0.50, 100);
        let t0 = a.tokens(Asid::new(0));
        a.end_epoch(Asid::new(0), 0.30, 100); // -20% < -2% delta
        assert!(a.tokens(Asid::new(0)) > t0);
    }

    #[test]
    fn literal_stable_miss_rate_keeps_tokens() {
        let mut a = alloc();
        a.end_epoch(Asid::new(0), 0.50, 100);
        let t0 = a.tokens(Asid::new(0));
        a.end_epoch(Asid::new(0), 0.51, 100); // within ±2%
        assert_eq!(a.tokens(Asid::new(0)), t0);
    }

    #[test]
    fn hill_climb_explores_under_stable_miss_rate() {
        let mut a = alloc_with(TokenPolicy::HillClimb);
        a.end_epoch(Asid::new(0), 0.50, 100);
        let t0 = a.tokens(Asid::new(0));
        a.end_epoch(Asid::new(0), 0.50, 100);
        assert_ne!(a.tokens(Asid::new(0)), t0, "hill climber must keep probing");
        // Initial direction sheds tokens (contention assumption).
        assert!(a.tokens(Asid::new(0)) < t0);
    }

    #[test]
    fn hill_climb_reverses_when_worse() {
        let mut a = alloc_with(TokenPolicy::HillClimb);
        a.end_epoch(Asid::new(0), 0.50, 100);
        let t0 = a.tokens(Asid::new(0));
        // Shedding made things much worse twice: direction flips to +1.
        a.end_epoch(Asid::new(0), 0.60, 100);
        let t1 = a.tokens(Asid::new(0));
        assert!(t1 > t0 - 3, "after reversal the count climbs back");
        a.end_epoch(Asid::new(0), 0.58, 100); // improved: keep climbing
        assert!(a.tokens(Asid::new(0)) >= t1);
    }

    #[test]
    fn tokens_bounded_by_one_and_total() {
        for policy in [TokenPolicy::Literal, TokenPolicy::HillClimb] {
            let mut a = alloc_with(policy);
            a.end_epoch(Asid::new(0), 0.1, 100);
            let mut rate: f64 = 0.1;
            for _ in 0..50 {
                rate += 0.05;
                a.end_epoch(Asid::new(0), rate.min(1.0), 100);
            }
            assert!(a.tokens(Asid::new(0)) >= 1, "{policy:?}");
            for _ in 0..50 {
                rate -= 0.05;
                a.end_epoch(Asid::new(0), rate.max(0.0), 100);
            }
            assert!(a.tokens(Asid::new(0)) <= 16, "{policy:?}");
        }
    }

    #[test]
    fn tokens_assigned_to_lowest_warp_ids() {
        let mut a = alloc();
        a.end_epoch(Asid::new(1), 0.5, 100); // 80% of 24 = 19 tokens over 3 cores
        let tokens = a.tokens(Asid::new(1));
        assert_eq!(tokens, 19);
        let mut granted = 0;
        for core in 0..3 {
            let mut boundary_seen = false;
            for w in 0..8 {
                let has = a.warp_has_token(Asid::new(1), core, w);
                granted += u64::from(has);
                // Once a warp lacks a token, all higher warp IDs lack one too.
                if !has {
                    boundary_seen = true;
                }
                if boundary_seen {
                    assert!(!has);
                }
            }
        }
        assert_eq!(granted, tokens);
    }

    #[test]
    fn idle_app_allocation_unchanged() {
        let mut a = alloc();
        a.end_epoch(Asid::new(0), 0.5, 100);
        let t0 = a.tokens(Asid::new(0));
        a.end_epoch(Asid::new(0), 0.9, 0); // zero accesses: ignore
        assert_eq!(a.tokens(Asid::new(0)), t0);
    }

    #[test]
    fn unknown_asid_defaults_to_token() {
        let a = alloc();
        assert!(a.warp_has_token(Asid::new(9), 0, 0));
        assert_eq!(a.tokens(Asid::new(9)), 0);
    }

    #[test]
    fn default_policy_is_hill_climb() {
        let a = TokenAllocator::new(&params(), &[1], 8);
        assert_eq!(a.policy(), TokenPolicy::HillClimb);
    }
}
