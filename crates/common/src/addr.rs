//! Strongly-typed virtual and physical addresses.
//!
//! The paper simulates CUDA Unified Virtual Addressing with x86-64-style
//! 4-level page tables, so virtual addresses are 48 bits wide and are split
//! into four 9-bit radix indices plus a page offset. Pages are 4 KB by
//! default; the large-page sensitivity study (§7.3) uses 2 MB pages, so the
//! page-size log2 is a runtime parameter rather than a compile-time constant.

use core::fmt;

/// log2 of the cache-line/sector size used throughout the memory hierarchy.
///
/// GPUs fetch 128-byte lines from L2/DRAM (GDDR5 burst of 8 over a 128-bit
/// bus per channel pair); we use 128 B everywhere for simplicity.
pub const LINE_SIZE_LOG2: u32 = 7;
/// Cache-line size in bytes (`1 << LINE_SIZE_LOG2`).
pub const LINE_SIZE: u64 = 1 << LINE_SIZE_LOG2;
/// log2 of the base (small) page size: 4 KB.
pub const PAGE_SIZE_4K_LOG2: u32 = 12;
/// log2 of the large page size used in the §7.3 sensitivity study: 2 MB.
pub const PAGE_SIZE_2M_LOG2: u32 = 21;
/// Number of radix levels in the simulated page table (x86-64 style).
pub const PAGE_TABLE_LEVELS: u8 = 4;
/// Bits of virtual-page-number consumed by each radix level.
pub const BITS_PER_LEVEL: u32 = 9;
/// Virtual addresses are 48 bits (standard x86-64 canonical user space).
pub const VA_BITS: u32 = 48;

/// A virtual address within one application's address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address, truncating to the 48-bit canonical range.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw & ((1 << VA_BITS) - 1))
    }

    /// The raw 48-bit address value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The virtual page number for a given page size.
    #[inline]
    pub const fn vpn(self, page_size_log2: u32) -> Vpn {
        Vpn(self.0 >> page_size_log2)
    }

    /// The byte offset within its page for a given page size.
    #[inline]
    pub const fn page_offset(self, page_size_log2: u32) -> u64 {
        self.0 & ((1 << page_size_log2) - 1)
    }

    /// Aligns the address down to its cache line.
    #[inline]
    pub const fn line_aligned(self) -> VirtAddr {
        VirtAddr(self.0 & !(LINE_SIZE - 1))
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VA({:#014x})", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#014x}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr::new(raw)
    }
}

/// A physical (machine) address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw byte address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// The raw byte address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The physical frame number for a given page size.
    #[inline]
    pub const fn ppn(self, page_size_log2: u32) -> Ppn {
        Ppn(self.0 >> page_size_log2)
    }

    /// The cache-line address containing this byte.
    #[inline]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SIZE_LOG2)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA({:#014x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#014x}", self.0)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        PhysAddr::new(raw)
    }
}

/// A virtual page number (virtual address shifted down by the page size).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

impl Vpn {
    /// The radix index for page-table `level` (1 = root .. 4 = leaf) given
    /// the page size used by the leaf level.
    ///
    /// For 4 KB pages all four 9-bit groups index page-table nodes. For 2 MB
    /// pages the translation stops one level early (level 4 is absorbed into
    /// the page offset), but we keep the same indexing scheme and simply use
    /// three levels.
    #[inline]
    pub fn level_index(self, level: u8, page_size_log2: u32) -> u64 {
        debug_assert!((1..=PAGE_TABLE_LEVELS).contains(&level));
        let levels = levels_for_page_size(page_size_log2);
        let shift = BITS_PER_LEVEL * (u32::from(levels) - u32::from(level));
        (self.0 >> shift) & ((1 << BITS_PER_LEVEL) - 1)
    }

    /// The offset index used by doctests/examples (low 9 bits).
    #[inline]
    pub fn offset_index(self, level_from_leaf: u32) -> u64 {
        (self.0 >> (BITS_PER_LEVEL * level_from_leaf)) & ((1 << BITS_PER_LEVEL) - 1)
    }

    /// Reconstructs the base virtual address of this page.
    #[inline]
    pub const fn base(self, page_size_log2: u32) -> VirtAddr {
        VirtAddr::new(self.0 << page_size_log2)
    }
}

impl fmt::Debug for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VPN({:#x})", self.0)
    }
}

/// Number of radix levels actually walked for a given page size.
///
/// 4 KB pages walk all [`PAGE_TABLE_LEVELS`] levels; 2 MB pages walk one
/// fewer because the leaf level is absorbed into the page offset.
#[inline]
pub fn levels_for_page_size(page_size_log2: u32) -> u8 {
    if page_size_log2 >= PAGE_SIZE_2M_LOG2 {
        PAGE_TABLE_LEVELS - 1
    } else {
        PAGE_TABLE_LEVELS
    }
}

/// A physical frame number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ppn(pub u64);

impl Ppn {
    /// The base physical address of this frame.
    #[inline]
    pub const fn base(self, page_size_log2: u32) -> PhysAddr {
        PhysAddr(self.0 << page_size_log2)
    }

    /// Translates a virtual address that maps to this frame.
    #[inline]
    pub const fn translate(self, va: VirtAddr, page_size_log2: u32) -> PhysAddr {
        PhysAddr((self.0 << page_size_log2) | va.page_offset(page_size_log2))
    }
}

impl fmt::Debug for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PPN({:#x})", self.0)
    }
}

/// A physical cache-line address (physical address shifted by the line size).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The base physical byte address of this line.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 << LINE_SIZE_LOG2)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Line({:#x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_addr_truncates_to_48_bits() {
        let va = VirtAddr::new(u64::MAX);
        assert_eq!(va.raw(), (1 << VA_BITS) - 1);
    }

    #[test]
    fn vpn_and_offset_roundtrip() {
        let va = VirtAddr::new(0x1234_5678_9abc);
        let vpn = va.vpn(PAGE_SIZE_4K_LOG2);
        let off = va.page_offset(PAGE_SIZE_4K_LOG2);
        assert_eq!(vpn.base(PAGE_SIZE_4K_LOG2).raw() + off, va.raw());
    }

    #[test]
    fn level_indices_cover_vpn_bits() {
        let va = VirtAddr::new(0x0000_7fff_ffff_f000);
        let vpn = va.vpn(PAGE_SIZE_4K_LOG2);
        let mut rebuilt = 0u64;
        for level in 1..=PAGE_TABLE_LEVELS {
            rebuilt = (rebuilt << BITS_PER_LEVEL) | vpn.level_index(level, PAGE_SIZE_4K_LOG2);
        }
        assert_eq!(rebuilt, vpn.0);
    }

    #[test]
    fn large_pages_walk_three_levels() {
        assert_eq!(levels_for_page_size(PAGE_SIZE_4K_LOG2), 4);
        assert_eq!(levels_for_page_size(PAGE_SIZE_2M_LOG2), 3);
    }

    #[test]
    fn translate_preserves_offset() {
        let va = VirtAddr::new(0xdead_beef);
        let ppn = Ppn(0x42);
        let pa = ppn.translate(va, PAGE_SIZE_4K_LOG2);
        assert_eq!(pa.raw() & 0xfff, va.raw() & 0xfff);
        assert_eq!(pa.ppn(PAGE_SIZE_4K_LOG2), ppn);
    }

    #[test]
    fn line_alignment() {
        let va = VirtAddr::new(0x1234);
        assert_eq!(
            va.line_aligned().raw(),
            0x1200 & !(LINE_SIZE - 1) | (0x1234 & !(LINE_SIZE - 1) & 0xff)
        );
        // simpler check: aligned address is a multiple of the line size
        assert_eq!(va.line_aligned().raw() % LINE_SIZE, 0);
        let pa = PhysAddr::new(0x1fff);
        assert_eq!(pa.line().base().raw(), 0x1f80);
    }
}
